//! Offline stand-in for the [`serde`](https://serde.rs) facade.
//!
//! The workspace annotates its data types with
//! `#[derive(Serialize, Deserialize)]` so that a real `serde` can be swapped
//! in the moment the build environment has registry access. Until then this
//! stand-in keeps those annotations compiling:
//!
//! * [`Serialize`] and [`Deserialize`] are marker traits with the same names
//!   and namespaces as serde's;
//! * the derive macros (re-exported from `serde_derive`) accept the same
//!   syntax, including `#[serde(...)]` attributes, and expand to marker-trait
//!   impls.
//!
//! No serialization *format* is provided — there is deliberately no
//! `serde_json` stand-in — so nothing in the workspace can silently depend on
//! behaviour the real serde would implement differently.

#![deny(unsafe_code)]
#![warn(missing_docs)]

/// Marker trait standing in for `serde::Serialize`.
///
/// Implemented via `#[derive(Serialize)]`, which the stand-in derive expands
/// to a plain `impl Serialize for T {}`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
///
/// The lifetime parameter mirrors the real trait so type-level usage
/// (`T: Deserialize<'de>`) keeps the same shape.
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};
