//! Offline stand-in for `serde_derive`.
//!
//! Parses just enough of the item to recover its name, then emits marker-trait
//! impls for the stand-in `serde` facade. Generic items get no impl (the
//! workspace derives only on concrete types); `#[serde(...)]` attributes are
//! accepted and ignored.

use proc_macro::{TokenStream, TokenTree};

/// Returns the item's type name, plus whether the item has generic parameters.
fn item_name(input: TokenStream) -> Option<(String, bool)> {
    let mut iter = input.into_iter().peekable();
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(keyword) = &tt {
            let keyword = keyword.to_string();
            if keyword == "struct" || keyword == "enum" || keyword == "union" {
                if let Some(TokenTree::Ident(name)) = iter.next() {
                    let generic = matches!(
                        iter.peek(),
                        Some(TokenTree::Punct(p)) if p.as_char() == '<'
                    );
                    return Some((name.to_string(), generic));
                }
            }
        }
    }
    None
}

/// Stand-in for `#[derive(serde::Serialize)]`: emits `impl Serialize for T {}`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match item_name(input) {
        Some((name, false)) => format!("impl ::serde::Serialize for {name} {{}}")
            .parse()
            .expect("generated impl must parse"),
        _ => TokenStream::new(),
    }
}

/// Stand-in for `#[derive(serde::Deserialize)]`: emits
/// `impl<'de> Deserialize<'de> for T {}`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match item_name(input) {
        Some((name, false)) => format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
            .parse()
            .expect("generated impl must parse"),
        _ => TokenStream::new(),
    }
}
