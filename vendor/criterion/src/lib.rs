//! Offline stand-in for the [`criterion`](https://bheisler.github.io/criterion.rs/book/)
//! benchmarking framework.
//!
//! Exposes the API shape the workspace's benches use — [`Criterion`],
//! [`BenchmarkId`], benchmark groups, [`Bencher::iter`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros — but measures with a
//! plain calibrated wall-clock loop instead of criterion's statistical
//! machinery. Each benchmark prints one line:
//!
//! ```text
//! group/id ... <mean time per iteration> (<iterations> iters)
//! ```
//!
//! Swap in the real criterion (same manifests, registry access required) when
//! publication-grade numbers are needed; the bench sources need no changes.

#![deny(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock time to spend measuring each benchmark.
const MEASUREMENT_BUDGET: Duration = Duration::from_millis(400);

/// Iterations used to calibrate how many fit in the measurement budget.
const CALIBRATION_ITERS: u64 = 10;

/// Entry point handed to benchmark functions; hands out groups.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into() }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut routine: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, &mut routine);
    }
}

/// A named collection of benchmarks, mirroring criterion's grouping API.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Benchmarks `routine` against one `input`, labelled by `id`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut routine: F)
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label());
        run_one(&label, &mut |b: &mut Bencher| routine(b, input));
    }

    /// Benchmarks a routine without an input parameter.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut routine: F)
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.label());
        run_one(&label, &mut routine);
    }

    /// Ends the group. (The real criterion emits summary reports here.)
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id composed of a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id that is just a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn label(&self) -> String {
        match (&self.function, &self.parameter) {
            (Some(f), Some(p)) => format!("{f}/{p}"),
            (Some(f), None) => f.clone(),
            (None, Some(p)) => p.clone(),
            (None, None) => String::from("benchmark"),
        }
    }
}

/// Passed to each benchmark routine; [`iter`](Bencher::iter) does the timing.
#[derive(Debug, Default)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over a calibrated number of iterations.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Calibrate: how long does one iteration take, roughly?
        let calibration_start = Instant::now();
        for _ in 0..CALIBRATION_ITERS {
            black_box(routine());
        }
        let per_iter = calibration_start.elapsed() / CALIBRATION_ITERS as u32;

        let target = MEASUREMENT_BUDGET.as_nanos();
        let per_iter_nanos = per_iter.as_nanos().max(1);
        let iterations = (target / per_iter_nanos).clamp(10, 1_000_000) as u64;

        let start = Instant::now();
        for _ in 0..iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iterations = iterations;
    }
}

fn run_one(label: &str, routine: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher::default();
    routine(&mut bencher);
    if bencher.iterations == 0 {
        println!("{label} ... no measurement (b.iter was never called)");
        return;
    }
    let mean = bencher.elapsed / bencher.iterations as u32;
    println!(
        "{label} ... {} ({} iters)",
        format_duration(mean),
        bencher.iterations
    );
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Declares a function that runs a list of benchmark functions in order,
/// mirroring criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given [`criterion_group!`]s, mirroring
/// criterion's macro of the same name. Requires `harness = false` on the
/// `[[bench]]` target, exactly like the real criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut bencher = Bencher::default();
        let mut acc = 0u64;
        bencher.iter(|| {
            acc = acc.wrapping_add(1);
            acc
        });
        assert!(bencher.iterations >= 10);
        assert!(bencher.elapsed > Duration::ZERO);
    }

    #[test]
    fn benchmark_id_labels() {
        assert_eq!(BenchmarkId::new("f", 7).label(), "f/7");
        assert_eq!(BenchmarkId::from_parameter(1024).label(), "1024");
    }

    fn trivial_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("group");
        group.bench_with_input(BenchmarkId::from_parameter(1), &1, |b, &x| b.iter(|| x + 1));
        group.finish();
    }

    criterion_group!(test_group, trivial_bench);

    #[test]
    fn group_macro_produces_runnable_fn() {
        test_group();
    }
}
