//! Concrete generators, mirroring `rand::rngs`.

use crate::{RngCore, SeedableRng};

/// The workspace's standard seeded generator: xoshiro256++ with SplitMix64
/// seed expansion.
///
/// The real `rand::rngs::StdRng` is a ChaCha block cipher; this stand-in
/// trades that for ~20 lines of arithmetic with excellent statistical
/// properties (Blackman & Vigna, 2018). Streams differ from the real
/// `StdRng`, but every use in this workspace only needs *seeded
/// determinism* — the same seed always yields the same experiment.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// SplitMix64 step, used to expand one 64-bit seed into the 256-bit state.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut state = seed;
        let s = [
            Self::splitmix64(&mut state),
            Self::splitmix64(&mut state),
            Self::splitmix64(&mut state),
            Self::splitmix64(&mut state),
        ];
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xoshiro_reference_vector() {
        // First outputs of xoshiro256++ from the all-distinct small state
        // {1, 2, 3, 4}, cross-checked against the reference C implementation.
        let mut rng = StdRng { s: [1, 2, 3, 4] };
        let first: Vec<u64> = (0..3).map(|_| rng.next_u64()).collect();
        assert_eq!(first, vec![41943041, 58720359, 3588806011781223]);
    }

    #[test]
    fn zero_seed_does_not_collapse() {
        let mut rng = StdRng::seed_from_u64(0);
        let outputs: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        assert!(outputs.iter().any(|&x| x != 0));
        let distinct: std::collections::HashSet<_> = outputs.iter().collect();
        assert_eq!(distinct.len(), outputs.len());
    }
}
