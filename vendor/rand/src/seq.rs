//! Slice sampling helpers, mirroring `rand::seq`.

use crate::Rng;

/// Extension methods on slices for random reordering and selection.
pub trait SliceRandom {
    /// The element type of the slice.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// Returns a uniformly chosen element, or `None` when empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            let i = (rng.next_u64() % self.len() as u64) as usize;
            Some(&self[i])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn choose_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(23);
        let v = [10, 20, 30];
        for _ in 0..50 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
