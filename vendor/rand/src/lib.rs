//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no network access, so the
//! handful of `rand` 0.8 APIs the workspace actually uses are reimplemented
//! here as a local path dependency with the same crate name:
//!
//! * [`RngCore`] and the extension trait [`Rng`] (`gen`, `gen_range`,
//!   `gen_bool`), blanket-implemented for every `RngCore`;
//! * [`SeedableRng::seed_from_u64`];
//! * [`rngs::StdRng`] — here a xoshiro256++ generator seeded through
//!   SplitMix64 (deterministic, high-quality, dependency-free; it does *not*
//!   produce the same streams as the real `StdRng`, which is fine because the
//!   workspace only relies on seeded determinism, not on a specific stream);
//! * [`seq::SliceRandom`] (`shuffle`, `choose`).
//!
//! Everything is statistical-quality rather than cryptographic-quality, which
//! matches how the workspace uses randomness (synthetic data, Monte Carlo
//! checks, benchmarks).
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::{Rng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let u: f64 = rng.gen();
//! assert!((0.0..1.0).contains(&u));
//! let k = rng.gen_range(0..10);
//! assert!(k < 10);
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod rngs;
pub mod seq;

/// A low-level source of uniformly distributed random 64-bit words.
///
/// Mirrors `rand::RngCore` closely enough for the workspace: everything else
/// ([`Rng`], the samplers in `pdm-linalg`) is derived from [`next_u64`].
///
/// [`next_u64`]: RngCore::next_u64
pub trait RngCore {
    /// Returns the next uniformly distributed 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Returns the next uniformly distributed 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with uniformly distributed bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&word[..n]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Convenience extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`f64` ∈ [0, 1); `bool` fair; integers uniform over their full range).
    fn gen<T: StandardDist>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range` (half-open `a..b` or inclusive `a..=b`).
    ///
    /// Panics when the range is empty, like the real `rand`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to [0, 1]).
    fn gen_bool(&mut self, p: f64) -> bool {
        f64_from_bits(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction of a generator from a 64-bit seed.
///
/// Mirrors the only constructor of `rand::SeedableRng` the workspace uses.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Converts a random word into a uniform `f64` in `[0, 1)` using the top
/// 53 bits, the standard double-precision recipe.
#[inline]
fn f64_from_bits(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types samplable by [`Rng::gen`] from their "standard" distribution.
pub trait StandardDist: Sized {
    /// Draws one standard-distributed value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardDist for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        f64_from_bits(rng.next_u64())
    }
}

impl StandardDist for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardDist for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardDist for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardDist for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Ranges usable with [`Rng::gen_range`], mirroring `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + f64_from_bits(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + f32::sample_standard(rng) * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_f64_is_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_range_covers_integer_ranges() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let v = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&v));
            let w = rng.gen_range(3..=40u32);
            assert!((3..=40).contains(&w));
        }
    }

    #[test]
    fn gen_range_f64_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1_000 {
            let x = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_edge_probabilities() {
        let mut rng = StdRng::seed_from_u64(11);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn works_through_dyn_rng_core() {
        let mut rng = StdRng::seed_from_u64(5);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let u: f64 = f64::sample_standard(dyn_rng);
        assert!((0.0..1.0).contains(&u));
    }
}
