//! Offline stand-in for the [`proptest`](https://proptest-rs.github.io/proptest/)
//! property-testing framework.
//!
//! The build environment has no registry access, so this crate re-implements
//! the subset of proptest's API that the workspace's property suites use:
//!
//! * the [`proptest!`] macro (including the `#![proptest_config(..)]` inner
//!   attribute) generating one `#[test]` per property;
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`];
//! * [`Strategy`] implemented for `f64`/integer ranges, with
//!   [`Strategy::prop_filter`] and [`collection::vec`].
//!
//! Differences from the real proptest, by design:
//!
//! * **no shrinking** — a failing case reports its inputs but is not
//!   minimised;
//! * **deterministic generation** — each property derives its RNG seed from
//!   its own function name, so failures reproduce exactly across runs;
//! * rejection sampling (`prop_assume!` / `prop_filter`) aborts after
//!   256 × `cases` rejected samples, like proptest's global reject limit.
//!
//! ```
//! use proptest::prelude::*;
//!
//! // In a test module each property would also carry `#[test]`; it is left
//! // off here so this doc example can invoke the generated fn directly.
//! proptest! {
//!     #![proptest_config(ProptestConfig::with_cases(32))]
//!     fn addition_commutes(a in -10.0f64..10.0, b in -10.0f64..10.0) {
//!         prop_assert!((a + b - (b + a)).abs() < 1e-12);
//!     }
//! }
//! # addition_commutes();
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod collection;

/// Deterministic SplitMix64 generator driving all strategies.
///
/// Public so the [`proptest!`] expansion can use it; not part of the emulated
/// proptest API.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Derives a generator from a test name (FNV-1a hash of the bytes), so
    /// each property gets its own reproducible stream.
    pub fn from_name(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: hash }
    }

    /// Next raw 64-bit word (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `usize` in `[lo, hi)`; panics when the range is empty.
    pub fn next_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "cannot sample from empty range {lo}..{hi}");
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }
}

/// Why a single generated test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the property is violated.
    Fail(String),
    /// The case was rejected (`prop_assume!` filter); try another sample.
    Reject(String),
}

/// Result type the [`proptest!`]-generated case closures return.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Per-property configuration; only `cases` is emulated.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted samples each property must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` accepted samples per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A recipe for generating random values of an associated type.
///
/// Mirrors `proptest::strategy::Strategy` minus shrinking: generation is a
/// single function from an RNG to `Option<Value>` (`None` meaning the sample
/// was rejected by a filter).
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one sample; `None` when a filter rejected it.
    fn new_value(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Keeps only samples for which `filter` returns `true`.
    ///
    /// `reason` is reported when rejection sampling exhausts its budget.
    fn prop_filter<F>(self, reason: impl Into<String>, filter: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            filter,
        }
    }
}

/// Strategy adaptor produced by [`Strategy::prop_filter`].
#[derive(Clone, Debug)]
pub struct Filter<S, F> {
    inner: S,
    #[allow(dead_code)]
    reason: String,
    filter: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> Option<S::Value> {
        let value = self.inner.new_value(rng)?;
        (self.filter)(&value).then_some(value)
    }
}

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> Option<f64> {
        assert!(
            self.start < self.end,
            "cannot sample from empty range {self:?}"
        );
        Some(self.start + rng.next_f64() * (self.end - self.start))
    }
}

macro_rules! impl_strategy_for_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(
                    self.start < self.end,
                    "cannot sample from empty range {self:?}"
                );
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                Some((self.start as i128 + draw as i128) as $t)
            }
        }
    )*};
}

impl_strategy_for_int_range!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

/// Everything a property-test module needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy,
        TestCaseError, TestCaseResult,
    };

    /// Path alias so `prop::collection::vec(...)` resolves as it does with
    /// the real proptest prelude.
    pub use crate as prop;
}

/// Fails the current test case with a formatted message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {{
        // Bind first so clippy's `neg_cmp_op_on_partial_ord` does not fire on
        // caller comparisons expanded into `!(...)`; the braces keep the
        // macro usable in expression position like the real proptest's.
        let cond: bool = $cond;
        if !cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    }};
}

/// Fails the current test case unless the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: {} == {} ({:?} vs {:?})",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
}

/// Rejects the current sample (without failing the property) unless `cond`
/// holds; the runner draws a fresh sample instead.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {{
        let cond: bool = $cond;
        if !cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` that runs the body over `cases` accepted samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: munches one `fn` item at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $config:expr;) => {};
    (config = $config:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            let mut accepted: u32 = 0;
            let mut rejected: u32 = 0;
            while accepted < config.cases {
                assert!(
                    rejected <= config.cases.saturating_mul(256),
                    "proptest {}: too many rejected samples ({} accepted, {} rejected)",
                    stringify!($name),
                    accepted,
                    rejected
                );
                $(
                    let $arg = match $crate::Strategy::new_value(&($strategy), &mut rng) {
                        ::core::option::Option::Some(value) => value,
                        ::core::option::Option::None => {
                            rejected += 1;
                            continue;
                        }
                    };
                )*
                let case_inputs = format!(
                    concat!($("  ", stringify!($arg), " = {:?}\n",)*),
                    $(&$arg,)*
                );
                let outcome: $crate::TestCaseResult =
                    (|| { $body ::core::result::Result::Ok(()) })();
                match outcome {
                    ::core::result::Result::Ok(()) => accepted += 1,
                    ::core::result::Result::Err($crate::TestCaseError::Reject(_)) => {
                        rejected += 1;
                    }
                    ::core::result::Result::Err($crate::TestCaseError::Fail(message)) => {
                        panic!(
                            "proptest {} failed after {} passing cases: {}\ninputs:\n{}",
                            stringify!($name),
                            accepted,
                            message,
                            case_inputs
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in -3.0f64..3.0, n in 1usize..10) {
            prop_assert!((-3.0..3.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn assume_rejects_without_failing(x in 0.0f64..1.0) {
            prop_assume!(x > 0.5);
            prop_assert!(x > 0.5);
        }

        #[test]
        fn filtered_vecs_obey_the_filter(
            v in prop::collection::vec(0.0f64..1.0, 2..6)
                .prop_filter("nonempty mass", |v| v.iter().sum::<f64>() > 0.1),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().sum::<f64>() > 0.1);
        }
    }

    #[test]
    fn failing_property_panics_with_inputs() {
        // No inner #[test] attribute: this property is invoked by hand so we
        // can catch its panic.
        proptest! {
            fn always_fails(x in 0.0f64..1.0) {
                prop_assert!(x > 2.0, "x was {x}");
            }
        }
        let err = std::panic::catch_unwind(always_fails).unwrap_err();
        let message = err.downcast_ref::<String>().unwrap();
        assert!(message.contains("always_fails"), "got: {message}");
        assert!(message.contains("x ="), "got: {message}");
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        let mut a = crate::TestRng::from_name("same");
        let mut b = crate::TestRng::from_name("same");
        let mut c = crate::TestRng::from_name("other");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
