//! Collection strategies, mirroring `proptest::collection`.

use crate::{Strategy, TestRng};

/// An inclusive-exclusive length range for [`vec()`], convertible from a fixed
/// `usize` or a `usize` range like the real proptest `SizeRange`.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            lo: exact,
            hi: exact + 1,
        }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(range: core::ops::Range<usize>) -> Self {
        assert!(range.start < range.end, "empty size range {range:?}");
        SizeRange {
            lo: range.start,
            hi: range.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(range: core::ops::RangeInclusive<usize>) -> Self {
        assert!(range.start() <= range.end(), "empty size range {range:?}");
        SizeRange {
            lo: *range.start(),
            hi: *range.end() + 1,
        }
    }
}

/// Strategy generating `Vec`s whose elements come from `element` and whose
/// length is uniform over `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec()`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
        let len = if self.size.lo + 1 == self.size.hi {
            self.size.lo
        } else {
            rng.next_usize(self.size.lo, self.size.hi)
        };
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_and_ranged_lengths() {
        let mut rng = TestRng::from_name("vec-lengths");
        let exact = vec(0.0f64..1.0, 4usize);
        assert_eq!(exact.new_value(&mut rng).unwrap().len(), 4);
        let ranged = vec(0.0f64..1.0, 2..6);
        for _ in 0..50 {
            let len = ranged.new_value(&mut rng).unwrap().len();
            assert!((2..6).contains(&len));
        }
    }

    #[test]
    fn rejected_element_rejects_the_whole_vec() {
        let mut rng = TestRng::from_name("vec-reject");
        let never = (0.0f64..1.0).prop_filter("impossible", |_| false);
        assert!(vec(never, 3usize).new_value(&mut rng).is_none());
    }

    #[test]
    fn nested_vec_of_filtered_vecs() {
        let mut rng = TestRng::from_name("vec-nested");
        let inner = vec(-1.0f64..1.0, 3usize).prop_filter("non-degenerate", |v| {
            v.iter().map(|x| x * x).sum::<f64>() > 0.01
        });
        let outer = vec(inner, 1..5);
        let mut produced = 0;
        for _ in 0..100 {
            if let Some(v) = outer.new_value(&mut rng) {
                produced += 1;
                assert!(!v.is_empty() && v.len() < 5);
                for row in &v {
                    assert_eq!(row.len(), 3);
                }
            }
        }
        assert!(produced > 50);
    }
}
