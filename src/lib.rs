//! # personal-data-pricing
//!
//! Umbrella crate for the reproduction of Niu et al., *Online Pricing with
//! Reserve Price Constraint for Personal Data Markets* (ICDE 2020).
//!
//! It re-exports the workspace crates under one roof so applications can
//! depend on a single crate:
//!
//! * [`pricing`] — the contextual dynamic pricing mechanism (Algorithms 1/2),
//!   market value models, regret accounting, the simulation loop, and the
//!   drift layer (drifting environments, the surprisal drift detector, and
//!   the restart/discounted drift-aware mechanism policies).
//! * [`market`] — the personal-data-market substrate (owners, queries,
//!   privacy leakage, tanh compensations, broker, consumers).
//! * [`auction`] — the multi-bidder auction market: eager second-price
//!   clearing with personalized reserves (static, session-learned, or
//!   empirical data-driven), seeded bidder populations.
//! * [`service`] — the sharded, concurrent multi-tenant serving engine
//!   (stable tenant→shard routing, submit/drain, bounded admission,
//!   snapshots, per-shard metrics, mixed posted-price + auction tenants).
//! * [`ellipsoid`] — the knowledge-set machinery (Löwner–John ellipsoid,
//!   exact polytope, interval).
//! * [`datasets`] — seeded synthetic stand-ins for MovieLens, Airbnb, Avazu,
//!   and a loan-application scenario.
//! * [`learners`] — OLS, FTRL-Proximal, encoders, PCA.
//! * [`linalg`] — the dense linear-algebra substrate everything is built on.
//!
//! See `examples/quickstart.rs` for a five-minute tour, and the `pdm-bench`
//! crate for the binaries that regenerate every table and figure of the
//! paper's evaluation.
//!
//! ## Quickstart
//!
//! Price a short stream of products on a synthetic linear market with
//! reserve prices, using Algorithm 2 (ellipsoid knowledge set + reserve
//! constraint + uncertainty buffer):
//!
//! ```
//! use personal_data_pricing::prelude::*;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let rounds = 500;
//! let env = SyntheticLinearEnvironment::builder(8)
//!     .rounds(rounds)
//!     .reserve_fraction(0.7)
//!     .noise(NoiseModel::Gaussian { std_dev: 0.01 })
//!     .build(&mut rng);
//!
//! let config = PricingConfig::for_environment(&env, rounds)
//!     .with_reserve(true)
//!     .with_uncertainty(0.01);
//! let mechanism = EllipsoidPricing::new(LinearModel::new(8), config);
//!
//! let outcome = Simulation::new(env, mechanism).run(&mut rng);
//! assert_eq!(outcome.report.rounds, rounds);
//! assert!(outcome.cumulative_regret().is_finite());
//! assert!(outcome.cumulative_regret() >= 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use pdm_auction as auction;
pub use pdm_datasets as datasets;
pub use pdm_ellipsoid as ellipsoid;
pub use pdm_learners as learners;
pub use pdm_linalg as linalg;
pub use pdm_market as market;
pub use pdm_obs as obs;
pub use pdm_pricing as pricing;
pub use pdm_service as service;

/// The most commonly used types, re-exported flat.
pub mod prelude {
    pub use pdm_auction::{
        clear_second_price, AuctionLedger, AuctionMarket, AuctionMarketConfig, AuctionResult,
        EmpiricalReserve, ReserveSetter, StaticReserve, ValuationDistribution,
    };
    pub use pdm_market::{
        CompensationContract, ConsumerPool, DataBroker, DataOwner, Market, MarketEnvironment,
        QueryGenerator,
    };
    pub use pdm_pricing::prelude::*;
    pub use pdm_service::{
        AuctionPolicy, AuctionRequest, MarketKind, MarketService, OutcomeReport, QueryRequest,
        ServiceConfig, TenantConfig, TenantId,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_exposes_the_core_types() {
        use crate::prelude::*;
        // A compile-time smoke test: the core types are nameable from the
        // umbrella prelude.
        let _config = PricingConfig::new(1.0, 10);
        let _baseline = ReservePriceBaseline::new();
    }
}
