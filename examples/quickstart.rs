//! Quickstart: price a stream of products with the ellipsoid mechanism and
//! compare it with the risk-averse baseline.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use personal_data_pricing::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);

    // A 10-feature linear market with reserve prices and mild uncertainty.
    let rounds = 5_000;
    let env = SyntheticLinearEnvironment::builder(10)
        .rounds(rounds)
        .noise(NoiseModel::Gaussian { std_dev: 0.01 })
        .build(&mut rng);
    let baseline_env = env.clone();

    // Algorithm 2: reserve price constraint + uncertainty buffer.
    let config = PricingConfig::for_environment(&env, rounds)
        .with_reserve(true)
        .with_uncertainty(0.01);
    let mechanism = EllipsoidPricing::new(LinearModel::new(10), config);

    let outcome = Simulation::new(env, mechanism).run(&mut rng);
    let baseline = Simulation::new(baseline_env, ReservePriceBaseline::new()).run(&mut rng);

    println!("mechanism: {}", outcome.mechanism_name);
    println!(
        "  cumulative regret {:.1}, regret ratio {:.2}%, acceptance rate {:.1}%",
        outcome.cumulative_regret(),
        outcome.regret_ratio() * 100.0,
        outcome.report.acceptance_rate() * 100.0
    );
    println!(
        "  per-round latency {:.1} µs, knowledge-set memory {:.1} KB",
        outcome.round_latency_micros.mean(),
        outcome.memory_footprint_bytes as f64 / 1024.0
    );
    println!("baseline: {}", baseline.mechanism_name);
    println!(
        "  cumulative regret {:.1}, regret ratio {:.2}%",
        baseline.cumulative_regret(),
        baseline.regret_ratio() * 100.0
    );
    assert!(outcome.regret_ratio() < baseline.regret_ratio());
    println!("the learning mechanism extracts the markup the baseline leaves on the table.");
}
