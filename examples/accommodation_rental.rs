//! Accommodation rental (the paper's hospitality-service extension): fit a
//! hedonic log-linear model to Airbnb-style listings, then price bookings
//! online with the reserve set by the host.
//!
//! ```text
//! cargo run --release --example accommodation_rental
//! ```

use personal_data_pricing::datasets::AirbnbGenerator;
use personal_data_pricing::learners::{CategoricalEncoder, LinearRegression};
use personal_data_pricing::linalg::Vector;
use personal_data_pricing::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. A seeded synthetic listing inventory (stand-in for the Kaggle data).
    let listings = AirbnbGenerator::new(6_000, 0.4)
        .with_prototypes(10)
        .generate(3);

    // 2. A compact hedonic design: city code + core numeric fields + 1.
    let mut city_enc = CategoricalEncoder::new();
    city_enc.fit(&listings.iter().map(|l| l.city.clone()).collect::<Vec<_>>());
    let rows: Vec<Vector> = listings
        .iter()
        .map(|l| {
            Vector::from_slice(&[
                city_enc.encode(&l.city),
                f64::from(l.bedrooms),
                l.bathrooms,
                f64::from(l.accommodates),
                f64::from(l.amenities_count) / 10.0,
                l.review_score / 100.0,
                1.0,
            ])
        })
        .collect();
    let targets: Vec<f64> = listings.iter().map(|l| l.log_price).collect();
    let fit = LinearRegression::fit(&rows, &targets, false, 1e-6).expect("well-posed design");
    println!(
        "hedonic fit: MSE {:.3} on {} listings",
        fit.mse(&rows, &targets),
        rows.len()
    );

    // 3. Replay the listings as booking requests priced under the log-linear
    //    model; the host's reserve is 70 % of the hedonic value in log space.
    let theta = fit.weights().clone();
    let rounds: Vec<Round> = rows
        .iter()
        .map(|row| {
            let link = row.dot(&theta).expect("dimensions match");
            Round {
                features: row.clone(),
                reserve_price: (0.7 * link).exp(),
                market_value: link.exp(),
            }
        })
        .collect();
    let feature_bound = rows.iter().map(Vector::norm).fold(1.0, f64::max);
    let env = ReplayEnvironment::new(rounds, 2.0 * theta.norm(), feature_bound);

    let horizon = env.horizon();
    let config = PricingConfig::for_environment(&env, horizon).with_reserve(true);
    let mechanism = EllipsoidPricing::new(LogLinearModel::new(7), config);
    let mut rng = StdRng::seed_from_u64(5);
    let outcome = Simulation::new(env, mechanism).run(&mut rng);

    println!(
        "priced {} booking requests: regret ratio {:.2}%, acceptance rate {:.1}%",
        outcome.report.rounds,
        outcome.regret_ratio() * 100.0,
        outcome.report.acceptance_rate() * 100.0
    );
    println!(
        "average nightly price posted: {:.0} (values average {:.0})",
        outcome.report.posted_price_stats.mean(),
        outcome.report.market_value_stats.mean()
    );
}
