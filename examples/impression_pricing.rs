//! Impression pricing (the paper's online-advertising extension): learn a CTR
//! model with FTRL-Proximal over hashed features, then post prices for
//! impressions whose market value is their CTR.
//!
//! ```text
//! cargo run --release --example impression_pricing
//! ```

use personal_data_pricing::datasets::AvazuGenerator;
use personal_data_pricing::learners::{FtrlProximal, HashingEncoder};
use personal_data_pricing::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let dim = 128;
    let (impressions, _truth) = AvazuGenerator::new(30_000, 22, -1.8).generate(9);

    // 1. Train the CTR model on the first 80 % of the log.
    let encoder = HashingEncoder::new(dim, 42);
    let mut ctr_model = FtrlProximal::new(dim, 0.1, 1.0, 1.0, 1.0);
    let cut = impressions.len() * 4 / 5;
    for impression in &impressions[..cut] {
        let mut tokens = impression.tokens();
        tokens.push("bias".to_owned());
        ctr_model.update(&encoder.encode(&tokens), impression.clicked);
    }
    let theta = ctr_model.weights();
    // The shared threshold separates the planted informative tokens from
    // hash-collision noise on this synthetic log.
    println!(
        "FTRL-Proximal learnt {} significant weights out of {dim} hashed features",
        ctr_model.num_significant_weights(pdm_bench::avazu_pipeline::SIGNIFICANT_WEIGHT)
    );

    // 2. Price the remaining impressions: market value = predicted CTR.
    let rounds: Vec<Round> = impressions[cut..]
        .iter()
        .map(|impression| {
            let mut tokens = impression.tokens();
            tokens.push("bias".to_owned());
            let features = encoder.encode(&tokens);
            let link = features.dot(&theta).expect("dimensions match");
            Round {
                features,
                reserve_price: 0.0,
                market_value: 1.0 / (1.0 + (-link).exp()),
            }
        })
        .collect();
    let feature_bound = rounds.iter().map(|r| r.features.norm()).fold(1.0, f64::max);
    let env = ReplayEnvironment::new(rounds, 2.0 * theta.norm().max(1.0), feature_bound);

    let horizon = env.horizon();
    let config = PricingConfig::for_environment(&env, horizon).with_reserve(false);
    let mechanism = EllipsoidPricing::new(LogisticModel::new(dim), config);
    let mut rng = StdRng::seed_from_u64(2);
    let outcome = Simulation::new(env, mechanism).run(&mut rng);

    println!(
        "priced {} impressions: regret ratio {:.2}%, mean posted CTR-price {:.4}",
        outcome.report.rounds,
        outcome.regret_ratio() * 100.0,
        outcome.report.posted_price_stats.mean()
    );
}
