//! Loan application pricing (the paper's financial-services extension): a
//! bank quotes interest rates to arriving borrowers; the "reserve" is the
//! bank's funding cost, and a rejected quote is a lost customer.
//!
//! ```text
//! cargo run --release --example loan_application
//! ```

use personal_data_pricing::datasets::LoanGenerator;
use personal_data_pricing::linalg::Vector;
use personal_data_pricing::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let applications = LoanGenerator::new(8_000, 0.05).generate(13);

    // Log-log style features: logs of the borrower's key quantities plus an
    // intercept.  The "market value" of an application is the highest rate
    // the borrower would still accept (their outside option), here the
    // planted ground-truth rate.
    let rounds: Vec<Round> = applications
        .iter()
        .map(|app| {
            let features = Vector::from_slice(&[
                app.credit_score.ln(),
                app.annual_income.ln(),
                app.loan_amount.ln(),
                app.debt_to_income,
                app.employment_years / 10.0,
                1.0,
            ]);
            Round {
                features,
                // The bank will not lend below a 3.5 % funding floor.
                reserve_price: 0.035,
                market_value: app.interest_rate,
            }
        })
        .collect();
    let feature_bound = rounds.iter().map(|r| r.features.norm()).fold(1.0, f64::max);
    let env = ReplayEnvironment::new(rounds, 5.0, feature_bound);

    let horizon = env.horizon();
    let config = PricingConfig::for_environment(&env, horizon).with_reserve(true);
    let mechanism = EllipsoidPricing::new(LinearModel::new(6), config);
    let mut rng = StdRng::seed_from_u64(17);
    let outcome = Simulation::new(env, mechanism).run(&mut rng);

    println!(
        "quoted {} loan applications: acceptance rate {:.1}%, regret ratio {:.2}%",
        outcome.report.rounds,
        outcome.report.acceptance_rate() * 100.0,
        outcome.regret_ratio() * 100.0
    );
    println!(
        "average quoted rate {:.2}% vs average acceptable rate {:.2}%",
        outcome.report.posted_price_stats.mean() * 100.0,
        outcome.report.market_value_stats.mean() * 100.0
    );
}
