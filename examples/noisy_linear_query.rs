//! End-to-end personal data market (Fig. 2 of the paper): data owners with
//! rating records, differential-privacy leakage quantification, tanh
//! compensations, and the ellipsoid posted-price mechanism charging the
//! arriving data consumers for noisy linear queries.
//!
//! ```text
//! cargo run --release --example noisy_linear_query
//! ```

use personal_data_pricing::market::query::QueryWeightDistribution;
use personal_data_pricing::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(11);
    let num_owners = 300;
    let feature_dim = 20;

    // Data owners and their compensation contracts.
    let owners: Vec<DataOwner> = (0..num_owners)
        .map(|i| DataOwner::new(i as u64, vec![1.0 + (i % 5) as f64, 2.5], 5.0))
        .collect();
    let contracts = CompensationContract::sample_population(&mut rng, num_owners, 1.0, 1.0);
    let broker = DataBroker::new(owners, contracts, feature_dim);

    // Online data consumers issuing customised noisy linear queries.
    let generator = QueryGenerator::new(num_owners, QueryWeightDistribution::Gaussian);
    let consumers = ConsumerPool::sample(&mut rng, feature_dim, NoiseModel::None);

    // The broker prices with Algorithm 1 (reserve price = total compensation).
    let rounds = 3_000;
    let config = PricingConfig::new(2.0 * (feature_dim as f64).sqrt(), rounds).with_reserve(true);
    let mechanism = EllipsoidPricing::new(LinearModel::new(feature_dim), config);

    let mut market = Market::new(broker, generator, consumers, mechanism);
    let report = market.run(&mut rng, rounds);

    println!("personal data market after {} rounds:", report.rounds);
    println!("  sales                {}", report.sales);
    println!("  gross revenue        {:.1}", report.gross_revenue);
    println!(
        "  compensations paid   {:.1}",
        report.total_compensation_paid
    );
    println!("  net broker revenue   {:.1}", report.net_revenue);
    println!("  cumulative regret    {:.1}", report.cumulative_regret);
    println!(
        "  regret ratio         {:.2}%",
        report.regret_ratio() * 100.0
    );
    assert!(
        report.net_revenue > 0.0,
        "the reserve constraint guarantees a non-negative margin"
    );
}
