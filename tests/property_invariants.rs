//! Property-based tests (proptest) on the core invariants of the knowledge
//! sets, the regret function, and the posted-price mechanism.

use pdm_ellipsoid::{CutOutcome, Ellipsoid, Interval, KnowledgeSet, Polytope};
use pdm_linalg::Vector;
use personal_data_pricing::prelude::*;
use proptest::prelude::*;

/// Strategy: a feature direction with entries in [-1, 1], not all ~zero.
fn direction(dim: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1.0f64..1.0, dim).prop_filter("direction must be non-degenerate", |v| {
        v.iter().map(|x| x * x).sum::<f64>().sqrt() > 0.1
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Eq. (1): regret is never negative when the value is non-negative, is
    /// zero whenever the reserve exceeds the value, and never exceeds the
    /// value.
    #[test]
    fn regret_bounds(
        posted in 0.0f64..10.0,
        value in 0.0f64..10.0,
        reserve in 0.0f64..10.0,
    ) {
        let r = single_round_regret(posted, value, reserve);
        prop_assert!(r >= 0.0);
        prop_assert!(r <= value + 1e-12);
        if reserve > value {
            prop_assert_eq!(r, 0.0);
        }
    }

    /// The reserve constraint can never increase the single-round regret
    /// (Lemma 1), for any knowledge state summarised by the pure price.
    #[test]
    fn lemma1_reserve_never_hurts_single_round(
        pure_price in 0.0f64..10.0,
        value in 0.0f64..10.0,
        reserve in 0.0f64..10.0,
    ) {
        let constrained = pure_price.max(reserve);
        let with_reserve = single_round_regret(constrained, value, reserve);
        let without = single_round_regret(pure_price, value, 0.0);
        prop_assert!(with_reserve <= without + 1e-12);
    }

    /// Support bounds of the ellipsoid always enclose the value of any member
    /// point, and cuts consistent with a member never expel it.
    #[test]
    fn ellipsoid_member_stays_inside_under_consistent_cuts(
        dirs in prop::collection::vec(direction(3), 1..8),
        theta in prop::collection::vec(-0.5f64..0.5, 3),
    ) {
        let theta = Vector::from_vec(theta);
        let mut ellipsoid = Ellipsoid::ball(3, 1.0);
        prop_assume!(ellipsoid.contains(&theta));
        for d in dirs {
            let x = Vector::from_vec(d);
            let (lo, hi) = ellipsoid.support_bounds(&x);
            let truth = x.dot(&theta).unwrap();
            prop_assert!(lo <= truth + 1e-7 && truth <= hi + 1e-7);
            // Post the midpoint and give truthful feedback.
            let mid = 0.5 * (lo + hi);
            if mid <= truth {
                ellipsoid.cut_above(&x, mid);
            } else {
                ellipsoid.cut_below(&x, mid);
            }
            prop_assert!(ellipsoid.contains(&theta));
        }
    }

    /// The interval knowledge set shrinks monotonically and bisection always
    /// keeps the true scalar weight.
    #[test]
    fn interval_bisection_never_loses_the_target(
        target in -1.9f64..1.9,
        steps in 1usize..40,
    ) {
        let mut interval = Interval::new(-2.0, 2.0);
        let x = Vector::from_slice(&[1.0]);
        let mut last_width = interval.width();
        for _ in 0..steps {
            let mid = interval.midpoint();
            let outcome = if mid <= target {
                interval.cut_above(&x, mid)
            } else {
                interval.cut_below(&x, mid)
            };
            let emptied = matches!(outcome, CutOutcome::WouldBeEmpty { .. });
            prop_assert!(!emptied);
            prop_assert!(interval.contains(&Vector::from_slice(&[target])));
            prop_assert!(interval.width() <= last_width + 1e-12);
            last_width = interval.width();
        }
    }

    /// The ellipsoid relaxation always encloses the exact polytope: its
    /// support interval contains the polytope's after identical cuts.
    #[test]
    fn ellipsoid_bounds_enclose_polytope_bounds(
        dirs in prop::collection::vec(direction(2), 1..5),
        thresholds in prop::collection::vec(-0.8f64..0.8, 5),
    ) {
        let mut ellipsoid = Ellipsoid::enclosing_box(&[-1.0, -1.0], &[1.0, 1.0]);
        let mut polytope = Polytope::from_box(&[-1.0, -1.0], &[1.0, 1.0]).unwrap();
        for (i, d) in dirs.iter().enumerate() {
            let x = Vector::from_slice(d);
            let h = thresholds[i % thresholds.len()];
            // Apply the same halfspace to both representations (when valid).
            let poly_outcome = polytope.cut_below(&x, h);
            if poly_outcome.is_updated() {
                ellipsoid.cut_below(&x, h);
            }
            let (plo, phi) = polytope.support_bounds(&x);
            let (elo, ehi) = ellipsoid.support_bounds(&x);
            prop_assert!(elo <= plo + 1e-6, "ellipsoid lower bound {elo} above exact {plo}");
            prop_assert!(ehi >= phi - 1e-6, "ellipsoid upper bound {ehi} below exact {phi}");
        }
    }

    /// The mechanism's quotes always honour the reserve price (when enabled)
    /// and always lie within the knowledge-set bounds pushed through the
    /// link function.
    #[test]
    fn quotes_honour_reserve_and_bounds(
        features in direction(4),
        reserve in 0.0f64..1.5,
    ) {
        let config = PricingConfig::new(2.0, 1_000).with_reserve(true);
        let mut mechanism = EllipsoidPricing::new(LinearModel::new(4), config);
        let x = Vector::from_vec(features);
        let quote = mechanism.quote(&x, reserve);
        prop_assert!(quote.posted_price >= reserve - 1e-9);
        match quote.kind {
            QuoteKind::Exploratory | QuoteKind::Conservative => {
                prop_assert!(quote.link_price <= quote.upper_bound + 1e-9);
            }
            QuoteKind::CertainNoSale => {
                prop_assert!(quote.reserve_link >= quote.upper_bound - 1e-9);
            }
            QuoteKind::Baseline => unreachable!("contextual mechanism never emits Baseline"),
        }
    }
}
