//! Smoke tests for the umbrella crate: every re-exported module resolves,
//! and a tiny end-to-end simulation through the re-exports behaves sanely.

use personal_data_pricing::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Every workspace crate is reachable through its umbrella alias: name one
/// type from each so a missing re-export fails to compile.
#[test]
fn umbrella_reexports_resolve() {
    use personal_data_pricing::{datasets, ellipsoid, learners, linalg, market, pricing};

    let rows = [
        linalg::Vector::from_slice(&[1.0, 2.0]),
        linalg::Vector::from_slice(&[3.0, 4.0]),
    ];
    let _: ellipsoid::Ellipsoid = ellipsoid::Ellipsoid::ball(2, 1.0);
    let _: learners::StandardScaler =
        learners::StandardScaler::fit(&rows).expect("well-formed rows must fit");
    let _generator = datasets::MovieLensGenerator::new(10, 5, 3);
    let _: pricing::PricingConfig = pricing::PricingConfig::new(1.0, 10);
    let _: market::CompensationContract = market::CompensationContract::new(1.0, 1.0);
}

/// The flat prelude exposes the core types of both the pricing and the
/// market layer under one import.
#[test]
fn prelude_covers_both_layers() {
    let _config = PricingConfig::new(1.0, 10);
    let _baseline = ReservePriceBaseline::new();
    let _noise = NoiseModel::None;
    let _contract = CompensationContract::new(1.0, 1.0);
}

/// A seeded 100-round simulation through the umbrella crate completes all
/// rounds and produces finite, non-negative cumulative regret.
#[test]
fn seeded_simulation_produces_finite_nonnegative_regret() {
    let mut rng = StdRng::seed_from_u64(42);
    let rounds = 100;
    let env = SyntheticLinearEnvironment::builder(5)
        .rounds(rounds)
        .reserve_fraction(0.7)
        .noise(NoiseModel::Gaussian { std_dev: 0.01 })
        .build(&mut rng);

    let config = PricingConfig::for_environment(&env, rounds)
        .with_reserve(true)
        .with_uncertainty(0.01);
    let mechanism = EllipsoidPricing::new(LinearModel::new(5), config);

    let outcome = Simulation::new(env, mechanism).run(&mut rng);
    assert_eq!(outcome.report.rounds, rounds);
    let regret = outcome.cumulative_regret();
    assert!(
        regret.is_finite(),
        "cumulative regret must be finite: {regret}"
    );
    assert!(
        regret >= 0.0,
        "cumulative regret must be non-negative: {regret}"
    );
    assert!(
        outcome.regret_ratio().is_finite() && outcome.regret_ratio() >= 0.0,
        "regret ratio must be finite and non-negative"
    );
}
