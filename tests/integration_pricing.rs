//! Cross-crate integration tests: the full pipeline from data owners to
//! posted prices, plus the paper's qualitative claims.

use pdm_market::query::QueryWeightDistribution;
use pdm_pricing::environment::Environment;
use personal_data_pricing::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn market_environment(owners: usize, dim: usize, rounds: usize, seed: u64) -> MarketEnvironment {
    let mut rng = StdRng::seed_from_u64(seed);
    MarketEnvironment::synthetic(&mut rng, owners, dim, rounds, NoiseModel::None)
}

#[test]
fn full_stack_market_run_matches_paper_shape() {
    let rounds = 2_000;
    let dim = 12;
    let env_versions = [
        ("pure", false, 0.0),
        ("uncertainty", false, 0.01),
        ("reserve", true, 0.0),
        ("reserve+uncertainty", true, 0.01),
    ];
    let mut ratios = Vec::new();
    for (name, use_reserve, delta) in env_versions {
        let env = market_environment(150, dim, rounds, 71);
        let config = PricingConfig::for_environment(&env, rounds)
            .with_reserve(use_reserve)
            .with_uncertainty(delta);
        let mechanism = EllipsoidPricing::new(LinearModel::new(dim), config);
        let mut rng = StdRng::seed_from_u64(5);
        let outcome = Simulation::new(env, mechanism).run(&mut rng);
        assert_eq!(
            outcome.report.rounds, rounds,
            "{name} must complete all rounds"
        );
        ratios.push((name, outcome.regret_ratio()));
    }
    // Every version must clearly beat "sell nothing" (ratio 1.0) and end
    // below 35 % on this small market.
    for (name, ratio) in &ratios {
        assert!(*ratio < 0.35, "{name} regret ratio too high: {ratio}");
    }
}

#[test]
fn reserve_constraint_guarantees_non_negative_margin_every_round() {
    let mut rng = StdRng::seed_from_u64(9);
    let num_owners = 80;
    let dim = 6;
    let owners: Vec<DataOwner> = (0..num_owners)
        .map(|i| DataOwner::new(i as u64, vec![1.0 + (i % 4) as f64], 4.0))
        .collect();
    let contracts = CompensationContract::sample_population(&mut rng, num_owners, 1.0, 1.0);
    let broker = DataBroker::new(owners, contracts, dim);
    let generator = QueryGenerator::new(num_owners, QueryWeightDistribution::Uniform);
    let consumers = ConsumerPool::sample(&mut rng, dim, NoiseModel::None);
    let config = PricingConfig::new(2.0 * (dim as f64).sqrt(), 500).with_reserve(true);
    let mechanism = EllipsoidPricing::new(LinearModel::new(dim), config);
    let mut market = Market::new(broker, generator, consumers, mechanism);
    for _ in 0..500 {
        let outcome = market.trade_one(&mut rng);
        // With the reserve constraint every sale covers the compensations.
        assert!(outcome.net_revenue >= -1e-9, "negative margin: {outcome:?}");
        if outcome.accepted {
            assert!(outcome.posted_price >= outcome.reserve_price - 1e-9);
        }
    }
}

#[test]
fn knowledge_set_always_retains_the_true_weights_without_noise() {
    // Soundness of the whole learning loop: with δ_t = 0 the true weight
    // vector can never be cut away, whichever version runs.
    for (use_reserve, delta) in [(false, 0.0), (true, 0.0), (true, 0.05)] {
        let rounds = 800;
        let dim = 8;
        let mut rng = StdRng::seed_from_u64(31);
        let env = SyntheticLinearEnvironment::builder(dim)
            .rounds(rounds)
            .noise(NoiseModel::None)
            .build(&mut rng);
        let theta = env.theta_star().clone();
        let config = PricingConfig::for_environment(&env, rounds)
            .with_reserve(use_reserve)
            .with_uncertainty(delta);
        let mechanism = EllipsoidPricing::new(LinearModel::new(dim), config);
        let (_, mechanism, _) = Simulation::new(env, mechanism).run_with_state(&mut rng);
        use pdm_ellipsoid::KnowledgeSet;
        assert!(
            mechanism.knowledge().contains(&theta),
            "θ* expelled (reserve={use_reserve}, δ={delta})"
        );
    }
}

#[test]
fn one_dimensional_regret_grows_sublinearly() {
    // Theorem 3: doubling the horizon must not double the regret.
    let regret_at = |rounds: usize| {
        let mut rng = StdRng::seed_from_u64(2);
        let env = SyntheticLinearEnvironment::builder(1)
            .rounds(rounds)
            .build(&mut rng);
        let config = PricingConfig::for_environment(&env, rounds).with_reserve(false);
        let mechanism = OneDimPricing::one_dimensional(config);
        let mut run_rng = StdRng::seed_from_u64(3);
        Simulation::new(env, mechanism)
            .run(&mut run_rng)
            .cumulative_regret()
    };
    let r1 = regret_at(2_000);
    let r2 = regret_at(8_000);
    assert!(
        r2 < 2.0 * r1 + 1.0,
        "regret must grow sublinearly in T: R(8000) = {r2}, R(2000) = {r1}"
    );
}

#[test]
fn lemma8_ablation_blows_up_linearly() {
    let theta = pdm_linalg::Vector::from_slice(&[0.5, 0.5]);
    let blowup_at = |horizon: usize| {
        let adversary = AdversarialLemma8Environment::new(horizon, theta.clone());
        let base = PricingConfig::new(1.0, horizon).with_reserve(true);
        let mut correct = EllipsoidPricing::new(LinearModel::new(2), base);
        let correct_regret = adversary.play(&mut correct).cumulative_regret();
        let mut bad = EllipsoidPricing::new(LinearModel::new(2), base.with_conservative_cuts(true));
        let bad_regret = adversary.play(&mut bad).cumulative_regret();
        (correct_regret, bad_regret)
    };
    let (correct_small, bad_small) = blowup_at(500);
    let (correct_large, bad_large) = blowup_at(4_000);
    // In exact arithmetic the misbehaving variant suffers Ω(T) regret; in f64
    // the orthogonal-axis expansion saturates once the cut axis reaches the
    // numerical floor, so the observable effect is a large constant-factor
    // blow-up at every horizon (see EXPERIMENTS.md, experiment E8).
    assert!(
        bad_small > 1.5 * correct_small,
        "expected a clear blow-up at T=500: correct {correct_small}, misbehaving {bad_small}"
    );
    assert!(
        bad_large > 1.5 * correct_large,
        "expected a clear blow-up at T=4000: correct {correct_large}, misbehaving {bad_large}"
    );
}

#[test]
fn market_environment_round_features_are_normalised_and_nonnegative() {
    let mut env = market_environment(60, 10, 50, 5);
    let mut rng = StdRng::seed_from_u64(1);
    while let Some(round) = env.next_round(&mut rng) {
        assert!((round.features.norm() - 1.0).abs() < 1e-9);
        assert!(round.features.iter().all(|x| *x >= 0.0));
        assert!(
            round.reserve_price >= 1.0 - 1e-9,
            "reserve is the sum of a unit-norm non-negative vector"
        );
    }
}
