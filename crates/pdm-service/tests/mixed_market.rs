//! Mixed-market integration: one service serving posted-price tenants and
//! auction tenants (all three reserve policies) side by side.
//!
//! The load-bearing contracts, each pinned bit-for-bit:
//!
//! * mixed traffic computes the same values for any drain worker count;
//! * a snapshot of a mixed service restores to a service that continues
//!   **bit-identically** — including the session-learned knowledge sets
//!   *and* the empirical setter's bid-history window;
//! * the service's auction arithmetic equals a serial replay through the
//!   same [`TenantState::serve_auction`] path.

use pdm_auction::{AuctionMarket, AuctionMarketConfig, ValuationDistribution};
use pdm_linalg::{sampling, Json, Vector};
use pdm_service::{
    AuctionPolicy, AuctionRequest, DriftPolicy, MarketService, OutcomeReport, Payload,
    PrivacyParams, QueryRequest, ServiceConfig, TenantConfig, TenantId, TenantState,
    SNAPSHOT_SCHEMA_VERSION,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

const DIM: usize = 3;
const HORIZON: usize = 400;

/// Tenant ids 0..2 are posted-price; 3..5 are auction tenants, one per
/// policy.
fn mixed_service(shards: usize) -> MarketService {
    let mut service = MarketService::new(ServiceConfig {
        shards,
        queue_capacity: 64,
        ..ServiceConfig::default()
    })
    .expect("valid service config");
    for id in 0..3u64 {
        service
            .register_tenant(TenantId(id), TenantConfig::standard(DIM, HORIZON))
            .unwrap();
    }
    let policies = [
        AuctionPolicy::Static { markup: 0.05 },
        AuctionPolicy::Session,
        AuctionPolicy::Empirical {
            window: 16,
            welfare_weight: 0.0,
        },
    ];
    for (offset, policy) in policies.into_iter().enumerate() {
        service
            .register_tenant(
                TenantId(3 + offset as u64),
                TenantConfig::auction(DIM, HORIZON, policy),
            )
            .unwrap();
    }
    service
}

/// One deterministic auction-round generator per auction tenant.
fn markets(seed: u64) -> Vec<AuctionMarket> {
    (0..3u64)
        .map(|offset| {
            AuctionMarket::new(AuctionMarketConfig {
                bidders: 2,
                dim: DIM,
                distribution: ValuationDistribution::Uniform { spread: 0.95 },
                floor_fraction: 0.3,
                seed: seed.wrapping_add(offset),
                drift: None,
            })
        })
        .collect()
}

/// Pumps `waves` mixed waves (one posted quote per posted tenant, one
/// auction round per auction tenant) and returns every deterministic value
/// the service produced, in response order.
fn pump(
    service: &mut MarketService,
    markets: &mut [AuctionMarket],
    waves: usize,
    workers: usize,
    seed: u64,
) -> Vec<(u64, u64)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut produced = Vec::new();
    for _ in 0..waves {
        for id in 0..3u64 {
            let features = sampling::standard_normal_vector(&mut rng, DIM)
                .map(f64::abs)
                .normalized();
            let reserve = 0.4 * features.sum();
            service
                .submit_quote(QueryRequest {
                    tenant: TenantId(id),
                    features,
                    reserve_price: reserve,
                })
                .unwrap();
        }
        for (offset, market) in markets.iter_mut().enumerate() {
            let round = market.next_round();
            service
                .submit_auction(AuctionRequest {
                    tenant: TenantId(3 + offset as u64),
                    features: round.features,
                    floor: round.floor,
                    bids: round.bids,
                })
                .unwrap();
        }
        let responses = service.drain(workers);
        assert_eq!(responses.len(), 6);
        for response in &responses {
            if let Some(quote) = response.quote() {
                produced.push((response.tenant.0, quote.posted_price.to_bits()));
                service
                    .submit_outcome(OutcomeReport {
                        tenant: response.tenant,
                        accepted: quote.posted_price <= 1.0,
                        market_value: Some(1.0),
                    })
                    .unwrap();
            } else {
                let cleared = response.cleared().expect("mixed waves only quote or clear");
                produced.push((response.tenant.0, cleared.reserve.to_bits()));
                produced.push((response.tenant.0, cleared.result.price.to_bits()));
            }
        }
        service.drain(workers);
    }
    produced
}

#[test]
fn mixed_traffic_is_worker_count_independent() {
    let run = |workers: usize| {
        let mut service = mixed_service(4);
        let mut generators = markets(7);
        let produced = pump(&mut service, &mut generators, 12, workers, 99);
        let metrics = service.aggregate_metrics();
        (
            produced,
            metrics.revenue.to_bits(),
            metrics.auction.revenue.to_bits(),
            metrics.auction.welfare.to_bits(),
            metrics.auction.reserve_hits,
        )
    };
    assert_eq!(run(1), run(4));
}

#[test]
fn mixed_snapshot_restores_bit_identically() {
    // Uninterrupted: warm-up + continuation.
    let mut uninterrupted = mixed_service(3);
    let mut generators = markets(21);
    pump(&mut uninterrupted, &mut generators, 10, 2, 5);
    let expected = pump(&mut uninterrupted, &mut generators, 10, 2, 6);

    // Interrupted: warm-up, snapshot, restore, continuation.  The market
    // generators continue across the snapshot (the outside world does not
    // restart when the service does).
    let mut original = mixed_service(3);
    let mut generators = markets(21);
    pump(&mut original, &mut generators, 10, 2, 5);
    let snapshot = original.snapshot().expect("quiescent service");
    let rendered = snapshot.render_pretty();
    let mut restored = MarketService::restore(&Json::parse(&rendered).unwrap()).unwrap();
    let continued = pump(&mut restored, &mut generators, 10, 2, 6);

    assert_eq!(
        expected, continued,
        "every posted price, reserve, and clearing price must continue \
         bit-identically across the snapshot"
    );

    // The snapshot itself is stable: snapshot → restore → snapshot is the
    // identity on the rendering (empirical history and auction counters
    // round-trip exactly).
    let restored_again = MarketService::restore(&Json::parse(&rendered).unwrap()).unwrap();
    assert_eq!(restored_again.snapshot().unwrap().render_pretty(), rendered);

    // The document really carries the auction layer.
    assert!(
        rendered.contains("\"kind\": \"auction\"") || rendered.contains("\"kind\":\"auction\"")
    );
    assert!(rendered.contains("empirical"));
    assert!(rendered.contains("history"));
}

#[test]
fn zero_window_empirical_tenants_snapshot_and_restore() {
    // A degenerate registration: the live setter clamps the window to 1,
    // and the snapshot the service writes must always restore — including
    // the `window: 0` it faithfully records.
    let mut service = MarketService::new(ServiceConfig {
        shards: 1,
        queue_capacity: 8,
        ..ServiceConfig::default()
    })
    .expect("valid service config");
    service
        .register_tenant(
            TenantId(1),
            TenantConfig::auction(
                DIM,
                HORIZON,
                AuctionPolicy::Empirical {
                    window: 0,
                    welfare_weight: 0.0,
                },
            ),
        )
        .unwrap();
    service
        .submit_auction(AuctionRequest {
            tenant: TenantId(1),
            features: Vector::from_slice(&[0.5, 0.5, 0.5]),
            floor: 0.2,
            bids: vec![0.9, 0.4],
        })
        .unwrap();
    service.drain(1);
    let rendered = service.snapshot().unwrap().render_pretty();
    let restored = MarketService::restore(&Json::parse(&rendered).unwrap())
        .expect("a snapshot the service wrote must restore");
    assert_eq!(restored.snapshot().unwrap().render_pretty(), rendered);
}

/// One recorded auction round: inputs plus the service's settled bits.
struct Recorded {
    features: Vector,
    floor: f64,
    bids: Vec<f64>,
    reserve_bits: u64,
    price_bits: u64,
}

#[test]
fn service_auction_arithmetic_equals_serial_replay() {
    let mut service = mixed_service(2);
    let mut generators = markets(33);
    // Record every auction round the service serves.
    let mut recorded: Vec<Vec<Recorded>> = vec![Vec::new(), Vec::new(), Vec::new()];
    let mut rng_waves = 0..20usize;
    for _ in &mut rng_waves {
        for (offset, market) in generators.iter_mut().enumerate() {
            let round = market.next_round();
            service
                .submit_auction(AuctionRequest {
                    tenant: TenantId(3 + offset as u64),
                    features: round.features.clone(),
                    floor: round.floor,
                    bids: round.bids.clone(),
                })
                .unwrap();
            let response = service.drain(2);
            let cleared = response
                .last()
                .and_then(|r| r.cleared())
                .expect("a cleared response");
            recorded[offset].push(Recorded {
                features: round.features,
                floor: round.floor,
                bids: round.bids,
                reserve_bits: cleared.reserve.to_bits(),
                price_bits: cleared.result.price.to_bits(),
            });
        }
    }
    // Serial replay through fresh tenant states — same code path, no
    // service, must reproduce every reserve and price bit for bit.
    let policies = [
        AuctionPolicy::Static { markup: 0.05 },
        AuctionPolicy::Session,
        AuctionPolicy::Empirical {
            window: 16,
            welfare_weight: 0.0,
        },
    ];
    for (offset, policy) in policies.into_iter().enumerate() {
        let mut tenant = TenantState::new(
            TenantId(3 + offset as u64),
            TenantConfig::auction(DIM, HORIZON, policy),
        );
        for round in &recorded[offset] {
            let cleared = tenant
                .serve_auction(&round.features, round.floor, &round.bids)
                .expect("auction tenant");
            assert_eq!(cleared.reserve.to_bits(), round.reserve_bits, "{policy:?}");
            assert_eq!(
                cleared.result.price.to_bits(),
                round.price_bits,
                "{policy:?}"
            );
        }
    }
}

/// A service with two drift-aware posted tenants: a restart tenant with a
/// small detector (so the window fills quickly) and a discounted tenant.
fn drift_service() -> MarketService {
    let mut service = MarketService::new(ServiceConfig {
        shards: 2,
        queue_capacity: 16,
        ..ServiceConfig::default()
    })
    .expect("valid service config");
    // A δ buffer lifts the exploration threshold (ε ≥ 4nδ), so the
    // mechanism reaches the conservative regime — where drift surprisal
    // lives — within a few dozen rounds.
    let mut restart = TenantConfig::standard(DIM, HORIZON).with_drift(DriftPolicy::Restart {
        window: 8,
        threshold: 3,
    });
    restart.pricing = restart.pricing.with_uncertainty(0.05);
    let mut discounted = TenantConfig::standard(DIM, HORIZON)
        .with_drift(DriftPolicy::Discounted { inflation: 1.05 });
    discounted.pricing = discounted.pricing.with_uncertainty(0.05);
    service.register_tenant(TenantId(10), restart).unwrap();
    service.register_tenant(TenantId(11), discounted).unwrap();
    service
}

/// Pumps `waves` posted rounds against both drift tenants; the hidden
/// market value drops sharply at wave 80 — after the mechanisms have
/// converged into the conservative regime — so conservative quotes go stale
/// and the restart tenant's detector accumulates surprisal (possibly
/// firing).  Returns every posted price bit in response order.
fn pump_drift(service: &mut MarketService, waves: std::ops::Range<usize>, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut produced = Vec::new();
    for wave in waves {
        let value = if wave < 80 { 1.2 } else { 0.35 };
        for id in [10u64, 11] {
            let features = sampling::standard_normal_vector(&mut rng, DIM)
                .map(f64::abs)
                .normalized();
            service
                .submit_quote(QueryRequest {
                    tenant: TenantId(id),
                    features,
                    reserve_price: 0.1,
                })
                .unwrap();
        }
        for response in service.drain(2) {
            let quote = *response.quote().unwrap();
            produced.push(quote.posted_price.to_bits());
            service
                .submit_outcome(OutcomeReport {
                    tenant: response.tenant,
                    accepted: quote.posted_price <= value,
                    market_value: Some(value),
                })
                .unwrap();
        }
        service.drain(2);
    }
    produced
}

#[test]
fn drift_tenant_snapshot_restores_bit_identically() {
    // Uninterrupted: warm-up through the value shift, then continuation.
    let mut uninterrupted = drift_service();
    pump_drift(&mut uninterrupted, 0..82, 5);
    let expected = pump_drift(&mut uninterrupted, 82..120, 6);
    let expected_metrics = uninterrupted.aggregate_metrics();

    // Interrupted at wave 82 — right in the middle of the post-shift
    // surprisal streak, so the detector window flags are non-trivial and
    // the fire/restart decision falls on the *restored* service.
    let mut original = drift_service();
    pump_drift(&mut original, 0..82, 5);
    let snapshot = original.snapshot().expect("quiescent service");
    let rendered = snapshot.render_pretty();
    assert!(
        rendered.contains(&format!("\"schema_version\": {SNAPSHOT_SCHEMA_VERSION}")),
        "the document must carry the current schema version"
    );
    assert!(rendered.contains("\"policy\": \"restart\""), "{rendered}");
    assert!(rendered.contains("\"policy\": \"discounted\""));
    assert!(rendered.contains("window_flags"));
    let mut restored = MarketService::restore(&Json::parse(&rendered).unwrap()).unwrap();
    let continued = pump_drift(&mut restored, 82..120, 6);

    assert_eq!(
        expected, continued,
        "drift-aware tenants must continue bit-identically across the snapshot \
         (knowledge set, detector window, and restart counters all restored)"
    );
    // The shard-level drift counters carried over and kept counting.
    let restored_metrics = restored.aggregate_metrics();
    assert_eq!(restored_metrics.drift_fires, expected_metrics.drift_fires);
    assert_eq!(
        restored_metrics.drift_restarts,
        expected_metrics.drift_restarts
    );
    // The shift actually exercised the restart machinery — otherwise this
    // test pins nothing.
    assert!(
        expected_metrics.drift_restarts >= 1,
        "the value shift must trigger at least one restart"
    );

    // snapshot → restore → snapshot is the identity on the rendering.
    let restored_again = MarketService::restore(&Json::parse(&rendered).unwrap()).unwrap();
    assert_eq!(restored_again.snapshot().unwrap().render_pretty(), rendered);
}

#[test]
fn checked_in_v1_snapshot_restores_under_schema_v5() {
    let fixture = include_str!("fixtures/snapshot_v1.json");
    let mut restored =
        MarketService::restore(&Json::parse(fixture).unwrap()).expect("v1 fixture restores");
    assert_eq!(restored.tenant_count(), 1);
    // Pre-market, pre-drift documents restore as static posted tenants and
    // keep their metric counters.
    let metrics = restored.aggregate_metrics();
    assert_eq!(metrics.quotes_served, 12);
    assert_eq!(metrics.sales, 9);
    assert_eq!(metrics.drift_fires, 0);
    assert_eq!(metrics.drift_restarts, 0);
    // The restored tenant serves a posted round.
    restored
        .submit_quote(QueryRequest {
            tenant: TenantId(7),
            features: Vector::from_slice(&[0.6, 0.8]),
            reserve_price: 0.1,
        })
        .expect("v1 tenant is registered and posted-price");
    let quote = *restored.drain(1)[0].quote().expect("a quote response");
    assert!(quote.posted_price.is_finite());
    restored
        .submit_outcome(OutcomeReport {
            tenant: TenantId(7),
            accepted: true,
            market_value: None,
        })
        .unwrap();
    restored.drain(1);
    // Re-snapshotting writes the current schema with the drift layer.
    let rendered = restored.snapshot().unwrap().render_pretty();
    assert!(rendered.contains(&format!("\"schema_version\": {SNAPSHOT_SCHEMA_VERSION}")));
    assert!(rendered.contains("\"policy\": \"static\""));
    assert!(rendered.contains("drift_fires"));
}

#[test]
fn checked_in_v2_snapshot_restores_under_schema_v5() {
    let fixture = include_str!("fixtures/snapshot_v2.json");
    let mut restored =
        MarketService::restore(&Json::parse(fixture).unwrap()).expect("v2 fixture restores");
    assert_eq!(restored.tenant_count(), 2);
    // The v2 auction layer survives: counters and the empirical history.
    let metrics = restored.aggregate_metrics();
    assert_eq!(metrics.auction.auctions, 3);
    assert_eq!(metrics.auction.reserve_hits, 1);
    assert_eq!(
        metrics.drift_fires, 0,
        "v2 documents predate the drift layer"
    );
    // The empirical auction tenant still clears rounds from its restored
    // bid-history window.
    restored
        .submit_auction(AuctionRequest {
            tenant: TenantId(4),
            features: Vector::from_slice(&[0.5, 0.5, 0.5]),
            floor: 0.2,
            bids: vec![0.9, 0.4],
        })
        .expect("v2 auction tenant is registered");
    let responses = restored.drain(1);
    let cleared = responses[0].cleared().expect("a cleared response");
    assert!(cleared.reserve >= 0.2);
    // A posted quote to the auction tenant is still a market mismatch.
    restored
        .submit_quote(QueryRequest {
            tenant: TenantId(4),
            features: Vector::from_slice(&[0.5, 0.5, 0.5]),
            reserve_price: 0.1,
        })
        .unwrap();
    assert!(restored.drain(1)[0].quote().is_none());
    // Re-snapshotting upgrades the document to the current schema with an
    // explicit static drift policy per tenant.
    let rendered = restored.snapshot().unwrap().render_pretty();
    assert!(rendered.contains(&format!("\"schema_version\": {SNAPSHOT_SCHEMA_VERSION}")));
    assert!(rendered.contains("\"policy\": \"static\""));
    assert!(rendered.contains("\"policy\": \"empirical\""));
}

#[test]
fn checked_in_v3_snapshot_restores_under_schema_v5() {
    let fixture = include_str!("fixtures/snapshot_v3.json");
    let mut restored =
        MarketService::restore(&Json::parse(fixture).unwrap()).expect("v3 fixture restores");
    assert_eq!(restored.tenant_count(), 3);
    // Pre-WAL documents restore with paging off and zero paging counters.
    assert_eq!(restored.config().resident_capacity, None);
    assert_eq!(restored.config().wal_segment_size, None);
    let metrics = restored.aggregate_metrics();
    assert_eq!(metrics.quotes_served, 180);
    assert_eq!(metrics.sales, 105);
    assert_eq!(metrics.drift_fires, 1);
    assert_eq!(metrics.drift_restarts, 1);
    assert_eq!(
        metrics.evictions, 0,
        "v3 documents predate the paging layer"
    );
    assert_eq!(metrics.rehydrations, 0);
    // The restored drift tenant still serves posted rounds.
    restored
        .submit_quote(QueryRequest {
            tenant: TenantId(5),
            features: Vector::from_slice(&[0.5, 0.3, 0.2]),
            reserve_price: 0.1,
        })
        .expect("v3 drift tenant is registered and posted-price");
    let quote = *restored.drain(1)[0].quote().expect("a quote response");
    assert!(quote.posted_price.is_finite());
    restored
        .submit_outcome(OutcomeReport {
            tenant: TenantId(5),
            accepted: true,
            market_value: None,
        })
        .unwrap();
    restored.drain(1);
    // Checkpointing a WAL-less restore is rejected, not silently empty.
    assert!(restored.checkpoint().is_err());
    // Re-snapshotting upgrades the document to the current schema with
    // (null) paging knobs and the paging counters.
    let rendered = restored.snapshot().unwrap().render_pretty();
    assert!(rendered.contains(&format!("\"schema_version\": {SNAPSHOT_SCHEMA_VERSION}")));
    assert!(rendered.contains("\"resident_capacity\": null"));
    assert!(rendered.contains("\"wal_segment_size\": null"));
    assert!(rendered.contains("\"evictions\""));
    assert!(rendered.contains("\"policy\": \"restart\""));
    // And the upgraded document round-trips to the identical rendering.
    let again = MarketService::restore(&Json::parse(&rendered).unwrap()).unwrap();
    assert_eq!(again.snapshot().unwrap().render_pretty(), rendered);
}

#[test]
fn checked_in_v4_snapshot_restores_under_schema_v5() {
    let fixture = include_str!("fixtures/snapshot_v4.json");
    let mut restored =
        MarketService::restore(&Json::parse(fixture).unwrap()).expect("v4 fixture restores");
    assert_eq!(restored.tenant_count(), 3);
    // The v4 paging knobs survive; the v5 privacy knobs default off.
    assert_eq!(restored.config().resident_capacity, Some(2));
    assert_eq!(restored.config().wal_segment_size, Some(3));
    assert_eq!(restored.config().privacy_budget, None);
    assert_eq!(restored.config().compensation_base, None);
    assert!(!restored.config().ledger_paging);
    let metrics = restored.aggregate_metrics();
    assert_eq!(metrics.quotes_served, 12);
    assert_eq!(metrics.observations, 12);
    assert_eq!(metrics.sales, 7);
    assert_eq!(metrics.revenue.to_bits(), 3.816100928816084f64.to_bits());
    assert_eq!(metrics.evictions, 6);
    assert_eq!(metrics.rehydrations, 6);
    assert_eq!(metrics.auction.auctions, 6);
    assert_eq!(metrics.auction.sales, 6);
    assert_eq!(metrics.auction.reserve_hits, 5);
    assert_eq!(metrics.auction.revenue.to_bits(), 4.9f64.to_bits());
    assert_eq!(metrics.auction.welfare.to_bits(), 5.4f64.to_bits());
    assert_eq!(metrics.auction.baseline_revenue.to_bits(), 2.4f64.to_bits());
    // v4 documents predate the privacy layer: ledger fields default empty.
    assert_eq!(metrics.epsilon_spent, 0.0);
    assert_eq!(metrics.compensation_paid, 0.0);
    assert_eq!(metrics.owners_exhausted, 0);
    assert_eq!(metrics.privacy_throttled, 0);
    assert_eq!(metrics.arbitrage_clamps, 0);
    // The restored posted tenant still serves.
    restored
        .submit_quote(QueryRequest {
            tenant: TenantId(1),
            features: Vector::from_slice(&[0.5, 0.3, 0.2]),
            reserve_price: 0.1,
        })
        .expect("v4 posted tenant is registered");
    let quote = *restored.drain(1)[0].quote().expect("a quote response");
    assert!(quote.posted_price.is_finite());
    restored
        .submit_outcome(OutcomeReport {
            tenant: TenantId(1),
            accepted: true,
            market_value: None,
        })
        .unwrap();
    restored.drain(1);
    // Re-snapshotting upgrades the document to schema v5 with explicit
    // (null/false) privacy knobs and the privacy counters.
    let rendered = restored.snapshot().unwrap().render_pretty();
    assert!(rendered.contains(&format!("\"schema_version\": {SNAPSHOT_SCHEMA_VERSION}")));
    assert!(rendered.contains("\"privacy_budget\": null"));
    assert!(rendered.contains("\"compensation_base\": null"));
    assert!(rendered.contains("\"ledger_paging\": false"));
    assert!(rendered.contains("\"epsilon_spent\""));
    assert!(rendered.contains("\"arbitrage_clamps\""));
    // And the upgraded document round-trips to the identical rendering.
    let again = MarketService::restore(&Json::parse(&rendered).unwrap()).unwrap();
    assert_eq!(again.snapshot().unwrap().render_pretty(), rendered);
}

/// Three privacy tenants whose owners run out of ε budget mid-test.
fn privacy_service() -> MarketService {
    let mut service = MarketService::new(ServiceConfig {
        shards: 2,
        queue_capacity: 64,
        wal_segment_size: Some(2),
        ..ServiceConfig::default()
    })
    .expect("valid service config");
    let params = PrivacyParams {
        epsilon_budget: 2.5,
        compensation_base: 0.05,
        compensation_sensitivity: 2.0,
        data_range: 1.0,
        laplace_scale: 1.0,
    };
    for id in 30..33u64 {
        service
            .register_tenant(TenantId(id), TenantConfig::privacy(DIM, HORIZON, params))
            .unwrap();
    }
    service
}

/// Pumps privacy waves, recording every posted-price bit and a sentinel
/// for budget-exhausted refusals — both must be reproduced bit-for-bit
/// (and refusal-for-refusal) by a restored service.
fn pump_privacy(service: &mut MarketService, waves: std::ops::Range<usize>, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut produced = Vec::new();
    for _ in waves {
        for id in 30..33u64 {
            let features = sampling::standard_normal_vector(&mut rng, DIM)
                .map(f64::abs)
                .normalized();
            service
                .submit_quote(QueryRequest {
                    tenant: TenantId(id),
                    features,
                    reserve_price: 0.1,
                })
                .unwrap();
        }
        for response in service.drain(2) {
            match &response.payload {
                Payload::Quoted(quote) => {
                    produced.push(quote.posted_price.to_bits());
                    service
                        .submit_outcome(OutcomeReport {
                            tenant: response.tenant,
                            accepted: quote.posted_price <= 1.0,
                            market_value: Some(1.0),
                        })
                        .unwrap();
                }
                Payload::Failed(_) => produced.push(u64::MAX),
                other => panic!("privacy waves only quote or fail, got {other:?}"),
            }
        }
        service.drain(2);
    }
    produced
}

#[test]
fn privacy_snapshot_restores_bit_identically_with_ledger_counters() {
    // Uninterrupted: warm-up + continuation, with owners exhausting along
    // the way so the ledger state is load-bearing for the continuation.
    let mut uninterrupted = privacy_service();
    pump_privacy(&mut uninterrupted, 0..8, 5);
    let expected = pump_privacy(&mut uninterrupted, 8..20, 6);
    let expected_metrics = uninterrupted.aggregate_metrics();
    assert!(
        expected_metrics.owners_exhausted > 0,
        "the budget must actually exhaust owners, or this test pins nothing"
    );
    assert!(expected_metrics.epsilon_spent > 0.0);
    assert!(expected_metrics.compensation_paid > 0.0);
    assert!(
        expected_metrics.compensation_paid <= expected_metrics.revenue,
        "compensation rides the reserve, so payouts never exceed revenue"
    );

    // Interrupted at wave 8: the snapshot carries partially-spent ledgers.
    let mut original = privacy_service();
    pump_privacy(&mut original, 0..8, 5);
    let snapshot = original.snapshot().expect("quiescent service");
    let rendered = snapshot.render_pretty();
    assert!(
        rendered.contains("\"kind\": \"privacy\"") || rendered.contains("\"kind\":\"privacy\""),
        "the document must carry the privacy market kind"
    );
    assert!(rendered.contains("epsilon_spent_total"));
    let mut restored = MarketService::restore(&Json::parse(&rendered).unwrap()).unwrap();
    let continued = pump_privacy(&mut restored, 8..20, 6);

    assert_eq!(
        expected, continued,
        "every posted price and every budget-exhausted refusal must continue \
         identically across the snapshot"
    );
    // The ledger counters carried over and kept counting.
    let restored_metrics = restored.aggregate_metrics();
    assert_eq!(
        restored_metrics.epsilon_spent.to_bits(),
        expected_metrics.epsilon_spent.to_bits()
    );
    assert_eq!(
        restored_metrics.compensation_paid.to_bits(),
        expected_metrics.compensation_paid.to_bits()
    );
    assert_eq!(
        restored_metrics.owners_exhausted,
        expected_metrics.owners_exhausted
    );
    assert_eq!(
        restored_metrics.privacy_throttled,
        expected_metrics.privacy_throttled
    );

    // snapshot → restore → snapshot is the identity on the rendering.
    let restored_again = MarketService::restore(&Json::parse(&rendered).unwrap()).unwrap();
    assert_eq!(restored_again.snapshot().unwrap().render_pretty(), rendered);
}

#[test]
fn wal_restore_mid_checkpoint_with_ledger_records_continues_bit_identically() {
    // A checkpoint cut lands while one privacy tenant still has a
    // quoted-but-unobserved round (and a staged ledger charge): the WAL
    // skips it — mid-round ledger state has no serialised form — and the
    // next segment carries it after the round closes.
    let mut original = privacy_service();
    let base = original.snapshot().expect("fresh service is quiescent");
    let mut stream: Vec<Json> = Vec::new();
    pump_privacy(&mut original, 0..3, 41);
    stream.extend(original.checkpoint().unwrap());

    // Open a round (staging a pending ledger charge) while the owners
    // still have budget, then cut.
    original
        .submit_quote(QueryRequest {
            tenant: TenantId(30),
            features: Vector::from_slice(&[0.5, 0.3, 0.2]),
            reserve_price: 0.1,
        })
        .unwrap();
    let open_quote = *original.drain(1)[0].quote().expect("an open quote");
    stream.extend(original.checkpoint().unwrap());
    // Close the round; the next checkpoint carries the skipped tenant with
    // its settled ledger debits.
    original
        .submit_outcome(OutcomeReport {
            tenant: TenantId(30),
            accepted: open_quote.posted_price <= 1.0,
            market_value: Some(1.0),
        })
        .unwrap();
    original.drain(1);
    stream.extend(original.checkpoint().unwrap());

    let mut restored = MarketService::restore_with_wal(&base, &stream).unwrap();
    assert_eq!(restored.tenant_count(), 3);
    // Tenant-level ledger state restored bit-identically, so continuation
    // traffic prices — and throttles — exactly like the original.
    let expected = pump_privacy(&mut original, 3..16, 43);
    let actual = pump_privacy(&mut restored, 3..16, 43);
    assert_eq!(expected, actual);
    let exhausted = original.aggregate_metrics().owners_exhausted;
    assert!(
        exhausted > 0,
        "continuation must reach exhaustion to prove the ledgers restored"
    );
}

/// The mixed tenant population of [`mixed_service`] under a resident cap
/// small enough to force paging churn, with the WAL on.
fn paged_mixed_service() -> MarketService {
    let mut service = MarketService::new(ServiceConfig {
        shards: 2,
        queue_capacity: 64,
        resident_capacity: Some(2),
        wal_segment_size: Some(3),
        ..ServiceConfig::default()
    })
    .expect("valid service config");
    for id in 0..3u64 {
        service
            .register_tenant(TenantId(id), TenantConfig::standard(DIM, HORIZON))
            .unwrap();
    }
    let policies = [
        AuctionPolicy::Static { markup: 0.05 },
        AuctionPolicy::Session,
        AuctionPolicy::Empirical {
            window: 16,
            welfare_weight: 0.0,
        },
    ];
    for (offset, policy) in policies.into_iter().enumerate() {
        service
            .register_tenant(
                TenantId(3 + offset as u64),
                TenantConfig::auction(DIM, HORIZON, policy),
            )
            .unwrap();
    }
    service
}

#[test]
fn wal_restore_under_paging_continues_bit_identically() {
    // Six mixed tenants behind a resident cap of two: every wave pages
    // tenants in and out while posted sessions and auction policies learn.
    let mut original = paged_mixed_service();
    let base = original.snapshot().expect("fresh service is quiescent");
    let mut stream: Vec<Json> = Vec::new();
    let mut traffic = markets(13);
    pump(&mut original, &mut traffic, 4, 2, 61);
    stream.extend(original.checkpoint().unwrap());
    pump(&mut original, &mut traffic, 4, 2, 62);
    stream.extend(original.checkpoint().unwrap());
    let churn = original.aggregate_metrics();
    assert!(churn.evictions > 0, "the cap must actually force paging");
    assert!(churn.rehydrations > 0);
    assert!(original.resident_tenants() <= 2);

    let mut restored = MarketService::restore_with_wal(&base, &stream).unwrap();
    assert_eq!(restored.tenant_count(), 6);
    assert_eq!(
        restored.aggregate_metrics().quotes_served,
        churn.quotes_served
    );
    assert_eq!(
        restored.aggregate_metrics().revenue.to_bits(),
        churn.revenue.to_bits()
    );
    // Continuation traffic: identical fresh generators for both runs.  The
    // paging decisions of the two services may differ (the restored LRU is
    // fresh) but every priced value must agree bit for bit.
    let mut expected_traffic = markets(99);
    let mut actual_traffic = markets(99);
    let expected = pump(&mut original, &mut expected_traffic, 4, 2, 63);
    let actual = pump(&mut restored, &mut actual_traffic, 4, 2, 63);
    assert_eq!(expected, actual);
    assert!(restored.resident_tenants() <= 2);
}

#[test]
fn wal_restore_interrupted_mid_eviction_continues_bit_identically() {
    // Posted tenants only, cap 2 over 2 shards: by the first checkpoint
    // most of the population is paged out, and the cut lands while one
    // tenant still has a quoted-but-unobserved round — the WAL skips it
    // (it stays dirty) and carries it in the next segment after close.
    let ids: Vec<TenantId> = (20u64..26).map(TenantId).collect();
    let mut original = MarketService::new(ServiceConfig {
        shards: 2,
        queue_capacity: 64,
        resident_capacity: Some(2),
        wal_segment_size: Some(2),
        ..ServiceConfig::default()
    })
    .unwrap();
    for &id in &ids {
        original
            .register_tenant(id, TenantConfig::standard(DIM, HORIZON))
            .unwrap();
    }
    let base = original.snapshot().unwrap();

    let pump_posted = |service: &mut MarketService, rounds: usize, seed: u64| -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut bits = Vec::new();
        for _ in 0..rounds {
            for id in (20u64..26).map(TenantId) {
                let features = sampling::standard_normal_vector(&mut rng, DIM)
                    .map(f64::abs)
                    .normalized();
                service
                    .submit_quote(QueryRequest {
                        tenant: id,
                        features,
                        reserve_price: 0.2,
                    })
                    .unwrap();
            }
            for response in service.drain(2) {
                let quote = *response.quote().unwrap();
                bits.push(quote.posted_price.to_bits());
                service
                    .submit_outcome(OutcomeReport {
                        tenant: response.tenant,
                        accepted: quote.posted_price <= 1.0,
                        market_value: Some(1.0),
                    })
                    .unwrap();
            }
            service.drain(2);
        }
        bits
    };

    pump_posted(&mut original, 3, 71);
    assert!(original.aggregate_metrics().evictions > 0);
    // Open a round on one tenant, then checkpoint under that traffic.
    original
        .submit_quote(QueryRequest {
            tenant: ids[0],
            features: Vector::from_slice(&[0.5, 0.3, 0.2]),
            reserve_price: 0.2,
        })
        .unwrap();
    let open_quote = *original.drain(1)[0].quote().unwrap();
    let mut stream = original.checkpoint().unwrap();
    // Close the round; the next checkpoint carries the skipped tenant.
    original
        .submit_outcome(OutcomeReport {
            tenant: ids[0],
            accepted: open_quote.posted_price <= 1.0,
            market_value: Some(1.0),
        })
        .unwrap();
    original.drain(1);
    stream.extend(original.checkpoint().unwrap());

    let mut restored = MarketService::restore_with_wal(&base, &stream).unwrap();
    assert_eq!(restored.tenant_count(), ids.len());
    let expected = pump_posted(&mut original, 2, 72);
    let actual = pump_posted(&mut restored, 2, 72);
    assert_eq!(expected, actual);
    assert!(restored.resident_tenants() <= 2);
}
