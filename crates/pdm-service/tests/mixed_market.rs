//! Mixed-market integration: one service serving posted-price tenants and
//! auction tenants (all three reserve policies) side by side.
//!
//! The load-bearing contracts, each pinned bit-for-bit:
//!
//! * mixed traffic computes the same values for any drain worker count;
//! * a snapshot of a mixed service restores to a service that continues
//!   **bit-identically** — including the session-learned knowledge sets
//!   *and* the empirical setter's bid-history window;
//! * the service's auction arithmetic equals a serial replay through the
//!   same [`TenantState::serve_auction`] path.

use pdm_auction::{AuctionMarket, AuctionMarketConfig, ValuationDistribution};
use pdm_linalg::{sampling, Json, Vector};
use pdm_service::{
    AuctionPolicy, AuctionRequest, MarketService, OutcomeReport, QueryRequest, ServiceConfig,
    TenantConfig, TenantId, TenantState,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

const DIM: usize = 3;
const HORIZON: usize = 400;

/// Tenant ids 0..2 are posted-price; 3..5 are auction tenants, one per
/// policy.
fn mixed_service(shards: usize) -> MarketService {
    let mut service = MarketService::new(ServiceConfig {
        shards,
        queue_capacity: 64,
    });
    for id in 0..3u64 {
        service
            .register_tenant(TenantId(id), TenantConfig::standard(DIM, HORIZON))
            .unwrap();
    }
    let policies = [
        AuctionPolicy::Static { markup: 0.05 },
        AuctionPolicy::Session,
        AuctionPolicy::Empirical {
            window: 16,
            welfare_weight: 0.0,
        },
    ];
    for (offset, policy) in policies.into_iter().enumerate() {
        service
            .register_tenant(
                TenantId(3 + offset as u64),
                TenantConfig::auction(DIM, HORIZON, policy),
            )
            .unwrap();
    }
    service
}

/// One deterministic auction-round generator per auction tenant.
fn markets(seed: u64) -> Vec<AuctionMarket> {
    (0..3u64)
        .map(|offset| {
            AuctionMarket::new(AuctionMarketConfig {
                bidders: 2,
                dim: DIM,
                distribution: ValuationDistribution::Uniform { spread: 0.95 },
                floor_fraction: 0.3,
                seed: seed.wrapping_add(offset),
            })
        })
        .collect()
}

/// Pumps `waves` mixed waves (one posted quote per posted tenant, one
/// auction round per auction tenant) and returns every deterministic value
/// the service produced, in response order.
fn pump(
    service: &mut MarketService,
    markets: &mut [AuctionMarket],
    waves: usize,
    workers: usize,
    seed: u64,
) -> Vec<(u64, u64)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut produced = Vec::new();
    for _ in 0..waves {
        for id in 0..3u64 {
            let features = sampling::standard_normal_vector(&mut rng, DIM)
                .map(f64::abs)
                .normalized();
            let reserve = 0.4 * features.sum();
            service
                .submit_quote(QueryRequest {
                    tenant: TenantId(id),
                    features,
                    reserve_price: reserve,
                })
                .unwrap();
        }
        for (offset, market) in markets.iter_mut().enumerate() {
            let round = market.next_round();
            service
                .submit_auction(AuctionRequest {
                    tenant: TenantId(3 + offset as u64),
                    features: round.features,
                    floor: round.floor,
                    bids: round.bids,
                })
                .unwrap();
        }
        let responses = service.drain(workers);
        assert_eq!(responses.len(), 6);
        for response in &responses {
            if let Some(quote) = response.quote() {
                produced.push((response.tenant.0, quote.posted_price.to_bits()));
                service
                    .submit_outcome(OutcomeReport {
                        tenant: response.tenant,
                        accepted: quote.posted_price <= 1.0,
                        market_value: Some(1.0),
                    })
                    .unwrap();
            } else {
                let cleared = response.cleared().expect("mixed waves only quote or clear");
                produced.push((response.tenant.0, cleared.reserve.to_bits()));
                produced.push((response.tenant.0, cleared.result.price.to_bits()));
            }
        }
        service.drain(workers);
    }
    produced
}

#[test]
fn mixed_traffic_is_worker_count_independent() {
    let run = |workers: usize| {
        let mut service = mixed_service(4);
        let mut generators = markets(7);
        let produced = pump(&mut service, &mut generators, 12, workers, 99);
        let metrics = service.aggregate_metrics();
        (
            produced,
            metrics.revenue.to_bits(),
            metrics.auction.revenue.to_bits(),
            metrics.auction.welfare.to_bits(),
            metrics.auction.reserve_hits,
        )
    };
    assert_eq!(run(1), run(4));
}

#[test]
fn mixed_snapshot_restores_bit_identically() {
    // Uninterrupted: warm-up + continuation.
    let mut uninterrupted = mixed_service(3);
    let mut generators = markets(21);
    pump(&mut uninterrupted, &mut generators, 10, 2, 5);
    let expected = pump(&mut uninterrupted, &mut generators, 10, 2, 6);

    // Interrupted: warm-up, snapshot, restore, continuation.  The market
    // generators continue across the snapshot (the outside world does not
    // restart when the service does).
    let mut original = mixed_service(3);
    let mut generators = markets(21);
    pump(&mut original, &mut generators, 10, 2, 5);
    let snapshot = original.snapshot().expect("quiescent service");
    let rendered = snapshot.render_pretty();
    let mut restored = MarketService::restore(&Json::parse(&rendered).unwrap()).unwrap();
    let continued = pump(&mut restored, &mut generators, 10, 2, 6);

    assert_eq!(
        expected, continued,
        "every posted price, reserve, and clearing price must continue \
         bit-identically across the snapshot"
    );

    // The snapshot itself is stable: snapshot → restore → snapshot is the
    // identity on the rendering (empirical history and auction counters
    // round-trip exactly).
    let restored_again = MarketService::restore(&Json::parse(&rendered).unwrap()).unwrap();
    assert_eq!(restored_again.snapshot().unwrap().render_pretty(), rendered);

    // The document really carries the auction layer.
    assert!(
        rendered.contains("\"kind\": \"auction\"") || rendered.contains("\"kind\":\"auction\"")
    );
    assert!(rendered.contains("empirical"));
    assert!(rendered.contains("history"));
}

#[test]
fn zero_window_empirical_tenants_snapshot_and_restore() {
    // A degenerate registration: the live setter clamps the window to 1,
    // and the snapshot the service writes must always restore — including
    // the `window: 0` it faithfully records.
    let mut service = MarketService::new(ServiceConfig {
        shards: 1,
        queue_capacity: 8,
    });
    service
        .register_tenant(
            TenantId(1),
            TenantConfig::auction(
                DIM,
                HORIZON,
                AuctionPolicy::Empirical {
                    window: 0,
                    welfare_weight: 0.0,
                },
            ),
        )
        .unwrap();
    service
        .submit_auction(AuctionRequest {
            tenant: TenantId(1),
            features: Vector::from_slice(&[0.5, 0.5, 0.5]),
            floor: 0.2,
            bids: vec![0.9, 0.4],
        })
        .unwrap();
    service.drain(1);
    let rendered = service.snapshot().unwrap().render_pretty();
    let restored = MarketService::restore(&Json::parse(&rendered).unwrap())
        .expect("a snapshot the service wrote must restore");
    assert_eq!(restored.snapshot().unwrap().render_pretty(), rendered);
}

/// One recorded auction round: inputs plus the service's settled bits.
struct Recorded {
    features: Vector,
    floor: f64,
    bids: Vec<f64>,
    reserve_bits: u64,
    price_bits: u64,
}

#[test]
fn service_auction_arithmetic_equals_serial_replay() {
    let mut service = mixed_service(2);
    let mut generators = markets(33);
    // Record every auction round the service serves.
    let mut recorded: Vec<Vec<Recorded>> = vec![Vec::new(), Vec::new(), Vec::new()];
    let mut rng_waves = 0..20usize;
    for _ in &mut rng_waves {
        for (offset, market) in generators.iter_mut().enumerate() {
            let round = market.next_round();
            service
                .submit_auction(AuctionRequest {
                    tenant: TenantId(3 + offset as u64),
                    features: round.features.clone(),
                    floor: round.floor,
                    bids: round.bids.clone(),
                })
                .unwrap();
            let response = service.drain(2);
            let cleared = response
                .last()
                .and_then(|r| r.cleared())
                .expect("a cleared response");
            recorded[offset].push(Recorded {
                features: round.features,
                floor: round.floor,
                bids: round.bids,
                reserve_bits: cleared.reserve.to_bits(),
                price_bits: cleared.result.price.to_bits(),
            });
        }
    }
    // Serial replay through fresh tenant states — same code path, no
    // service, must reproduce every reserve and price bit for bit.
    let policies = [
        AuctionPolicy::Static { markup: 0.05 },
        AuctionPolicy::Session,
        AuctionPolicy::Empirical {
            window: 16,
            welfare_weight: 0.0,
        },
    ];
    for (offset, policy) in policies.into_iter().enumerate() {
        let mut tenant = TenantState::new(
            TenantId(3 + offset as u64),
            TenantConfig::auction(DIM, HORIZON, policy),
        );
        for round in &recorded[offset] {
            let cleared = tenant
                .serve_auction(&round.features, round.floor, &round.bids)
                .expect("auction tenant");
            assert_eq!(cleared.reserve.to_bits(), round.reserve_bits, "{policy:?}");
            assert_eq!(
                cleared.result.price.to_bits(),
                round.price_bits,
                "{policy:?}"
            );
        }
    }
}
