//! Property tests for shard routing and service-level concurrency
//! invariants.
//!
//! The load-bearing contract is *stability*: tenant→shard assignment is a
//! pure function of `(tenant id, shard count)` — no per-process seed, no
//! registration-order dependence — so routing survives restarts and
//! snapshot/restore cycles.  The concurrency contract is that the values a
//! drain computes are independent of the worker count.

use pdm_linalg::Vector;
use pdm_service::{
    shard_of, MarketService, OutcomeReport, QueryRequest, ServiceConfig, TenantConfig, TenantId,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Routing is a pure function: recomputing it any number of times, in
    /// any order, yields the same shard, and the shard is always in bounds.
    #[test]
    fn tenant_to_shard_assignment_is_stable_and_in_bounds(
        id in 0u64..u64::MAX,
        shards in 1usize..64,
    ) {
        let first = shard_of(TenantId(id), shards);
        prop_assert!(first < shards);
        for _ in 0..3 {
            prop_assert_eq!(shard_of(TenantId(id), shards), first);
        }
    }

    /// A service routes exactly like the bare function, regardless of the
    /// order tenants were registered in.
    #[test]
    fn service_routing_matches_the_pure_function(
        raw_ids in prop::collection::vec(0u64..1_000_000, 1..20),
        shards in 1usize..16,
    ) {
        let mut service = MarketService::new(ServiceConfig {
            shards,
            queue_capacity: 8,
            ..ServiceConfig::default()
        }).expect("valid service config");
        let mut ids = raw_ids;
        ids.sort_unstable();
        ids.dedup();
        ids.reverse(); // register in an arbitrary (reversed) order
        for &id in &ids {
            let shard = service
                .register_tenant(TenantId(id), TenantConfig::standard(2, 50))
                .expect("unique ids");
            prop_assert_eq!(shard, shard_of(TenantId(id), shards));
            prop_assert_eq!(service.shard_of(TenantId(id)), shard);
        }
    }

    /// Name-derived tenant ids are deterministic, so a client that derives
    /// ids from survey names can reconnect after a restart and land on the
    /// same state.
    #[test]
    fn name_derived_ids_are_deterministic(n in 0usize..1_000_000) {
        let name = format!("survey-{n}");
        prop_assert_eq!(TenantId::from_name(&name), TenantId::from_name(&name));
        // Different names separate (FNV-1a has no trivial collisions on
        // this family).
        let next = format!("survey-{}", n + 1);
        prop_assert!(
            TenantId::from_name(&name) != TenantId::from_name(&next),
            "adjacent names must hash apart"
        );
    }
}

/// Drives `rounds` closed-loop rounds over `tenants` tenants with the given
/// drain worker count, returning every posted price in deterministic order
/// plus the final (revenue, regret) pair.
fn closed_loop(tenants: u64, rounds: usize, workers: usize) -> (Vec<u64>, f64, f64) {
    let mut service = MarketService::new(ServiceConfig {
        shards: 4,
        queue_capacity: 256,
        ..ServiceConfig::default()
    })
    .expect("valid service config");
    for id in 0..tenants {
        service
            .register_tenant(TenantId(id), TenantConfig::standard(3, 200))
            .unwrap();
    }
    let mut posted_bits = Vec::new();
    for round in 0..rounds {
        for id in 0..tenants {
            // A deterministic, tenant-dependent query stream.
            let a = ((id + 1) as f64 * 0.37 + round as f64 * 0.11).sin().abs() + 0.1;
            let b = ((id + 2) as f64 * 0.53 + round as f64 * 0.07).cos().abs() + 0.1;
            let c = 0.4;
            let norm = (a * a + b * b + c * c).sqrt();
            let features = Vector::from_slice(&[a / norm, b / norm, c / norm]);
            let reserve = 0.6 * features.sum();
            service
                .submit_quote(QueryRequest {
                    tenant: TenantId(id),
                    features,
                    reserve_price: reserve,
                })
                .unwrap();
        }
        let responses = service.drain(workers);
        for response in responses {
            let quote = *response.quote().expect("quote response");
            posted_bits.push(quote.posted_price.to_bits());
            let market_value = 1.1; // fixed hidden value: accept iff p <= v
            service
                .submit_outcome(OutcomeReport {
                    tenant: response.tenant,
                    accepted: quote.posted_price <= market_value,
                    market_value: Some(market_value),
                })
                .unwrap();
        }
        service.drain(workers);
    }
    let metrics = service.metrics();
    (posted_bits, metrics.revenue, metrics.regret)
}

#[test]
fn drain_worker_count_never_changes_any_served_value() {
    let serial = closed_loop(13, 8, 1);
    for workers in [2, 4, 8] {
        let parallel = closed_loop(13, 8, workers);
        assert_eq!(
            serial.0, parallel.0,
            "posted prices must be bit-identical for workers=1 vs {workers}"
        );
        assert_eq!(serial.1.to_bits(), parallel.1.to_bits(), "revenue");
        assert_eq!(serial.2.to_bits(), parallel.2.to_bits(), "regret");
    }
}

#[test]
fn per_shard_metrics_cover_all_traffic_and_latency_percentiles_exist() {
    let mut service = MarketService::new(ServiceConfig {
        shards: 3,
        queue_capacity: 64,
        ..ServiceConfig::default()
    })
    .expect("valid service config");
    for id in 0..9 {
        service
            .register_tenant(TenantId(id), TenantConfig::standard(2, 100))
            .unwrap();
    }
    for id in 0..9 {
        service
            .submit_quote(QueryRequest {
                tenant: TenantId(id),
                features: Vector::from_slice(&[0.6, 0.8]),
                reserve_price: 0.2,
            })
            .unwrap();
    }
    service.drain(3);
    let shards = service.shard_metrics();
    assert_eq!(shards.len(), 3);
    let total: u64 = shards.iter().map(|m| m.quotes_served).sum();
    assert_eq!(total, 9);
    for metrics in &shards {
        if metrics.quotes_served > 0 {
            let (p50, p99) = metrics
                .latency_p50_p99()
                .expect("non-empty shards have latency samples");
            assert!(p50.is_finite() && p99 >= p50);
        } else {
            // The documented error path: empty shards error instead of NaN.
            assert!(metrics.latency_p50_p99().is_err());
        }
    }
}
