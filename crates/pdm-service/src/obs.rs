//! Service-side wiring of the `pdm-obs` observability layer.
//!
//! Placement follows the engine's locking model: each [`crate::shard::Shard`]
//! owns a [`ShardObs`] — a private [`MetricRegistry`] plus the pre-registered
//! span handles for its serving stages — mutated only by the worker holding
//! that shard's lock, so recording on the hot path takes no lock at all.  The
//! service itself owns a [`ServiceObs`] for the stages that run outside any
//! one shard (WAL checkpoints, restores) and the bounded post-mortem event
//! journal.  [`crate::MarketService::scrape`] clones the service registry,
//! folds every shard registry in shard-index order, exports the aggregate
//! [`ShardMetrics`] ledger as named counters, and sets the point-in-time
//! gauges — producing one merged registry whose deterministic half is a pure
//! function of the request stream, independent of worker count.
//!
//! The registry is process-local scratch: it is **not** persisted by
//! snapshots or the WAL, and a restored service starts with an empty one.
//! The serving counters survive anyway because their source of truth is the
//! [`ShardMetrics`] ledger, which *is* persisted — the export below simply
//! re-reads it at every scrape.

use crate::metrics::ShardMetrics;
use pdm_obs::{EventJournal, MetricRegistry, SpanId};

/// Events retained by the service's post-mortem journal.
pub(crate) const JOURNAL_CAPACITY: usize = 256;

/// Per-shard observability state: the shard's registry and the span handles
/// of every stage its serving loop times.  Lives behind the shard lock.
#[derive(Debug)]
pub(crate) struct ShardObs {
    pub(crate) registry: MetricRegistry,
    /// Ingest-stripe → shard-FIFO transfers (work = requests moved).
    pub(crate) transfer: SpanId,
    /// Whole-queue drains (work = requests served; reuses the drain's
    /// existing single latency measurement, adding no clock reads).
    pub(crate) drain: SpanId,
    /// Posted-price fused quote→observe segments (work = segment length)
    /// and privacy quotes (work = 1 each).
    pub(crate) quote: SpanId,
    /// Privacy outcome observations, settle included (work = 1 each).
    pub(crate) observe: SpanId,
    /// The owner-ledger settlement sub-step of a privacy observe.
    pub(crate) settle: SpanId,
    /// Self-contained auction rounds (work = bids in the round).
    pub(crate) auction: SpanId,
}

impl ShardObs {
    pub(crate) fn new() -> Self {
        let mut registry = MetricRegistry::new();
        let transfer = registry.span(
            "ingest.transfer",
            "Ingest-stripe to shard-FIFO queue transfers",
        );
        let drain = registry.span("shard.drain", "Whole-queue shard drains");
        let quote = registry.span(
            "shard.quote",
            "Posted-price serve segments and privacy quotes",
        );
        let observe = registry.span("shard.observe", "Privacy outcome observations");
        let settle = registry.span(
            "ledger.settle",
            "Privacy charge settlements against owner ledgers",
        );
        let auction = registry.span("shard.auction", "Self-contained auction rounds");
        Self {
            registry,
            transfer,
            drain,
            quote,
            observe,
            settle,
            auction,
        }
    }
}

/// Service-level observability state: spans for the stages that run outside
/// any one shard, plus the bounded post-mortem event journal.
#[derive(Debug)]
pub(crate) struct ServiceObs {
    pub(crate) registry: MetricRegistry,
    /// Incremental WAL checkpoints (work = segments emitted).
    pub(crate) checkpoint: SpanId,
    /// WAL replays on top of a base snapshot (work = segments replayed).
    pub(crate) restore: SpanId,
    /// Last [`JOURNAL_CAPACITY`] notable events (checkpoints, restores).
    pub(crate) journal: EventJournal,
}

impl ServiceObs {
    pub(crate) fn new() -> Self {
        let mut registry = MetricRegistry::new();
        let checkpoint = registry.span("wal.checkpoint", "Incremental WAL checkpoints");
        let restore = registry.span("wal.restore", "WAL segment replays over a base snapshot");
        Self {
            registry,
            checkpoint,
            restore,
            journal: EventJournal::with_capacity(JOURNAL_CAPACITY),
        }
    }
}

/// Exports one (typically aggregated) [`ShardMetrics`] ledger into `registry`
/// as named counters — the exposition view of the ledger.  The ledger stays
/// the source of truth (it is what snapshots persist and the fingerprint
/// covers); the export re-derives the counters at every scrape, so the two
/// can never drift apart.
pub(crate) fn export_shard_metrics(registry: &mut MetricRegistry, metrics: &ShardMetrics) {
    fn add(registry: &mut MetricRegistry, name: &str, help: &str, value: f64) {
        let id = registry.counter(name, help);
        registry.inc(id, value);
    }
    add(
        registry,
        "quotes_served_total",
        "Price quotes served",
        metrics.quotes_served as f64,
    );
    add(
        registry,
        "observations_total",
        "Outcome reports applied",
        metrics.observations as f64,
    );
    add(
        registry,
        "sales_total",
        "Accepted quotes",
        metrics.sales as f64,
    );
    add(
        registry,
        "revenue_total",
        "Cumulative revenue from accepted quotes",
        metrics.revenue,
    );
    add(
        registry,
        "regret_total",
        "Exact cumulative regret (ground-truth outcomes only)",
        metrics.regret,
    );
    add(
        registry,
        "regret_proxy_total",
        "Cumulative quote uncertainty width",
        metrics.regret_proxy,
    );
    add(
        registry,
        "shed_total",
        "Requests shed at admission (queue full)",
        metrics.shed as f64,
    );
    add(
        registry,
        "rejected_total",
        "Requests that reached a shard but could not be served",
        metrics.rejected as f64,
    );
    add(
        registry,
        "drift_fires_total",
        "Drift-detector firings",
        metrics.drift_fires as f64,
    );
    add(
        registry,
        "drift_restarts_total",
        "Knowledge-set restarts",
        metrics.drift_restarts as f64,
    );
    add(
        registry,
        "evictions_total",
        "Tenant sessions paged out by the cold-tenant pager",
        metrics.evictions as f64,
    );
    add(
        registry,
        "rehydrations_total",
        "Paged-out tenant sessions materialised back in",
        metrics.rehydrations as f64,
    );
    add(
        registry,
        "epsilon_spent_total",
        "Privacy leakage debited across privacy tenants",
        metrics.epsilon_spent,
    );
    add(
        registry,
        "compensation_paid_total",
        "Compensation accrued to data owners",
        metrics.compensation_paid,
    );
    add(
        registry,
        "owners_exhausted_total",
        "Data owners retired on budget exhaustion",
        metrics.owners_exhausted as f64,
    );
    add(
        registry,
        "privacy_throttled_total",
        "Privacy quotes refused for exhausted supply",
        metrics.privacy_throttled as f64,
    );
    add(
        registry,
        "arbitrage_clamps_total",
        "Posted prices clamped to the arbitrage-free ceiling",
        metrics.arbitrage_clamps as f64,
    );
    add(
        registry,
        "auction.rounds_total",
        "Auction rounds settled",
        metrics.auction.auctions as f64,
    );
    add(
        registry,
        "auction.sales_total",
        "Auction rounds that sold",
        metrics.auction.sales as f64,
    );
    add(
        registry,
        "auction.reserve_hits_total",
        "Sold auction rounds priced by the reserve",
        metrics.auction.reserve_hits as f64,
    );
    add(
        registry,
        "auction.revenue_total",
        "Cumulative auction clearing revenue",
        metrics.auction.revenue,
    );
    add(
        registry,
        "auction.welfare_total",
        "Cumulative allocative welfare (winning bids)",
        metrics.auction.welfare,
    );
    add(
        registry,
        "auction.baseline_revenue_total",
        "Second-price-no-reserve baseline revenue",
        metrics.auction.baseline_revenue,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn export_covers_the_ledger_and_rereads_cleanly() {
        let mut metrics = ShardMetrics::new();
        metrics.quotes_served = 7;
        metrics.revenue = 3.5;
        metrics.epsilon_spent = 0.25;
        metrics.auction.auctions = 2;
        metrics.auction.revenue = 1.5;

        let mut registry = MetricRegistry::new();
        export_shard_metrics(&mut registry, &metrics);
        assert_eq!(registry.counter_value("quotes_served_total"), Some(7.0));
        assert_eq!(registry.counter_value("revenue_total"), Some(3.5));
        assert_eq!(registry.counter_value("epsilon_spent_total"), Some(0.25));
        assert_eq!(registry.counter_value("auction.rounds_total"), Some(2.0));
        assert_eq!(registry.counter_value("auction.revenue_total"), Some(1.5));

        // Scrapes export into a fresh merge each time, so a second export
        // into a fresh registry reads the same values, not doubled ones.
        let mut again = MetricRegistry::new();
        export_shard_metrics(&mut again, &metrics);
        assert_eq!(
            again.to_json(true).render(),
            registry.to_json(true).render()
        );
    }
}
