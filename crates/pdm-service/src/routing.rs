//! Tenant identity and stable shard routing.
//!
//! Every data owner (or survey) the service prices for is a *tenant* with
//! its own independent pricing session.  Tenants are routed to shards by a
//! **stable** hash — a pure function of the tenant id and the shard count,
//! with no per-process seed — so the same tenant lands on the same shard in
//! every run, on every platform, and after every snapshot/restore cycle.
//! (`std::collections::HashMap`'s default hasher is randomly seeded per
//! process and would break exactly that property, which is why the routing
//! hash is hand-rolled here.)

use std::fmt;

/// Identifier of one pricing tenant (a data owner or survey whose queries
/// share a learned market-value model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(pub u64);

impl TenantId {
    /// Derives a tenant id from a human-readable name via the 64-bit FNV-1a
    /// hash — stable across runs, platforms, and compiler versions.
    #[must_use]
    pub fn from_name(name: &str) -> Self {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = FNV_OFFSET;
        for byte in name.as_bytes() {
            hash ^= u64::from(*byte);
            hash = hash.wrapping_mul(FNV_PRIME);
        }
        Self(hash)
    }
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tenant-{}", self.0)
    }
}

/// Mixes a tenant id through the SplitMix64 finaliser.
///
/// Sequential ids (0, 1, 2, …) are the common case in practice; the
/// finaliser spreads them uniformly so `% shards` does not alias every
/// tenant of one stride onto one shard.
#[must_use]
fn mix(id: u64) -> u64 {
    let mut z = id.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The shard a tenant is routed to — a pure, seedless function, identical
/// across runs and processes.
///
/// # Panics
/// Panics when `shards == 0`.
#[must_use]
pub fn shard_of(tenant: TenantId, shards: usize) -> usize {
    assert!(shards > 0, "a service needs at least one shard");
    (mix(tenant.0) % shards as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_stable_against_pinned_golden_values() {
        // These values pin the routing function itself: if the hash ever
        // changes, restored snapshots would re-route tenants and per-shard
        // state would silently migrate.  Do not update these without a
        // snapshot-migration story.
        assert_eq!(shard_of(TenantId(0), 8), 7);
        assert_eq!(shard_of(TenantId(1), 8), 1);
        assert_eq!(shard_of(TenantId(2), 8), 6);
        assert_eq!(shard_of(TenantId(42), 8), 5);
        assert_eq!(shard_of(TenantId(u64::MAX), 8), 0);
        assert_eq!(shard_of(TenantId(12_345), 3), 2);
    }

    #[test]
    fn from_name_matches_fnv1a_reference() {
        // FNV-1a reference values (independently computable).
        assert_eq!(TenantId::from_name(""), TenantId(0xcbf2_9ce4_8422_2325));
        assert_eq!(TenantId::from_name("a"), TenantId(0xaf63_dc4c_8601_ec8c));
        // Distinct names separate.
        assert_ne!(
            TenantId::from_name("owner-1"),
            TenantId::from_name("owner-2")
        );
    }

    #[test]
    fn sequential_ids_spread_across_shards() {
        let shards = 8;
        let mut counts = vec![0usize; shards];
        for id in 0..1_000 {
            counts[shard_of(TenantId(id), shards)] += 1;
        }
        // Perfectly uniform would be 125 per shard; accept a generous band.
        for (shard, count) in counts.iter().enumerate() {
            assert!(
                (75..=175).contains(count),
                "shard {shard} got {count} of 1000 tenants"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let _ = shard_of(TenantId(1), 0);
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(TenantId(9).to_string(), "tenant-9");
    }
}
