//! # pdm-service
//!
//! A sharded, concurrent market-serving engine for the personal-data
//! pricing mechanism of Niu et al. (ICDE 2020).
//!
//! The paper's mechanism is an *online* posted-price loop: a broker quotes
//! a price per arriving query and refines its uncertainty set from the
//! binary accept/reject signal.  The rest of the workspace runs that loop
//! inside offline, single-tenant simulations; this crate is the serving
//! layer that runs **many** such loops — one independent pricing session per
//! data owner or survey — behind a production-shaped API:
//!
//! * **Stable sharding** — tenants are routed to one of `N` shards by a
//!   seedless hash ([`routing::shard_of`]), so routing survives restarts
//!   and snapshot/restore cycles.
//! * **Submit/drain** — [`MarketService::submit`] admits a request into its
//!   tenant's shard queue; [`MarketService::drain`] serves every queued
//!   request on a `std::thread::scope` worker pool, one shard per worker at
//!   a time, with **no global lock**.  Per-shard FIFO processing makes every
//!   computed value independent of the worker count — `bench serve` in
//!   `pdm-bench` verifies service aggregates against a serial simulation
//!   bit for bit.
//! * **Bounded admission** — shard queues have a hard capacity; overload is
//!   shed with [`ServiceError::QueueFull`] and counted, instead of growing
//!   memory without bound.
//! * **Mixed markets** — a tenant is either a posted-price session (the
//!   paper's loop) or an **auction tenant**: one request carries an item,
//!   a floor, and sealed bids; the tenant's [`AuctionPolicy`] (static /
//!   session-learned / empirical) quotes a personalized reserve, the eager
//!   second-price auction clears, and the policy learns from the outcome —
//!   all in one FIFO slot.  Both kinds share shards, snapshots, and
//!   metrics.
//! * **Privacy-budget ledgers** — a third tenant kind
//!   ([`TenantConfig::privacy`]) gives every data owner a compact budget
//!   ledger ([`LedgerBank`]): each quote's per-owner leakage is computed
//!   with the paper's privacy quantifier, owners whose ε budget is spent
//!   are retired (shrinking the sellable supply the mechanism prices),
//!   accepted sales debit ε and accrue tanh-contract compensation, the
//!   owed compensation rides the reserve so every sale covers its payouts,
//!   and quotes are clamped to an arbitrage-free band above the
//!   compensation curve ([`arbitrage_clamp`]).  Ledgers persist through
//!   snapshots (schema v5) and the WAL, and their totals join the
//!   determinism fingerprint.
//! * **Drift policies** — every tenant config carries a
//!   [`DriftPolicy`]: `Static` runs the
//!   paper's stationary mechanism unchanged, `Restart` re-initialises the
//!   knowledge set when a windowed accept/reject surprisal detector fires,
//!   and `Discounted` inflates the ellipsoid a little after every round
//!   that taught it nothing, so old cuts decay and a moved `θ*` is
//!   re-admitted.  Detector firings and restarts are counted per shard and
//!   the detector state survives snapshots (schema v3).
//! * **Per-shard metrics** — quotes served, accept rate, revenue, exact
//!   regret (when ground truth is supplied) plus an uncertainty-width
//!   regret proxy, shed/rejected counts, p50/p99 service latency, and the
//!   auction ledger (settled rounds, reserve hit-rate, clearing revenue,
//!   welfare, no-reserve baseline) ([`ShardMetrics`]); shard ledgers fold
//!   into one service-wide aggregate via
//!   [`MarketService::aggregate_metrics`].
//! * **Continuous ingest** — [`MarketService::ingest`] admits requests
//!   through a shared `&self` reference via mutex-striped per-shard
//!   queues, so producer threads keep feeding the service while a drain
//!   is in flight; capacity checks and shed accounting are unchanged.
//! * **Snapshots & WAL** — the whole service state serialises to
//!   deterministic JSON ([`MarketService::snapshot`]) and restores to a
//!   service that quotes bit-identically ([`MarketService::restore`]).
//!   With [`ServiceConfig::wal_segment_size`] set, shards track dirty
//!   tenants and [`MarketService::checkpoint`] persists only those as
//!   numbered WAL segments; [`MarketService::restore_with_wal`] replays
//!   base-plus-segments to the same bit-identical guarantee.
//! * **Cold-tenant paging** — with [`ServiceConfig::resident_capacity`]
//!   set, least-recently-served quiescent tenants page out to their
//!   serialised form and rehydrate on the next request, bounding the
//!   resident set under tenant churn.
//! * **Observability** — every shard carries a `pdm-obs`
//!   [`MetricRegistry`] behind its existing lock: the serving stages
//!   (`ingest.transfer`, `shard.drain`, `shard.quote`, `shard.observe`,
//!   `ledger.settle`, `shard.auction`) record spans over deterministic
//!   log-bucket histograms, and [`MarketService::scrape`] folds shard
//!   registries, the aggregate [`ShardMetrics`] counters, and point-in-time
//!   gauges into one registry renderable as Prometheus text or
//!   deterministic JSON.  Registry state is process-local: snapshots and
//!   the WAL never carry it, and a restored service scrapes fresh span
//!   histograms while the persisted ledger counters carry on.
//!
//! ## Quickstart
//!
//! ```
//! use pdm_linalg::Vector;
//! use pdm_service::{MarketService, OutcomeReport, QueryRequest, ServiceConfig, TenantConfig, TenantId};
//!
//! let mut service = MarketService::new(ServiceConfig { shards: 4, queue_capacity: 64, ..ServiceConfig::default() })?;
//! service.register_tenant(TenantId::from_name("survey-7"), TenantConfig::standard(3, 1_000))?;
//! service.submit_quote(QueryRequest {
//!     tenant: TenantId::from_name("survey-7"),
//!     features: Vector::from_slice(&[0.2, 0.3, 0.5]),
//!     reserve_price: 0.4,
//! })?;
//! let quote = *service.drain(4)[0].quote().expect("a quote response");
//! service.submit_outcome(OutcomeReport {
//!     tenant: TenantId::from_name("survey-7"),
//!     accepted: true,
//!     market_value: None, // production feedback: only the accept bit
//! })?;
//! service.drain(4);
//! assert!(quote.posted_price >= 0.4); // the reserve price is honoured
//! assert_eq!(service.metrics().sales, 1);
//! # Ok::<(), pdm_service::ServiceError>(())
//! ```
//!
//! ## Where this sits in the workspace
//!
//! `pdm-pricing` owns the mechanism and its re-entrant
//! [`PricingSession`](pdm_pricing::session::PricingSession) interface; this
//! crate owns tenancy, routing, queues, concurrency, metrics, and
//! persistence.  The `bench serve` subcommand of `pdm-bench` drives this
//! service with a closed-loop traffic generator and reports throughput and
//! latency into the versioned BENCH report.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod ledger;
pub mod metrics;
mod obs;
pub mod routing;
mod shard;
pub mod snapshot;
mod sync;
pub mod tenant;
pub mod wal;

mod service;

pub use api::{
    AuctionRequest, OutcomeReport, Payload, QueryRequest, Request, RequestError, Response,
    ServiceError, Ticket,
};
pub use ledger::{
    arbitrage_clamp, LedgerBank, OwnerLedger, SettledCharge, SupplyQuote, ARBITRAGE_PRICE_MARKUP,
};
pub use metrics::ShardMetrics;
pub use pdm_obs::MetricRegistry;
pub use pdm_pricing::drift::DriftPolicy;
pub use routing::{shard_of, TenantId};
pub use service::{MarketService, ServiceConfig};
pub use snapshot::SNAPSHOT_SCHEMA_VERSION;
pub use tenant::{
    AuctionPolicy, MarketKind, PrivacyParams, TenantConfig, TenantMechanism, TenantState,
    AUCTION_SESSION_DELTA,
};
pub use wal::WAL_SEGMENT_KIND;
