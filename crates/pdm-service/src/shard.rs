//! One shard: a bounded request queue plus the tenant states routed to it.
//!
//! A shard is the unit of concurrency.  All state behind it — the tenant
//! sessions, the queue, the metrics — is owned by the shard and mutated by
//! exactly one worker at a time, so there is no global lock and no
//! fine-grained locking inside the hot path.  Requests are processed
//! strictly in submission (FIFO) order, which is what makes the whole
//! engine's arithmetic independent of how many workers drain it.
//!
//! With a resident cap the shard also runs the cold-tenant pager: after a
//! drain, least-recently-served quiescent tenants beyond the cap are
//! serialised to their snapshot form and dropped from the resident map;
//! the next request addressed to a paged-out tenant rehydrates it from
//! that form.  Because the serialised form is the same deterministic
//! document the snapshot writer emits — and restoring it is bit-identical
//! by the snapshot contract — paging never changes a price, a ledger, or
//! a counter, only *when* memory is spent.  The shard additionally tracks
//! which tenants changed since the last checkpoint (the dirty set), which
//! is what makes WAL snapshots incremental.

use crate::api::{AuctionRequest, Payload, Request, RequestError, Response};
#[cfg(test)]
use crate::api::{OutcomeReport, QueryRequest};
use crate::ledger::arbitrage_clamp;
use crate::metrics::ShardMetrics;
use crate::obs::ShardObs;
use crate::routing::TenantId;
use crate::snapshot::{cold_tenant_json, cold_tenant_state, tenant_json};
use crate::tenant::TenantState;
use pdm_linalg::Json;
use pdm_pricing::prelude::{BatchRequest, BatchResponse, StepOutcome};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::time::Instant;

/// A shard: tenants (resident and paged out), queue, metrics.
#[derive(Debug)]
pub(crate) struct Shard {
    index: usize,
    /// Cap on materialised tenant sessions (this shard's share of the
    /// service-wide `resident_capacity`); `None` = unbounded.
    resident_capacity: Option<usize>,
    /// Whether privacy tenants (which carry owner ledgers) may page out
    /// through the cold map.  Off by default: ledgers are the audit trail
    /// of real money and real privacy loss, so they leave memory only when
    /// the operator has opted into the WAL persistence path.
    ledger_paging: bool,
    tenants: BTreeMap<TenantId, TenantState>,
    /// Paged-out tenants, keyed to their compact serialised snapshot form.
    cold: BTreeMap<TenantId, String>,
    /// Tenants whose state changed since the last checkpoint or full
    /// snapshot.  Ordered so checkpoints serialise in id order.
    dirty: BTreeSet<TenantId>,
    /// Monotonic serve counter driving the LRU eviction order; ticks once
    /// per same-tenant run, so it is deterministic for a given request
    /// stream regardless of drain worker count.
    clock: u64,
    /// Last serve tick per resident tenant (absent = never served since
    /// materialisation; those evict first, tie-broken by id).
    last_served: BTreeMap<TenantId, u64>,
    queue: VecDeque<(u64, Request)>,
    pub(crate) metrics: ShardMetrics,
    /// Per-shard observability registry and span handles, mutated only by
    /// the worker holding this shard's lock (see [`crate::obs`]).
    pub(crate) obs: ShardObs,
    /// Scratch holding the maximal same-tenant FIFO run being drained;
    /// reused across [`Shard::process_all`] calls.
    run_scratch: Vec<(u64, Request)>,
    /// Scratch for the batched session responses of one run segment.
    response_scratch: Vec<BatchResponse>,
}

impl Shard {
    /// Queue capacity is enforced upstream at the ingest stripe (validated
    /// non-zero by [`crate::ServiceConfig`]); the shard FIFO itself only
    /// ever holds what a stripe transfer hands it.
    pub(crate) fn new(index: usize, resident_capacity: Option<usize>, ledger_paging: bool) -> Self {
        Self {
            index,
            resident_capacity,
            ledger_paging,
            tenants: BTreeMap::new(),
            cold: BTreeMap::new(),
            dirty: BTreeSet::new(),
            clock: 0,
            last_served: BTreeMap::new(),
            queue: VecDeque::new(),
            metrics: ShardMetrics::new(),
            obs: ShardObs::new(),
            run_scratch: Vec::new(),
            response_scratch: Vec::new(),
        }
    }

    pub(crate) fn contains(&self, tenant: TenantId) -> bool {
        self.tenants.contains_key(&tenant) || self.cold.contains_key(&tenant)
    }

    /// The resident state of one tenant, `None` when unknown or paged out.
    #[cfg(test)]
    pub(crate) fn resident_state(&self, tenant: TenantId) -> Option<&TenantState> {
        self.tenants.get(&tenant)
    }

    /// Registered tenants, resident or paged out.
    pub(crate) fn tenant_count(&self) -> usize {
        self.tenants.len() + self.cold.len()
    }

    /// Tenants currently materialised in memory.
    pub(crate) fn resident_count(&self) -> usize {
        self.tenants.len()
    }

    /// Approximate bytes of tenant state this shard holds: materialised
    /// sessions at their learned-state footprint, paged-out tenants at
    /// the length of their serialised form.
    pub(crate) fn resident_memory_bytes(&self) -> usize {
        let hot: usize = self
            .tenants
            .values()
            .map(TenantState::memory_footprint_bytes)
            .sum();
        let cold: usize = self.cold.values().map(String::len).sum();
        hot + cold
    }

    /// Every tenant's serialised document paired with its id — resident
    /// tenants serialised fresh, paged-out tenants parsed back from their
    /// stored form (byte-identical either way, by the snapshot contract).
    pub(crate) fn tenant_documents(&self) -> Vec<(TenantId, Json)> {
        let mut documents: Vec<(TenantId, Json)> = self
            .tenants
            .values()
            .map(|state| (state.id, tenant_json(state)))
            .collect();
        documents.extend(
            self.cold
                .iter()
                .map(|(&id, raw)| (id, cold_tenant_json(raw))),
        );
        documents.sort_by_key(|(id, _)| *id);
        documents
    }

    /// Registers a tenant state on this shard.  The caller (the service)
    /// has already checked for duplicates.  Registration beyond the
    /// resident cap pages the (necessarily quiescent) state straight out,
    /// so a service can hold far more registered tenants than its cap.
    pub(crate) fn register(&mut self, state: TenantState) {
        let id = state.id;
        self.dirty.insert(id);
        if self
            .resident_capacity
            .is_some_and(|cap| self.tenants.len() >= cap)
            && self.pageable(&state)
        {
            self.cold.insert(id, tenant_json(&state).render());
        } else {
            self.tenants.insert(id, state);
        }
    }

    /// Whether a tenant may leave memory through the cold map.  Privacy
    /// tenants stay pinned resident unless the service opted into
    /// `ledger_paging` (validated to require the WAL persistence path).
    fn pageable(&self, state: &TenantState) -> bool {
        self.ledger_paging || state.privacy.is_none()
    }

    /// Replaces (or registers) a tenant state — the WAL-replay path, where
    /// a later record supersedes whatever the base snapshot carried.
    pub(crate) fn replace(&mut self, state: TenantState) {
        let id = state.id;
        self.cold.remove(&id);
        self.tenants.remove(&id);
        self.register(state);
    }

    pub(crate) fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// The regret ledger of one tenant on this shard.  A paged-out tenant
    /// is read from its serialised form without joining the resident set.
    pub(crate) fn tenant_report(
        &self,
        tenant: TenantId,
    ) -> Option<pdm_pricing::prelude::RegretReport> {
        if let Some(state) = self.tenants.get(&tenant) {
            return Some(state.session.tracker().report());
        }
        self.cold
            .get(&tenant)
            .map(|raw| cold_tenant_state(raw).session.tracker().report())
    }

    /// Number of tenants with a quoted-but-unobserved round.  Paged-out
    /// tenants are always quiescent (the pager refuses open rounds).
    pub(crate) fn open_rounds(&self) -> usize {
        self.tenants
            .values()
            .filter(|t| t.session.has_pending())
            .count()
    }

    /// Tenants changed since the last checkpoint, in id order, as
    /// serialised documents — **quiescent tenants only**.  A tenant with an
    /// open round stays dirty (its mid-round state has no serialised form)
    /// and is captured by a later checkpoint, which is what lets
    /// checkpoints run under live traffic.  Captured tenants leave the
    /// dirty set.
    pub(crate) fn checkpoint_dirty(&mut self) -> Vec<(TenantId, Json)> {
        let ids: Vec<TenantId> = self.dirty.iter().copied().collect();
        let mut captured = Vec::new();
        for id in ids {
            if let Some(state) = self.tenants.get(&id) {
                if state.session.has_pending() {
                    continue;
                }
                captured.push((id, tenant_json(state)));
            } else if let Some(raw) = self.cold.get(&id) {
                captured.push((id, cold_tenant_json(raw)));
            }
            self.dirty.remove(&id);
        }
        captured
    }

    /// Clears the dirty set — a full snapshot captured everything.
    pub(crate) fn clear_dirty(&mut self) {
        self.dirty.clear();
    }

    /// Appends a stripe transfer to the FIFO.  Capacity was enforced at
    /// ingest time (the stripe is the bounded component), so the transfer
    /// itself never sheds.
    pub(crate) fn admit_transferred(&mut self, requests: impl Iterator<Item = (u64, Request)>) {
        self.queue.extend(requests);
    }

    /// Appends a request to the FIFO directly — shard-level tests drive
    /// the processing loop through this; the service path goes through the
    /// bounded ingest stripe and [`Shard::admit_transferred`].
    #[cfg(test)]
    pub(crate) fn enqueue(&mut self, seq: u64, request: Request) {
        self.queue.push_back((seq, request));
    }

    /// Serves every queued request in FIFO order, producing one response
    /// per request.  Allocating convenience form of
    /// [`Shard::process_all_into`], used by the shard's own tests.
    #[cfg(test)]
    pub(crate) fn process_all(&mut self) -> Vec<Response> {
        let mut responses = Vec::new();
        self.process_all_into(&mut responses);
        responses
    }

    /// Serves every queued request in FIFO order, appending one response
    /// per request to `responses` — the allocation-free form callers with a
    /// reusable buffer drain through.
    ///
    /// The queue is drained in maximal same-tenant runs: each run is looked
    /// up once in the tenant map and handed to
    /// [`PricingSession::serve_batch`](pdm_pricing::prelude::PricingSession::serve_batch)
    /// as a whole, so consecutive requests for one tenant (the common shape
    /// of a quote→observe workload) pay dispatch once.  Request order — and
    /// therefore every quote, counter, and ledger entry — is exactly that of
    /// one-at-a-time processing.  Processing latency is timed once for the
    /// whole drain and attributed evenly across its requests, keeping the
    /// hot path down to two clock reads per drain.
    pub(crate) fn process_all_into(&mut self, responses: &mut Vec<Response>) {
        if self.queue.is_empty() {
            return;
        }
        // pdm-lint: allow(no-ambient-clock) reason="wall-clock latency span; wall histograms are documented non-deterministic and excluded from the determinism fingerprint"
        let started = Instant::now();
        let total = self.queue.len();
        responses.reserve(total);
        while let Some(tenant) = self.queue.front().map(|(_, request)| request.tenant()) {
            self.run_scratch.clear();
            while self
                .queue
                .front()
                .is_some_and(|(_, request)| request.tenant() == tenant)
            {
                if let Some(entry) = self.queue.pop_front() {
                    self.run_scratch.push(entry);
                }
            }
            self.ensure_resident(tenant);
            self.serve_run(tenant, responses);
            // The run mutated the session: mark it for the next checkpoint
            // and refresh its slot in the LRU order.  One tick per run, so
            // the eviction order is deterministic for a given request
            // stream regardless of how many workers drain the other shards.
            self.dirty.insert(tenant);
            self.clock += 1;
            self.last_served.insert(tenant, self.clock);
        }
        self.enforce_residency();
        // One measurement feeds both the latency ledger and the drain span:
        // the whole-queue timing the hot path already paid for.
        let elapsed = started.elapsed();
        self.metrics.record_latency_batch(elapsed, total);
        self.obs
            .registry
            .record_span(self.obs.drain, elapsed, total as u64);
    }

    /// Materialises a paged-out tenant before its run is served.  The
    /// stored form is the exact document the snapshot writer emits, and
    /// restoring a snapshot is bit-identical, so a rehydrated tenant
    /// prices exactly as if it had never left memory.
    fn ensure_resident(&mut self, tenant: TenantId) {
        if self.tenants.contains_key(&tenant) {
            return;
        }
        if let Some(raw) = self.cold.remove(&tenant) {
            self.tenants.insert(tenant, cold_tenant_state(&raw));
            self.metrics.rehydrations += 1;
        }
    }

    /// Pages least-recently-served quiescent tenants out until the
    /// resident set fits the cap again.  Tenants with an open round are
    /// skipped (their mid-round state has no serialised form); they become
    /// evictable as soon as the round closes.  Ties on the serve tick
    /// (e.g. never-served tenants) break on the id, keeping the eviction
    /// sequence — and therefore the eviction/rehydration counters —
    /// deterministic.
    fn enforce_residency(&mut self) {
        let Some(cap) = self.resident_capacity else {
            return;
        };
        if self.tenants.len() <= cap {
            return;
        }
        let mut candidates: Vec<(u64, TenantId)> = self
            .tenants
            .values()
            .filter(|state| !state.session.has_pending() && self.pageable(state))
            .map(|state| {
                (
                    self.last_served.get(&state.id).copied().unwrap_or(0),
                    state.id,
                )
            })
            .collect();
        candidates.sort_unstable();
        for (_, id) in candidates {
            if self.tenants.len() <= cap {
                break;
            }
            // pdm-lint: allow(no-unwrap-in-lib) reason="candidates were collected from the resident map two lines up under the same &mut self"
            let state = self.tenants.remove(&id).expect("candidate is resident");
            self.cold.insert(id, tenant_json(&state).render());
            self.last_served.remove(&id);
            self.metrics.evictions += 1;
        }
    }

    /// Serves one maximal same-tenant run currently staged in
    /// `run_scratch`, appending one response per request.
    fn serve_run(&mut self, tenant: TenantId, responses: &mut Vec<Response>) {
        let state = self
            .tenants
            .get_mut(&tenant)
            // pdm-lint: allow(no-unwrap-in-lib) reason="admission and ensure_resident ran before any run is served; an unknown tenant here is queue corruption worth aborting on"
            .expect("submit admits only registered tenants");
        let metrics = &mut self.metrics;
        let obs = &mut self.obs;
        let run = &self.run_scratch;
        let response_scratch = &mut self.response_scratch;
        let shard_index = self.index;

        // Drift activity (detector firings, knowledge-set restarts) is
        // accounted as a before/after delta over the whole run — the sum of
        // the per-request deltas, and deterministic either way.
        let fires_before = state.session.mechanism().detector_fires();
        let restarts_before = state.session.mechanism().restarts();
        let posted = state.config.market.is_posted();
        let privacy = state.config.market.privacy_params().is_some();

        let mut pos = 0;
        while pos < run.len() {
            if let (seq, Request::Auction(auction)) = &run[pos] {
                // pdm-lint: allow(no-ambient-clock) reason="wall-clock latency span; wall histograms are documented non-deterministic and excluded from the determinism fingerprint"
                let round_started = Instant::now();
                let payload = Self::serve_auction_one(state, metrics, auction);
                obs.registry.record_span(
                    obs.auction,
                    round_started.elapsed(),
                    auction.bids.len() as u64,
                );
                responses.push(Response {
                    seq: *seq,
                    tenant,
                    shard: shard_index,
                    payload,
                });
                pos += 1;
                continue;
            }
            // Maximal posted-market segment `[pos, seg_end)`.
            let seg_end = run[pos..]
                .iter()
                .position(|(_, request)| matches!(request, Request::Auction(_)))
                .map_or(run.len(), |offset| pos + offset);
            let segment = &run[pos..seg_end];
            if posted {
                // One span batch per fused segment: the ~60 ns/quote hot
                // path pays a single clock-read pair per segment, never per
                // request.
                // pdm-lint: allow(no-ambient-clock) reason="wall-clock latency span; wall histograms are documented non-deterministic and excluded from the determinism fingerprint"
                let segment_started = Instant::now();
                response_scratch.clear();
                let batch = segment.iter().map(|(_, request)| match request {
                    Request::Quote(query) => BatchRequest::Quote {
                        features: &query.features,
                        reserve_price: query.reserve_price,
                    },
                    Request::Observe(outcome) => BatchRequest::Observe(StepOutcome {
                        accepted: outcome.accepted,
                        market_value: outcome.market_value,
                    }),
                    Request::Auction(_) => unreachable!("segment excludes auction requests"),
                });
                state.session.serve_batch(batch, response_scratch);
                for ((seq, _), response) in segment.iter().zip(response_scratch.iter()) {
                    let payload = match response {
                        BatchResponse::Quoted(quote) => {
                            metrics.quotes_served += 1;
                            Payload::Quoted(*quote)
                        }
                        BatchResponse::Observed(Some(record)) => {
                            metrics.observations += 1;
                            if record.accepted {
                                metrics.sales += 1;
                            }
                            metrics.revenue += record.revenue;
                            if let Some(regret) = record.regret {
                                metrics.regret += regret;
                            }
                            metrics.regret_proxy += record.uncertainty_width;
                            Payload::Observed(*record)
                        }
                        BatchResponse::Observed(None) => {
                            metrics.rejected += 1;
                            Payload::Failed(RequestError::NoOpenRound)
                        }
                    };
                    responses.push(Response {
                        seq: *seq,
                        tenant,
                        shard: shard_index,
                        payload,
                    });
                }
                obs.registry.record_span(
                    obs.quote,
                    segment_started.elapsed(),
                    segment.len() as u64,
                );
            } else if privacy {
                // Privacy-market traffic is served one request at a time:
                // every quote first consults the owner ledgers, so there is
                // no batched session fast path to take.  Per-request span
                // timing is affordable here — this is explicitly not the
                // batched posted-price hot path.
                for (seq, request) in segment {
                    let span = match request {
                        Request::Quote(_) => obs.quote,
                        _ => obs.observe,
                    };
                    // pdm-lint: allow(no-ambient-clock) reason="wall-clock latency span; wall histograms are documented non-deterministic and excluded from the determinism fingerprint"
                    let request_started = Instant::now();
                    let payload = Self::serve_privacy_one(state, metrics, obs, request);
                    obs.registry.record_span(span, request_started.elapsed(), 1);
                    responses.push(Response {
                        seq: *seq,
                        tenant,
                        shard: shard_index,
                        payload,
                    });
                }
            } else {
                // Posted-price traffic addressed to an auction tenant: every
                // request in the segment is rejected, exactly as the
                // one-at-a-time path did.
                for (seq, _) in segment {
                    metrics.rejected += 1;
                    responses.push(Response {
                        seq: *seq,
                        tenant,
                        shard: shard_index,
                        payload: Payload::Failed(RequestError::MarketMismatch),
                    });
                }
            }
            pos = seg_end;
        }

        let mechanism = state.session.mechanism();
        metrics.drift_fires += mechanism.detector_fires() - fires_before;
        metrics.drift_restarts += mechanism.restarts() - restarts_before;
    }

    /// Settles one self-contained auction round: reserve quote, eager
    /// second-price clearing, policy feedback — all through the shared
    /// [`pdm_auction::run_auction_round`] path.  Drift deltas are accounted
    /// by the enclosing run.
    fn serve_auction_one(
        state: &mut TenantState,
        metrics: &mut ShardMetrics,
        auction: &AuctionRequest,
    ) -> Payload {
        match state.serve_auction(&auction.features, auction.floor, &auction.bids) {
            Some(cleared) => {
                metrics.auction.record(&cleared);
                Payload::Cleared(cleared)
            }
            None => {
                metrics.rejected += 1;
                Payload::Failed(RequestError::MarketMismatch)
            }
        }
    }

    /// Serves one quote or observe for a privacy tenant.
    ///
    /// A quote first consults the tenant's [`crate::LedgerBank`]: owners
    /// whose budget cannot absorb this query's leakage are retired (sticky),
    /// and their coordinates are masked out of the feature vector before the
    /// mechanism prices it.  The total compensation owed to the surviving
    /// owners rides the reserve — the mechanism never posts below what the
    /// sale costs in payouts — and the surfaced price is clamped to the
    /// arbitrage-free band `[C(ε), max(reserve, markup · C(ε))]` (the
    /// ceiling never undercuts the effective reserve).  When the clamp fires,
    /// the *session* keeps learning from its own unclamped price (the
    /// mechanism's feedback loop stays consistent), while the quote, the
    /// settled round, and every revenue counter use the clamped price the
    /// buyer actually saw — a deterministic divergence, identical across
    /// worker counts.
    fn serve_privacy_one(
        state: &mut TenantState,
        metrics: &mut ShardMetrics,
        obs: &mut ShardObs,
        request: &Request,
    ) -> Payload {
        match request {
            Request::Quote(query) => {
                let supply = state.bank_mut().begin_quote(&query.features);
                metrics.owners_exhausted += supply.newly_exhausted;
                if !supply.sellable {
                    metrics.privacy_throttled += 1;
                    return Payload::Failed(RequestError::BudgetExhausted);
                }
                let reserve = query.reserve_price.max(supply.total_compensation);
                let Some(mut quote) =
                    state
                        .session
                        .step_throttled(&query.features, &supply.active, reserve)
                else {
                    // A sellable supply has an active non-zero coordinate, so
                    // the session never refuses here; refusing the request is
                    // still strictly safer than panicking.  Both sides of the
                    // round state drop together — the staged charge and any
                    // open round — so quote and charge stay in lockstep.
                    state.session.abandon_round();
                    state.bank_mut().cancel_quote();
                    metrics.privacy_throttled += 1;
                    return Payload::Failed(RequestError::BudgetExhausted);
                };
                let (price, clamped) =
                    arbitrage_clamp(quote.posted_price, reserve, supply.total_compensation);
                if clamped {
                    metrics.arbitrage_clamps += 1;
                }
                state.bank_mut().commit_quote(price);
                metrics.quotes_served += 1;
                quote.posted_price = price;
                Payload::Quoted(quote)
            }
            Request::Observe(outcome) => {
                let observed = state.session.observe(StepOutcome {
                    accepted: outcome.accepted,
                    market_value: outcome.market_value,
                });
                let Some(mut record) = observed else {
                    // No open round: nothing was staged on the bank either
                    // (quote and charge are staged in lockstep).
                    metrics.rejected += 1;
                    return Payload::Failed(RequestError::NoOpenRound);
                };
                metrics.observations += 1;
                // pdm-lint: allow(no-ambient-clock) reason="wall-clock latency span; wall histograms are documented non-deterministic and excluded from the determinism fingerprint"
                let settle_started = Instant::now();
                let settled = state.bank_mut().settle(record.accepted);
                obs.registry
                    .record_span(obs.settle, settle_started.elapsed(), 1);
                if let Some(charge) = settled {
                    record.posted_price = charge.quoted_price;
                    record.revenue = if record.accepted {
                        charge.quoted_price
                    } else {
                        0.0
                    };
                    if record.accepted {
                        metrics.sales += 1;
                        metrics.epsilon_spent += charge.total_leakage;
                        metrics.compensation_paid += charge.total_compensation;
                    }
                } else if record.accepted {
                    metrics.sales += 1;
                }
                metrics.revenue += record.revenue;
                if let Some(regret) = record.regret {
                    metrics.regret += regret;
                }
                metrics.regret_proxy += record.uncertainty_width;
                Payload::Observed(record)
            }
            Request::Auction(_) => unreachable!("segment excludes auction requests"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tenant::TenantConfig;
    use pdm_linalg::Vector;

    fn shard_with_tenant() -> Shard {
        let mut shard = Shard::new(0, None, false);
        shard.register(TenantState::new(
            TenantId(1),
            TenantConfig::standard(2, 100),
        ));
        shard
    }

    fn quote_request() -> Request {
        Request::Quote(QueryRequest {
            tenant: TenantId(1),
            features: Vector::from_slice(&[0.6, 0.8]),
            reserve_price: 0.1,
        })
    }

    #[test]
    fn fifo_quote_then_observe_round_trip() {
        let mut shard = shard_with_tenant();
        shard.enqueue(0, quote_request());
        let responses = shard.process_all();
        assert_eq!(responses.len(), 1);
        let quote = responses[0].quote().expect("a quote response");
        assert!(quote.posted_price.is_finite());

        shard.enqueue(
            1,
            Request::Observe(OutcomeReport {
                tenant: TenantId(1),
                accepted: true,
                market_value: Some(1.0),
            }),
        );
        let responses = shard.process_all();
        assert!(matches!(responses[0].payload, Payload::Observed(_)));
        assert_eq!(shard.metrics.quotes_served, 1);
        assert_eq!(shard.metrics.observations, 1);
        assert_eq!(shard.metrics.sales, 1);
        assert!(shard.metrics.regret >= 0.0);
        assert_eq!(shard.metrics.latency_samples(), 2);
        assert_eq!(shard.open_rounds(), 0);
    }

    #[test]
    fn paging_round_trips_a_tenant_through_the_cold_map() {
        // Cap 1: serving tenant 2 after tenant 1 pages tenant 1 out; a
        // later request pages it back in, and the dirty set has tracked
        // every mutation along the way.
        let mut shard = Shard::new(0, Some(1), false);
        shard.register(TenantState::new(
            TenantId(1),
            TenantConfig::standard(2, 100),
        ));
        shard.register(TenantState::new(
            TenantId(2),
            TenantConfig::standard(2, 100),
        ));
        // Registration beyond the cap pages straight out.
        assert_eq!(shard.resident_count(), 1);
        assert_eq!(shard.tenant_count(), 2);
        shard.enqueue(0, quote_request());
        shard.enqueue(
            1,
            Request::Observe(OutcomeReport {
                tenant: TenantId(1),
                accepted: true,
                market_value: Some(1.0),
            }),
        );
        shard.enqueue(
            2,
            Request::Quote(QueryRequest {
                tenant: TenantId(2),
                features: Vector::from_slice(&[0.6, 0.8]),
                reserve_price: 0.1,
            }),
        );
        shard.enqueue(
            3,
            Request::Observe(OutcomeReport {
                tenant: TenantId(2),
                accepted: false,
                market_value: Some(1.0),
            }),
        );
        let responses = shard.process_all();
        assert_eq!(responses.len(), 4);
        assert_eq!(shard.resident_count(), 1);
        assert!(shard.metrics.evictions >= 1);
        assert_eq!(shard.metrics.rehydrations, 1, "tenant 2 was paged out");
        // Both tenants stay addressable; the paged-out one reads its
        // ledger from the serialised form.
        assert!(shard.contains(TenantId(1)));
        assert!(shard.contains(TenantId(2)));
        assert_eq!(shard.tenant_report(TenantId(1)).unwrap().rounds, 1);
        assert_eq!(shard.tenant_report(TenantId(2)).unwrap().rounds, 1);
        // Every mutated tenant is pending for the next checkpoint.
        let captured = shard.checkpoint_dirty();
        assert_eq!(captured.len(), 2);
        assert!(shard.checkpoint_dirty().is_empty(), "dirty set drained");
    }

    #[test]
    fn auction_rounds_settle_in_one_fifo_slot_and_feed_the_ledger() {
        let mut shard = Shard::new(0, None, false);
        shard.register(TenantState::new(
            TenantId(2),
            crate::tenant::TenantConfig::auction(
                2,
                100,
                crate::tenant::AuctionPolicy::Static { markup: 0.0 },
            ),
        ));
        shard.enqueue(
            0,
            Request::Auction(AuctionRequest {
                tenant: TenantId(2),
                features: Vector::from_slice(&[0.6, 0.8]),
                floor: 0.3,
                bids: vec![0.9, 0.5],
            }),
        );
        let responses = shard.process_all();
        let cleared = responses[0].cleared().expect("a cleared response");
        assert_eq!(cleared.reserve, 0.3);
        assert_eq!(cleared.result.price, 0.5);
        assert_eq!(shard.metrics.auction.auctions, 1);
        assert_eq!(shard.metrics.auction.sales, 1);
        assert!((shard.metrics.auction.revenue - 0.5).abs() < 1e-12);
        assert!((shard.metrics.auction.welfare - 0.9).abs() < 1e-12);
        assert_eq!(shard.open_rounds(), 0, "auction rounds never stay open");
    }

    #[test]
    fn market_mismatch_is_rejected_both_ways() {
        let mut shard = shard_with_tenant();
        shard.register(TenantState::new(
            TenantId(2),
            crate::tenant::TenantConfig::auction(2, 100, crate::tenant::AuctionPolicy::Session),
        ));
        // An auction round addressed to the posted-price tenant…
        shard.enqueue(
            0,
            Request::Auction(AuctionRequest {
                tenant: TenantId(1),
                features: Vector::from_slice(&[0.6, 0.8]),
                floor: 0.1,
                bids: vec![1.0],
            }),
        );
        // …and a posted-price quote addressed to the auction tenant.
        shard.enqueue(
            1,
            Request::Quote(QueryRequest {
                tenant: TenantId(2),
                features: Vector::from_slice(&[0.6, 0.8]),
                reserve_price: 0.1,
            }),
        );
        let responses = shard.process_all();
        for response in &responses {
            assert_eq!(
                response.payload,
                Payload::Failed(RequestError::MarketMismatch)
            );
        }
        assert_eq!(shard.metrics.rejected, 2);
        assert_eq!(shard.metrics.quotes_served, 0);
        assert_eq!(shard.metrics.auction.auctions, 0);
    }

    #[test]
    fn privacy_quotes_debit_ledgers_until_exhaustion_throttles_supply() {
        use crate::tenant::PrivacyParams;
        let mut shard = Shard::new(0, None, false);
        let params = PrivacyParams {
            epsilon_budget: 1.2,
            ..PrivacyParams::default()
        };
        shard.register(TenantState::new(
            TenantId(7),
            TenantConfig::privacy(2, 100, params),
        ));
        let quote = |seq: u64| {
            (
                seq,
                Request::Quote(QueryRequest {
                    tenant: TenantId(7),
                    features: Vector::from_slice(&[0.6, 0.8]),
                    reserve_price: 0.0,
                }),
            )
        };
        let accept = |seq: u64| {
            (
                seq,
                Request::Observe(OutcomeReport {
                    tenant: TenantId(7),
                    accepted: true,
                    market_value: Some(2.0),
                }),
            )
        };
        // Round 1 debits ε = 0.6 and 0.8; round 2 retires owner 1 at quote
        // time (0.8 + 0.8 > 1.2) and debits only owner 0; round 3 retires
        // owner 0 too, leaving nothing sellable.
        for (seq, request) in [quote(0), accept(1), quote(2), accept(3), quote(4)] {
            shard.enqueue(seq, request);
        }
        let responses = shard.process_all();
        assert!(matches!(responses[0].payload, Payload::Quoted(_)));
        assert!(matches!(responses[2].payload, Payload::Quoted(_)));
        assert_eq!(
            responses[4].payload,
            Payload::Failed(RequestError::BudgetExhausted)
        );
        assert_eq!(shard.metrics.quotes_served, 2);
        assert_eq!(shard.metrics.sales, 2);
        assert_eq!(shard.metrics.owners_exhausted, 2);
        assert_eq!(shard.metrics.privacy_throttled, 1);
        assert!(
            (shard.metrics.epsilon_spent - 2.0).abs() < 1e-12,
            "0.6 + 0.8 + 0.6 of ε debited, got {}",
            shard.metrics.epsilon_spent
        );
        // Compensation rode the reserve, so every sale covered its payouts.
        assert!(shard.metrics.compensation_paid > 0.0);
        assert!(shard.metrics.compensation_paid <= shard.metrics.revenue + 1e-12);
        let bank = shard.tenants[&TenantId(7)].privacy.as_ref().unwrap();
        assert_eq!(bank.owners_exhausted(), 2);
        assert!(bank.ledgers().iter().all(|ledger| ledger.exhausted));
    }

    #[test]
    fn accepted_sale_after_unsellable_quote_still_settles_the_open_round() {
        use crate::tenant::PrivacyParams;
        let mut shard = Shard::new(0, None, false);
        shard.register(TenantState::new(
            TenantId(7),
            TenantConfig::privacy(2, 100, PrivacyParams::default()),
        ));
        let quote = |seq: u64, features: &[f64]| {
            (
                seq,
                Request::Quote(QueryRequest {
                    tenant: TenantId(7),
                    features: Vector::from_slice(features),
                    reserve_price: 0.0,
                }),
            )
        };
        // Quote A opens a round and stages its charge; quote B's leakage
        // (2.0 per owner against a 1.0 budget) retires everyone and is
        // refused without opening a round; the buyer then accepts A.  The
        // sale must settle round A's staged charge — not slip through as a
        // zero-debit, zero-compensation phantom sale.
        for (seq, request) in [
            quote(0, &[0.3, 0.2]),
            quote(1, &[2.0, 2.0]),
            (
                2,
                Request::Observe(OutcomeReport {
                    tenant: TenantId(7),
                    accepted: true,
                    market_value: Some(2.0),
                }),
            ),
        ] {
            shard.enqueue(seq, request);
        }
        let responses = shard.process_all();
        assert!(matches!(responses[0].payload, Payload::Quoted(_)));
        assert_eq!(
            responses[1].payload,
            Payload::Failed(RequestError::BudgetExhausted)
        );
        let record = responses[2].observed().expect("round A settles");
        assert!(record.accepted);
        assert_eq!(shard.metrics.sales, 1);
        assert!(
            (shard.metrics.epsilon_spent - 0.5).abs() < 1e-12,
            "round A's 0.3 + 0.2 of ε must be debited, got {}",
            shard.metrics.epsilon_spent
        );
        assert!(shard.metrics.compensation_paid > 0.0);
        assert!(shard.metrics.compensation_paid <= shard.metrics.revenue + 1e-12);
        let bank = shard.tenants[&TenantId(7)].privacy.as_ref().unwrap();
        assert!(bank.epsilon_spent_total() > 0.0);
        assert!(!bank.has_pending());
    }

    #[test]
    fn arbitrage_clamp_never_undercuts_the_reserve() {
        use crate::tenant::PrivacyParams;
        let mut shard = Shard::new(0, None, false);
        shard.register(TenantState::new(
            TenantId(7),
            TenantConfig::privacy(2, 100, PrivacyParams::default()),
        ));
        // Total compensation here is ≈ 0.1·(tanh(1.2) + tanh(1.6)) ≈ 0.18,
        // so the markup ceiling 8·C(ε) ≈ 1.5 sits far below the owner's
        // stated reserve: the clamp must honour the reserve, not cut under.
        let reserve_price = 50.0;
        shard.enqueue(
            0,
            Request::Quote(QueryRequest {
                tenant: TenantId(7),
                features: Vector::from_slice(&[0.6, 0.8]),
                reserve_price,
            }),
        );
        let responses = shard.process_all();
        let quoted = responses[0].quote().expect("a quote response");
        assert!(
            quoted.posted_price >= reserve_price,
            "surfaced price {} undercuts the reserve {}",
            quoted.posted_price,
            reserve_price
        );
    }

    #[test]
    fn privacy_tenants_stay_pinned_resident_without_ledger_paging() {
        use crate::tenant::PrivacyParams;
        let mut shard = Shard::new(0, Some(1), false);
        shard.register(TenantState::new(
            TenantId(1),
            TenantConfig::standard(2, 100),
        ));
        // Over the cap, but not pageable: the privacy tenant materialises
        // anyway rather than parking its ledgers in the cold map.
        shard.register(TenantState::new(
            TenantId(2),
            TenantConfig::privacy(2, 100, PrivacyParams::default()),
        ));
        assert_eq!(shard.resident_count(), 2);
        shard.enqueue(0, quote_request());
        shard.enqueue(
            1,
            Request::Observe(OutcomeReport {
                tenant: TenantId(1),
                accepted: false,
                market_value: None,
            }),
        );
        let responses = shard.process_all();
        assert_eq!(responses.len(), 2);
        // Residency enforcement paged the standard tenant out — never the
        // privacy tenant, even though the standard one was served last.
        assert_eq!(shard.resident_count(), 1);
        assert!(shard.tenants.contains_key(&TenantId(2)));
        assert!(shard.cold.contains_key(&TenantId(1)));
    }

    #[test]
    fn observe_without_quote_is_rejected_not_panicking() {
        let mut shard = shard_with_tenant();
        shard.enqueue(
            0,
            Request::Observe(OutcomeReport {
                tenant: TenantId(1),
                accepted: false,
                market_value: None,
            }),
        );
        let responses = shard.process_all();
        assert_eq!(
            responses[0].payload,
            Payload::Failed(RequestError::NoOpenRound)
        );
        assert_eq!(shard.metrics.rejected, 1);
        assert_eq!(shard.metrics.observations, 0);
    }
}
