//! One shard: a bounded request queue plus the tenant states routed to it.
//!
//! A shard is the unit of concurrency.  All state behind it — the tenant
//! sessions, the queue, the metrics — is owned by the shard and mutated by
//! exactly one worker at a time, so there is no global lock and no
//! fine-grained locking inside the hot path.  Requests are processed
//! strictly in submission (FIFO) order, which is what makes the whole
//! engine's arithmetic independent of how many workers drain it.

use crate::api::{AuctionRequest, Payload, Request, RequestError, Response};
#[cfg(test)]
use crate::api::{OutcomeReport, QueryRequest};
use crate::metrics::ShardMetrics;
use crate::routing::TenantId;
use crate::tenant::TenantState;
use pdm_pricing::prelude::{BatchRequest, BatchResponse, StepOutcome};
use std::collections::{HashMap, VecDeque};
use std::time::Instant;

/// A shard: tenants, queue, metrics.
#[derive(Debug)]
pub(crate) struct Shard {
    index: usize,
    capacity: usize,
    tenants: HashMap<TenantId, TenantState>,
    queue: VecDeque<(u64, Request)>,
    pub(crate) metrics: ShardMetrics,
    /// Scratch holding the maximal same-tenant FIFO run being drained;
    /// reused across [`Shard::process_all`] calls.
    run_scratch: Vec<(u64, Request)>,
    /// Scratch for the batched session responses of one run segment.
    response_scratch: Vec<BatchResponse>,
}

impl Shard {
    /// `capacity` is validated (non-zero) by [`crate::ServiceConfig`]
    /// before any shard is built — no silent clamping here.
    pub(crate) fn new(index: usize, capacity: usize) -> Self {
        debug_assert!(capacity >= 1, "ServiceConfig validates the capacity");
        Self {
            index,
            capacity,
            tenants: HashMap::new(),
            queue: VecDeque::new(),
            metrics: ShardMetrics::new(),
            run_scratch: Vec::new(),
            response_scratch: Vec::new(),
        }
    }

    pub(crate) fn contains(&self, tenant: TenantId) -> bool {
        self.tenants.contains_key(&tenant)
    }

    pub(crate) fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// Tenant states in ascending id order (the deterministic order
    /// snapshots serialise in).
    pub(crate) fn tenants_sorted(&self) -> Vec<&TenantState> {
        let mut tenants: Vec<&TenantState> = self.tenants.values().collect();
        tenants.sort_by_key(|t| t.id);
        tenants
    }

    /// Registers a tenant state on this shard.  The caller (the service)
    /// has already checked for duplicates.
    pub(crate) fn register(&mut self, state: TenantState) {
        self.tenants.insert(state.id, state);
    }

    pub(crate) fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// The regret ledger of one tenant on this shard.
    pub(crate) fn tenant_report(
        &self,
        tenant: TenantId,
    ) -> Option<pdm_pricing::prelude::RegretReport> {
        self.tenants
            .get(&tenant)
            .map(|state| state.session.tracker().report())
    }

    /// Number of tenants with a quoted-but-unobserved round.
    pub(crate) fn open_rounds(&self) -> usize {
        self.tenants
            .values()
            .filter(|t| t.session.has_pending())
            .count()
    }

    /// Admits a request into the bounded queue; `false` means the queue was
    /// full and the request was shed (the shed counter is updated here).
    pub(crate) fn enqueue(&mut self, seq: u64, request: Request) -> bool {
        if self.queue.len() >= self.capacity {
            self.metrics.shed += 1;
            return false;
        }
        self.queue.push_back((seq, request));
        true
    }

    /// Serves every queued request in FIFO order, producing one response
    /// per request.  Allocating convenience form of
    /// [`Shard::process_all_into`], used by the shard's own tests.
    #[cfg(test)]
    pub(crate) fn process_all(&mut self) -> Vec<Response> {
        let mut responses = Vec::new();
        self.process_all_into(&mut responses);
        responses
    }

    /// Serves every queued request in FIFO order, appending one response
    /// per request to `responses` — the allocation-free form callers with a
    /// reusable buffer drain through.
    ///
    /// The queue is drained in maximal same-tenant runs: each run is looked
    /// up once in the tenant map and handed to
    /// [`PricingSession::serve_batch`](pdm_pricing::prelude::PricingSession::serve_batch)
    /// as a whole, so consecutive requests for one tenant (the common shape
    /// of a quote→observe workload) pay dispatch once.  Request order — and
    /// therefore every quote, counter, and ledger entry — is exactly that of
    /// one-at-a-time processing.  Processing latency is timed once for the
    /// whole drain and attributed evenly across its requests, keeping the
    /// hot path down to two clock reads per drain.
    pub(crate) fn process_all_into(&mut self, responses: &mut Vec<Response>) {
        if self.queue.is_empty() {
            return;
        }
        let started = Instant::now();
        let total = self.queue.len();
        responses.reserve(total);
        while !self.queue.is_empty() {
            let tenant = self
                .queue
                .front()
                .expect("checked non-empty above")
                .1
                .tenant();
            self.run_scratch.clear();
            while self
                .queue
                .front()
                .is_some_and(|(_, request)| request.tenant() == tenant)
            {
                let entry = self.queue.pop_front().expect("front checked above");
                self.run_scratch.push(entry);
            }
            self.serve_run(tenant, responses);
        }
        self.metrics.record_latency_batch(started.elapsed(), total);
    }

    /// Serves one maximal same-tenant run currently staged in
    /// `run_scratch`, appending one response per request.
    fn serve_run(&mut self, tenant: TenantId, responses: &mut Vec<Response>) {
        let state = self
            .tenants
            .get_mut(&tenant)
            .expect("submit admits only registered tenants");
        let metrics = &mut self.metrics;
        let run = &self.run_scratch;
        let response_scratch = &mut self.response_scratch;
        let shard_index = self.index;

        // Drift activity (detector firings, knowledge-set restarts) is
        // accounted as a before/after delta over the whole run — the sum of
        // the per-request deltas, and deterministic either way.
        let fires_before = state.session.mechanism().detector_fires();
        let restarts_before = state.session.mechanism().restarts();
        let posted = state.config.market.is_posted();

        let mut pos = 0;
        while pos < run.len() {
            if let (seq, Request::Auction(auction)) = &run[pos] {
                let payload = Self::serve_auction_one(state, metrics, auction);
                responses.push(Response {
                    seq: *seq,
                    tenant,
                    shard: shard_index,
                    payload,
                });
                pos += 1;
                continue;
            }
            // Maximal posted-market segment `[pos, seg_end)`.
            let seg_end = run[pos..]
                .iter()
                .position(|(_, request)| matches!(request, Request::Auction(_)))
                .map_or(run.len(), |offset| pos + offset);
            let segment = &run[pos..seg_end];
            if posted {
                response_scratch.clear();
                let batch = segment.iter().map(|(_, request)| match request {
                    Request::Quote(query) => BatchRequest::Quote {
                        features: &query.features,
                        reserve_price: query.reserve_price,
                    },
                    Request::Observe(outcome) => BatchRequest::Observe(StepOutcome {
                        accepted: outcome.accepted,
                        market_value: outcome.market_value,
                    }),
                    Request::Auction(_) => unreachable!("segment excludes auction requests"),
                });
                state.session.serve_batch(batch, response_scratch);
                for ((seq, _), response) in segment.iter().zip(response_scratch.iter()) {
                    let payload = match response {
                        BatchResponse::Quoted(quote) => {
                            metrics.quotes_served += 1;
                            Payload::Quoted(*quote)
                        }
                        BatchResponse::Observed(Some(record)) => {
                            metrics.observations += 1;
                            if record.accepted {
                                metrics.sales += 1;
                            }
                            metrics.revenue += record.revenue;
                            if let Some(regret) = record.regret {
                                metrics.regret += regret;
                            }
                            metrics.regret_proxy += record.uncertainty_width;
                            Payload::Observed(*record)
                        }
                        BatchResponse::Observed(None) => {
                            metrics.rejected += 1;
                            Payload::Failed(RequestError::NoOpenRound)
                        }
                    };
                    responses.push(Response {
                        seq: *seq,
                        tenant,
                        shard: shard_index,
                        payload,
                    });
                }
            } else {
                // Posted-price traffic addressed to an auction tenant: every
                // request in the segment is rejected, exactly as the
                // one-at-a-time path did.
                for (seq, _) in segment {
                    metrics.rejected += 1;
                    responses.push(Response {
                        seq: *seq,
                        tenant,
                        shard: shard_index,
                        payload: Payload::Failed(RequestError::MarketMismatch),
                    });
                }
            }
            pos = seg_end;
        }

        let mechanism = state.session.mechanism();
        metrics.drift_fires += mechanism.detector_fires() - fires_before;
        metrics.drift_restarts += mechanism.restarts() - restarts_before;
    }

    /// Settles one self-contained auction round: reserve quote, eager
    /// second-price clearing, policy feedback — all through the shared
    /// [`pdm_auction::run_auction_round`] path.  Drift deltas are accounted
    /// by the enclosing run.
    fn serve_auction_one(
        state: &mut TenantState,
        metrics: &mut ShardMetrics,
        auction: &AuctionRequest,
    ) -> Payload {
        match state.serve_auction(&auction.features, auction.floor, &auction.bids) {
            Some(cleared) => {
                metrics.auction.record(&cleared);
                Payload::Cleared(cleared)
            }
            None => {
                metrics.rejected += 1;
                Payload::Failed(RequestError::MarketMismatch)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tenant::TenantConfig;
    use pdm_linalg::Vector;

    fn shard_with_tenant(capacity: usize) -> Shard {
        let mut shard = Shard::new(0, capacity);
        shard.register(TenantState::new(
            TenantId(1),
            TenantConfig::standard(2, 100),
        ));
        shard
    }

    fn quote_request() -> Request {
        Request::Quote(QueryRequest {
            tenant: TenantId(1),
            features: Vector::from_slice(&[0.6, 0.8]),
            reserve_price: 0.1,
        })
    }

    #[test]
    fn fifo_quote_then_observe_round_trip() {
        let mut shard = shard_with_tenant(16);
        assert!(shard.enqueue(0, quote_request()));
        let responses = shard.process_all();
        assert_eq!(responses.len(), 1);
        let quote = responses[0].quote().expect("a quote response");
        assert!(quote.posted_price.is_finite());

        assert!(shard.enqueue(
            1,
            Request::Observe(OutcomeReport {
                tenant: TenantId(1),
                accepted: true,
                market_value: Some(1.0),
            })
        ));
        let responses = shard.process_all();
        assert!(matches!(responses[0].payload, Payload::Observed(_)));
        assert_eq!(shard.metrics.quotes_served, 1);
        assert_eq!(shard.metrics.observations, 1);
        assert_eq!(shard.metrics.sales, 1);
        assert!(shard.metrics.regret >= 0.0);
        assert_eq!(shard.metrics.latency_samples(), 2);
        assert_eq!(shard.open_rounds(), 0);
    }

    #[test]
    fn bounded_queue_sheds_overload() {
        let mut shard = shard_with_tenant(2);
        assert!(shard.enqueue(0, quote_request()));
        assert!(shard.enqueue(1, quote_request()));
        // Third request overflows the capacity-2 queue: shed, not queued.
        assert!(!shard.enqueue(2, quote_request()));
        assert_eq!(shard.metrics.shed, 1);
        assert_eq!(shard.queue_len(), 2);
        // The queued work still drains fine.
        assert_eq!(shard.process_all().len(), 2);
    }

    #[test]
    fn auction_rounds_settle_in_one_fifo_slot_and_feed_the_ledger() {
        let mut shard = Shard::new(0, 8);
        shard.register(TenantState::new(
            TenantId(2),
            crate::tenant::TenantConfig::auction(
                2,
                100,
                crate::tenant::AuctionPolicy::Static { markup: 0.0 },
            ),
        ));
        shard.enqueue(
            0,
            Request::Auction(AuctionRequest {
                tenant: TenantId(2),
                features: Vector::from_slice(&[0.6, 0.8]),
                floor: 0.3,
                bids: vec![0.9, 0.5],
            }),
        );
        let responses = shard.process_all();
        let cleared = responses[0].cleared().expect("a cleared response");
        assert_eq!(cleared.reserve, 0.3);
        assert_eq!(cleared.result.price, 0.5);
        assert_eq!(shard.metrics.auction.auctions, 1);
        assert_eq!(shard.metrics.auction.sales, 1);
        assert!((shard.metrics.auction.revenue - 0.5).abs() < 1e-12);
        assert!((shard.metrics.auction.welfare - 0.9).abs() < 1e-12);
        assert_eq!(shard.open_rounds(), 0, "auction rounds never stay open");
    }

    #[test]
    fn market_mismatch_is_rejected_both_ways() {
        let mut shard = shard_with_tenant(8);
        shard.register(TenantState::new(
            TenantId(2),
            crate::tenant::TenantConfig::auction(2, 100, crate::tenant::AuctionPolicy::Session),
        ));
        // An auction round addressed to the posted-price tenant…
        shard.enqueue(
            0,
            Request::Auction(AuctionRequest {
                tenant: TenantId(1),
                features: Vector::from_slice(&[0.6, 0.8]),
                floor: 0.1,
                bids: vec![1.0],
            }),
        );
        // …and a posted-price quote addressed to the auction tenant.
        shard.enqueue(
            1,
            Request::Quote(QueryRequest {
                tenant: TenantId(2),
                features: Vector::from_slice(&[0.6, 0.8]),
                reserve_price: 0.1,
            }),
        );
        let responses = shard.process_all();
        for response in &responses {
            assert_eq!(
                response.payload,
                Payload::Failed(RequestError::MarketMismatch)
            );
        }
        assert_eq!(shard.metrics.rejected, 2);
        assert_eq!(shard.metrics.quotes_served, 0);
        assert_eq!(shard.metrics.auction.auctions, 0);
    }

    #[test]
    fn observe_without_quote_is_rejected_not_panicking() {
        let mut shard = shard_with_tenant(4);
        shard.enqueue(
            0,
            Request::Observe(OutcomeReport {
                tenant: TenantId(1),
                accepted: false,
                market_value: None,
            }),
        );
        let responses = shard.process_all();
        assert_eq!(
            responses[0].payload,
            Payload::Failed(RequestError::NoOpenRound)
        );
        assert_eq!(shard.metrics.rejected, 1);
        assert_eq!(shard.metrics.observations, 0);
    }
}
