//! One shard: a bounded request queue plus the tenant states routed to it.
//!
//! A shard is the unit of concurrency.  All state behind it — the tenant
//! sessions, the queue, the metrics — is owned by the shard and mutated by
//! exactly one worker at a time, so there is no global lock and no
//! fine-grained locking inside the hot path.  Requests are processed
//! strictly in submission (FIFO) order, which is what makes the whole
//! engine's arithmetic independent of how many workers drain it.

use crate::api::{
    AuctionRequest, OutcomeReport, Payload, QueryRequest, Request, RequestError, Response,
};
use crate::metrics::ShardMetrics;
use crate::routing::TenantId;
use crate::tenant::TenantState;
use pdm_pricing::prelude::StepOutcome;
use std::collections::{HashMap, VecDeque};
use std::time::Instant;

/// A shard: tenants, queue, metrics.
#[derive(Debug)]
pub(crate) struct Shard {
    index: usize,
    capacity: usize,
    tenants: HashMap<TenantId, TenantState>,
    queue: VecDeque<(u64, Request)>,
    pub(crate) metrics: ShardMetrics,
}

impl Shard {
    /// `capacity` is validated (non-zero) by [`crate::ServiceConfig`]
    /// before any shard is built — no silent clamping here.
    pub(crate) fn new(index: usize, capacity: usize) -> Self {
        debug_assert!(capacity >= 1, "ServiceConfig validates the capacity");
        Self {
            index,
            capacity,
            tenants: HashMap::new(),
            queue: VecDeque::new(),
            metrics: ShardMetrics::new(),
        }
    }

    pub(crate) fn contains(&self, tenant: TenantId) -> bool {
        self.tenants.contains_key(&tenant)
    }

    pub(crate) fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// Tenant states in ascending id order (the deterministic order
    /// snapshots serialise in).
    pub(crate) fn tenants_sorted(&self) -> Vec<&TenantState> {
        let mut tenants: Vec<&TenantState> = self.tenants.values().collect();
        tenants.sort_by_key(|t| t.id);
        tenants
    }

    /// Registers a tenant state on this shard.  The caller (the service)
    /// has already checked for duplicates.
    pub(crate) fn register(&mut self, state: TenantState) {
        self.tenants.insert(state.id, state);
    }

    pub(crate) fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// The regret ledger of one tenant on this shard.
    pub(crate) fn tenant_report(
        &self,
        tenant: TenantId,
    ) -> Option<pdm_pricing::prelude::RegretReport> {
        self.tenants
            .get(&tenant)
            .map(|state| state.session.tracker().report())
    }

    /// Number of tenants with a quoted-but-unobserved round.
    pub(crate) fn open_rounds(&self) -> usize {
        self.tenants
            .values()
            .filter(|t| t.session.has_pending())
            .count()
    }

    /// Admits a request into the bounded queue; `false` means the queue was
    /// full and the request was shed (the shed counter is updated here).
    pub(crate) fn enqueue(&mut self, seq: u64, request: Request) -> bool {
        if self.queue.len() >= self.capacity {
            self.metrics.shed += 1;
            return false;
        }
        self.queue.push_back((seq, request));
        true
    }

    /// Serves every queued request in FIFO order, producing one response
    /// per request.
    pub(crate) fn process_all(&mut self) -> Vec<Response> {
        let mut responses = Vec::with_capacity(self.queue.len());
        while let Some((seq, request)) = self.queue.pop_front() {
            let tenant = request.tenant();
            let started = Instant::now();
            let payload = match request {
                Request::Quote(query) => self.serve_quote(&query),
                Request::Observe(outcome) => self.serve_observe(&outcome),
                Request::Auction(auction) => self.serve_auction(&auction),
            };
            self.metrics.record_latency(started.elapsed());
            responses.push(Response {
                seq,
                tenant,
                shard: self.index,
                payload,
            });
        }
        responses
    }

    fn serve_quote(&mut self, query: &QueryRequest) -> Payload {
        let state = self
            .tenants
            .get_mut(&query.tenant)
            .expect("submit admits only registered tenants");
        if !state.config.market.is_posted() {
            self.metrics.rejected += 1;
            return Payload::Failed(RequestError::MarketMismatch);
        }
        let quote = state.session.step(&query.features, query.reserve_price);
        self.metrics.quotes_served += 1;
        Payload::Quoted(quote)
    }

    /// Settles one self-contained auction round: reserve quote, eager
    /// second-price clearing, policy feedback — all through the shared
    /// [`pdm_auction::run_auction_round`] path.
    fn serve_auction(&mut self, auction: &AuctionRequest) -> Payload {
        let state = self
            .tenants
            .get_mut(&auction.tenant)
            .expect("submit admits only registered tenants");
        // Session-learned reserves observe inside the round, so the drift
        // detector can fire here too.
        let fires_before = state.session.mechanism().detector_fires();
        let restarts_before = state.session.mechanism().restarts();
        match state.serve_auction(&auction.features, auction.floor, &auction.bids) {
            Some(cleared) => {
                self.metrics.auction.record(&cleared);
                let mechanism = state.session.mechanism();
                self.metrics.drift_fires += mechanism.detector_fires() - fires_before;
                self.metrics.drift_restarts += mechanism.restarts() - restarts_before;
                Payload::Cleared(cleared)
            }
            None => {
                self.metrics.rejected += 1;
                Payload::Failed(RequestError::MarketMismatch)
            }
        }
    }

    fn serve_observe(&mut self, outcome: &OutcomeReport) -> Payload {
        let state = self
            .tenants
            .get_mut(&outcome.tenant)
            .expect("submit admits only registered tenants");
        if !state.config.market.is_posted() {
            self.metrics.rejected += 1;
            return Payload::Failed(RequestError::MarketMismatch);
        }
        let step_outcome = StepOutcome {
            accepted: outcome.accepted,
            market_value: outcome.market_value,
        };
        let fires_before = state.session.mechanism().detector_fires();
        let restarts_before = state.session.mechanism().restarts();
        match state.session.observe(step_outcome) {
            Some(record) => {
                self.metrics.observations += 1;
                if record.accepted {
                    self.metrics.sales += 1;
                }
                self.metrics.revenue += record.revenue;
                if let Some(regret) = record.regret {
                    self.metrics.regret += regret;
                }
                self.metrics.regret_proxy += record.uncertainty_width;
                let mechanism = state.session.mechanism();
                self.metrics.drift_fires += mechanism.detector_fires() - fires_before;
                self.metrics.drift_restarts += mechanism.restarts() - restarts_before;
                Payload::Observed(record)
            }
            None => {
                self.metrics.rejected += 1;
                Payload::Failed(RequestError::NoOpenRound)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tenant::TenantConfig;
    use pdm_linalg::Vector;

    fn shard_with_tenant(capacity: usize) -> Shard {
        let mut shard = Shard::new(0, capacity);
        shard.register(TenantState::new(
            TenantId(1),
            TenantConfig::standard(2, 100),
        ));
        shard
    }

    fn quote_request() -> Request {
        Request::Quote(QueryRequest {
            tenant: TenantId(1),
            features: Vector::from_slice(&[0.6, 0.8]),
            reserve_price: 0.1,
        })
    }

    #[test]
    fn fifo_quote_then_observe_round_trip() {
        let mut shard = shard_with_tenant(16);
        assert!(shard.enqueue(0, quote_request()));
        let responses = shard.process_all();
        assert_eq!(responses.len(), 1);
        let quote = responses[0].quote().expect("a quote response");
        assert!(quote.posted_price.is_finite());

        assert!(shard.enqueue(
            1,
            Request::Observe(OutcomeReport {
                tenant: TenantId(1),
                accepted: true,
                market_value: Some(1.0),
            })
        ));
        let responses = shard.process_all();
        assert!(matches!(responses[0].payload, Payload::Observed(_)));
        assert_eq!(shard.metrics.quotes_served, 1);
        assert_eq!(shard.metrics.observations, 1);
        assert_eq!(shard.metrics.sales, 1);
        assert!(shard.metrics.regret >= 0.0);
        assert_eq!(shard.metrics.latency_samples(), 2);
        assert_eq!(shard.open_rounds(), 0);
    }

    #[test]
    fn bounded_queue_sheds_overload() {
        let mut shard = shard_with_tenant(2);
        assert!(shard.enqueue(0, quote_request()));
        assert!(shard.enqueue(1, quote_request()));
        // Third request overflows the capacity-2 queue: shed, not queued.
        assert!(!shard.enqueue(2, quote_request()));
        assert_eq!(shard.metrics.shed, 1);
        assert_eq!(shard.queue_len(), 2);
        // The queued work still drains fine.
        assert_eq!(shard.process_all().len(), 2);
    }

    #[test]
    fn auction_rounds_settle_in_one_fifo_slot_and_feed_the_ledger() {
        let mut shard = Shard::new(0, 8);
        shard.register(TenantState::new(
            TenantId(2),
            crate::tenant::TenantConfig::auction(
                2,
                100,
                crate::tenant::AuctionPolicy::Static { markup: 0.0 },
            ),
        ));
        shard.enqueue(
            0,
            Request::Auction(AuctionRequest {
                tenant: TenantId(2),
                features: Vector::from_slice(&[0.6, 0.8]),
                floor: 0.3,
                bids: vec![0.9, 0.5],
            }),
        );
        let responses = shard.process_all();
        let cleared = responses[0].cleared().expect("a cleared response");
        assert_eq!(cleared.reserve, 0.3);
        assert_eq!(cleared.result.price, 0.5);
        assert_eq!(shard.metrics.auction.auctions, 1);
        assert_eq!(shard.metrics.auction.sales, 1);
        assert!((shard.metrics.auction.revenue - 0.5).abs() < 1e-12);
        assert!((shard.metrics.auction.welfare - 0.9).abs() < 1e-12);
        assert_eq!(shard.open_rounds(), 0, "auction rounds never stay open");
    }

    #[test]
    fn market_mismatch_is_rejected_both_ways() {
        let mut shard = shard_with_tenant(8);
        shard.register(TenantState::new(
            TenantId(2),
            crate::tenant::TenantConfig::auction(2, 100, crate::tenant::AuctionPolicy::Session),
        ));
        // An auction round addressed to the posted-price tenant…
        shard.enqueue(
            0,
            Request::Auction(AuctionRequest {
                tenant: TenantId(1),
                features: Vector::from_slice(&[0.6, 0.8]),
                floor: 0.1,
                bids: vec![1.0],
            }),
        );
        // …and a posted-price quote addressed to the auction tenant.
        shard.enqueue(
            1,
            Request::Quote(QueryRequest {
                tenant: TenantId(2),
                features: Vector::from_slice(&[0.6, 0.8]),
                reserve_price: 0.1,
            }),
        );
        let responses = shard.process_all();
        for response in &responses {
            assert_eq!(
                response.payload,
                Payload::Failed(RequestError::MarketMismatch)
            );
        }
        assert_eq!(shard.metrics.rejected, 2);
        assert_eq!(shard.metrics.quotes_served, 0);
        assert_eq!(shard.metrics.auction.auctions, 0);
    }

    #[test]
    fn observe_without_quote_is_rejected_not_panicking() {
        let mut shard = shard_with_tenant(4);
        shard.enqueue(
            0,
            Request::Observe(OutcomeReport {
                tenant: TenantId(1),
                accepted: false,
                market_value: None,
            }),
        );
        let responses = shard.process_all();
        assert_eq!(
            responses[0].payload,
            Payload::Failed(RequestError::NoOpenRound)
        );
        assert_eq!(shard.metrics.rejected, 1);
        assert_eq!(shard.metrics.observations, 0);
    }
}
