//! Per-shard serving metrics.
//!
//! Each shard counts what it served (quotes, observations, sales), what it
//! earned (revenue), how much it may have left on the table (exact regret
//! when the workload supplies ground truth, the uncertainty-width *proxy*
//! always), what it refused (shed and rejected requests), how its
//! drift-aware tenants reacted to a moving market (surprisal-detector
//! firings and knowledge-set restarts), and how fast it was (per-request
//! service latency, summarised through the error-checked quantile helpers
//! of `pdm-linalg`).
//!
//! Auction tenants report through the same ledger: the nested
//! [`AuctionLedger`] counts settled rounds, sales, reserve hits, clearing
//! revenue, allocative welfare, and the second-price-no-reserve baseline —
//! the figures the `bench auction` workload and the reserve-uplift
//! dashboards read per shard.
//!
//! Everything except the latency figures is **deterministic**: counts and
//! monetary sums depend only on the request stream, never on thread timing,
//! which is what lets `bench serve` compare worker counts byte for byte.
//! Latency samples are wall-clock and live strictly apart.

use pdm_auction::AuctionLedger;
use pdm_linalg::{OnlineStats, Result as LinalgResult, SampleWindow};
use std::time::Duration;

/// Maximum latency samples a ledger retains for quantile estimation.
///
/// A long-lived service serves requests forever; keeping every sample would
/// grow memory without bound — the same failure mode the bounded admission
/// queue exists to prevent.  The quantiles therefore cover a sliding window
/// of the most recent [`LATENCY_WINDOW`] samples (which is what a latency
/// dashboard wants anyway), while the streaming
/// [`ShardMetrics::latency_stats`] summary keeps exact all-time
/// mean/min/max.
pub const LATENCY_WINDOW: usize = 65_536;

/// Counters and latency samples of one shard (or of a whole service, after
/// [`ShardMetrics::merge`]).
#[derive(Debug, Clone)]
pub struct ShardMetrics {
    /// Price quotes served.
    pub quotes_served: u64,
    /// Outcome reports applied.
    pub observations: u64,
    /// Accepted quotes (sales).
    pub sales: u64,
    /// Cumulative revenue from accepted quotes.
    pub revenue: f64,
    /// Exact cumulative regret, accumulated only from outcomes that carried
    /// a ground-truth market value.
    pub regret: f64,
    /// Cumulative quote uncertainty width — the regret proxy that needs no
    /// ground truth (it shrinks as each tenant's knowledge set converges).
    pub regret_proxy: f64,
    /// Requests shed at admission because the shard queue was full.
    pub shed: u64,
    /// Requests that reached the shard but could not be served (e.g. an
    /// observe with no open round, or a request whose kind does not match
    /// the tenant's market).
    pub rejected: u64,
    /// The auction side of the shard: settled rounds, sales, reserve hits,
    /// clearing revenue, welfare, and the no-reserve baseline.  All zero on
    /// a shard serving only posted-price tenants.
    pub auction: AuctionLedger,
    /// Drift-detector firings across the shard's tenants (restart-policy
    /// tenants only; deterministic — the detector sees only the request
    /// stream).
    pub drift_fires: u64,
    /// Knowledge-set restarts performed across the shard's tenants.
    pub drift_restarts: u64,
    /// Tenant sessions paged out of the resident set by the cold-tenant
    /// pager (deterministic for a given request stream: the LRU order
    /// depends only on the per-shard serve sequence).
    pub evictions: u64,
    /// Paged-out tenant sessions materialised back in to serve a request.
    pub rehydrations: u64,
    /// Total privacy leakage ε debited across the shard's privacy tenants
    /// (sold queries only; deterministic — debits accumulate in FIFO serve
    /// order).
    pub epsilon_spent: f64,
    /// Total compensation accrued to data owners across the shard's
    /// privacy tenants (sold queries only).
    pub compensation_paid: f64,
    /// Data owners retired because a query's leakage exceeded their
    /// remaining budget.  Monotone: exhaustion is sticky.
    pub owners_exhausted: u64,
    /// Privacy quotes refused because every weighted owner was exhausted —
    /// the sellable supply was gone ([`crate::RequestError::BudgetExhausted`]).
    pub privacy_throttled: u64,
    /// Posted prices clamped down to the arbitrage-free ceiling
    /// ([`crate::ledger::ARBITRAGE_PRICE_MARKUP`] × total compensation).
    pub arbitrage_clamps: u64,
    /// Sliding window of the most recent [`LATENCY_WINDOW`] per-request
    /// service latency samples, in microseconds (wall-clock; excluded from
    /// all determinism comparisons).
    latency_window: SampleWindow,
    /// Streaming all-time summary of every sample ever recorded.
    latency_stats: OnlineStats,
}

impl Default for ShardMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ShardMetrics {
    /// An empty metrics ledger.
    #[must_use]
    pub fn new() -> Self {
        Self {
            quotes_served: 0,
            observations: 0,
            sales: 0,
            revenue: 0.0,
            regret: 0.0,
            regret_proxy: 0.0,
            shed: 0,
            rejected: 0,
            auction: AuctionLedger::default(),
            drift_fires: 0,
            drift_restarts: 0,
            evictions: 0,
            rehydrations: 0,
            epsilon_spent: 0.0,
            compensation_paid: 0.0,
            owners_exhausted: 0,
            privacy_throttled: 0,
            arbitrage_clamps: 0,
            latency_window: SampleWindow::new(LATENCY_WINDOW),
            latency_stats: OnlineStats::new(),
        }
    }

    /// Fraction of sold auction rounds whose price was set by the reserve
    /// rather than the second bid (zero before any auction sale) — the
    /// per-shard **reserve hit-rate**.
    #[must_use]
    pub fn reserve_hit_rate(&self) -> f64 {
        self.auction.reserve_hit_rate()
    }

    /// Fraction of settled rounds that ended in a sale (zero before any
    /// round).
    ///
    /// Auction rounds settle in one request without touching
    /// `observations`, so the denominator is `observations +
    /// auction.auctions` and the numerator `sales + auction.sales` —
    /// counting only posted-price rounds used to report a hard 0% on
    /// auction-only shards no matter how much they sold.
    #[must_use]
    pub fn accept_rate(&self) -> f64 {
        let rounds = self.observations + self.auction.auctions;
        if rounds == 0 {
            0.0
        } else {
            (self.sales + self.auction.sales) as f64 / rounds as f64
        }
    }

    /// Fraction of admission attempts that were shed (zero before any
    /// traffic).
    #[must_use]
    pub fn shed_rate(&self) -> f64 {
        let attempts = self.quotes_served
            + self.observations
            + self.auction.auctions
            + self.rejected
            + self.shed;
        if attempts == 0 {
            0.0
        } else {
            self.shed as f64 / attempts as f64
        }
    }

    /// Records one request's service time.
    pub fn record_latency(&mut self, elapsed: Duration) {
        let micros = elapsed.as_secs_f64() * 1e6;
        self.latency_window.push(micros);
        self.latency_stats.push(micros);
    }

    /// Records the service time of a batch of `count` requests drained in
    /// one go: the batch wall-clock is split evenly, one sample per request,
    /// so window occupancy and all-time counts stay per-request comparable
    /// with [`ShardMetrics::record_latency`].  A `count` of zero is a no-op.
    pub fn record_latency_batch(&mut self, elapsed: Duration, count: usize) {
        if count == 0 {
            return;
        }
        let micros = elapsed.as_secs_f64() * 1e6 / count as f64;
        for _ in 0..count {
            self.latency_window.push(micros);
            self.latency_stats.push(micros);
        }
    }

    /// Number of latency samples currently retained in the quantile window
    /// (all-time counts live in [`ShardMetrics::latency_stats`]).
    #[must_use]
    pub fn latency_samples(&self) -> usize {
        self.latency_window.len()
    }

    /// Read access to the retained latency window, in microseconds
    /// (storage order).  Consumers that need exact percentiles over *many*
    /// ledgers — e.g. `bench serve` pooling every shard of every repetition
    /// — collect these slices themselves instead of going through
    /// [`ShardMetrics::merge`], whose merged window evicts the
    /// earliest-merged ledgers' samples once the union exceeds
    /// [`LATENCY_WINDOW`].
    #[must_use]
    pub fn latency_window(&self) -> &[f64] {
        self.latency_window.as_slice()
    }

    /// Streaming all-time mean/min/max summary of the service latency.
    #[must_use]
    pub fn latency_stats(&self) -> &OnlineStats {
        &self.latency_stats
    }

    /// Service-latency quantiles in microseconds (e.g. `&[0.5, 0.99]` for
    /// p50/p99), over the most recent [`LATENCY_WINDOW`] samples.
    ///
    /// # Errors
    /// Propagates [`pdm_linalg::LinalgError::Empty`] when the shard has not
    /// served anything yet — the documented error path of the quantile
    /// helpers, surfaced instead of a silent `NaN`.
    pub fn latency_quantiles(&self, qs: &[f64]) -> LinalgResult<Vec<f64>> {
        self.latency_window.quantiles(qs)
    }

    /// The p50/p99 pair most dashboards want, as `(p50, p99)`.
    ///
    /// # Errors
    /// Same as [`ShardMetrics::latency_quantiles`].
    pub fn latency_p50_p99(&self) -> LinalgResult<(f64, f64)> {
        let qs = self.latency_quantiles(&[0.50, 0.99])?;
        Ok((qs[0], qs[1]))
    }

    /// Accumulates another ledger into this one (used to roll shards up
    /// into service-level totals).
    pub fn merge(&mut self, other: &ShardMetrics) {
        self.quotes_served += other.quotes_served;
        self.observations += other.observations;
        self.sales += other.sales;
        self.revenue += other.revenue;
        self.regret += other.regret;
        self.regret_proxy += other.regret_proxy;
        self.shed += other.shed;
        self.rejected += other.rejected;
        self.auction.merge(&other.auction);
        self.drift_fires += other.drift_fires;
        self.drift_restarts += other.drift_restarts;
        self.evictions += other.evictions;
        self.rehydrations += other.rehydrations;
        self.epsilon_spent += other.epsilon_spent;
        self.compensation_paid += other.compensation_paid;
        self.owners_exhausted += other.owners_exhausted;
        self.privacy_throttled += other.privacy_throttled;
        self.arbitrage_clamps += other.arbitrage_clamps;
        // Replay the other window oldest-first so the merged ring keeps the
        // most recent samples; the all-time summaries merge exactly (not
        // per-sample, which would double-count against the Welford merge).
        for micros in other.latency_window.iter_chronological() {
            self.latency_window.push(micros);
        }
        self.latency_stats.merge(&other.latency_stats);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdm_linalg::LinalgError;

    #[test]
    fn empty_metrics_error_on_quantiles_instead_of_nan() {
        let metrics = ShardMetrics::new();
        assert!(matches!(
            metrics.latency_p50_p99(),
            Err(LinalgError::Empty { .. })
        ));
        assert_eq!(metrics.accept_rate(), 0.0);
        assert_eq!(metrics.shed_rate(), 0.0);
    }

    #[test]
    fn latency_quantiles_come_from_the_recorded_samples() {
        let mut metrics = ShardMetrics::new();
        for millis in [1, 2, 3, 4, 100] {
            metrics.record_latency(Duration::from_millis(millis));
        }
        let (p50, p99) = metrics.latency_p50_p99().unwrap();
        assert!((p50 - 3_000.0).abs() < 1e-6);
        assert!(p99 > p50);
        assert_eq!(metrics.latency_samples(), 5);
        assert!(metrics.latency_stats().max() >= p99);
    }

    /// Feeds `micros` straight into the window + summary, bypassing the
    /// `Duration` round-trip so the test values stay exact.
    fn push_micros(metrics: &mut ShardMetrics, micros: f64) {
        metrics.latency_window.push(micros);
        metrics.latency_stats.push(micros);
    }

    #[test]
    fn latency_window_is_bounded_and_keeps_the_most_recent_samples() {
        let mut metrics = ShardMetrics::new();
        // Overfill the window: samples 0..LATENCY_WINDOW+100, each i µs.
        for i in 0..LATENCY_WINDOW + 100 {
            push_micros(&mut metrics, i as f64);
        }
        assert_eq!(metrics.latency_samples(), LATENCY_WINDOW);
        assert_eq!(metrics.latency_window().len(), LATENCY_WINDOW);
        // The window holds the most recent samples, so its minimum is the
        // first surviving index, i.e. exactly 100.
        let window_min = metrics.latency_quantiles(&[0.0]).unwrap()[0];
        assert_eq!(window_min, 100.0);
        // The all-time summary still saw everything.
        assert_eq!(
            metrics.latency_stats().count(),
            (LATENCY_WINDOW + 100) as u64
        );
        assert_eq!(metrics.latency_stats().min(), 0.0);

        // Merging two full windows stays bounded and keeps the newest
        // (largest, here) samples.
        let mut other = ShardMetrics::new();
        for i in 0..LATENCY_WINDOW {
            push_micros(&mut other, 1e9 + i as f64);
        }
        metrics.merge(&other);
        assert_eq!(metrics.latency_samples(), LATENCY_WINDOW);
        assert_eq!(metrics.latency_quantiles(&[0.0]).unwrap()[0], 1e9);
    }

    #[test]
    fn rates_and_merge() {
        let mut a = ShardMetrics::new();
        a.quotes_served = 10;
        a.observations = 10;
        a.sales = 7;
        a.revenue = 70.0;
        a.shed = 5;
        let mut b = ShardMetrics::new();
        b.quotes_served = 2;
        b.observations = 2;
        b.sales = 1;
        b.revenue = 8.0;
        b.record_latency(Duration::from_micros(50));

        assert!((a.accept_rate() - 0.7).abs() < 1e-12);
        assert!((a.shed_rate() - 5.0 / 25.0).abs() < 1e-12);

        a.merge(&b);
        assert_eq!(a.quotes_served, 12);
        assert_eq!(a.sales, 8);
        assert!((a.revenue - 78.0).abs() < 1e-12);
        assert_eq!(a.latency_samples(), 1);
    }

    #[test]
    fn accept_and_shed_rates_count_auction_rounds_as_settled_attempts() {
        // Regression: auction rounds settle without touching
        // `observations`, so a pure-auction shard used to report a 0%
        // accept rate (and its shed rate was computed against an attempt
        // count that ignored the settled rounds).
        let mut m = ShardMetrics::new();
        m.auction.auctions = 20;
        m.auction.sales = 15;
        assert!(
            (m.accept_rate() - 0.75).abs() < 1e-12,
            "pure-auction accept rate must be auction sales / auction rounds, got {}",
            m.accept_rate()
        );
        m.shed = 20;
        // Attempts = 20 settled auctions + 20 shed.
        assert!((m.shed_rate() - 0.5).abs() < 1e-12);

        // Mixed traffic folds both markets into one rate.
        m.observations = 20;
        m.sales = 5;
        assert!((m.accept_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn drift_counters_merge() {
        let mut a = ShardMetrics::new();
        a.drift_fires = 3;
        a.drift_restarts = 2;
        let mut b = ShardMetrics::new();
        b.drift_fires = 1;
        b.drift_restarts = 1;
        a.merge(&b);
        assert_eq!(a.drift_fires, 4);
        assert_eq!(a.drift_restarts, 3);
    }

    #[test]
    fn paging_counters_merge() {
        let mut a = ShardMetrics::new();
        a.evictions = 4;
        a.rehydrations = 3;
        let mut b = ShardMetrics::new();
        b.evictions = 2;
        b.rehydrations = 1;
        a.merge(&b);
        assert_eq!(a.evictions, 6);
        assert_eq!(a.rehydrations, 4);
    }

    #[test]
    fn privacy_counters_merge() {
        let mut a = ShardMetrics::new();
        a.epsilon_spent = 1.5;
        a.compensation_paid = 0.25;
        a.owners_exhausted = 3;
        a.privacy_throttled = 2;
        a.arbitrage_clamps = 1;
        let mut b = ShardMetrics::new();
        b.epsilon_spent = 0.5;
        b.compensation_paid = 0.75;
        b.owners_exhausted = 1;
        b.privacy_throttled = 4;
        b.arbitrage_clamps = 2;
        a.merge(&b);
        assert!((a.epsilon_spent - 2.0).abs() < 1e-12);
        assert!((a.compensation_paid - 1.0).abs() < 1e-12);
        assert_eq!(a.owners_exhausted, 4);
        assert_eq!(a.privacy_throttled, 6);
        assert_eq!(a.arbitrage_clamps, 3);
    }

    #[test]
    fn auction_ledger_merges_and_reports_the_hit_rate() {
        let mut a = ShardMetrics::new();
        a.auction.auctions = 10;
        a.auction.sales = 8;
        a.auction.reserve_hits = 2;
        a.auction.revenue = 16.0;
        a.auction.welfare = 20.0;
        a.auction.baseline_revenue = 12.0;
        assert!((a.reserve_hit_rate() - 0.25).abs() < 1e-12);
        // Auction rounds count as admission attempts in the shed rate.
        a.shed = 10;
        assert!((a.shed_rate() - 0.5).abs() < 1e-12);

        let mut b = ShardMetrics::new();
        b.auction.auctions = 5;
        b.auction.sales = 4;
        b.auction.reserve_hits = 4;
        a.merge(&b);
        assert_eq!(a.auction.auctions, 15);
        assert_eq!(a.auction.sales, 12);
        assert_eq!(a.auction.reserve_hits, 6);
        assert!((a.reserve_hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(ShardMetrics::new().reserve_hit_rate(), 0.0);
    }
}
