//! Poison-propagation choke points for the service's locks.
//!
//! A poisoned lock means another worker already panicked while holding it —
//! the shard (or slot, or stripe) behind it may be half-updated, so the only
//! sound response is to propagate the abort rather than serve corrupt state.
//! These helpers are the service's *single* place where that decision is
//! made: callers never write `.expect("… poisoned")` inline, which keeps the
//! `no-unwrap-in-lib` lint surface at zero and the panic message uniform.

use std::sync::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Locks a mutex, propagating a worker panic as an explicit abort.
pub(crate) fn lock<'a, T>(mutex: &'a Mutex<T>, what: &str) -> MutexGuard<'a, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(_) => poisoned(what),
    }
}

/// `Mutex::get_mut` under the same poison policy (exclusive-borrow paths:
/// registration, snapshot restore, drains that own the service).
pub(crate) fn get_mut<'a, T>(mutex: &'a mut Mutex<T>, what: &str) -> &'a mut T {
    match mutex.get_mut() {
        Ok(inner) => inner,
        Err(_) => poisoned(what),
    }
}

/// `Mutex::into_inner` under the same poison policy (collecting worker
/// result slots after a scoped pool joins).
pub(crate) fn into_inner<T>(mutex: Mutex<T>, what: &str) -> T {
    match mutex.into_inner() {
        Ok(inner) => inner,
        Err(_) => poisoned(what),
    }
}

/// Read-locks an `RwLock` under the same poison policy.
pub(crate) fn read<'a, T>(rw: &'a RwLock<T>, what: &str) -> RwLockReadGuard<'a, T> {
    match rw.read() {
        Ok(guard) => guard,
        Err(_) => poisoned(what),
    }
}

/// Write-locks an `RwLock` under the same poison policy.
pub(crate) fn write<'a, T>(rw: &'a RwLock<T>, what: &str) -> RwLockWriteGuard<'a, T> {
    match rw.write() {
        Ok(guard) => guard,
        Err(_) => poisoned(what),
    }
}

fn poisoned(what: &str) -> ! {
    panic!(
        "{what} lock poisoned: a worker panicked while holding it, so its state cannot be trusted"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_pass_through_healthy_locks() {
        let m = Mutex::new(7u32);
        assert_eq!(*lock(&m, "test"), 7);
        let mut m = m;
        *get_mut(&mut m, "test") = 8;
        assert_eq!(into_inner(m, "test"), 8);

        let rw = RwLock::new(3u32);
        assert_eq!(*read(&rw, "test"), 3);
        *write(&rw, "test") = 4;
        assert_eq!(*read(&rw, "test"), 4);
    }

    #[test]
    fn poisoned_lock_panics_with_context() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock().expect("first lock is healthy");
            panic!("poison the mutex");
        })
        .join();
        let err = std::panic::catch_unwind(|| lock(&m, "shard"));
        let msg = err
            .err()
            .and_then(|e| e.downcast::<String>().ok())
            .expect("panics with a String payload");
        assert!(msg.contains("shard lock poisoned"), "{msg}");
    }
}
