//! The request/response surface of the serving engine.
//!
//! Clients speak two message kinds, mirroring the mechanism's own
//! `step`/`observe` split: a [`QueryRequest`] asks for a price quote and an
//! [`OutcomeReport`] closes the quoted round with the buyer's decision.
//! Both are addressed by tenant; [`crate::MarketService::submit`] routes
//! them to the tenant's shard and returns a [`Ticket`], and the next
//! [`crate::MarketService::drain`] turns every queued message into a
//! [`Response`] carrying the same ticket sequence number.

use crate::routing::TenantId;
use pdm_auction::ClearedRound;
use pdm_linalg::Vector;
use pdm_market::PricedQuery;
use pdm_pricing::prelude::{ObservedRound, Quote};
use std::fmt;

/// A price-quote request for one arriving query of one tenant.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRequest {
    /// The tenant whose model prices this query.
    pub tenant: TenantId,
    /// Raw feature vector `x_t` of the query.
    pub features: Vector,
    /// Reserve price `q_t` (the total privacy compensation owed).
    pub reserve_price: f64,
}

impl QueryRequest {
    /// Builds a request from a broker-prepared [`PricedQuery`] — the bridge
    /// between the `pdm-market` privacy-accounting substrate and the
    /// serving engine.
    #[must_use]
    pub fn from_priced(tenant: TenantId, priced: &PricedQuery) -> Self {
        let (features, reserve_price) = priced.pricing_inputs();
        Self {
            tenant,
            features: features.clone(),
            reserve_price,
        }
    }
}

/// The buyer's decision for the tenant's open quote.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OutcomeReport {
    /// The tenant whose open round this closes.
    pub tenant: TenantId,
    /// Whether the buyer accepted the posted price.
    pub accepted: bool,
    /// Ground-truth market value when the driver knows it (replay/benchmark
    /// workloads); `None` in production, where only the accept bit exists.
    pub market_value: Option<f64>,
}

/// One self-contained auction round for an auction tenant: the item, the
/// floor, and the sealed bids.
///
/// Unlike the posted-price quote/outcome pair, an auction round needs no
/// second message: the service quotes the tenant's personalized reserve,
/// clears the eager second-price auction against the submitted bids, feeds
/// the outcome back to the reserve policy, and answers with the settled
/// [`ClearedRound`] — all inside one FIFO slot, so there is never an open
/// auction round to abandon.
#[derive(Debug, Clone, PartialEq)]
pub struct AuctionRequest {
    /// The auction tenant whose reserve policy prices this round.
    pub tenant: TenantId,
    /// Raw feature vector `x_t` of the auctioned item.
    pub features: Vector,
    /// The round's floor `q_t` (the total privacy compensation owed) —
    /// the reserve never drops below it.
    pub floor: f64,
    /// Sealed bids, in bidder order (ties resolve to the earliest index).
    pub bids: Vec<f64>,
}

/// One message submitted to the service.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Ask for a price quote.
    Quote(QueryRequest),
    /// Close the open quote with the buyer's decision.
    Observe(OutcomeReport),
    /// Settle one auction round (auction tenants only).
    Auction(AuctionRequest),
}

impl Request {
    /// The tenant the message is addressed to.
    #[must_use]
    pub fn tenant(&self) -> TenantId {
        match self {
            Request::Quote(q) => q.tenant,
            Request::Observe(o) => o.tenant,
            Request::Auction(a) => a.tenant,
        }
    }
}

/// Admission receipt for a submitted request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ticket {
    /// Global submission sequence number; responses echo it.
    pub seq: u64,
    /// The tenant the request was addressed to.
    pub tenant: TenantId,
    /// The shard the request was queued on.
    pub shard: usize,
}

/// What the shard produced for one queued request.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// The quote for a [`Request::Quote`].
    Quoted(Quote),
    /// The closed round for a [`Request::Observe`].
    Observed(ObservedRound),
    /// The settled round for a [`Request::Auction`].
    Cleared(ClearedRound),
    /// The request could not be served (e.g. an observe with no open round).
    Failed(RequestError),
}

/// A served request, returned by [`crate::MarketService::drain`] in
/// deterministic (shard, submission) order.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Sequence number of the ticket this answers.
    pub seq: u64,
    /// The tenant the request was addressed to.
    pub tenant: TenantId,
    /// The shard that served it.
    pub shard: usize,
    /// The result.
    pub payload: Payload,
}

impl Response {
    /// The quote, when this response answered a [`Request::Quote`].
    #[must_use]
    pub fn quote(&self) -> Option<&Quote> {
        match &self.payload {
            Payload::Quoted(quote) => Some(quote),
            _ => None,
        }
    }

    /// The closed round, when this response answered a
    /// [`Request::Observe`].
    #[must_use]
    pub fn observed(&self) -> Option<&ObservedRound> {
        match &self.payload {
            Payload::Observed(round) => Some(round),
            _ => None,
        }
    }

    /// The settled round, when this response answered a
    /// [`Request::Auction`].
    #[must_use]
    pub fn cleared(&self) -> Option<&ClearedRound> {
        match &self.payload {
            Payload::Cleared(cleared) => Some(cleared),
            _ => None,
        }
    }
}

/// A request that reached its shard but could not be served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestError {
    /// An [`OutcomeReport`] arrived while the tenant had no open quote.
    NoOpenRound,
    /// The request kind does not match the tenant's market: an auction
    /// round addressed a posted-price tenant, or a quote/outcome addressed
    /// an auction tenant.
    MarketMismatch,
    /// A quote addressed a privacy tenant whose sellable supply is gone:
    /// every owner the query weights has exhausted her privacy budget, so
    /// there is nothing left to price.
    BudgetExhausted,
}

impl fmt::Display for RequestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RequestError::NoOpenRound => write!(f, "no open round to observe"),
            RequestError::MarketMismatch => {
                write!(f, "request kind does not match the tenant's market")
            }
            RequestError::BudgetExhausted => {
                write!(
                    f,
                    "every weighted data owner has exhausted her privacy budget"
                )
            }
        }
    }
}

/// Errors of the service control plane (registration, admission, snapshot).
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// The service sizing is unusable (zero shards or a zero queue
    /// capacity).  Rejected at construction — a zero capacity would
    /// otherwise shed *every* request, and silently clamping it hid
    /// misconfigured deployments.
    InvalidConfig(String),
    /// A tenant with this id is already registered.
    DuplicateTenant(TenantId),
    /// The request addressed a tenant the service does not know.
    UnknownTenant(TenantId),
    /// The tenant's shard queue is full: the request is **shed**, not
    /// queued — the bounded-queue admission policy under overload.
    QueueFull {
        /// The shard whose queue overflowed.
        shard: usize,
        /// The configured per-shard capacity.
        capacity: usize,
    },
    /// A snapshot was requested while requests were still queued or rounds
    /// still open; drain (and close) them first.
    PendingWork {
        /// Requests still sitting in shard queues.
        queued: usize,
        /// Tenants with a quoted-but-unobserved round.
        open_rounds: usize,
    },
    /// A snapshot document did not match the expected schema.
    MalformedSnapshot(String),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::InvalidConfig(message) => {
                write!(f, "invalid service config: {message}")
            }
            ServiceError::DuplicateTenant(t) => write!(f, "{t} is already registered"),
            ServiceError::UnknownTenant(t) => write!(f, "{t} is not registered"),
            ServiceError::QueueFull { shard, capacity } => {
                write!(
                    f,
                    "shard {shard} queue is full (capacity {capacity}); request shed"
                )
            }
            ServiceError::PendingWork {
                queued,
                open_rounds,
            } => write!(
                f,
                "cannot snapshot with pending work ({queued} queued requests, \
                 {open_rounds} open rounds)"
            ),
            ServiceError::MalformedSnapshot(message) => {
                write!(f, "malformed snapshot: {message}")
            }
        }
    }
}

impl std::error::Error for ServiceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_exposes_its_tenant() {
        let quote = Request::Quote(QueryRequest {
            tenant: TenantId(3),
            features: Vector::from_slice(&[1.0]),
            reserve_price: 0.0,
        });
        assert_eq!(quote.tenant(), TenantId(3));
        let observe = Request::Observe(OutcomeReport {
            tenant: TenantId(4),
            accepted: true,
            market_value: None,
        });
        assert_eq!(observe.tenant(), TenantId(4));
    }

    #[test]
    fn errors_render_actionable_messages() {
        let shed = ServiceError::QueueFull {
            shard: 2,
            capacity: 64,
        };
        let message = shed.to_string();
        assert!(message.contains("shard 2"), "{message}");
        assert!(message.contains("shed"), "{message}");
        assert!(ServiceError::UnknownTenant(TenantId(9))
            .to_string()
            .contains("tenant-9"));
        assert!(RequestError::NoOpenRound.to_string().contains("open round"));
    }
}
