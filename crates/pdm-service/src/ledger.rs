//! Per-owner privacy-budget ledgers and compensation accounting.
//!
//! A privacy tenant ([`crate::MarketKind::Privacy`]) sells noisy linear
//! queries over a fixed owner population: coordinate `i` of a query's
//! feature vector is owner `i`'s weight, so the `pdm-market` quantifier
//! prices each owner's differential-privacy leakage `ε_i = |w_i|·Δ/b` and
//! the tanh [`CompensationContract`] converts it into the payment she is
//! owed.  The [`LedgerBank`] is the serving-side account book behind that
//! market: one compact [`OwnerLedger`] per owner (ε spent, compensation
//! accrued, queries sold, exhausted flag) plus the running totals that join
//! the snapshot surface and the determinism fingerprint.
//!
//! Two economic rules are enforced here:
//!
//! * **Budgeted supply.**  An owner whose remaining ε budget cannot absorb
//!   the next query's leakage is *retired for good* (sticky exhaustion, at
//!   quote time) — she never sells again, so the exhausted-owner count is
//!   monotone by construction and the sellable supply only ever shrinks.
//!   The shard zeroes retired owners' coordinates before pricing
//!   ([`pdm_pricing::session::PricingSession::step_throttled`]), forcing
//!   the mechanism to price around the throttled data.
//! * **Arbitrage-free band.**  The total compensation `C(ε) = Σ_i
//!   base·tanh(s·ε_i)` is concave through the origin in each owner's
//!   leakage, hence monotone and subadditive: answering two queries
//!   separately never costs less compensation than answering their
//!   combination.  Keeping the posted price inside
//!   `[C(ε), ARBITRAGE_PRICE_MARKUP · C(ε)]` therefore keeps the *price*
//!   within a constant factor of a monotone subadditive curve — a buyer
//!   cannot synthesise a cheaper answer by splitting or merging queries by
//!   more than that factor.  The floor rides the reserve price (the
//!   mechanism honours reserves); the ceiling is enforced by
//!   [`arbitrage_clamp`] and never undercuts the effective reserve — a
//!   caller-supplied reserve above the markup band wins, so clamping can
//!   never surface a price below what the data owner asked for.  Clamps
//!   are counted in the shard metrics.
//!
//! Determinism: debits accumulate in FIFO serve order, and the running
//! totals are persisted verbatim in snapshots (never recomputed by summing
//! the per-owner arrays, whose float-addition order differs), so a restored
//! bank continues bit-identically.

use crate::tenant::PrivacyParams;
use pdm_linalg::Vector;
use pdm_market::{CompensationContract, PrivacyQuantifier};

/// Ceiling of the arbitrage-free price band, as a multiple of the query's
/// total compensation.  Posted prices above `ARBITRAGE_PRICE_MARKUP · C(ε)`
/// are clamped down to it; prices below `C(ε)` cannot occur because the
/// compensation is folded into the reserve.  The markup bounds how far the
/// posted curve may depart from the (monotone, subadditive) compensation
/// curve, which is what keeps multi-query pricing arbitrage-free up to a
/// constant factor.
pub const ARBITRAGE_PRICE_MARKUP: f64 = 8.0;

/// Clamps a posted price into the arbitrage-free band over the query's
/// total compensation, returning the surfaced price and whether the
/// ceiling was applied.
///
/// The ceiling is `max(reserve, ARBITRAGE_PRICE_MARKUP · C(ε))`: when the
/// effective reserve (the caller-supplied reserve price, already lifted to
/// at least the total compensation) exceeds the markup band, the reserve
/// wins and the band degenerates to that single point — clamping never
/// surfaces a price below what the data owner asked for.
///
/// A non-positive total compensation means no owner is being compensated
/// for this query (every admitted owner leaks nothing); the band is
/// degenerate and the price passes through unclamped.
#[must_use]
pub fn arbitrage_clamp(posted: f64, reserve: f64, total_compensation: f64) -> (f64, bool) {
    if total_compensation <= 0.0 {
        return (posted, false);
    }
    let ceiling = (ARBITRAGE_PRICE_MARKUP * total_compensation).max(reserve);
    if posted > ceiling {
        (ceiling, true)
    } else {
        (posted, false)
    }
}

/// One data owner's account: what she has disclosed and what she is owed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OwnerLedger {
    /// Cumulative privacy leakage ε debited across sold queries.
    pub epsilon_spent: f64,
    /// Cumulative compensation accrued across sold queries.
    pub compensation_accrued: f64,
    /// Number of sold queries this owner participated in.
    pub queries: u64,
    /// Whether the owner is retired: a query's leakage exceeded her
    /// remaining budget.  Sticky — a retired owner never sells again.
    pub exhausted: bool,
}

impl OwnerLedger {
    const fn fresh() -> Self {
        Self {
            epsilon_spent: 0.0,
            compensation_accrued: 0.0,
            queries: 0,
            exhausted: false,
        }
    }
}

/// The bank's answer to [`LedgerBank::begin_quote`]: the supply mask and
/// the charge the query would incur if it sells.
#[derive(Debug, Clone, PartialEq)]
pub struct SupplyQuote {
    /// Which owners still sell (`true` = participates in this query).
    pub active: Vec<bool>,
    /// Owners this query retired for good (their remaining budget could
    /// not absorb its leakage).
    pub newly_exhausted: u64,
    /// Total leakage the admitted owners would incur on a sale.
    pub total_leakage: f64,
    /// Total compensation the admitted owners would be owed on a sale —
    /// the floor of the arbitrage-free price band, folded into the
    /// reserve price.
    pub total_compensation: f64,
    /// Whether any admitted owner contributes a non-zero weight.  `false`
    /// means the sellable supply is gone: the request must be refused with
    /// [`crate::RequestError::BudgetExhausted`].
    pub sellable: bool,
}

/// The settled charge of one closed round, reported by
/// [`LedgerBank::settle`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SettledCharge {
    /// Leakage debited by this round (zero when the buyer declined).
    pub total_leakage: f64,
    /// Compensation accrued by this round (zero when the buyer declined).
    pub total_compensation: f64,
    /// The arbitrage-clamped price that was surfaced to the buyer.
    pub quoted_price: f64,
}

/// A priced query between quote and settlement: the per-owner charges are
/// computed once at quote time and debited only if the buyer accepts.
#[derive(Debug, Clone, PartialEq)]
struct PendingCharge {
    /// Per-owner leakage (zero for owners not participating).
    leakages: Vec<f64>,
    /// Per-owner compensation (zero for owners not participating).
    compensations: Vec<f64>,
    total_leakage: f64,
    total_compensation: f64,
    /// The arbitrage-clamped price surfaced to the buyer; set by
    /// [`LedgerBank::commit_quote`] after the mechanism priced the query.
    quoted_price: f64,
}

/// The privacy-budget ledger bank of one tenant: one [`OwnerLedger`] per
/// owner plus the serialised running totals.
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerBank {
    params: PrivacyParams,
    quantifier: PrivacyQuantifier,
    contract: CompensationContract,
    ledgers: Vec<OwnerLedger>,
    /// Running totals, accumulated in serve order and persisted verbatim —
    /// recomputing them from the per-owner arrays would change the float
    /// addition order and break bit-identical restore.
    epsilon_spent_total: f64,
    compensation_total: f64,
    /// Owners retired so far (monotone: exhaustion is sticky).
    owners_exhausted: u64,
    pending: Option<PendingCharge>,
}

impl LedgerBank {
    /// A fresh bank over `owners` data owners.
    ///
    /// # Panics
    /// Panics when the contract parameters are non-positive — the service
    /// validates [`PrivacyParams`] at registration, so reaching the panic
    /// is a caller bug, not bad input.
    #[must_use]
    pub fn new(owners: usize, params: PrivacyParams) -> Self {
        Self {
            params,
            quantifier: PrivacyQuantifier::new(),
            contract: CompensationContract::new(
                params.compensation_base,
                params.compensation_sensitivity,
            ),
            ledgers: vec![OwnerLedger::fresh(); owners],
            epsilon_spent_total: 0.0,
            compensation_total: 0.0,
            owners_exhausted: 0,
            pending: None,
        }
    }

    /// The market parameters the bank was built with.
    #[must_use]
    pub fn params(&self) -> PrivacyParams {
        self.params
    }

    /// Number of owners in the population.
    #[must_use]
    pub fn owner_count(&self) -> usize {
        self.ledgers.len()
    }

    /// Read access to the per-owner ledgers, in owner order.
    #[must_use]
    pub fn ledgers(&self) -> &[OwnerLedger] {
        &self.ledgers
    }

    /// Total ε debited across all owners, in serve order.
    #[must_use]
    pub fn epsilon_spent_total(&self) -> f64 {
        self.epsilon_spent_total
    }

    /// Total compensation accrued across all owners, in serve order.
    #[must_use]
    pub fn compensation_total(&self) -> f64 {
        self.compensation_total
    }

    /// Number of owners retired so far.  Monotone: exhaustion is sticky.
    #[must_use]
    pub fn owners_exhausted(&self) -> u64 {
        self.owners_exhausted
    }

    /// Whether a quoted charge is awaiting settlement.
    #[must_use]
    pub fn has_pending(&self) -> bool {
        self.pending.is_some()
    }

    /// Approximate resident memory of the bank (the pager reads this
    /// through the tenant's footprint).
    #[must_use]
    pub fn memory_footprint_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.ledgers.len() * std::mem::size_of::<OwnerLedger>()
    }

    /// Prices the supply side of one arriving query: computes each live
    /// owner's leakage, retires owners whose remaining budget cannot absorb
    /// it (sticky), and stages the charge for [`LedgerBank::settle`].  A
    /// previously staged charge (an abandoned round) is overwritten only
    /// when this quote is sellable — in lockstep with the pricing session,
    /// which abandons its open round only when a new round actually opens.
    /// An unsellable quote retires owners but leaves any staged charge (and
    /// the open round it mirrors) untouched, so a later settlement still
    /// debits the round that was actually quoted.
    ///
    /// # Panics
    /// Panics when the query does not cover the owner population.
    pub fn begin_quote(&mut self, weights: &Vector) -> SupplyQuote {
        assert_eq!(
            weights.len(),
            self.ledgers.len(),
            "query must cover the owner population"
        );
        let n = self.ledgers.len();
        let mut active = vec![false; n];
        let mut leakages = vec![0.0; n];
        let mut compensations = vec![0.0; n];
        let mut newly_exhausted = 0u64;
        let mut total_leakage = 0.0;
        let mut total_compensation = 0.0;
        let mut sellable = false;
        for i in 0..n {
            if self.ledgers[i].exhausted {
                continue;
            }
            let leakage = self.quantifier.owner_leakage(
                weights[i],
                self.params.data_range,
                self.params.laplace_scale,
            );
            if leakage > 0.0 && self.ledgers[i].epsilon_spent + leakage > self.params.epsilon_budget
            {
                // Sticky retirement: the owner cannot afford this query, so
                // she leaves the market for good — partial disclosure of a
                // budget remainder is not for sale.
                self.ledgers[i].exhausted = true;
                self.owners_exhausted += 1;
                newly_exhausted += 1;
                continue;
            }
            active[i] = true;
            if weights[i] != 0.0 {
                sellable = true;
            }
            if leakage > 0.0 {
                let compensation = self.contract.compensation(leakage);
                leakages[i] = leakage;
                compensations[i] = compensation;
                total_leakage += leakage;
                total_compensation += compensation;
            }
        }
        if sellable {
            self.pending = Some(PendingCharge {
                leakages,
                compensations,
                total_leakage,
                total_compensation,
                quoted_price: 0.0,
            });
        }
        SupplyQuote {
            active,
            newly_exhausted,
            total_leakage,
            total_compensation,
            sellable,
        }
    }

    /// Records the arbitrage-clamped price the buyer was quoted, completing
    /// the staged charge.  A no-op when nothing is staged.
    pub fn commit_quote(&mut self, quoted_price: f64) {
        if let Some(pending) = &mut self.pending {
            pending.quoted_price = quoted_price;
        }
    }

    /// Settles the staged charge with the buyer's decision: on a sale every
    /// participating owner is debited her leakage and credited her
    /// compensation; on a decline nothing is debited.  Returns `None` when
    /// no charge was staged (mirroring the session's "no open round").
    pub fn settle(&mut self, accepted: bool) -> Option<SettledCharge> {
        let pending = self.pending.take()?;
        if !accepted {
            return Some(SettledCharge {
                total_leakage: 0.0,
                total_compensation: 0.0,
                quoted_price: pending.quoted_price,
            });
        }
        for (ledger, (&leakage, &compensation)) in self
            .ledgers
            .iter_mut()
            .zip(pending.leakages.iter().zip(&pending.compensations))
        {
            if leakage == 0.0 {
                continue;
            }
            ledger.epsilon_spent += leakage;
            ledger.compensation_accrued += compensation;
            ledger.queries += 1;
        }
        self.epsilon_spent_total += pending.total_leakage;
        self.compensation_total += pending.total_compensation;
        Some(SettledCharge {
            total_leakage: pending.total_leakage,
            total_compensation: pending.total_compensation,
            quoted_price: pending.quoted_price,
        })
    }

    /// Drops a staged charge without settling it.  The caller must drop the
    /// session side of the round state in the same breath (abandon any open
    /// round) — quote and charge stay in lockstep or settlement desyncs.
    pub fn cancel_quote(&mut self) {
        self.pending = None;
    }

    /// Rebuilds a bank from its persisted state (the snapshot-restore
    /// path).  The totals are reinstated verbatim, not recomputed, so the
    /// restored bank continues bit-identically.
    #[must_use]
    pub fn restore(
        params: PrivacyParams,
        ledgers: Vec<OwnerLedger>,
        epsilon_spent_total: f64,
        compensation_total: f64,
    ) -> Self {
        let owners_exhausted = ledgers.iter().filter(|l| l.exhausted).count() as u64;
        Self {
            params,
            quantifier: PrivacyQuantifier::new(),
            contract: CompensationContract::new(
                params.compensation_base,
                params.compensation_sensitivity,
            ),
            ledgers,
            epsilon_spent_total,
            compensation_total,
            owners_exhausted,
            pending: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> PrivacyParams {
        PrivacyParams {
            epsilon_budget: 1.0,
            compensation_base: 0.1,
            compensation_sensitivity: 2.0,
            data_range: 1.0,
            laplace_scale: 1.0,
        }
    }

    #[test]
    fn sales_debit_ledgers_and_declines_do_not() {
        let mut bank = LedgerBank::new(2, params());
        let weights = Vector::from_slice(&[0.5, 0.25]);

        let quote = bank.begin_quote(&weights);
        assert!(quote.sellable);
        assert_eq!(quote.active, vec![true, true]);
        assert_eq!(quote.newly_exhausted, 0);
        assert!((quote.total_leakage - 0.75).abs() < 1e-12);
        assert!(quote.total_compensation > 0.0);
        bank.commit_quote(1.2);
        let declined = bank.settle(false).expect("charge was staged");
        assert_eq!(declined.total_leakage, 0.0);
        assert_eq!(declined.quoted_price, 1.2);
        assert_eq!(bank.epsilon_spent_total(), 0.0);
        assert_eq!(bank.ledgers()[0].queries, 0);

        let quote = bank.begin_quote(&weights);
        bank.commit_quote(1.2);
        let sold = bank.settle(true).expect("charge was staged");
        assert_eq!(sold.total_leakage.to_bits(), quote.total_leakage.to_bits());
        assert_eq!(
            bank.epsilon_spent_total().to_bits(),
            sold.total_leakage.to_bits()
        );
        assert_eq!(bank.ledgers()[0].epsilon_spent, 0.5);
        assert_eq!(bank.ledgers()[1].epsilon_spent, 0.25);
        assert_eq!(bank.ledgers()[0].queries, 1);
        assert!(bank.compensation_total() > 0.0);

        // Settling with nothing staged mirrors "no open round".
        assert!(bank.settle(true).is_none());
    }

    #[test]
    fn exhaustion_is_sticky_and_shrinks_the_supply() {
        let mut bank = LedgerBank::new(2, params());
        // Owner 0 spends 0.8 of her 1.0 budget; owner 1 spends 0.1.
        bank.begin_quote(&Vector::from_slice(&[0.8, 0.1]));
        bank.commit_quote(1.0);
        bank.settle(true).unwrap();
        assert_eq!(bank.owners_exhausted(), 0);

        // The next 0.5-weight query overdraws owner 0: she is retired at
        // quote time and the charge covers owner 1 alone.
        let quote = bank.begin_quote(&Vector::from_slice(&[0.5, 0.5]));
        assert_eq!(quote.newly_exhausted, 1);
        assert_eq!(quote.active, vec![false, true]);
        assert!(quote.sellable);
        assert!((quote.total_leakage - 0.5).abs() < 1e-12);
        assert_eq!(bank.owners_exhausted(), 1);
        bank.commit_quote(0.9);
        bank.settle(true).unwrap();

        // Retirement is sticky even for queries she could have afforded.
        let quote = bank.begin_quote(&Vector::from_slice(&[0.01, 0.0]));
        assert!(!quote.sellable, "only the retired owner is weighted");
        assert_eq!(quote.newly_exhausted, 0);
        assert_eq!(bank.owners_exhausted(), 1, "exhaustion count is monotone");
        assert!(!bank.has_pending(), "an unsellable query stages no charge");

        // Owner 1 eventually exhausts too; the whole supply is gone.
        let quote = bank.begin_quote(&Vector::from_slice(&[0.0, 0.9]));
        assert_eq!(quote.newly_exhausted, 1);
        assert!(!quote.sellable);
        assert_eq!(bank.owners_exhausted(), 2);
    }

    #[test]
    fn unsellable_quote_preserves_the_staged_charge() {
        let mut bank = LedgerBank::new(2, params());
        // Round A opens and stages its charge…
        let staged = bank.begin_quote(&Vector::from_slice(&[0.5, 0.25]));
        assert!(staged.sellable);
        bank.commit_quote(1.1);
        // …a follow-up query nobody can afford retires every owner and is
        // refused — without opening a round, so round A must stay staged.
        let refused = bank.begin_quote(&Vector::from_slice(&[2.0, 2.0]));
        assert!(!refused.sellable);
        assert_eq!(refused.newly_exhausted, 2);
        assert!(bank.has_pending(), "round A's charge survives the refusal");
        // The buyer then accepts round A: the sale settles with round A's
        // debit and compensation, not a phantom zero-charge sale.
        let sold = bank.settle(true).expect("round A's charge was staged");
        assert_eq!(sold.quoted_price, 1.1);
        assert_eq!(sold.total_leakage.to_bits(), staged.total_leakage.to_bits());
        assert_eq!(
            bank.epsilon_spent_total().to_bits(),
            staged.total_leakage.to_bits()
        );
        assert!(bank.compensation_total() > 0.0);
    }

    #[test]
    fn zero_leakage_owners_participate_for_free() {
        // A degenerate data range leaks nothing: everyone sells forever,
        // nobody is compensated, and the band never clamps.
        let mut bank = LedgerBank::new(
            2,
            PrivacyParams {
                data_range: 0.0,
                ..params()
            },
        );
        let quote = bank.begin_quote(&Vector::from_slice(&[5.0, 5.0]));
        assert!(quote.sellable);
        assert_eq!(quote.total_leakage, 0.0);
        assert_eq!(quote.total_compensation, 0.0);
        bank.commit_quote(3.0);
        bank.settle(true).unwrap();
        assert_eq!(bank.epsilon_spent_total(), 0.0);
        assert_eq!(bank.owners_exhausted(), 0);
        assert_eq!(arbitrage_clamp(1e12, 0.0, 0.0), (1e12, false));
    }

    #[test]
    fn arbitrage_clamp_enforces_the_markup_ceiling() {
        let (price, clamped) = arbitrage_clamp(100.0, 0.0, 1.0);
        assert!(clamped);
        assert_eq!(price, ARBITRAGE_PRICE_MARKUP);
        let (price, clamped) = arbitrage_clamp(2.0, 0.0, 1.0);
        assert!(!clamped);
        assert_eq!(price, 2.0);
        // A reserve above the markup band lifts the ceiling: the clamp
        // never surfaces a price below the effective reserve.
        let (price, clamped) = arbitrage_clamp(100.0, 20.0, 1.0);
        assert!(clamped);
        assert_eq!(price, 20.0);
        let (price, clamped) = arbitrage_clamp(20.0, 20.0, 1.0);
        assert!(!clamped);
        assert_eq!(price, 20.0);
        // The compensation curve is concave through the origin (tanh), so
        // the band's reference is monotone and subadditive in leakage.
        let contract = CompensationContract::new(0.1, 2.0);
        let (a, b) = (0.3, 0.9);
        assert!(contract.compensation(a) < contract.compensation(b));
        assert!(
            contract.compensation(a + b)
                <= contract.compensation(a) + contract.compensation(b) + 1e-15
        );
    }

    #[test]
    fn restore_reinstates_totals_verbatim() {
        let mut bank = LedgerBank::new(3, params());
        for _ in 0..4 {
            bank.begin_quote(&Vector::from_slice(&[0.3, 0.2, 0.1]));
            bank.commit_quote(0.7);
            bank.settle(true).unwrap();
        }
        let restored = LedgerBank::restore(
            bank.params(),
            bank.ledgers().to_vec(),
            bank.epsilon_spent_total(),
            bank.compensation_total(),
        );
        assert_eq!(restored, bank);
        // Both banks price the next query identically.
        let mut a = bank;
        let mut b = restored;
        let qa = a.begin_quote(&Vector::from_slice(&[0.5, 0.5, 0.5]));
        let qb = b.begin_quote(&Vector::from_slice(&[0.5, 0.5, 0.5]));
        assert_eq!(qa, qb);
    }
}
