//! The multi-tenant market-serving engine.
//!
//! [`MarketService`] owns `N` shards, each holding the pricing sessions of
//! the tenants routed to it by the stable hash of [`crate::routing`].  The
//! API is continuous ingest + drain:
//!
//! * [`MarketService::ingest`] admits a request into its tenant's
//!   mutex-striped ingest queue through a **shared** reference (bounded —
//!   overload is **shed** with [`ServiceError::QueueFull`], never buffered
//!   without limit) and returns a [`Ticket`].  Because ingest only takes
//!   `&self`, producers keep admitting traffic while a drain is running:
//!   the stripe mutex is held for one queue push, never for the serving
//!   work itself.  [`MarketService::submit`] is the same path behind the
//!   pre-ingest `&mut self` signature.
//! * [`MarketService::drain`] transfers each stripe into its shard and
//!   serves every queued request on a `std::thread::scope` worker pool
//!   (capped at the machine's hardware threads, with the calling thread
//!   claiming shards alongside the spawned workers), one worker per shard
//!   at a time, and returns the batched [`Response`]s in deterministic
//!   (shard, submission) order.
//!
//! Because every shard processes its queue strictly FIFO and shards share
//! no mutable state, the *values* the engine computes are identical for any
//! worker count — the property the `bench serve` workload verifies against
//! a serial simulation bit for bit.
//!
//! With [`ServiceConfig::resident_capacity`] set, each shard additionally
//! bounds the number of tenant sessions it keeps materialised: least
//! recently served tenants are paged out to their serialised form and
//! rehydrated bit-identically on their next request (see
//! [`crate::shard`]).  Eviction requires the WAL
//! ([`ServiceConfig::wal_segment_size`]) so paged-out state always has a
//! durable home — [`ServiceConfig::validate`] rejects one without the
//! other.

use crate::api::{
    AuctionRequest, OutcomeReport, QueryRequest, Request, Response, ServiceError, Ticket,
};
use crate::metrics::ShardMetrics;
use crate::obs::{export_shard_metrics, ServiceObs};
use crate::routing::{shard_of, TenantId};
use crate::shard::Shard;
use crate::sync;
use crate::tenant::{MarketKind, TenantConfig, TenantState};
use pdm_linalg::Json;
use pdm_obs::MetricRegistry;
use std::collections::{BTreeSet, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, RwLock};
use std::time::Instant;

/// Sizing of a [`MarketService`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceConfig {
    /// Number of shards (units of concurrency); clamped to at least 1.
    pub shards: usize,
    /// Bounded per-shard ingest-queue capacity; requests beyond it are shed.
    pub queue_capacity: usize,
    /// Service-wide cap on materialised tenant sessions (`None` =
    /// unbounded).  The cap is split across shards; tenants beyond a
    /// shard's share are paged out to their serialised form after a drain
    /// and rehydrated on their next request.  Requires
    /// [`ServiceConfig::wal_segment_size`].
    pub resident_capacity: Option<usize>,
    /// Tenant records per write-ahead-log segment (`None` = WAL disabled).
    /// Enables [`MarketService::checkpoint`] incremental snapshots.
    pub wal_segment_size: Option<usize>,
    /// Service-wide cap on every privacy tenant's per-owner ε budget
    /// (`None` = each tenant keeps its configured budget).  Registration
    /// lowers a tenant's [`crate::PrivacyParams::epsilon_budget`] to this
    /// cap, so no tenant can promise its owners more privacy loss than the
    /// deployment allows.
    pub privacy_budget: Option<f64>,
    /// Service-wide floor on every privacy tenant's per-query compensation
    /// base (`None` = each tenant keeps its configured base).  Registration
    /// raises a tenant's [`crate::PrivacyParams::compensation_base`] to
    /// this floor — the deployment's minimum owner payout.
    pub compensation_base: Option<f64>,
    /// Whether privacy tenants (owner ledgers) may page out through the
    /// cold-tenant pager.  Off by default: ledgers record real money and
    /// real privacy loss, so they leave memory only when the WAL
    /// persistence path is configured to keep a durable copy.
    pub ledger_paging: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            shards: 8,
            queue_capacity: 1024,
            resident_capacity: None,
            wal_segment_size: None,
            privacy_budget: None,
            compensation_base: None,
            ledger_paging: false,
        }
    }
}

impl ServiceConfig {
    /// Checks the sizing is usable.
    ///
    /// # Errors
    /// [`ServiceError::InvalidConfig`] when `shards == 0` (nowhere to
    /// route), `queue_capacity == 0` (every request would be shed),
    /// `resident_capacity == Some(0)` (no tenant could ever be served),
    /// `wal_segment_size == Some(0)` (no record would fit a segment), or
    /// eviction is enabled without the WAL persistence path it pages out
    /// to.  These used to be silently clamped to 1, which hid
    /// misconfigured deployments.  The privacy-ledger knobs are checked
    /// the same way: `privacy_budget` must be positive and finite,
    /// `compensation_base` finite and non-negative (a NaN would silently
    /// no-op the registration `min()`/`max()` folding), and
    /// `ledger_paging` requires the WAL.
    pub fn validate(&self) -> Result<(), ServiceError> {
        if self.shards == 0 {
            return Err(ServiceError::InvalidConfig(
                "`shards` must be at least 1".to_owned(),
            ));
        }
        if self.queue_capacity == 0 {
            return Err(ServiceError::InvalidConfig(
                "`queue_capacity` must be at least 1 (a zero-capacity queue sheds every request)"
                    .to_owned(),
            ));
        }
        if self.resident_capacity == Some(0) {
            return Err(ServiceError::InvalidConfig(
                "`resident_capacity` must be at least 1 (a zero resident set could never \
                 materialise a tenant to serve it)"
                    .to_owned(),
            ));
        }
        if self.wal_segment_size == Some(0) {
            return Err(ServiceError::InvalidConfig(
                "`wal_segment_size` must be at least 1 (no tenant record fits a zero-size segment)"
                    .to_owned(),
            ));
        }
        if self.resident_capacity.is_some() && self.wal_segment_size.is_none() {
            return Err(ServiceError::InvalidConfig(
                "`resident_capacity` (cold-tenant eviction) requires `wal_segment_size`: evicted \
                 tenants page out through the WAL persistence path"
                    .to_owned(),
            ));
        }
        if self
            .privacy_budget
            .is_some_and(|budget| !budget.is_finite() || budget <= 0.0)
        {
            return Err(ServiceError::InvalidConfig(
                "`privacy_budget` must be positive and finite: a zero ε budget retires every \
                 owner before her first query, and a NaN or infinite cap silently escapes the \
                 registration `min()` fold"
                    .to_owned(),
            ));
        }
        if self
            .compensation_base
            .is_some_and(|base| !base.is_finite() || base < 0.0)
        {
            return Err(ServiceError::InvalidConfig(
                "`compensation_base` must be finite and not negative: owners cannot owe the \
                 market for their own data, and a NaN floor silently escapes the registration \
                 `max()` fold"
                    .to_owned(),
            ));
        }
        if self.ledger_paging && self.wal_segment_size.is_none() {
            return Err(ServiceError::InvalidConfig(
                "`ledger_paging` requires `wal_segment_size`: owner ledgers page out through \
                 the WAL persistence path"
                    .to_owned(),
            ));
        }
        Ok(())
    }

    /// The resident-session cap of shard `index` under `shards` shards:
    /// the service-wide cap split as evenly as the integers allow, so the
    /// per-shard shares always sum to exactly the configured capacity.
    pub(crate) fn resident_share(&self, index: usize) -> Option<usize> {
        self.resident_capacity.map(|cap| {
            let base = cap / self.shards;
            let remainder = cap % self.shards;
            base + usize::from(index < remainder)
        })
    }
}

/// One ingest stripe: the bounded MPSC queue in front of a shard.
///
/// Producers lock the stripe only for the duration of one push; the drain
/// path takes the whole queue in one transfer.  Shed requests are counted
/// here (the stripe is the component that refuses them) and merged into
/// the shard's metric ledger on every read.
#[derive(Debug)]
struct IngestStripe {
    queue: Mutex<VecDeque<(u64, Request)>>,
    shed: AtomicU64,
}

impl IngestStripe {
    fn new() -> Self {
        Self {
            queue: Mutex::new(VecDeque::new()),
            shed: AtomicU64::new(0),
        }
    }
}

/// The sharded serving engine.
#[derive(Debug)]
pub struct MarketService {
    config: ServiceConfig,
    /// Mutex-striped bounded ingest queues, one per shard.
    ingest: Vec<IngestStripe>,
    shards: Vec<Mutex<Shard>>,
    /// Every registered tenant id, readable without touching a shard — the
    /// ingest path checks membership here so admission never contends with
    /// a drain worker holding the shard lock.
    registry: RwLock<BTreeSet<TenantId>>,
    next_seq: AtomicU64,
    /// Monotonic WAL segment number (see [`MarketService::checkpoint`]).
    pub(crate) wal_segments: AtomicU64,
    /// Hardware threads available to a drain pool, probed once at
    /// construction: spawning more drain workers than the machine can run
    /// cannot add parallelism, it only pays spawn and context-switch
    /// overhead, so [`MarketService::drain`] caps its pool here.
    hardware_workers: usize,
    /// Service-level observability state: WAL-stage spans plus the bounded
    /// post-mortem event journal.  Process-local — never persisted; a
    /// restored service starts with a fresh one (see [`crate::obs`]).
    pub(crate) obs: Mutex<ServiceObs>,
}

impl MarketService {
    /// Creates an empty service with the given sizing.
    ///
    /// # Errors
    /// [`ServiceError::InvalidConfig`] when the sizing fails
    /// [`ServiceConfig::validate`] — zero shards, a zero queue capacity, a
    /// zero resident cap or WAL segment size, or eviction without the WAL
    /// are rejected instead of silently clamped.
    pub fn new(config: ServiceConfig) -> Result<Self, ServiceError> {
        config.validate()?;
        let shards = (0..config.shards)
            .map(|index| {
                Mutex::new(Shard::new(
                    index,
                    config.resident_share(index),
                    config.ledger_paging,
                ))
            })
            .collect();
        Ok(Self {
            config,
            ingest: (0..config.shards).map(|_| IngestStripe::new()).collect(),
            shards,
            registry: RwLock::new(BTreeSet::new()),
            next_seq: AtomicU64::new(0),
            wal_segments: AtomicU64::new(0),
            hardware_workers: std::thread::available_parallelism()
                .map_or(1, std::num::NonZeroUsize::get),
            obs: Mutex::new(ServiceObs::new()),
        })
    }

    /// The sizing the service was built with.
    #[must_use]
    pub fn config(&self) -> ServiceConfig {
        self.config
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard the given tenant is (or would be) routed to.
    #[must_use]
    pub fn shard_of(&self, tenant: TenantId) -> usize {
        shard_of(tenant, self.shards.len())
    }

    /// Total number of registered tenants, resident or paged out.
    #[must_use]
    pub fn tenant_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| sync::lock(s, "shard").tenant_count())
            .sum()
    }

    /// Number of tenants currently materialised in memory.  With
    /// [`ServiceConfig::resident_capacity`] set this stays at or below the
    /// cap between drains.
    #[must_use]
    pub fn resident_tenants(&self) -> usize {
        self.shards
            .iter()
            .map(|s| sync::lock(s, "shard").resident_count())
            .sum()
    }

    /// Approximate bytes of tenant state held in memory: materialised
    /// sessions at their learned-state footprint, paged-out tenants at the
    /// length of their serialised form.
    #[must_use]
    pub fn resident_memory_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| sync::lock(s, "shard").resident_memory_bytes())
            .sum()
    }

    /// Registers a new tenant, returning the shard it was routed to.
    ///
    /// A privacy tenant's parameters are checked here (the compensation
    /// contract would otherwise panic on a non-positive base) and then
    /// folded against the service-wide knobs: the ε budget is lowered to
    /// [`ServiceConfig::privacy_budget`] and the compensation base raised
    /// to [`ServiceConfig::compensation_base`] when those caps are set.
    ///
    /// # Errors
    /// * [`ServiceError::DuplicateTenant`] when the id is already
    ///   registered.
    /// * [`ServiceError::InvalidConfig`] when a privacy tenant's ε budget,
    ///   compensation base, compensation sensitivity, Laplace scale, or
    ///   data range is not positive and finite.
    pub fn register_tenant(
        &mut self,
        id: TenantId,
        mut config: TenantConfig,
    ) -> Result<usize, ServiceError> {
        if let MarketKind::Privacy(ref mut params) = config.market {
            let positive_finite = |name: &str, value: f64| -> Result<(), ServiceError> {
                if value > 0.0 && value.is_finite() {
                    Ok(())
                } else {
                    Err(ServiceError::InvalidConfig(format!(
                        "privacy tenant `{name}` must be positive and finite, got {value}"
                    )))
                }
            };
            positive_finite("epsilon_budget", params.epsilon_budget)?;
            positive_finite("compensation_base", params.compensation_base)?;
            positive_finite("compensation_sensitivity", params.compensation_sensitivity)?;
            positive_finite("data_range", params.data_range)?;
            positive_finite("laplace_scale", params.laplace_scale)?;
            if let Some(cap) = self.config.privacy_budget {
                params.epsilon_budget = params.epsilon_budget.min(cap);
            }
            if let Some(floor) = self.config.compensation_base {
                params.compensation_base = params.compensation_base.max(floor);
            }
        }
        self.register_state(TenantState::new(id, config))
    }

    /// Applies one WAL tenant record: last-record-wins replacement of any
    /// existing state, or plain registration when the tenant first appears
    /// after the base snapshot (see [`MarketService::restore_with_wal`]).
    pub(crate) fn apply_wal_record(&mut self, state: TenantState) {
        let index = self.shard_of(state.id);
        let id = state.id;
        sync::get_mut(&mut self.shards[index], "shard").replace(state);
        sync::write(&self.registry, "registry").insert(id);
    }

    /// Registers a pre-built tenant state (the snapshot-restore path).
    pub(crate) fn register_state(&mut self, state: TenantState) -> Result<usize, ServiceError> {
        let index = self.shard_of(state.id);
        let id = state.id;
        let shard = sync::get_mut(&mut self.shards[index], "shard");
        if shard.contains(id) {
            return Err(ServiceError::DuplicateTenant(id));
        }
        shard.register(state);
        sync::write(&self.registry, "registry").insert(id);
        Ok(index)
    }

    /// Admits one request into its tenant's ingest stripe through a shared
    /// reference — the continuous-ingest path.  Producers on other threads
    /// may call this while a drain is in flight; the stripe mutex is held
    /// only for the push.
    ///
    /// # Errors
    /// * [`ServiceError::UnknownTenant`] — the tenant was never registered.
    /// * [`ServiceError::QueueFull`] — the stripe is at capacity; the
    ///   request is shed (counted in the shard's metrics) instead of
    ///   growing the queue without bound.
    pub fn ingest(&self, request: Request) -> Result<Ticket, ServiceError> {
        let tenant = request.tenant();
        if !sync::read(&self.registry, "registry").contains(&tenant) {
            return Err(ServiceError::UnknownTenant(tenant));
        }
        let index = self.shard_of(tenant);
        let stripe = &self.ingest[index];
        let mut queue = sync::lock(&stripe.queue, "ingest stripe");
        if queue.len() >= self.config.queue_capacity {
            stripe.shed.fetch_add(1, Ordering::Relaxed);
            return Err(ServiceError::QueueFull {
                shard: index,
                capacity: self.config.queue_capacity,
            });
        }
        // Sequence numbers are drawn under the stripe lock so each stripe's
        // queue is strictly seq-ordered — the invariant behind the
        // deterministic (shard, submission) response order.
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        queue.push_back((seq, request));
        Ok(Ticket {
            seq,
            tenant,
            shard: index,
        })
    }

    /// Convenience wrapper: ingest a price-quote request via `&self`.
    ///
    /// # Errors
    /// Same as [`MarketService::ingest`].
    pub fn ingest_quote(&self, query: QueryRequest) -> Result<Ticket, ServiceError> {
        self.ingest(Request::Quote(query))
    }

    /// Convenience wrapper: ingest an outcome report via `&self`.
    ///
    /// # Errors
    /// Same as [`MarketService::ingest`].
    pub fn ingest_outcome(&self, outcome: OutcomeReport) -> Result<Ticket, ServiceError> {
        self.ingest(Request::Observe(outcome))
    }

    /// Convenience wrapper: ingest a self-contained auction round via
    /// `&self`.
    ///
    /// # Errors
    /// Same as [`MarketService::ingest`].
    pub fn ingest_auction(&self, auction: AuctionRequest) -> Result<Ticket, ServiceError> {
        self.ingest(Request::Auction(auction))
    }

    /// Admits one request into its tenant's ingest stripe (the pre-ingest
    /// exclusive-reference signature, kept for drivers that own the
    /// service; identical semantics to [`MarketService::ingest`]).
    ///
    /// # Errors
    /// Same as [`MarketService::ingest`].
    pub fn submit(&mut self, request: Request) -> Result<Ticket, ServiceError> {
        self.ingest(request)
    }

    /// Convenience wrapper: submit a price-quote request.
    ///
    /// # Errors
    /// Same as [`MarketService::ingest`].
    pub fn submit_quote(&mut self, query: QueryRequest) -> Result<Ticket, ServiceError> {
        self.ingest(Request::Quote(query))
    }

    /// Convenience wrapper: submit an outcome report.
    ///
    /// # Errors
    /// Same as [`MarketService::ingest`].
    pub fn submit_outcome(&mut self, outcome: OutcomeReport) -> Result<Ticket, ServiceError> {
        self.ingest(Request::Observe(outcome))
    }

    /// Convenience wrapper: submit a self-contained auction round.
    ///
    /// # Errors
    /// Same as [`MarketService::ingest`].
    pub fn submit_auction(&mut self, auction: AuctionRequest) -> Result<Ticket, ServiceError> {
        self.ingest(Request::Auction(auction))
    }

    /// Total requests currently queued (ingest stripes plus any shard
    /// backlog mid-drain).
    #[must_use]
    pub fn queued_requests(&self) -> usize {
        let striped: usize = self
            .ingest
            .iter()
            .map(|stripe| sync::lock(&stripe.queue, "ingest stripe").len())
            .sum();
        let shard_backlog: usize = self
            .shards
            .iter()
            .map(|s| sync::lock(s, "shard").queue_len())
            .sum();
        striped + shard_backlog
    }

    /// Moves everything queued on shard `index`'s ingest stripe into the
    /// shard's FIFO, preserving seq order.
    fn transfer_stripe(stripe: &IngestStripe, shard: &mut Shard) {
        let mut queue = sync::lock(&stripe.queue, "ingest stripe");
        let moved = queue.len();
        if moved == 0 {
            return;
        }
        // pdm-lint: allow(no-ambient-clock) reason="wall-clock latency span; wall histograms are documented non-deterministic and excluded from the determinism fingerprint"
        let started = Instant::now();
        shard.admit_transferred(queue.drain(..));
        shard
            .obs
            .registry
            .record_span(shard.obs.transfer, started.elapsed(), moved as u64);
    }

    /// Serves every queued request and returns the responses in
    /// deterministic (shard, submission) order.
    ///
    /// Convenience wrapper over [`MarketService::drain_into`] that allocates
    /// the response buffer; hot callers that drain in a loop should hold a
    /// buffer and call `drain_into` to reuse its capacity across drains.
    pub fn drain(&mut self, workers: usize) -> Vec<Response> {
        let mut responses = Vec::new();
        self.drain_into(workers, &mut responses);
        responses
    }

    /// Serves every queued request, appending the responses to `out` in
    /// deterministic (shard, submission) order.
    ///
    /// Each worker first transfers its claimed shard's ingest stripe into
    /// the shard FIFO, then serves the backlog.  `workers` scoped threads
    /// pull shard indices from an atomic counter; each shard is processed
    /// serially by whichever worker claims it, so per-shard state needs no
    /// lock contention and the computed values are independent of the
    /// worker count.  `workers` is clamped to `[1, shard_count]` and capped
    /// at the machine's hardware threads — oversubscribing a core cannot
    /// add parallelism, it only pays spawn and context-switch overhead.  An
    /// effective single worker (including every drain on a single-core
    /// host) runs on the calling thread with no pool at all; a pool of `n`
    /// workers spawns `n - 1` threads and the calling thread claims shards
    /// alongside them.
    ///
    /// Requests ingested *after* a shard's transfer step are served by the
    /// next drain — continuous producers never block on the serving work,
    /// they only wait out the one-push stripe lock.
    pub fn drain_into(&mut self, workers: usize, out: &mut Vec<Response>) {
        let shard_count = self.shards.len();
        let workers = workers.clamp(1, shard_count).min(self.hardware_workers);

        // An idle drain (e.g. the silent waves of a bursty workload) must
        // not pay for thread spawns or per-shard locking.
        if self.queued_requests() == 0 {
            return;
        }

        if workers <= 1 {
            for (stripe, shard) in self.ingest.iter().zip(&mut self.shards) {
                let shard = sync::get_mut(shard, "shard");
                Self::transfer_stripe(stripe, shard);
                shard.process_all_into(out);
            }
            return;
        }

        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Vec<Response>>> =
            (0..shard_count).map(|_| Mutex::new(Vec::new())).collect();
        let shards = &self.shards;
        let stripes = &self.ingest;
        let claim_shards = || loop {
            let index = next.fetch_add(1, Ordering::Relaxed);
            if index >= shard_count {
                break;
            }
            let mut responses = Vec::new();
            let mut shard = sync::lock(&shards[index], "shard");
            Self::transfer_stripe(&stripes[index], &mut shard);
            shard.process_all_into(&mut responses);
            drop(shard);
            *sync::lock(&slots[index], "slot") = responses;
        };
        std::thread::scope(|scope| {
            for _ in 1..workers {
                scope.spawn(claim_shards);
            }
            claim_shards();
        });

        for slot in slots {
            out.append(&mut sync::into_inner(slot, "slot"));
        }
    }

    /// The regret ledger one tenant accumulated from outcomes that carried
    /// ground-truth market values, or `None` for an unregistered tenant.
    /// Paged-out tenants are read from their serialised form without
    /// disturbing the resident set.
    ///
    /// Benchmark drivers fold these together **in tenant order** (see
    /// [`pdm_pricing::regret::RegretReport::merge`]) to compare a sharded
    /// run against a serial simulation bit for bit.
    #[must_use]
    pub fn tenant_report(&self, tenant: TenantId) -> Option<pdm_pricing::prelude::RegretReport> {
        sync::lock(&self.shards[self.shard_of(tenant)], "shard").tenant_report(tenant)
    }

    /// A clone of each shard's metrics ledger, in shard order, with the
    /// shed count of the shard's ingest stripe folded in.
    #[must_use]
    pub fn shard_metrics(&self) -> Vec<ShardMetrics> {
        self.shards
            .iter()
            .zip(&self.ingest)
            .map(|(shard, stripe)| {
                let mut metrics = sync::lock(shard, "shard").metrics.clone();
                metrics.shed += stripe.shed.load(Ordering::Relaxed);
                metrics
            })
            .collect()
    }

    /// All shard ledgers folded ([`ShardMetrics::merge`]) into one
    /// service-wide aggregate, in shard-index order — deterministic for a
    /// given request stream, independent of worker count.  This is the
    /// figure `bench serve`'s summary table and the dashboards read.
    #[must_use]
    pub fn aggregate_metrics(&self) -> ShardMetrics {
        let mut total = ShardMetrics::new();
        for shard in self.shard_metrics() {
            total.merge(&shard);
        }
        total
    }

    /// Alias of [`MarketService::aggregate_metrics`], kept for callers that
    /// predate the explicit name.
    #[must_use]
    pub fn metrics(&self) -> ShardMetrics {
        self.aggregate_metrics()
    }

    /// One merged observability registry for the whole service — the scrape
    /// endpoint's data source.  Render it with
    /// [`MetricRegistry::render_prometheus`] or dump it with
    /// [`MetricRegistry::to_json`].
    ///
    /// The scrape folds, in this order:
    ///
    /// 1. the service-level registry (WAL checkpoint/restore spans),
    /// 2. every shard's registry, in shard-index order (serving-stage spans),
    /// 3. the aggregate [`ShardMetrics`] ledger, exported as named counters,
    /// 4. point-in-time gauges (queue depth, residency, open rounds,
    ///    memory, WAL segments).
    ///
    /// Counter and histogram merges are exact folds in a fixed order, and
    /// the gauges read deterministic engine state, so everything except the
    /// wall-clock span halves is a pure function of the request stream —
    /// byte-identical across worker counts under
    /// [`MetricRegistry::to_json`]`(true)`.
    ///
    /// The registry is process-local and **not** persisted: a restored
    /// service scrapes fresh (empty) span histograms, while the exported
    /// ledger counters survive because the [`ShardMetrics`] they re-read at
    /// every scrape travels in snapshots and WAL segments.
    #[must_use]
    pub fn scrape(&self) -> MetricRegistry {
        let mut merged = sync::lock(&self.obs, "obs").registry.clone();
        let mut resident = 0usize;
        let mut cold = 0usize;
        let mut open_rounds = 0usize;
        let mut memory_bytes = 0usize;
        let mut shard_backlog = 0usize;
        for shard in &self.shards {
            let shard = sync::lock(shard, "shard");
            merged.merge(&shard.obs.registry);
            resident += shard.resident_count();
            cold += shard.tenant_count() - shard.resident_count();
            open_rounds += shard.open_rounds();
            memory_bytes += shard.resident_memory_bytes();
            shard_backlog += shard.queue_len();
        }
        export_shard_metrics(&mut merged, &self.aggregate_metrics());
        let striped: usize = self
            .ingest
            .iter()
            .map(|stripe| sync::lock(&stripe.queue, "ingest stripe").len())
            .sum();
        let mut set = |name: &str, help: &str, value: f64| {
            let id = merged.gauge(name, help);
            merged.set(id, value);
        };
        set(
            "queue.depth",
            "Requests queued across ingest stripes and shard FIFOs",
            (striped + shard_backlog) as f64,
        );
        set(
            "tenants.resident",
            "Tenant sessions currently materialised in memory",
            resident as f64,
        );
        set(
            "tenants.cold",
            "Tenant sessions paged out to their serialised form",
            cold as f64,
        );
        set(
            "rounds.open",
            "Tenants with a quoted-but-unobserved round",
            open_rounds as f64,
        );
        set(
            "memory.resident_bytes",
            "Approximate bytes of tenant state held in memory",
            memory_bytes as f64,
        );
        set(
            "wal.segments_written",
            "WAL segments written (or replayed) so far",
            self.wal_segments.load(Ordering::Relaxed) as f64,
        );
        merged
    }

    /// The service's bounded post-mortem event journal (checkpoints,
    /// restores) as a JSON array of `{seq, label, value}` objects, oldest
    /// first.  Process-local and wall-clock-free, but *order*-sensitive to
    /// operator actions — it is diagnostics, not part of any determinism
    /// comparison.
    #[must_use]
    pub fn event_journal(&self) -> Json {
        sync::lock(&self.obs, "obs").journal.to_json()
    }

    /// Read access to the shards, for the snapshot writer.
    pub(crate) fn shards(&self) -> &[Mutex<Shard>] {
        &self.shards
    }

    /// Mutable access to the shards, for the snapshot restorer.
    pub(crate) fn shards_mut(&mut self) -> &mut [Mutex<Shard>] {
        &mut self.shards
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::Payload;
    use pdm_linalg::Vector;

    fn query(tenant: u64, features: &[f64]) -> QueryRequest {
        QueryRequest {
            tenant: TenantId(tenant),
            features: Vector::from_slice(features),
            reserve_price: 0.1,
        }
    }

    fn service_with_tenants(shards: usize, tenants: u64) -> MarketService {
        let mut service = MarketService::new(ServiceConfig {
            shards,
            queue_capacity: 64,
            ..ServiceConfig::default()
        })
        .expect("valid service config");
        for id in 0..tenants {
            service
                .register_tenant(TenantId(id), TenantConfig::standard(2, 100))
                .expect("fresh id");
        }
        service
    }

    #[test]
    fn register_routes_by_stable_hash_and_rejects_duplicates() {
        let mut service = service_with_tenants(4, 10);
        assert_eq!(service.tenant_count(), 10);
        for id in 0..10 {
            assert_eq!(
                service.shard_of(TenantId(id)),
                crate::routing::shard_of(TenantId(id), 4)
            );
        }
        assert_eq!(
            service.register_tenant(TenantId(3), TenantConfig::standard(2, 100)),
            Err(ServiceError::DuplicateTenant(TenantId(3)))
        );
    }

    #[test]
    fn submit_rejects_unknown_tenants() {
        let mut service = service_with_tenants(2, 1);
        let err = service.submit_quote(query(99, &[1.0, 0.0])).unwrap_err();
        assert_eq!(err, ServiceError::UnknownTenant(TenantId(99)));
    }

    #[test]
    fn submit_drain_round_trip_preserves_order_and_tickets() {
        let mut service = service_with_tenants(3, 6);
        let mut tickets = Vec::new();
        for id in 0..6 {
            tickets.push(service.submit_quote(query(id, &[0.6, 0.8])).unwrap());
        }
        let responses = service.drain(3);
        assert_eq!(responses.len(), 6);
        // Responses come back in (shard, submission) order and carry the
        // submitted sequence numbers.
        let mut last = (0usize, 0u64);
        for response in &responses {
            assert!(matches!(response.payload, Payload::Quoted(_)));
            let key = (response.shard, response.seq);
            assert!(key >= last, "responses must be shard/submission ordered");
            last = key;
            let ticket = tickets.iter().find(|t| t.seq == response.seq).unwrap();
            assert_eq!(ticket.tenant, response.tenant);
            assert_eq!(ticket.shard, response.shard);
        }
        assert_eq!(service.metrics().quotes_served, 6);
    }

    #[test]
    fn overload_is_shed_with_an_error_and_counted() {
        let mut service = MarketService::new(ServiceConfig {
            shards: 1,
            queue_capacity: 2,
            ..ServiceConfig::default()
        })
        .expect("valid service config");
        service
            .register_tenant(TenantId(0), TenantConfig::standard(2, 100))
            .unwrap();
        assert!(service.submit_quote(query(0, &[1.0, 0.0])).is_ok());
        assert!(service.submit_quote(query(0, &[1.0, 0.0])).is_ok());
        let err = service.submit_quote(query(0, &[1.0, 0.0])).unwrap_err();
        assert!(matches!(err, ServiceError::QueueFull { shard: 0, .. }));
        assert_eq!(service.metrics().shed, 1);
        assert!(service.metrics().shed_rate() > 0.0);
        // Draining frees capacity again.
        assert_eq!(service.drain(1).len(), 2);
        assert!(service.submit_quote(query(0, &[1.0, 0.0])).is_ok());
    }

    #[test]
    fn concurrent_ingest_through_a_shared_reference_is_admitted() {
        // The continuous-ingest contract: producers on several threads push
        // through `&self` while nothing else holds the service, and every
        // admitted request is eventually served exactly once.
        let mut service = service_with_tenants(4, 8);
        let shared = &service;
        let admitted: usize = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4u64)
                .map(|worker| {
                    scope.spawn(move || {
                        let mut ok = 0usize;
                        for round in 0..16u64 {
                            let id = (worker * 16 + round) % 8;
                            if shared.ingest_quote(query(id, &[0.6, 0.8])).is_ok() {
                                ok += 1;
                            }
                        }
                        ok
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(service.queued_requests(), admitted);
        let responses = service.drain(4);
        assert_eq!(responses.len(), admitted);
        let metrics = service.metrics();
        assert_eq!(metrics.quotes_served as usize, admitted);
        assert_eq!(metrics.quotes_served + metrics.shed, 64);
    }

    #[test]
    fn worker_count_does_not_change_served_values() {
        let run = |workers: usize| {
            let mut service = service_with_tenants(4, 12);
            let mut posted = Vec::new();
            for wave in 0..5 {
                for id in 0..12 {
                    let x = Vector::from_slice(&[0.5 + 0.01 * wave as f64, 0.5]);
                    service
                        .submit(Request::Quote(QueryRequest {
                            tenant: TenantId(id),
                            features: x,
                            reserve_price: 0.2,
                        }))
                        .unwrap();
                }
                let responses = service.drain(workers);
                for response in &responses {
                    let quote = response.quote().unwrap();
                    posted.push((response.tenant, quote.posted_price));
                    service
                        .submit_outcome(OutcomeReport {
                            tenant: response.tenant,
                            accepted: quote.posted_price <= 1.0,
                            market_value: Some(1.0),
                        })
                        .unwrap();
                }
                service.drain(workers);
            }
            (posted, service.metrics().revenue, service.metrics().regret)
        };
        let (posted_1, revenue_1, regret_1) = run(1);
        let (posted_4, revenue_4, regret_4) = run(4);
        assert_eq!(posted_1, posted_4);
        assert_eq!(revenue_1.to_bits(), revenue_4.to_bits());
        assert_eq!(regret_1.to_bits(), regret_4.to_bits());
    }

    #[test]
    fn scrape_renders_valid_prometheus_and_a_worker_independent_deterministic_dump() {
        let run = |workers: usize| {
            let mut service = service_with_tenants(4, 12);
            for wave in 0..5 {
                for id in 0..12 {
                    let x = Vector::from_slice(&[0.5 + 0.01 * wave as f64, 0.5]);
                    service
                        .submit(Request::Quote(QueryRequest {
                            tenant: TenantId(id),
                            features: x,
                            reserve_price: 0.2,
                        }))
                        .unwrap();
                }
                for response in service.drain(workers) {
                    let quote = response.quote().unwrap();
                    service
                        .submit_outcome(OutcomeReport {
                            tenant: response.tenant,
                            accepted: quote.posted_price <= 1.0,
                            market_value: Some(1.0),
                        })
                        .unwrap();
                }
                service.drain(workers);
            }
            service.scrape()
        };
        let serial = run(1);
        let pooled = run(4);

        // The deterministic half — counters, gauges, work histograms — is
        // byte-identical across worker counts; only wall-clock span halves
        // may differ.
        assert_eq!(serial.to_json(true).render(), pooled.to_json(true).render());

        // The serving stages recorded real work.
        let drain = serial.histogram_counts("shard.drain.work_items").unwrap();
        assert!(drain.count() > 0);
        assert_eq!(drain.sum(), 120, "5 waves × 12 quotes + 12 observes");
        let quote = serial.histogram_counts("shard.quote.work_items").unwrap();
        assert!(quote.count() > 0);
        assert_eq!(quote.sum(), 120, "posted segments cover every request");
        let transfer = serial
            .histogram_counts("ingest.transfer.work_items")
            .unwrap();
        assert_eq!(transfer.sum(), 120);

        // Ledger counters are exported and gauges read the drained state.
        assert_eq!(serial.counter_value("quotes_served_total"), Some(60.0));
        assert_eq!(serial.counter_value("observations_total"), Some(60.0));
        assert_eq!(serial.gauge_value("queue.depth"), Some(0.0));
        assert_eq!(serial.gauge_value("rounds.open"), Some(0.0));
        assert_eq!(serial.gauge_value("tenants.resident"), Some(12.0));

        // The Prometheus rendering passes its own exposition lint.
        let text = serial.render_prometheus();
        assert!(text.contains("pdm_quotes_served_total 60"));
        assert!(text.contains("pdm_shard_drain_wall_nanos_bucket"));
        pdm_obs::prom::parse(&text).expect("scrape renders a valid exposition");
    }

    #[test]
    fn registry_is_process_local_and_resets_on_restore() {
        // Satellite contract: registry contents are process-local scratch —
        // a restored service starts with empty span histograms — except the
        // serving counters, which survive because they are re-exported from
        // the persisted `ShardMetrics` ledger at every scrape.  The snapshot
        // schema itself is untouched by the observability layer.
        let mut service = service_with_tenants(2, 4);
        for id in 0..4 {
            service.submit_quote(query(id, &[0.6, 0.8])).unwrap();
        }
        for response in service.drain(2) {
            service
                .submit_outcome(OutcomeReport {
                    tenant: response.tenant,
                    accepted: true,
                    market_value: Some(1.0),
                })
                .unwrap();
        }
        service.drain(2);
        let before = service.scrape();
        assert!(
            before
                .histogram_counts("shard.drain.work_items")
                .unwrap()
                .count()
                > 0
        );
        assert_eq!(before.counter_value("quotes_served_total"), Some(4.0));

        let snapshot = service.snapshot().unwrap();
        let restored = MarketService::restore(&snapshot).unwrap();
        let after = restored.scrape();
        assert_eq!(
            after
                .histogram_counts("shard.drain.work_items")
                .unwrap()
                .count(),
            0,
            "span histograms are process-local and reset on restore"
        );
        assert_eq!(
            after.counter_value("quotes_served_total"),
            Some(4.0),
            "ledger-backed counters persist through the snapshot"
        );
        assert!(restored.event_journal().render().len() >= 2);
    }

    #[test]
    fn aggregate_metrics_merges_streaming_latency_stats_across_shards() {
        // Regression guard for the latency pooling path: the aggregate must
        // carry the all-time OnlineStats of *every* shard — count summed,
        // min/max pooled — not just the sliding quantile windows.
        let mut service = service_with_tenants(4, 12);
        for id in 0..12 {
            service.submit_quote(query(id, &[0.6, 0.8])).unwrap();
        }
        service.drain(4);

        let per_shard = service.shard_metrics();
        let active: Vec<_> = per_shard
            .iter()
            .filter(|m| m.latency_stats().count() > 0)
            .collect();
        assert!(
            active.len() >= 2,
            "12 tenants over 4 shards must exercise several shards"
        );
        let total: u64 = active.iter().map(|m| m.latency_stats().count()).sum();
        let min = active
            .iter()
            .map(|m| m.latency_stats().min())
            .fold(f64::INFINITY, f64::min);
        let max = active
            .iter()
            .map(|m| m.latency_stats().max())
            .fold(f64::NEG_INFINITY, f64::max);

        let aggregate = service.aggregate_metrics();
        assert_eq!(aggregate.latency_stats().count(), total);
        assert_eq!(aggregate.latency_stats().min(), min);
        assert_eq!(aggregate.latency_stats().max(), max);
        assert!(aggregate.latency_stats().mean() >= min);
        assert!(aggregate.latency_stats().mean() <= max);
    }

    #[test]
    fn degenerate_configs_are_rejected_not_clamped() {
        // Regression: `queue_capacity: 0` used to be silently clamped to 1
        // (by `Shard::new`), hiding a deployment that would otherwise shed
        // every request.  It is now a construction-time config error.
        let err = MarketService::new(ServiceConfig {
            shards: 4,
            queue_capacity: 0,
            ..ServiceConfig::default()
        })
        .unwrap_err();
        assert!(matches!(err, ServiceError::InvalidConfig(_)));
        assert!(err.to_string().contains("queue_capacity"), "{err}");

        let err = MarketService::new(ServiceConfig {
            shards: 0,
            queue_capacity: 16,
            ..ServiceConfig::default()
        })
        .unwrap_err();
        assert!(matches!(err, ServiceError::InvalidConfig(_)));
        assert!(err.to_string().contains("shards"), "{err}");

        // The boundary sizing is valid.
        let service = MarketService::new(ServiceConfig {
            shards: 1,
            queue_capacity: 1,
            ..ServiceConfig::default()
        })
        .expect("minimal sizing is valid");
        assert_eq!(service.shard_count(), 1);
        assert_eq!(service.config().queue_capacity, 1);
    }

    #[test]
    fn paging_and_wal_knobs_are_validated() {
        // A zero resident cap could never materialise a tenant.
        let err = MarketService::new(ServiceConfig {
            shards: 2,
            queue_capacity: 8,
            resident_capacity: Some(0),
            wal_segment_size: Some(16),
            ..ServiceConfig::default()
        })
        .unwrap_err();
        assert!(matches!(err, ServiceError::InvalidConfig(_)));
        assert!(err.to_string().contains("resident_capacity"), "{err}");

        // A zero WAL segment size fits no record.
        let err = MarketService::new(ServiceConfig {
            shards: 2,
            queue_capacity: 8,
            resident_capacity: None,
            wal_segment_size: Some(0),
            ..ServiceConfig::default()
        })
        .unwrap_err();
        assert!(matches!(err, ServiceError::InvalidConfig(_)));
        assert!(err.to_string().contains("wal_segment_size"), "{err}");

        // Eviction without the WAL has nowhere durable to page out to.
        let err = MarketService::new(ServiceConfig {
            shards: 2,
            queue_capacity: 8,
            resident_capacity: Some(4),
            wal_segment_size: None,
            ..ServiceConfig::default()
        })
        .unwrap_err();
        assert!(matches!(err, ServiceError::InvalidConfig(_)));
        let message = err.to_string();
        assert!(message.contains("resident_capacity"), "{message}");
        assert!(message.contains("wal_segment_size"), "{message}");

        // The combined sizing is valid, and the per-shard shares sum to
        // exactly the configured cap.
        let config = ServiceConfig {
            shards: 3,
            queue_capacity: 8,
            resident_capacity: Some(7),
            wal_segment_size: Some(4),
            ..ServiceConfig::default()
        };
        assert!(MarketService::new(config).is_ok());
        let shares: usize = (0..3).map(|i| config.resident_share(i).unwrap()).sum();
        assert_eq!(shares, 7);
    }

    #[test]
    fn privacy_ledger_knobs_are_validated() {
        // A zero ε budget would retire every owner before her first query.
        let err = MarketService::new(ServiceConfig {
            shards: 2,
            queue_capacity: 8,
            privacy_budget: Some(0.0),
            ..ServiceConfig::default()
        })
        .unwrap_err();
        assert!(matches!(err, ServiceError::InvalidConfig(_)));
        let message = err.to_string();
        assert!(message.contains("privacy_budget"), "{message}");
        assert!(message.contains("positive"), "{message}");

        // A negative compensation base would have owners paying the market.
        let err = MarketService::new(ServiceConfig {
            shards: 2,
            queue_capacity: 8,
            compensation_base: Some(-0.5),
            ..ServiceConfig::default()
        })
        .unwrap_err();
        assert!(matches!(err, ServiceError::InvalidConfig(_)));
        let message = err.to_string();
        assert!(message.contains("compensation_base"), "{message}");
        assert!(message.contains("negative"), "{message}");

        // A NaN or infinite ε cap would silently no-op the registration
        // `min()` fold (f64::min ignores NaN) and drop the deployment cap.
        for bad in [f64::NAN, f64::INFINITY] {
            let err = MarketService::new(ServiceConfig {
                shards: 2,
                queue_capacity: 8,
                privacy_budget: Some(bad),
                ..ServiceConfig::default()
            })
            .unwrap_err();
            assert!(matches!(err, ServiceError::InvalidConfig(_)));
            let message = err.to_string();
            assert!(message.contains("privacy_budget"), "{message}");
            assert!(message.contains("finite"), "{message}");
        }

        // Likewise a NaN compensation floor would escape the `max()` fold.
        let err = MarketService::new(ServiceConfig {
            shards: 2,
            queue_capacity: 8,
            compensation_base: Some(f64::NAN),
            ..ServiceConfig::default()
        })
        .unwrap_err();
        assert!(matches!(err, ServiceError::InvalidConfig(_)));
        let message = err.to_string();
        assert!(message.contains("compensation_base"), "{message}");
        assert!(message.contains("finite"), "{message}");

        // Ledger paging without the WAL has no durable home for ledgers.
        let err = MarketService::new(ServiceConfig {
            shards: 2,
            queue_capacity: 8,
            ledger_paging: true,
            ..ServiceConfig::default()
        })
        .unwrap_err();
        assert!(matches!(err, ServiceError::InvalidConfig(_)));
        let message = err.to_string();
        assert!(message.contains("ledger_paging"), "{message}");
        assert!(message.contains("wal_segment_size"), "{message}");

        // The combined privacy sizing is valid.
        assert!(MarketService::new(ServiceConfig {
            shards: 2,
            queue_capacity: 8,
            wal_segment_size: Some(4),
            privacy_budget: Some(2.0),
            compensation_base: Some(0.05),
            ledger_paging: true,
            ..ServiceConfig::default()
        })
        .is_ok());
    }

    #[test]
    fn registration_checks_privacy_params_and_folds_service_knobs() {
        use crate::tenant::PrivacyParams;
        let mut service = MarketService::new(ServiceConfig {
            shards: 2,
            queue_capacity: 8,
            privacy_budget: Some(1.5),
            compensation_base: Some(0.25),
            ..ServiceConfig::default()
        })
        .unwrap();
        // A non-positive compensation base is rejected with an error, not
        // the panic the contract constructor would raise.
        let bad = PrivacyParams {
            compensation_base: 0.0,
            ..PrivacyParams::default()
        };
        let err = service
            .register_tenant(TenantId(1), TenantConfig::privacy(2, 100, bad))
            .unwrap_err();
        assert!(matches!(err, ServiceError::InvalidConfig(_)));
        assert!(err.to_string().contains("compensation_base"), "{err}");

        // Registration lowers the ε budget to the service cap and raises
        // the compensation base to the service floor.
        let generous = PrivacyParams {
            epsilon_budget: 10.0,
            compensation_base: 0.01,
            ..PrivacyParams::default()
        };
        service
            .register_tenant(TenantId(2), TenantConfig::privacy(2, 100, generous))
            .unwrap();
        let index = service.shard_of(TenantId(2));
        let shard = service.shards[index].get_mut().unwrap();
        let state = shard.resident_state(TenantId(2)).expect("resident");
        let bank = state.privacy.as_ref().unwrap();
        assert_eq!(bank.params().epsilon_budget, 1.5);
        assert_eq!(bank.params().compensation_base, 0.25);
    }

    #[test]
    fn eviction_bounds_the_resident_set() {
        let mut service = MarketService::new(ServiceConfig {
            shards: 2,
            queue_capacity: 64,
            resident_capacity: Some(4),
            wal_segment_size: Some(8),
            ..ServiceConfig::default()
        })
        .unwrap();
        for id in 0..12u64 {
            service
                .register_tenant(TenantId(id), TenantConfig::standard(2, 100))
                .unwrap();
        }
        assert_eq!(service.tenant_count(), 12);
        assert!(
            service.resident_tenants() <= 4,
            "registration beyond the cap must page out, found {} resident",
            service.resident_tenants()
        );
        // Every tenant — resident or paged out — still serves, and the
        // resident set stays bounded through the churn.
        for round in 0..3 {
            for id in 0..12u64 {
                service.submit_quote(query(id, &[0.6, 0.8])).unwrap();
                for response in service.drain(2) {
                    let quote = response.quote().expect("a quote");
                    assert!(quote.posted_price.is_finite());
                    service
                        .submit_outcome(OutcomeReport {
                            tenant: response.tenant,
                            accepted: true,
                            market_value: Some(1.0),
                        })
                        .unwrap();
                }
                service.drain(2);
                assert!(
                    service.resident_tenants() <= 4,
                    "round {round}: resident set exceeded the cap"
                );
            }
        }
        let metrics = service.metrics();
        assert!(metrics.evictions > 0, "churn must evict");
        assert!(metrics.rehydrations > 0, "paged-out tenants must rehydrate");
        assert_eq!(metrics.quotes_served, 36);
        assert_eq!(service.tenant_count(), 12);
    }

    #[test]
    fn eviction_and_rehydration_do_not_change_served_values() {
        // The paging contract: a capped service prices bit-identically to
        // an uncapped one over the same request stream.
        let run = |resident_capacity: Option<usize>| {
            let mut service = MarketService::new(ServiceConfig {
                shards: 2,
                queue_capacity: 64,
                resident_capacity,
                wal_segment_size: resident_capacity.map(|_| 8),
                ..ServiceConfig::default()
            })
            .unwrap();
            for id in 0..10u64 {
                service
                    .register_tenant(TenantId(id), TenantConfig::standard(2, 100))
                    .unwrap();
            }
            let mut posted = Vec::new();
            for wave in 0..6 {
                for id in 0..10u64 {
                    let x = 0.4 + 0.05 * (((id + wave) % 5) as f64);
                    service.submit_quote(query(id, &[x, 1.0 - x])).unwrap();
                }
                for response in service.drain(2) {
                    let quote = response.quote().unwrap();
                    posted.push(quote.posted_price.to_bits());
                    service
                        .submit_outcome(OutcomeReport {
                            tenant: response.tenant,
                            accepted: quote.posted_price <= 1.0,
                            market_value: Some(1.0),
                        })
                        .unwrap();
                }
                service.drain(2);
            }
            (posted, service.metrics().revenue.to_bits())
        };
        let (capped_prices, capped_revenue) = run(Some(3));
        let (uncapped_prices, uncapped_revenue) = run(None);
        assert_eq!(capped_prices, uncapped_prices);
        assert_eq!(capped_revenue, uncapped_revenue);
    }
}
