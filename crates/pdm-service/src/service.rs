//! The multi-tenant market-serving engine.
//!
//! [`MarketService`] owns `N` shards, each holding the pricing sessions of
//! the tenants routed to it by the stable hash of [`crate::routing`].  The
//! API is submit/drain:
//!
//! * [`MarketService::submit`] admits a request into its tenant's shard
//!   queue (bounded — overload is **shed** with
//!   [`ServiceError::QueueFull`], never buffered without limit) and returns
//!   a [`Ticket`];
//! * [`MarketService::drain`] serves every queued request on a
//!   `std::thread::scope` worker pool (capped at the machine's hardware
//!   threads, with the calling thread claiming shards alongside the
//!   spawned workers), one worker per shard at a time, and returns the
//!   batched [`Response`]s in deterministic (shard, submission) order.
//!
//! Because every shard processes its queue strictly FIFO and shards share
//! no mutable state, the *values* the engine computes are identical for any
//! worker count — the property the `bench serve` workload verifies against
//! a serial simulation bit for bit.

use crate::api::{
    AuctionRequest, OutcomeReport, QueryRequest, Request, Response, ServiceError, Ticket,
};
use crate::metrics::ShardMetrics;
use crate::routing::{shard_of, TenantId};
use crate::shard::Shard;
use crate::tenant::{TenantConfig, TenantState};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Sizing of a [`MarketService`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Number of shards (units of concurrency); clamped to at least 1.
    pub shards: usize,
    /// Bounded per-shard queue capacity; requests beyond it are shed.
    pub queue_capacity: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            shards: 8,
            queue_capacity: 1024,
        }
    }
}

impl ServiceConfig {
    /// Checks the sizing is usable.
    ///
    /// # Errors
    /// [`ServiceError::InvalidConfig`] when `shards == 0` (nowhere to route)
    /// or `queue_capacity == 0` (every request would be shed).  These used
    /// to be silently clamped to 1, which hid misconfigured deployments.
    pub fn validate(&self) -> Result<(), ServiceError> {
        if self.shards == 0 {
            return Err(ServiceError::InvalidConfig(
                "`shards` must be at least 1".to_owned(),
            ));
        }
        if self.queue_capacity == 0 {
            return Err(ServiceError::InvalidConfig(
                "`queue_capacity` must be at least 1 (a zero-capacity queue sheds every request)"
                    .to_owned(),
            ));
        }
        Ok(())
    }
}

/// The sharded serving engine.
#[derive(Debug)]
pub struct MarketService {
    config: ServiceConfig,
    shards: Vec<Mutex<Shard>>,
    next_seq: u64,
    /// Hardware threads available to a drain pool, probed once at
    /// construction: spawning more drain workers than the machine can run
    /// cannot add parallelism, it only pays spawn and context-switch
    /// overhead, so [`MarketService::drain`] caps its pool here.
    hardware_workers: usize,
}

impl MarketService {
    /// Creates an empty service with the given sizing.
    ///
    /// # Errors
    /// [`ServiceError::InvalidConfig`] when the sizing fails
    /// [`ServiceConfig::validate`] — zero shards or a zero queue capacity
    /// (which would shed every request) are rejected instead of silently
    /// clamped.
    pub fn new(config: ServiceConfig) -> Result<Self, ServiceError> {
        config.validate()?;
        let shards = (0..config.shards)
            .map(|index| Mutex::new(Shard::new(index, config.queue_capacity)))
            .collect();
        Ok(Self {
            config,
            shards,
            next_seq: 0,
            hardware_workers: std::thread::available_parallelism()
                .map_or(1, std::num::NonZeroUsize::get),
        })
    }

    /// The sizing the service was built with.
    #[must_use]
    pub fn config(&self) -> ServiceConfig {
        self.config
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard the given tenant is (or would be) routed to.
    #[must_use]
    pub fn shard_of(&self, tenant: TenantId) -> usize {
        shard_of(tenant, self.shards.len())
    }

    /// Total number of registered tenants.
    #[must_use]
    pub fn tenant_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("shard poisoned").tenant_count())
            .sum()
    }

    /// Registers a new tenant, returning the shard it was routed to.
    ///
    /// # Errors
    /// [`ServiceError::DuplicateTenant`] when the id is already registered.
    pub fn register_tenant(
        &mut self,
        id: TenantId,
        config: TenantConfig,
    ) -> Result<usize, ServiceError> {
        self.register_state(TenantState::new(id, config))
    }

    /// Registers a pre-built tenant state (the snapshot-restore path).
    pub(crate) fn register_state(&mut self, state: TenantState) -> Result<usize, ServiceError> {
        let index = self.shard_of(state.id);
        let shard = self.shards[index].get_mut().expect("shard poisoned");
        if shard.contains(state.id) {
            return Err(ServiceError::DuplicateTenant(state.id));
        }
        shard.register(state);
        Ok(index)
    }

    /// Admits one request into its tenant's shard queue.
    ///
    /// # Errors
    /// * [`ServiceError::UnknownTenant`] — the tenant was never registered.
    /// * [`ServiceError::QueueFull`] — the shard queue is at capacity; the
    ///   request is shed (counted in the shard's metrics) instead of
    ///   growing the queue without bound.
    pub fn submit(&mut self, request: Request) -> Result<Ticket, ServiceError> {
        let tenant = request.tenant();
        let index = self.shard_of(tenant);
        let shard = self.shards[index].get_mut().expect("shard poisoned");
        if !shard.contains(tenant) {
            return Err(ServiceError::UnknownTenant(tenant));
        }
        let seq = self.next_seq;
        if !shard.enqueue(seq, request) {
            return Err(ServiceError::QueueFull {
                shard: index,
                capacity: self.config.queue_capacity,
            });
        }
        self.next_seq += 1;
        Ok(Ticket {
            seq,
            tenant,
            shard: index,
        })
    }

    /// Convenience wrapper: submit a price-quote request.
    ///
    /// # Errors
    /// Same as [`MarketService::submit`].
    pub fn submit_quote(&mut self, query: QueryRequest) -> Result<Ticket, ServiceError> {
        self.submit(Request::Quote(query))
    }

    /// Convenience wrapper: submit an outcome report.
    ///
    /// # Errors
    /// Same as [`MarketService::submit`].
    pub fn submit_outcome(&mut self, outcome: OutcomeReport) -> Result<Ticket, ServiceError> {
        self.submit(Request::Observe(outcome))
    }

    /// Convenience wrapper: submit a self-contained auction round.
    ///
    /// # Errors
    /// Same as [`MarketService::submit`].
    pub fn submit_auction(&mut self, auction: AuctionRequest) -> Result<Ticket, ServiceError> {
        self.submit(Request::Auction(auction))
    }

    /// Total requests currently queued across all shards.
    #[must_use]
    pub fn queued_requests(&mut self) -> usize {
        self.shards
            .iter_mut()
            .map(|s| s.get_mut().expect("shard poisoned").queue_len())
            .sum()
    }

    /// Serves every queued request and returns the responses in
    /// deterministic (shard, submission) order.
    ///
    /// Convenience wrapper over [`MarketService::drain_into`] that allocates
    /// the response buffer; hot callers that drain in a loop should hold a
    /// buffer and call `drain_into` to reuse its capacity across drains.
    pub fn drain(&mut self, workers: usize) -> Vec<Response> {
        let mut responses = Vec::new();
        self.drain_into(workers, &mut responses);
        responses
    }

    /// Serves every queued request, appending the responses to `out` in
    /// deterministic (shard, submission) order.
    ///
    /// `workers` scoped threads pull shard indices from an atomic counter;
    /// each shard is processed serially by whichever worker claims it, so
    /// per-shard state needs no lock contention and the computed values are
    /// independent of the worker count.  `workers` is clamped to
    /// `[1, shard_count]` and capped at the machine's hardware threads —
    /// oversubscribing a core cannot add parallelism, it only pays spawn
    /// and context-switch overhead.  An effective single worker (including
    /// every drain on a single-core host) runs on the calling thread with
    /// no pool at all; a pool of `n` workers spawns `n - 1` threads and the
    /// calling thread claims shards alongside them.
    pub fn drain_into(&mut self, workers: usize, out: &mut Vec<Response>) {
        let shard_count = self.shards.len();
        let workers = workers.clamp(1, shard_count).min(self.hardware_workers);

        // An idle drain (e.g. the silent waves of a bursty workload) must
        // not pay for thread spawns or per-shard locking.
        if self.queued_requests() == 0 {
            return;
        }

        if workers <= 1 {
            for shard in &mut self.shards {
                shard
                    .get_mut()
                    .expect("shard poisoned")
                    .process_all_into(out);
            }
            return;
        }

        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Vec<Response>>> =
            (0..shard_count).map(|_| Mutex::new(Vec::new())).collect();
        let shards = &self.shards;
        let claim_shards = || loop {
            let index = next.fetch_add(1, Ordering::Relaxed);
            if index >= shard_count {
                break;
            }
            let mut responses = Vec::new();
            shards[index]
                .lock()
                .expect("shard poisoned")
                .process_all_into(&mut responses);
            *slots[index].lock().expect("slot poisoned") = responses;
        };
        std::thread::scope(|scope| {
            for _ in 1..workers {
                scope.spawn(claim_shards);
            }
            claim_shards();
        });

        for slot in slots {
            out.append(&mut slot.into_inner().expect("slot poisoned"));
        }
    }

    /// The regret ledger one tenant accumulated from outcomes that carried
    /// ground-truth market values, or `None` for an unregistered tenant.
    ///
    /// Benchmark drivers fold these together **in tenant order** (see
    /// [`pdm_pricing::regret::RegretReport::merge`]) to compare a sharded
    /// run against a serial simulation bit for bit.
    #[must_use]
    pub fn tenant_report(&self, tenant: TenantId) -> Option<pdm_pricing::prelude::RegretReport> {
        self.shards[self.shard_of(tenant)]
            .lock()
            .expect("shard poisoned")
            .tenant_report(tenant)
    }

    /// A clone of each shard's metrics ledger, in shard order.
    #[must_use]
    pub fn shard_metrics(&self) -> Vec<ShardMetrics> {
        self.shards
            .iter()
            .map(|s| s.lock().expect("shard poisoned").metrics.clone())
            .collect()
    }

    /// All shard ledgers folded ([`ShardMetrics::merge`]) into one
    /// service-wide aggregate, in shard-index order — deterministic for a
    /// given request stream, independent of worker count.  This is the
    /// figure `bench serve`'s summary table and the dashboards read.
    #[must_use]
    pub fn aggregate_metrics(&self) -> ShardMetrics {
        let mut total = ShardMetrics::new();
        for shard in self.shard_metrics() {
            total.merge(&shard);
        }
        total
    }

    /// Alias of [`MarketService::aggregate_metrics`], kept for callers that
    /// predate the explicit name.
    #[must_use]
    pub fn metrics(&self) -> ShardMetrics {
        self.aggregate_metrics()
    }

    /// Read access to the shards, for the snapshot writer.
    pub(crate) fn shards(&self) -> &[Mutex<Shard>] {
        &self.shards
    }

    /// Mutable access to the shards, for the snapshot restorer.
    pub(crate) fn shards_mut(&mut self) -> &mut [Mutex<Shard>] {
        &mut self.shards
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::Payload;
    use pdm_linalg::Vector;

    fn query(tenant: u64, features: &[f64]) -> QueryRequest {
        QueryRequest {
            tenant: TenantId(tenant),
            features: Vector::from_slice(features),
            reserve_price: 0.1,
        }
    }

    fn service_with_tenants(shards: usize, tenants: u64) -> MarketService {
        let mut service = MarketService::new(ServiceConfig {
            shards,
            queue_capacity: 64,
        })
        .expect("valid service config");
        for id in 0..tenants {
            service
                .register_tenant(TenantId(id), TenantConfig::standard(2, 100))
                .expect("fresh id");
        }
        service
    }

    #[test]
    fn register_routes_by_stable_hash_and_rejects_duplicates() {
        let mut service = service_with_tenants(4, 10);
        assert_eq!(service.tenant_count(), 10);
        for id in 0..10 {
            assert_eq!(
                service.shard_of(TenantId(id)),
                crate::routing::shard_of(TenantId(id), 4)
            );
        }
        assert_eq!(
            service.register_tenant(TenantId(3), TenantConfig::standard(2, 100)),
            Err(ServiceError::DuplicateTenant(TenantId(3)))
        );
    }

    #[test]
    fn submit_rejects_unknown_tenants() {
        let mut service = service_with_tenants(2, 1);
        let err = service.submit_quote(query(99, &[1.0, 0.0])).unwrap_err();
        assert_eq!(err, ServiceError::UnknownTenant(TenantId(99)));
    }

    #[test]
    fn submit_drain_round_trip_preserves_order_and_tickets() {
        let mut service = service_with_tenants(3, 6);
        let mut tickets = Vec::new();
        for id in 0..6 {
            tickets.push(service.submit_quote(query(id, &[0.6, 0.8])).unwrap());
        }
        let responses = service.drain(3);
        assert_eq!(responses.len(), 6);
        // Responses come back in (shard, submission) order and carry the
        // submitted sequence numbers.
        let mut last = (0usize, 0u64);
        for response in &responses {
            assert!(matches!(response.payload, Payload::Quoted(_)));
            let key = (response.shard, response.seq);
            assert!(key >= last, "responses must be shard/submission ordered");
            last = key;
            let ticket = tickets.iter().find(|t| t.seq == response.seq).unwrap();
            assert_eq!(ticket.tenant, response.tenant);
            assert_eq!(ticket.shard, response.shard);
        }
        assert_eq!(service.metrics().quotes_served, 6);
    }

    #[test]
    fn overload_is_shed_with_an_error_and_counted() {
        let mut service = MarketService::new(ServiceConfig {
            shards: 1,
            queue_capacity: 2,
        })
        .expect("valid service config");
        service
            .register_tenant(TenantId(0), TenantConfig::standard(2, 100))
            .unwrap();
        assert!(service.submit_quote(query(0, &[1.0, 0.0])).is_ok());
        assert!(service.submit_quote(query(0, &[1.0, 0.0])).is_ok());
        let err = service.submit_quote(query(0, &[1.0, 0.0])).unwrap_err();
        assert!(matches!(err, ServiceError::QueueFull { shard: 0, .. }));
        assert_eq!(service.metrics().shed, 1);
        assert!(service.metrics().shed_rate() > 0.0);
        // Draining frees capacity again.
        assert_eq!(service.drain(1).len(), 2);
        assert!(service.submit_quote(query(0, &[1.0, 0.0])).is_ok());
    }

    #[test]
    fn worker_count_does_not_change_served_values() {
        let run = |workers: usize| {
            let mut service = service_with_tenants(4, 12);
            let mut posted = Vec::new();
            for wave in 0..5 {
                for id in 0..12 {
                    let x = Vector::from_slice(&[0.5 + 0.01 * wave as f64, 0.5]);
                    service
                        .submit(Request::Quote(QueryRequest {
                            tenant: TenantId(id),
                            features: x,
                            reserve_price: 0.2,
                        }))
                        .unwrap();
                }
                let responses = service.drain(workers);
                for response in &responses {
                    let quote = response.quote().unwrap();
                    posted.push((response.tenant, quote.posted_price));
                    service
                        .submit_outcome(OutcomeReport {
                            tenant: response.tenant,
                            accepted: quote.posted_price <= 1.0,
                            market_value: Some(1.0),
                        })
                        .unwrap();
                }
                service.drain(workers);
            }
            (posted, service.metrics().revenue, service.metrics().regret)
        };
        let (posted_1, revenue_1, regret_1) = run(1);
        let (posted_4, revenue_4, regret_4) = run(4);
        assert_eq!(posted_1, posted_4);
        assert_eq!(revenue_1.to_bits(), revenue_4.to_bits());
        assert_eq!(regret_1.to_bits(), regret_4.to_bits());
    }

    #[test]
    fn degenerate_configs_are_rejected_not_clamped() {
        // Regression: `queue_capacity: 0` used to be silently clamped to 1
        // (by `Shard::new`), hiding a deployment that would otherwise shed
        // every request.  It is now a construction-time config error.
        let err = MarketService::new(ServiceConfig {
            shards: 4,
            queue_capacity: 0,
        })
        .unwrap_err();
        assert!(matches!(err, ServiceError::InvalidConfig(_)));
        assert!(err.to_string().contains("queue_capacity"), "{err}");

        let err = MarketService::new(ServiceConfig {
            shards: 0,
            queue_capacity: 16,
        })
        .unwrap_err();
        assert!(matches!(err, ServiceError::InvalidConfig(_)));
        assert!(err.to_string().contains("shards"), "{err}");

        // The boundary sizing is valid.
        let service = MarketService::new(ServiceConfig {
            shards: 1,
            queue_capacity: 1,
        })
        .expect("minimal sizing is valid");
        assert_eq!(service.shard_count(), 1);
        assert_eq!(service.config().queue_capacity, 1);
    }
}
