//! Incremental persistence: append-only WAL segments over the snapshot
//! format.
//!
//! A full [`MarketService::snapshot`] serialises every tenant, which gets
//! expensive as the tenant population grows.  The WAL makes persistence
//! incremental: shards track which tenants changed since the last capture
//! (the *dirty* set), and [`MarketService::checkpoint`] emits only those
//! tenants, chunked into numbered segment documents.  Recovery is
//! [`MarketService::restore_with_wal`]: rebuild from the last full
//! snapshot, then replay the segments in order, last record per tenant
//! wins.
//!
//! Three properties make this safe:
//!
//! * **Same record format.** A WAL tenant record is byte-for-byte the
//!   snapshot tenant document ([`crate::snapshot`]), so replay goes through
//!   the same parse/rebuild path as a full restore and inherits its
//!   bit-identical-continuation guarantee.
//! * **Quiescent records only.** A tenant with a quoted-but-unobserved
//!   round is skipped by [`MarketService::checkpoint`] and *stays dirty*,
//!   so checkpoints can run under live traffic: the open-round tenant is
//!   simply carried by the next checkpoint after its round closes.
//! * **Point-in-time metric ledgers.** Every segment carries the full
//!   per-shard metric ledgers; replay applies them in order so the last
//!   segment's ledgers stand.  A checkpoint taken at a quiescent point
//!   (no queued work, no open rounds) is therefore a consistent cut: the
//!   restored service continues bit-identically from it.

use std::sync::atomic::Ordering;
use std::time::Instant;

use pdm_linalg::Json;

use crate::api::ServiceError;
use crate::routing::TenantId;
use crate::service::MarketService;
use crate::snapshot::{metrics_from_json, metrics_json, tenant_from_json, SNAPSHOT_SCHEMA_VERSION};
use crate::sync;

/// The `kind` discriminator carried by every WAL segment document, so a
/// segment can never be mistaken for a full snapshot (or vice versa).
pub const WAL_SEGMENT_KIND: &str = "wal_segment";

impl MarketService {
    /// Number of WAL segments this service has written (or, after
    /// [`MarketService::restore_with_wal`], replayed); the next
    /// [`MarketService::checkpoint`] continues numbering from here.
    #[must_use]
    pub fn wal_segments_written(&self) -> u64 {
        self.wal_segments.load(Ordering::Relaxed)
    }

    /// Captures every dirty, quiescent tenant into numbered WAL segment
    /// documents of at most [`ServiceConfig::wal_segment_size`] tenants
    /// each, plus the current per-shard metric ledgers.
    ///
    /// Tenants with an open (quoted-but-unobserved) round are skipped and
    /// remain dirty, so this is safe to call between drains under live
    /// traffic.  When nothing is dirty a single metrics-only segment is
    /// still emitted, so the segment stream always reflects the latest
    /// ledgers.
    ///
    /// [`ServiceConfig::wal_segment_size`]:
    ///     crate::ServiceConfig::wal_segment_size
    ///
    /// # Errors
    /// [`ServiceError::InvalidConfig`] when the service was built without
    /// `wal_segment_size` — the WAL is off and there is no segment sizing
    /// to honour.
    pub fn checkpoint(&self) -> Result<Vec<Json>, ServiceError> {
        let Some(segment_size) = self.config().wal_segment_size else {
            return Err(ServiceError::InvalidConfig(
                "`wal_segment_size` is unset: the WAL is disabled, use a full snapshot instead"
                    .to_owned(),
            ));
        };
        // pdm-lint: allow(no-ambient-clock) reason="wall-clock latency span; wall histograms are documented non-deterministic and excluded from the determinism fingerprint"
        let started = Instant::now();
        let mut records: Vec<(TenantId, Json)> = Vec::new();
        for shard in self.shards() {
            records.extend(sync::lock(shard, "shard").checkpoint_dirty());
        }
        // Global id order for the same reason snapshots sort: the segment
        // stream must not depend on shard distribution.
        records.sort_by_key(|(id, _)| *id);
        let metrics: Vec<Json> = self.shard_metrics().iter().map(metrics_json).collect();
        let chunk_count = records.len().div_ceil(segment_size).max(1);
        let base = self
            .wal_segments
            .fetch_add(chunk_count as u64, Ordering::Relaxed);
        let mut chunks: Vec<Vec<Json>> = records
            .chunks(segment_size)
            .map(|chunk| chunk.iter().map(|(_, json)| json.clone()).collect())
            .collect();
        if chunks.is_empty() {
            chunks.push(Vec::new());
        }
        let segments: Vec<Json> = chunks
            .into_iter()
            .enumerate()
            .map(|(offset, tenants)| {
                Json::obj(vec![
                    ("schema_version", Json::Num(SNAPSHOT_SCHEMA_VERSION as f64)),
                    ("kind", Json::Str(WAL_SEGMENT_KIND.to_owned())),
                    ("segment", Json::Num((base + offset as u64) as f64)),
                    ("tenants", Json::Arr(tenants)),
                    ("metrics", Json::Arr(metrics.clone())),
                ])
            })
            .collect();
        let mut obs = sync::lock(&self.obs, "obs");
        let span = obs.checkpoint;
        obs.registry
            .record_span(span, started.elapsed(), segments.len() as u64);
        // Journal the highest segment number this checkpoint wrote.
        obs.journal
            .push("wal.checkpoint", base + segments.len() as u64 - 1);
        Ok(segments)
    }

    /// Rebuilds a service from a full snapshot plus the WAL segments
    /// written after it, in ascending segment order.
    ///
    /// Replay is last-record-wins per tenant; a tenant first registered
    /// after the base snapshot appears only in the WAL and is registered
    /// during replay.  When the final segment was captured at a quiescent
    /// point, the restored service continues bit-identically with the
    /// original.
    ///
    /// # Errors
    /// [`ServiceError::MalformedSnapshot`] when the base document or any
    /// segment does not match the schema, segments are out of order, or a
    /// segment's metric ledgers do not match the shard count.
    pub fn restore_with_wal(base: &Json, segments: &[Json]) -> Result<Self, ServiceError> {
        // pdm-lint: allow(no-ambient-clock) reason="wall-clock latency span; wall histograms are documented non-deterministic and excluded from the determinism fingerprint"
        let started = Instant::now();
        let mut service = MarketService::restore(base)?;
        let shards = service.shard_count();
        let mut last_segment: Option<u64> = None;
        for segment in segments {
            let kind = segment.get("kind").and_then(Json::as_str);
            if kind != Some(WAL_SEGMENT_KIND) {
                return Err(ServiceError::MalformedSnapshot(format!(
                    "WAL segment: expected kind `{WAL_SEGMENT_KIND}`, found {kind:?}"
                )));
            }
            let version = segment
                .get("schema_version")
                .and_then(Json::as_u64)
                .ok_or_else(|| {
                    ServiceError::MalformedSnapshot(
                        "WAL segment: missing `schema_version`".to_owned(),
                    )
                })?;
            if version > SNAPSHOT_SCHEMA_VERSION {
                return Err(ServiceError::MalformedSnapshot(format!(
                    "WAL segment schema v{version} is newer than this build's \
                     v{SNAPSHOT_SCHEMA_VERSION}"
                )));
            }
            let number = segment
                .get("segment")
                .and_then(Json::as_u64)
                .ok_or_else(|| {
                    ServiceError::MalformedSnapshot("WAL segment: missing `segment`".to_owned())
                })?;
            if last_segment.is_some_and(|prev| number <= prev) {
                return Err(ServiceError::MalformedSnapshot(format!(
                    "WAL segment {number} arrived after segment {}: replay must be in \
                     ascending order",
                    last_segment.unwrap_or(0)
                )));
            }
            last_segment = Some(number);
            let tenants = segment
                .get("tenants")
                .and_then(Json::as_arr)
                .ok_or_else(|| {
                    ServiceError::MalformedSnapshot(format!(
                        "WAL segment {number}: missing `tenants`"
                    ))
                })?;
            for record in tenants {
                let state = tenant_from_json(record)?;
                service.apply_wal_record(state);
            }
            let metrics = segment
                .get("metrics")
                .and_then(Json::as_arr)
                .ok_or_else(|| {
                    ServiceError::MalformedSnapshot(format!(
                        "WAL segment {number}: missing `metrics`"
                    ))
                })?;
            if metrics.len() != shards {
                return Err(ServiceError::MalformedSnapshot(format!(
                    "WAL segment {number}: expected {shards} metric ledgers, found {}",
                    metrics.len()
                )));
            }
            for (index, ledger) in metrics.iter().enumerate() {
                let restored =
                    metrics_from_json(ledger, &format!("WAL segment {number} shard {index}"))?;
                sync::get_mut(&mut service.shards_mut()[index], "shard").metrics = restored;
            }
        }
        // Replay marked replaced tenants dirty; the restored service is in
        // sync with the stream it was rebuilt from, so the WAL starts clean
        // and numbering continues after the last replayed segment.
        for shard in service.shards_mut() {
            sync::get_mut(shard, "shard").clear_dirty();
        }
        if let Some(last) = last_segment {
            service.wal_segments.store(last + 1, Ordering::Relaxed);
        }
        {
            // The restored service's registry starts fresh (observability
            // state is process-local, never persisted); the replay itself is
            // the first thing it records.
            let obs = sync::get_mut(&mut service.obs, "obs");
            obs.registry
                .record_span(obs.restore, started.elapsed(), segments.len() as u64);
            obs.journal.push("wal.restore", segments.len() as u64);
        }
        Ok(service)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{OutcomeReport, QueryRequest};
    use crate::routing::TenantId;
    use crate::service::ServiceConfig;
    use crate::tenant::TenantConfig;
    use pdm_linalg::sampling;
    use pdm_linalg::Vector;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn wal_service(ids: &[TenantId]) -> MarketService {
        let mut service = MarketService::new(ServiceConfig {
            shards: 2,
            queue_capacity: 64,
            wal_segment_size: Some(2),
            ..ServiceConfig::default()
        })
        .expect("valid service config");
        for &id in ids {
            service
                .register_tenant(id, TenantConfig::standard(3, 200))
                .unwrap();
        }
        service
    }

    fn pump(service: &mut MarketService, ids: &[TenantId], rounds: usize, seed: u64) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut bits = Vec::new();
        for _ in 0..rounds {
            for &id in ids {
                let features = sampling::standard_normal_vector(&mut rng, 3)
                    .map(f64::abs)
                    .normalized();
                service
                    .submit_quote(QueryRequest {
                        tenant: id,
                        features,
                        reserve_price: 0.3,
                    })
                    .unwrap();
            }
            for response in service.drain(2) {
                let quote = *response.quote().unwrap();
                bits.push(quote.posted_price.to_bits());
                service
                    .submit_outcome(OutcomeReport {
                        tenant: response.tenant,
                        accepted: quote.posted_price <= 1.1,
                        market_value: Some(1.1),
                    })
                    .unwrap();
            }
            service.drain(2);
        }
        bits
    }

    #[test]
    fn checkpoint_requires_the_wal() {
        let service = MarketService::new(ServiceConfig {
            shards: 2,
            queue_capacity: 8,
            ..ServiceConfig::default()
        })
        .unwrap();
        let err = service.checkpoint().unwrap_err();
        assert!(matches!(err, ServiceError::InvalidConfig(_)));
        assert!(err.to_string().contains("wal_segment_size"));
    }

    #[test]
    fn checkpoint_chunks_and_numbers_segments() {
        let ids: Vec<TenantId> = (1u64..=5).map(TenantId).collect();
        let mut service = wal_service(&ids);
        pump(&mut service, &ids, 1, 9);
        // Five dirty tenants at segment size two: three ascending segments.
        let segments = service.checkpoint().unwrap();
        assert_eq!(segments.len(), 3);
        for (offset, segment) in segments.iter().enumerate() {
            assert_eq!(
                segment.get("kind").and_then(Json::as_str),
                Some(WAL_SEGMENT_KIND)
            );
            assert_eq!(
                segment.get("segment").and_then(Json::as_u64),
                Some(offset as u64)
            );
        }
        let counts: Vec<usize> = segments
            .iter()
            .map(|s| s.get("tenants").and_then(Json::as_arr).unwrap().len())
            .collect();
        assert_eq!(counts, vec![2, 2, 1]);
        assert_eq!(service.wal_segments_written(), 3);
        // Nothing dirty now: the next checkpoint is a metrics-only segment
        // that keeps the numbering moving.
        let quiet = service.checkpoint().unwrap();
        assert_eq!(quiet.len(), 1);
        assert_eq!(quiet[0].get("segment").and_then(Json::as_u64), Some(3));
        assert!(quiet[0]
            .get("tenants")
            .and_then(Json::as_arr)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn wal_restore_continues_bit_identically() {
        let ids: Vec<TenantId> = [3u64, 11, 29, 61].into_iter().map(TenantId).collect();
        let mut original = wal_service(&ids);
        let base = original.snapshot().unwrap();
        let mut stream: Vec<Json> = Vec::new();
        // Two traffic bursts, each followed by a checkpoint: only the burst's
        // tenants travel in each checkpoint, the stream accumulates.
        pump(&mut original, &ids[..2], 3, 21);
        stream.extend(original.checkpoint().unwrap());
        pump(&mut original, &ids, 3, 22);
        stream.extend(original.checkpoint().unwrap());

        let mut restored = MarketService::restore_with_wal(&base, &stream).unwrap();
        assert_eq!(restored.tenant_count(), original.tenant_count());
        assert_eq!(
            restored.wal_segments_written(),
            original.wal_segments_written()
        );
        let expected_metrics = original.aggregate_metrics();
        let restored_metrics = restored.aggregate_metrics();
        assert_eq!(
            restored_metrics.quotes_served,
            expected_metrics.quotes_served
        );
        assert_eq!(
            restored_metrics.revenue.to_bits(),
            expected_metrics.revenue.to_bits()
        );
        // The continuation prices bit-identically.
        let expected = pump(&mut original, &ids, 2, 23);
        let actual = pump(&mut restored, &ids, 2, 23);
        assert_eq!(expected, actual);
    }

    #[test]
    fn wal_replay_registers_tenants_born_after_the_base_snapshot() {
        let first = [TenantId(5), TenantId(6)];
        let mut original = wal_service(&first);
        let base = original.snapshot().unwrap();
        original
            .register_tenant(TenantId(7), TenantConfig::standard(3, 200))
            .unwrap();
        let all: Vec<TenantId> = vec![TenantId(5), TenantId(6), TenantId(7)];
        pump(&mut original, &all, 2, 31);
        let stream = original.checkpoint().unwrap();

        let mut restored = MarketService::restore_with_wal(&base, &stream).unwrap();
        assert_eq!(restored.tenant_count(), 3);
        let expected = pump(&mut original, &all, 1, 32);
        let actual = pump(&mut restored, &all, 1, 32);
        assert_eq!(expected, actual);
    }

    #[test]
    fn out_of_order_segments_are_rejected() {
        let ids: Vec<TenantId> = (1u64..=5).map(TenantId).collect();
        let mut service = wal_service(&ids);
        let base = service.snapshot().unwrap();
        pump(&mut service, &ids, 1, 41);
        let mut segments = service.checkpoint().unwrap();
        segments.reverse();
        let err = MarketService::restore_with_wal(&base, &segments).unwrap_err();
        assert!(matches!(err, ServiceError::MalformedSnapshot(_)));
        assert!(err.to_string().contains("ascending"));
    }

    #[test]
    fn checkpoint_skips_open_rounds_and_keeps_them_dirty() {
        let ids = [TenantId(2), TenantId(4)];
        let mut service = wal_service(&ids);
        let base = service.snapshot().unwrap();
        pump(&mut service, &ids, 1, 51);
        // Leave one tenant with a quoted-but-unobserved round.
        service
            .submit_quote(QueryRequest {
                tenant: ids[0],
                features: Vector::from_slice(&[0.4, 0.4, 0.2]),
                reserve_price: 0.2,
            })
            .unwrap();
        let open_quote = *service.drain(1)[0].quote().unwrap();
        let under_traffic = service.checkpoint().unwrap();
        let captured: usize = under_traffic
            .iter()
            .map(|s| s.get("tenants").and_then(Json::as_arr).unwrap().len())
            .sum();
        // Close the round; the skipped tenant is still dirty, so the next
        // checkpoint carries it.
        service
            .submit_outcome(OutcomeReport {
                tenant: ids[0],
                accepted: open_quote.posted_price <= 1.1,
                market_value: Some(1.1),
            })
            .unwrap();
        service.drain(1);
        let mut stream: Vec<Json> = under_traffic;
        stream.extend(service.checkpoint().unwrap());
        assert_eq!(captured, 1);
        let mut restored = MarketService::restore_with_wal(&base, &stream).unwrap();
        let expected = pump(&mut service, &ids, 1, 52);
        let actual = pump(&mut restored, &ids, 1, 52);
        assert_eq!(expected, actual);
    }
}
