//! Deterministic JSON snapshots of the whole service.
//!
//! A snapshot captures everything that determines future pricing decisions:
//! the service sizing, every tenant's registration config, and every
//! tenant's learned knowledge set (ellipsoid centre + shape matrix), plus
//! the per-shard metric counters so dashboards survive a restart.  It is
//! serialised through the deterministic [`Json`] writer of `pdm-linalg` —
//! tenants sorted by id, shards in index order, floats in shortest
//! round-trip form — so the same service state always renders to the same
//! bytes, and `snapshot → restore → snapshot` is the identity.
//!
//! Restored tenants quote **bit-identically** to the uninterrupted service:
//! a quote depends only on the knowledge set, the pricing config, and the
//! query.  Each tenant's regret/revenue ledger is persisted too, so
//! [`MarketService::tenant_report`](crate::MarketService::tenant_report)
//! stays consistent with the restored shard-level metrics across a restart.
//! Only two things restart from zero: diagnostic counters *inside* the
//! mechanism (cut counts, exploratory-round tallies) and the wall-clock
//! latency samples, which are meaningless across processes.
//!
//! Snapshots are only taken at a quiescent point — no queued requests, no
//! quoted-but-unobserved rounds — so there is no in-flight state to encode.

use crate::api::ServiceError;
use crate::ledger::{LedgerBank, OwnerLedger};
use crate::metrics::ShardMetrics;
use crate::routing::TenantId;
use crate::service::{MarketService, ServiceConfig};
use crate::sync;
use crate::tenant::{AuctionPolicy, MarketKind, PrivacyParams, TenantConfig, TenantState};
use pdm_auction::{EmpiricalConfig, EmpiricalReserve};
use pdm_ellipsoid::Ellipsoid;
use pdm_linalg::{Json, Matrix, OnlineStats, Vector};
use pdm_pricing::prelude::{
    DriftAwarePricing, DriftPolicy, EllipsoidPricing, LinearModel, PricingConfig, RegretReport,
};

/// Version of the snapshot schema this build writes.
///
/// v5 added the privacy-budget economics layer: a `privacy` market kind
/// per tenant carrying the ledger parameters and every owner's ε spent,
/// compensation accrued, query count, and exhaustion flag (plus the
/// bank-level totals, persisted verbatim so restored totals are
/// bit-identical to incrementally accumulated ones); the optional
/// `privacy_budget`/`compensation_base`/`ledger_paging` knobs in the
/// header; and the `epsilon_spent`/`compensation_paid`/`owners_exhausted`/
/// `privacy_throttled`/`arbitrage_clamps` counters of the per-shard metric
/// ledgers.  v1–v4 documents restore with no privacy tenants and zero
/// privacy counters.
/// v4 added the persistence/paging layer: the optional
/// `resident_capacity` and `wal_segment_size` sizing knobs in the header,
/// and the `evictions`/`rehydrations` counters of the per-shard metric
/// ledgers.  The same tenant document doubles as the WAL record format
/// (see [`crate::wal`]).  v1–v3 documents restore with both knobs unset
/// and zero paging counters.
/// v3 added the drift layer: a `drift` object per tenant (the drift policy
/// plus the surprisal detector's live state — window flags, firing and
/// restart counters) and the `drift_fires`/`drift_restarts` counters of
/// the per-shard metric ledgers.  v2 documents restore as static-policy
/// tenants with zero drift counters.
/// v2 added the auction layer: a `market` object per tenant (posted vs
/// auction, the reserve policy, and the empirical setter's learned bid
/// history) and the auction counters of the per-shard metric ledgers.
/// v1 documents restore as posted-price tenants with empty auction
/// counters.
pub const SNAPSHOT_SCHEMA_VERSION: u64 = 5;

fn vector_json(v: &Vector) -> Json {
    Json::Arr(v.iter().map(|&x| Json::Num(x)).collect())
}

fn vector_from_json(value: &Json, context: &str) -> Result<Vector, ServiceError> {
    let items = value
        .as_arr()
        .ok_or_else(|| ServiceError::MalformedSnapshot(format!("{context}: expected array")))?;
    items
        .iter()
        .map(|item| {
            item.as_f64().ok_or_else(|| {
                ServiceError::MalformedSnapshot(format!("{context}: expected number"))
            })
        })
        .collect::<Result<Vec<f64>, ServiceError>>()
        .map(Vector::from_vec)
}

fn pricing_json(config: &PricingConfig) -> Json {
    Json::obj(vec![
        ("initial_radius", Json::Num(config.initial_radius)),
        ("feature_bound", Json::Num(config.feature_bound)),
        ("horizon", Json::Num(config.horizon as f64)),
        ("epsilon", config.epsilon.map_or(Json::Null, Json::Num)),
        ("delta", Json::Num(config.delta)),
        ("use_reserve", Json::Bool(config.use_reserve)),
        (
            "cut_on_conservative",
            Json::Bool(config.cut_on_conservative),
        ),
    ])
}

fn pricing_from_json(value: &Json, context: &str) -> Result<PricingConfig, ServiceError> {
    let number = |key: &str| {
        value.get(key).and_then(Json::as_f64).ok_or_else(|| {
            ServiceError::MalformedSnapshot(format!("{context}: missing number `{key}`"))
        })
    };
    let flag = |key: &str| match value.get(key) {
        Some(Json::Bool(b)) => Ok(*b),
        _ => Err(ServiceError::MalformedSnapshot(format!(
            "{context}: missing flag `{key}`"
        ))),
    };
    let horizon =
        value.get("horizon").and_then(Json::as_u64).ok_or_else(|| {
            ServiceError::MalformedSnapshot(format!("{context}: missing `horizon`"))
        })? as usize;
    let mut config = PricingConfig::new(number("initial_radius")?, horizon)
        .with_reserve(flag("use_reserve")?)
        .with_uncertainty(number("delta")?)
        .with_feature_bound(number("feature_bound")?)
        .with_conservative_cuts(flag("cut_on_conservative")?);
    // `epsilon: null` means "use the paper's schedule" and must stay None —
    // with_epsilon would pin it.
    match value.get("epsilon") {
        Some(Json::Num(eps)) => config = config.with_epsilon(*eps),
        Some(Json::Null) | None => {}
        Some(_) => {
            return Err(ServiceError::MalformedSnapshot(format!(
                "{context}: `epsilon` must be a number or null"
            )))
        }
    }
    Ok(config)
}

pub(crate) fn metrics_json(metrics: &ShardMetrics) -> Json {
    Json::obj(vec![
        ("quotes_served", Json::Num(metrics.quotes_served as f64)),
        ("observations", Json::Num(metrics.observations as f64)),
        ("sales", Json::Num(metrics.sales as f64)),
        ("revenue", Json::Num(metrics.revenue)),
        ("regret", Json::Num(metrics.regret)),
        ("regret_proxy", Json::Num(metrics.regret_proxy)),
        ("shed", Json::Num(metrics.shed as f64)),
        ("rejected", Json::Num(metrics.rejected as f64)),
        ("drift_fires", Json::Num(metrics.drift_fires as f64)),
        ("drift_restarts", Json::Num(metrics.drift_restarts as f64)),
        ("evictions", Json::Num(metrics.evictions as f64)),
        ("rehydrations", Json::Num(metrics.rehydrations as f64)),
        ("epsilon_spent", Json::Num(metrics.epsilon_spent)),
        ("compensation_paid", Json::Num(metrics.compensation_paid)),
        (
            "owners_exhausted",
            Json::Num(metrics.owners_exhausted as f64),
        ),
        (
            "privacy_throttled",
            Json::Num(metrics.privacy_throttled as f64),
        ),
        (
            "arbitrage_clamps",
            Json::Num(metrics.arbitrage_clamps as f64),
        ),
        (
            "auction",
            Json::obj(vec![
                ("auctions", Json::Num(metrics.auction.auctions as f64)),
                ("sales", Json::Num(metrics.auction.sales as f64)),
                (
                    "reserve_hits",
                    Json::Num(metrics.auction.reserve_hits as f64),
                ),
                ("revenue", Json::Num(metrics.auction.revenue)),
                ("welfare", Json::Num(metrics.auction.welfare)),
                (
                    "baseline_revenue",
                    Json::Num(metrics.auction.baseline_revenue),
                ),
            ]),
        ),
    ])
}

pub(crate) fn metrics_from_json(value: &Json, context: &str) -> Result<ShardMetrics, ServiceError> {
    let count = |key: &str| {
        value.get(key).and_then(Json::as_u64).ok_or_else(|| {
            ServiceError::MalformedSnapshot(format!("{context}: missing count `{key}`"))
        })
    };
    let number = |key: &str| {
        value.get(key).and_then(Json::as_f64).ok_or_else(|| {
            ServiceError::MalformedSnapshot(format!("{context}: missing number `{key}`"))
        })
    };
    let mut metrics = ShardMetrics::new();
    metrics.quotes_served = count("quotes_served")?;
    metrics.observations = count("observations")?;
    metrics.sales = count("sales")?;
    metrics.revenue = number("revenue")?;
    metrics.regret = number("regret")?;
    metrics.regret_proxy = number("regret_proxy")?;
    metrics.shed = count("shed")?;
    metrics.rejected = count("rejected")?;
    // The drift counters arrived with schema v3; an absent key is an older
    // document with no drift-aware tenants, but a *present* key must parse
    // (corruption is an error, not a silent zero).
    let optional_count = |key: &str| match value.get(key) {
        None => Ok(0),
        Some(v) => v.as_u64().ok_or_else(|| {
            ServiceError::MalformedSnapshot(format!("{context}: `{key}` must be a count"))
        }),
    };
    metrics.drift_fires = optional_count("drift_fires")?;
    metrics.drift_restarts = optional_count("drift_restarts")?;
    // The paging counters arrived with schema v4; same contract as above.
    metrics.evictions = optional_count("evictions")?;
    metrics.rehydrations = optional_count("rehydrations")?;
    // The privacy counters arrived with schema v5; same contract as above.
    let optional_number = |key: &str| match value.get(key) {
        None => Ok(0.0),
        Some(v) => v.as_f64().ok_or_else(|| {
            ServiceError::MalformedSnapshot(format!("{context}: `{key}` must be a number"))
        }),
    };
    metrics.epsilon_spent = optional_number("epsilon_spent")?;
    metrics.compensation_paid = optional_number("compensation_paid")?;
    metrics.owners_exhausted = optional_count("owners_exhausted")?;
    metrics.privacy_throttled = optional_count("privacy_throttled")?;
    metrics.arbitrage_clamps = optional_count("arbitrage_clamps")?;
    // The auction ledger arrived with schema v2; a v1 document simply has
    // no auction traffic to restore.
    if let Some(auction) = value.get("auction") {
        let acontext = format!("{context} auction");
        let acount = |key: &str| {
            auction.get(key).and_then(Json::as_u64).ok_or_else(|| {
                ServiceError::MalformedSnapshot(format!("{acontext}: missing count `{key}`"))
            })
        };
        let anumber = |key: &str| {
            auction.get(key).and_then(Json::as_f64).ok_or_else(|| {
                ServiceError::MalformedSnapshot(format!("{acontext}: missing number `{key}`"))
            })
        };
        metrics.auction.auctions = acount("auctions")?;
        metrics.auction.sales = acount("sales")?;
        metrics.auction.reserve_hits = acount("reserve_hits")?;
        metrics.auction.revenue = anumber("revenue")?;
        metrics.auction.welfare = anumber("welfare")?;
        metrics.auction.baseline_revenue = anumber("baseline_revenue")?;
    }
    Ok(metrics)
}

fn market_json(state: &TenantState) -> Json {
    match state.config.market {
        MarketKind::PostedPrice => Json::obj(vec![("kind", Json::str("posted"))]),
        MarketKind::Auction(policy) => {
            let mut pairs = vec![
                ("kind", Json::str("auction")),
                ("policy", Json::str(policy.name())),
            ];
            match policy {
                AuctionPolicy::Session => {}
                AuctionPolicy::Static { markup } => pairs.push(("markup", Json::Num(markup))),
                AuctionPolicy::Empirical {
                    window,
                    welfare_weight,
                } => {
                    pairs.push(("window", Json::Num(window as f64)));
                    pairs.push(("welfare_weight", Json::Num(welfare_weight)));
                    let history: Vec<Json> = state
                        .empirical
                        .as_ref()
                        .map(|setter| {
                            setter
                                .history()
                                .map(|(top, second)| {
                                    Json::Arr(vec![Json::Num(top), Json::Num(second)])
                                })
                                .collect()
                        })
                        .unwrap_or_default();
                    pairs.push(("history", Json::Arr(history)));
                }
            }
            Json::obj(pairs)
        }
        MarketKind::Privacy(params) => {
            let bank = state.bank();
            let column = |field: fn(&OwnerLedger) -> Json| -> Json {
                Json::Arr(bank.ledgers().iter().map(field).collect())
            };
            Json::obj(vec![
                ("kind", Json::str("privacy")),
                ("epsilon_budget", Json::Num(params.epsilon_budget)),
                ("compensation_base", Json::Num(params.compensation_base)),
                (
                    "compensation_sensitivity",
                    Json::Num(params.compensation_sensitivity),
                ),
                ("data_range", Json::Num(params.data_range)),
                ("laplace_scale", Json::Num(params.laplace_scale)),
                (
                    "epsilon_spent",
                    column(|ledger| Json::Num(ledger.epsilon_spent)),
                ),
                (
                    "compensation",
                    column(|ledger| Json::Num(ledger.compensation_accrued)),
                ),
                ("queries", column(|ledger| Json::Num(ledger.queries as f64))),
                (
                    "exhausted",
                    column(|ledger| Json::Num(if ledger.exhausted { 1.0 } else { 0.0 })),
                ),
                // Bank totals are persisted verbatim, **not** recomputed
                // from the per-owner columns: incremental accumulation
                // order and restore-sum order round floats differently.
                ("epsilon_spent_total", Json::Num(bank.epsilon_spent_total())),
                ("compensation_total", Json::Num(bank.compensation_total())),
            ])
        }
    }
}

/// Learned market state persisted alongside the market kind, applied
/// after the tenant state is built.
enum MarketRestore {
    /// Nothing beyond the kind itself (posted, session/static auction).
    None,
    /// The empirical reserve setter's persisted bid history.
    EmpiricalHistory(Vec<(f64, f64)>),
    /// The privacy tenant's owner ledgers and bank totals.
    Privacy(Box<LedgerRestore>),
}

/// The persisted state of a privacy tenant's [`LedgerBank`].
struct LedgerRestore {
    epsilon_spent: Vec<f64>,
    compensation: Vec<f64>,
    queries: Vec<u64>,
    exhausted: Vec<bool>,
    epsilon_spent_total: f64,
    compensation_total: f64,
}

/// Parses a tenant's `market` object; also returns the learned market
/// state (applied after the tenant state is built).
fn market_from_json(
    value: &Json,
    context: &str,
) -> Result<(MarketKind, MarketRestore), ServiceError> {
    let malformed = |message: String| -> ServiceError { ServiceError::MalformedSnapshot(message) };
    let kind = value
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| malformed(format!("{context}: market missing `kind`")))?;
    match kind {
        "posted" => Ok((MarketKind::PostedPrice, MarketRestore::None)),
        "auction" => {
            let policy = value
                .get("policy")
                .and_then(Json::as_str)
                .ok_or_else(|| malformed(format!("{context}: auction missing `policy`")))?;
            match policy {
                "session" => Ok((
                    MarketKind::Auction(AuctionPolicy::Session),
                    MarketRestore::None,
                )),
                "static" => {
                    let markup = value.get("markup").and_then(Json::as_f64).ok_or_else(|| {
                        malformed(format!("{context}: static policy missing `markup`"))
                    })?;
                    Ok((
                        MarketKind::Auction(AuctionPolicy::Static { markup }),
                        MarketRestore::None,
                    ))
                }
                "empirical" => {
                    // A zero window is accepted here (and clamped to 1 by
                    // the tenant state, exactly like at registration time):
                    // a document the service wrote must always restore.
                    let window = value.get("window").and_then(Json::as_u64).ok_or_else(|| {
                        malformed(format!("{context}: empirical policy missing `window`"))
                    })? as usize;
                    let welfare_weight = value
                        .get("welfare_weight")
                        .and_then(Json::as_f64)
                        .ok_or_else(|| {
                            malformed(format!(
                                "{context}: empirical policy missing `welfare_weight`"
                            ))
                        })?;
                    let history = value
                        .get("history")
                        .and_then(Json::as_arr)
                        .ok_or_else(|| {
                            malformed(format!("{context}: empirical policy missing `history`"))
                        })?
                        .iter()
                        .map(|pair| {
                            let items = pair.as_arr().filter(|items| items.len() == 2);
                            match items {
                                Some(items) => match (items[0].as_f64(), items[1].as_f64()) {
                                    (Some(top), Some(second)) => Ok((top, second)),
                                    _ => Err(malformed(format!(
                                        "{context}: history entries must be number pairs"
                                    ))),
                                },
                                None => Err(malformed(format!(
                                    "{context}: history entries must be `[top, second]` pairs"
                                ))),
                            }
                        })
                        .collect::<Result<Vec<(f64, f64)>, ServiceError>>()?;
                    Ok((
                        MarketKind::Auction(AuctionPolicy::Empirical {
                            window,
                            welfare_weight,
                        }),
                        MarketRestore::EmpiricalHistory(history),
                    ))
                }
                other => Err(malformed(format!(
                    "{context}: unknown auction policy `{other}`"
                ))),
            }
        }
        "privacy" => {
            let number = |key: &str| {
                value.get(key).and_then(Json::as_f64).ok_or_else(|| {
                    malformed(format!("{context}: privacy market missing number `{key}`"))
                })
            };
            let params = PrivacyParams {
                epsilon_budget: number("epsilon_budget")?,
                compensation_base: number("compensation_base")?,
                compensation_sensitivity: number("compensation_sensitivity")?,
                data_range: number("data_range")?,
                laplace_scale: number("laplace_scale")?,
            };
            let numbers = |key: &str| -> Result<Vec<f64>, ServiceError> {
                value
                    .get(key)
                    .and_then(Json::as_arr)
                    .ok_or_else(|| {
                        malformed(format!("{context}: privacy market missing array `{key}`"))
                    })?
                    .iter()
                    .map(|item| {
                        item.as_f64().ok_or_else(|| {
                            malformed(format!("{context}: `{key}` entries must be numbers"))
                        })
                    })
                    .collect()
            };
            let queries = numbers("queries")?
                .into_iter()
                .map(|count| {
                    if count >= 0.0 && count.fract() == 0.0 {
                        Ok(count as u64)
                    } else {
                        Err(malformed(format!(
                            "{context}: `queries` entries must be counts"
                        )))
                    }
                })
                .collect::<Result<Vec<u64>, ServiceError>>()?;
            let exhausted = numbers("exhausted")?
                .into_iter()
                .map(|flag| {
                    if flag == 0.0 || flag == 1.0 {
                        Ok(flag == 1.0)
                    } else {
                        Err(malformed(format!(
                            "{context}: `exhausted` entries must be 0 or 1"
                        )))
                    }
                })
                .collect::<Result<Vec<bool>, ServiceError>>()?;
            Ok((
                MarketKind::Privacy(params),
                MarketRestore::Privacy(Box::new(LedgerRestore {
                    epsilon_spent: numbers("epsilon_spent")?,
                    compensation: numbers("compensation")?,
                    queries,
                    exhausted,
                    epsilon_spent_total: number("epsilon_spent_total")?,
                    compensation_total: number("compensation_total")?,
                })),
            ))
        }
        other => Err(malformed(format!(
            "{context}: unknown market kind `{other}`"
        ))),
    }
}

/// Serialises a tenant's drift policy plus the live detector state (the
/// part of the mechanism the knowledge set cannot carry).
fn drift_json(state: &TenantState) -> Json {
    let mechanism = state.session.mechanism();
    match state.config.drift {
        DriftPolicy::Static => Json::obj(vec![("policy", Json::str("static"))]),
        DriftPolicy::Restart { window, threshold } => {
            let flags: Vec<Json> = mechanism
                .detector()
                .map(|detector| {
                    detector
                        .window_flags()
                        .map(|flag| Json::Num(if flag { 1.0 } else { 0.0 }))
                        .collect()
                })
                .unwrap_or_default();
            Json::obj(vec![
                ("policy", Json::str("restart")),
                ("window", Json::Num(window as f64)),
                ("threshold", Json::Num(threshold as f64)),
                ("fires", Json::Num(mechanism.detector_fires() as f64)),
                ("restarts", Json::Num(mechanism.restarts() as f64)),
                ("window_flags", Json::Arr(flags)),
            ])
        }
        DriftPolicy::Discounted { inflation } => Json::obj(vec![
            ("policy", Json::str("discounted")),
            ("inflation", Json::Num(inflation)),
        ]),
    }
}

/// The restored drift state of a restart-policy tenant.
struct DriftRestore {
    fires: u64,
    restarts: u64,
    flags: Vec<bool>,
}

/// Parses a tenant's `drift` object (schema v3).  Returns the policy plus
/// the detector state to re-instate after the mechanism is built.
fn drift_from_json(
    value: &Json,
    context: &str,
) -> Result<(DriftPolicy, Option<DriftRestore>), ServiceError> {
    let malformed = |message: String| -> ServiceError { ServiceError::MalformedSnapshot(message) };
    let policy = value
        .get("policy")
        .and_then(Json::as_str)
        .ok_or_else(|| malformed(format!("{context}: drift missing `policy`")))?;
    match policy {
        "static" => Ok((DriftPolicy::Static, None)),
        "discounted" => {
            let inflation = value
                .get("inflation")
                .and_then(Json::as_f64)
                .ok_or_else(|| {
                    malformed(format!("{context}: discounted drift missing `inflation`"))
                })?;
            Ok((DriftPolicy::Discounted { inflation }, None))
        }
        "restart" => {
            let count = |key: &str| {
                value.get(key).and_then(Json::as_u64).ok_or_else(|| {
                    malformed(format!("{context}: restart drift missing count `{key}`"))
                })
            };
            let flags = value
                .get("window_flags")
                .and_then(Json::as_arr)
                .ok_or_else(|| {
                    malformed(format!("{context}: restart drift missing `window_flags`"))
                })?
                .iter()
                .map(|flag| match flag.as_f64() {
                    Some(v) if v == 0.0 || v == 1.0 => Ok(v == 1.0),
                    _ => Err(malformed(format!(
                        "{context}: drift window flags must be 0 or 1"
                    ))),
                })
                .collect::<Result<Vec<bool>, ServiceError>>()?;
            Ok((
                DriftPolicy::Restart {
                    window: count("window")? as usize,
                    threshold: count("threshold")? as usize,
                },
                Some(DriftRestore {
                    fires: count("fires")?,
                    restarts: count("restarts")?,
                    flags,
                }),
            ))
        }
        other => Err(malformed(format!(
            "{context}: unknown drift policy `{other}`"
        ))),
    }
}

fn stats_json(stats: &OnlineStats) -> Json {
    Json::obj(vec![
        ("count", Json::Num(stats.count() as f64)),
        ("mean", Json::Num(stats.mean())),
        ("m2", Json::Num(stats.m2())),
        ("sum", Json::Num(stats.sum())),
        ("min", Json::Num(stats.min())),
        ("max", Json::Num(stats.max())),
    ])
}

fn stats_from_json(value: &Json, context: &str) -> Result<OnlineStats, ServiceError> {
    let field = |key: &str| {
        value.get(key).and_then(Json::as_f64).ok_or_else(|| {
            ServiceError::MalformedSnapshot(format!("{context}: missing number `{key}`"))
        })
    };
    let count = value
        .get("count")
        .and_then(Json::as_u64)
        .ok_or_else(|| ServiceError::MalformedSnapshot(format!("{context}: missing `count`")))?;
    Ok(OnlineStats::from_raw_parts(
        count,
        field("mean")?,
        field("m2")?,
        field("sum")?,
        field("min")?,
        field("max")?,
    ))
}

fn ledger_json(report: &RegretReport) -> Json {
    Json::obj(vec![
        ("rounds", Json::Num(report.rounds as f64)),
        ("cumulative_regret", Json::Num(report.cumulative_regret)),
        (
            "cumulative_market_value",
            Json::Num(report.cumulative_market_value),
        ),
        ("cumulative_revenue", Json::Num(report.cumulative_revenue)),
        ("sales", Json::Num(report.sales as f64)),
        (
            "unsellable_rounds",
            Json::Num(report.unsellable_rounds as f64),
        ),
        ("market_value_stats", stats_json(&report.market_value_stats)),
        (
            "reserve_price_stats",
            stats_json(&report.reserve_price_stats),
        ),
        ("posted_price_stats", stats_json(&report.posted_price_stats)),
        ("regret_stats", stats_json(&report.regret_stats)),
    ])
}

fn ledger_from_json(value: &Json, context: &str) -> Result<RegretReport, ServiceError> {
    let number = |key: &str| {
        value.get(key).and_then(Json::as_f64).ok_or_else(|| {
            ServiceError::MalformedSnapshot(format!("{context}: missing number `{key}`"))
        })
    };
    let count = |key: &str| {
        value.get(key).and_then(Json::as_u64).ok_or_else(|| {
            ServiceError::MalformedSnapshot(format!("{context}: missing count `{key}`"))
        })
    };
    let stats = |key: &str| {
        value
            .get(key)
            .ok_or_else(|| ServiceError::MalformedSnapshot(format!("{context}: missing `{key}`")))
            .and_then(|v| stats_from_json(v, &format!("{context} {key}")))
    };
    let mut report = RegretReport::empty();
    report.rounds = count("rounds")? as usize;
    report.cumulative_regret = number("cumulative_regret")?;
    report.cumulative_market_value = number("cumulative_market_value")?;
    report.cumulative_revenue = number("cumulative_revenue")?;
    report.sales = count("sales")? as usize;
    report.unsellable_rounds = count("unsellable_rounds")? as usize;
    report.market_value_stats = stats("market_value_stats")?;
    report.reserve_price_stats = stats("reserve_price_stats")?;
    report.posted_price_stats = stats("posted_price_stats")?;
    report.regret_stats = stats("regret_stats")?;
    Ok(report)
}

/// Serialises one tenant to its snapshot/WAL document.
///
/// This rendering is the unit of persistence everywhere: full snapshots,
/// WAL segments (see [`crate::wal`]), and the cold-tenant page store all
/// carry exactly this object, so a tenant round-trips bit-identically no
/// matter which path it travelled.
pub(crate) fn tenant_json(state: &TenantState) -> Json {
    let knowledge = state.session.mechanism().knowledge();
    Json::obj(vec![
        // Tenant ids are full u64s (name hashes use all 64 bits) and JSON
        // numbers are f64s, so ids are encoded as strings to stay exact.
        ("id", Json::Str(state.id.0.to_string())),
        ("dim", Json::Num(state.config.dim as f64)),
        ("pricing", pricing_json(&state.config.pricing)),
        ("market", market_json(state)),
        ("drift", drift_json(state)),
        (
            "knowledge",
            Json::obj(vec![
                ("center", vector_json(knowledge.center())),
                (
                    "shape",
                    Json::Arr(
                        knowledge
                            .shape()
                            .as_slice()
                            .iter()
                            .map(|&x| Json::Num(x))
                            .collect(),
                    ),
                ),
            ]),
        ),
        ("ledger", ledger_json(&state.session.tracker().report())),
        // Session-level counters are wider than the ledger: production
        // (accept-only) rounds carry no ground truth, so they count here
        // but not in the regret report.
        (
            "session",
            Json::obj(vec![
                (
                    "rounds_closed",
                    Json::Num(state.session.rounds_closed() as f64),
                ),
                ("sales", Json::Num(state.session.sales() as f64)),
                ("revenue", Json::Num(state.session.revenue())),
                ("regret_proxy", Json::Num(state.session.regret_proxy())),
            ]),
        ),
    ])
}

/// Re-parses the compact rendering a cold (paged-out) tenant is stored as.
///
/// The string was produced by [`tenant_json`]`.render()` inside this
/// process, so a parse failure is a corrupted invariant, not bad input.
pub(crate) fn cold_tenant_json(raw: &str) -> Json {
    // pdm-lint: allow(no-unwrap-in-lib) reason="the string was rendered by tenant_json in this process; a parse failure is memory corruption, not input"
    Json::parse(raw).expect("cold tenant page is valid JSON by construction")
}

/// Rehydrates a cold tenant back into a live [`TenantState`].
///
/// Bit-identical by the snapshot contract: serialise → parse → rebuild is
/// the same path a full snapshot/restore takes per tenant.
pub(crate) fn cold_tenant_state(raw: &str) -> TenantState {
    // pdm-lint: allow(no-unwrap-in-lib) reason="serialise then rebuild is the pinned snapshot contract; failure here is a broken invariant, not input"
    tenant_from_json(&cold_tenant_json(raw)).expect("cold tenant page round-trips by construction")
}

pub(crate) fn tenant_from_json(value: &Json) -> Result<TenantState, ServiceError> {
    let id = value
        .get("id")
        .and_then(Json::as_str)
        .and_then(|s| s.parse::<u64>().ok())
        .map(TenantId)
        .ok_or_else(|| ServiceError::MalformedSnapshot("tenant: missing `id`".to_owned()))?;
    let context = format!("{id}");
    let dim = value
        .get("dim")
        .and_then(Json::as_u64)
        .filter(|&d| d >= 1)
        .ok_or_else(|| ServiceError::MalformedSnapshot(format!("{context}: missing `dim`")))?
        as usize;
    let pricing = pricing_from_json(
        value.get("pricing").ok_or_else(|| {
            ServiceError::MalformedSnapshot(format!("{context}: missing `pricing`"))
        })?,
        &context,
    )?;
    let knowledge = value.get("knowledge").ok_or_else(|| {
        ServiceError::MalformedSnapshot(format!("{context}: missing `knowledge`"))
    })?;
    let center = vector_from_json(
        knowledge.get("center").ok_or_else(|| {
            ServiceError::MalformedSnapshot(format!("{context}: missing `center`"))
        })?,
        &format!("{context} center"),
    )?;
    let shape_values = vector_from_json(
        knowledge.get("shape").ok_or_else(|| {
            ServiceError::MalformedSnapshot(format!("{context}: missing `shape`"))
        })?,
        &format!("{context} shape"),
    )?;
    if center.len() != dim || shape_values.len() != dim * dim {
        return Err(ServiceError::MalformedSnapshot(format!(
            "{context}: knowledge dimensions do not match dim={dim}"
        )));
    }
    let shape = Matrix::from_row_major(dim, dim, shape_values.into_vec()).map_err(|e| {
        ServiceError::MalformedSnapshot(format!("{context}: bad shape matrix: {e}"))
    })?;
    let ellipsoid = Ellipsoid::new(center, shape).map_err(|e| {
        ServiceError::MalformedSnapshot(format!("{context}: degenerate knowledge set: {e}"))
    })?;
    // The market kind arrived with schema v2; a v1 tenant is posted-price.
    let (market, market_restore) = match value.get("market") {
        Some(market) => market_from_json(market, &context)?,
        None => (MarketKind::PostedPrice, MarketRestore::None),
    };
    // Privacy parameters are checked before the tenant state is built: the
    // compensation contract the ledger bank constructs would otherwise
    // panic on a corrupted (non-positive) base or sensitivity.
    if let MarketKind::Privacy(params) = market {
        for (name, parameter) in [
            ("epsilon_budget", params.epsilon_budget),
            ("compensation_base", params.compensation_base),
            ("compensation_sensitivity", params.compensation_sensitivity),
            ("data_range", params.data_range),
            ("laplace_scale", params.laplace_scale),
        ] {
            if !(parameter > 0.0 && parameter.is_finite()) {
                return Err(ServiceError::MalformedSnapshot(format!(
                    "{context}: privacy `{name}` must be positive and finite, got {parameter}"
                )));
            }
        }
    }
    // The drift policy arrived with schema v3; older tenants are static.
    let (drift, drift_restore) = match value.get("drift") {
        Some(drift) => drift_from_json(drift, &context)?,
        None => (DriftPolicy::Static, None),
    };
    let config = TenantConfig {
        dim,
        pricing,
        market,
        drift,
    };
    let engine = EllipsoidPricing::with_knowledge(LinearModel::new(dim), ellipsoid, pricing);
    let mut mechanism = DriftAwarePricing::wrap(engine, drift);
    if let Some(restore) = drift_restore {
        mechanism.restore_drift_state(restore.fires, restore.restarts, &restore.flags);
    }
    let mut state = TenantState::with_mechanism(id, config, mechanism);
    match (market_restore, market) {
        (
            MarketRestore::EmpiricalHistory(history),
            MarketKind::Auction(AuctionPolicy::Empirical {
                window,
                welfare_weight,
            }),
        ) => {
            // `from_history` re-derives the fitted level from the persisted
            // window, so a restored policy always agrees with its own refit.
            state.empirical = Some(EmpiricalReserve::from_history(
                EmpiricalConfig {
                    window: window.max(1),
                    welfare_weight,
                },
                &history,
            ));
        }
        (MarketRestore::Privacy(restore), MarketKind::Privacy(params)) => {
            for (name, column_len) in [
                ("epsilon_spent", restore.epsilon_spent.len()),
                ("compensation", restore.compensation.len()),
                ("queries", restore.queries.len()),
                ("exhausted", restore.exhausted.len()),
            ] {
                if column_len != dim {
                    return Err(ServiceError::MalformedSnapshot(format!(
                        "{context}: privacy `{name}` has {column_len} owners, expected dim={dim}"
                    )));
                }
            }
            let ledgers: Vec<OwnerLedger> = (0..dim)
                .map(|owner| OwnerLedger {
                    epsilon_spent: restore.epsilon_spent[owner],
                    compensation_accrued: restore.compensation[owner],
                    queries: restore.queries[owner],
                    exhausted: restore.exhausted[owner],
                })
                .collect();
            state.privacy = Some(LedgerBank::restore(
                params,
                ledgers,
                restore.epsilon_spent_total,
                restore.compensation_total,
            ));
        }
        _ => {}
    }
    // The regret/revenue ledger keeps `tenant_report` consistent with the
    // restored shard metrics.  Optional so hand-written minimal snapshots
    // (and any pre-ledger documents) restore with a fresh ledger.
    if let Some(ledger) = value.get("ledger") {
        let report = ledger_from_json(ledger, &format!("{context} ledger"))?;
        state.session.restore_ledger(&report);
    }
    // Exact session-level totals, which also cover production (accept-only)
    // rounds the ledger cannot see.  Optional like the ledger; when absent
    // the ledger-derived counters above stand.
    if let Some(session) = value.get("session") {
        let scontext = format!("{context} session");
        let count = |key: &str| {
            session.get(key).and_then(Json::as_u64).ok_or_else(|| {
                ServiceError::MalformedSnapshot(format!("{scontext}: missing count `{key}`"))
            })
        };
        let number = |key: &str| {
            session.get(key).and_then(Json::as_f64).ok_or_else(|| {
                ServiceError::MalformedSnapshot(format!("{scontext}: missing number `{key}`"))
            })
        };
        state.session.restore_counters(
            count("rounds_closed")?,
            count("sales")?,
            number("revenue")?,
            number("regret_proxy")?,
        );
    }
    Ok(state)
}

impl MarketService {
    /// Serialises the full service state to a deterministic JSON tree.
    ///
    /// # Errors
    /// [`ServiceError::PendingWork`] when requests are still queued or a
    /// tenant has a quoted-but-unobserved round; drain and close them
    /// first, then snapshot the quiescent service.
    pub fn snapshot(&self) -> Result<Json, ServiceError> {
        // Stripe queues count as pending too: an ingested-but-untransferred
        // request is invisible to the shards but still owed a response.
        let queued = self.queued_requests();
        let mut open_rounds = 0usize;
        for shard in self.shards() {
            open_rounds += sync::lock(shard, "shard").open_rounds();
        }
        if queued > 0 || open_rounds > 0 {
            return Err(ServiceError::PendingWork {
                queued,
                open_rounds,
            });
        }
        // Merged ledgers: stripe-level shed counts fold in at read time, so
        // the snapshot sees the same totals `shard_metrics` reports.
        let metrics: Vec<Json> = self.shard_metrics().iter().map(metrics_json).collect();
        let mut all_states: Vec<(TenantId, Json)> = Vec::new();
        for shard in self.shards() {
            let mut shard = sync::lock(shard, "shard");
            all_states.extend(shard.tenant_documents());
            // A full snapshot captures every tenant, hot or cold, so the
            // incremental WAL restarts from a clean slate.
            shard.clear_dirty();
        }
        // Global id order, not shard order: the rendering must not depend on
        // how tenants happen to be distributed.
        all_states.sort_by_key(|(id, _)| *id);
        let tenants: Vec<Json> = all_states.into_iter().map(|(_, json)| json).collect();
        let optional_size = |size: Option<usize>| size.map_or(Json::Null, |n| Json::Num(n as f64));
        Ok(Json::obj(vec![
            ("schema_version", Json::Num(SNAPSHOT_SCHEMA_VERSION as f64)),
            ("shards", Json::Num(self.shard_count() as f64)),
            (
                "queue_capacity",
                Json::Num(self.config().queue_capacity as f64),
            ),
            (
                "resident_capacity",
                optional_size(self.config().resident_capacity),
            ),
            (
                "wal_segment_size",
                optional_size(self.config().wal_segment_size),
            ),
            (
                "privacy_budget",
                self.config().privacy_budget.map_or(Json::Null, Json::Num),
            ),
            (
                "compensation_base",
                self.config()
                    .compensation_base
                    .map_or(Json::Null, Json::Num),
            ),
            ("ledger_paging", Json::Bool(self.config().ledger_paging)),
            ("tenants", Json::Arr(tenants)),
            ("metrics", Json::Arr(metrics)),
        ]))
    }

    /// Rebuilds a service from a snapshot produced by
    /// [`MarketService::snapshot`].
    ///
    /// # Errors
    /// [`ServiceError::MalformedSnapshot`] when the document does not match
    /// the schema or encodes a degenerate knowledge set.
    pub fn restore(snapshot: &Json) -> Result<Self, ServiceError> {
        let version = snapshot
            .get("schema_version")
            .and_then(Json::as_u64)
            .ok_or_else(|| {
                ServiceError::MalformedSnapshot("missing `schema_version`".to_owned())
            })?;
        if version > SNAPSHOT_SCHEMA_VERSION {
            return Err(ServiceError::MalformedSnapshot(format!(
                "snapshot schema v{version} is newer than this build's v{SNAPSHOT_SCHEMA_VERSION}"
            )));
        }
        let shards = snapshot
            .get("shards")
            .and_then(Json::as_u64)
            .filter(|&n| n >= 1)
            .ok_or_else(|| ServiceError::MalformedSnapshot("missing `shards`".to_owned()))?
            as usize;
        let queue_capacity = snapshot
            .get("queue_capacity")
            .and_then(Json::as_u64)
            .filter(|&n| n >= 1)
            .ok_or_else(|| ServiceError::MalformedSnapshot("missing `queue_capacity`".to_owned()))?
            as usize;
        // The paging knobs arrived with schema v4; older documents (and v4
        // documents from services with paging off) carry `null` or nothing.
        let optional_size = |key: &str| -> Result<Option<usize>, ServiceError> {
            match snapshot.get(key) {
                None | Some(Json::Null) => Ok(None),
                Some(value) => value
                    .as_u64()
                    .filter(|&n| n >= 1)
                    .map(|n| Some(n as usize))
                    .ok_or_else(|| {
                        ServiceError::MalformedSnapshot(format!("bad `{key}`: {value:?}"))
                    }),
            }
        };
        let resident_capacity = optional_size("resident_capacity")?;
        let wal_segment_size = optional_size("wal_segment_size")?;
        // The privacy knobs arrived with schema v5; older documents carry
        // neither key, and a v5 service with the knobs unset writes `null`
        // (numbers) or `false` (the paging flag).
        let optional_number = |key: &str| -> Result<Option<f64>, ServiceError> {
            match snapshot.get(key) {
                None | Some(Json::Null) => Ok(None),
                Some(value) => value.as_f64().map(Some).ok_or_else(|| {
                    ServiceError::MalformedSnapshot(format!("bad `{key}`: {value:?}"))
                }),
            }
        };
        let privacy_budget = optional_number("privacy_budget")?;
        let compensation_base = optional_number("compensation_base")?;
        let ledger_paging = match snapshot.get("ledger_paging") {
            None => false,
            Some(Json::Bool(flag)) => *flag,
            Some(other) => {
                return Err(ServiceError::MalformedSnapshot(format!(
                    "bad `ledger_paging`: {other:?}"
                )))
            }
        };
        // The sizing was validated above (counts >= 1, optional knobs >= 1
        // when present), so construction can only fail on the knob pairing
        // rule; `?` keeps the error path honest.
        let mut service = MarketService::new(ServiceConfig {
            shards,
            queue_capacity,
            resident_capacity,
            wal_segment_size,
            privacy_budget,
            compensation_base,
            ledger_paging,
        })?;
        let tenants = snapshot
            .get("tenants")
            .and_then(Json::as_arr)
            .ok_or_else(|| ServiceError::MalformedSnapshot("missing `tenants`".to_owned()))?;
        for tenant in tenants {
            let state = tenant_from_json(tenant)?;
            service.register_state(state)?;
        }
        let metrics = snapshot
            .get("metrics")
            .and_then(Json::as_arr)
            .ok_or_else(|| ServiceError::MalformedSnapshot("missing `metrics`".to_owned()))?;
        if metrics.len() != shards {
            return Err(ServiceError::MalformedSnapshot(format!(
                "expected {shards} metric ledgers, found {}",
                metrics.len()
            )));
        }
        for (index, ledger) in metrics.iter().enumerate() {
            let restored = metrics_from_json(ledger, &format!("shard {index}"))?;
            sync::get_mut(&mut service.shards_mut()[index], "shard").metrics = restored;
        }
        // Registration marked every tenant dirty; a freshly restored service
        // is by definition in sync with its snapshot, so the WAL starts clean.
        for shard in service.shards_mut() {
            sync::get_mut(shard, "shard").clear_dirty();
        }
        Ok(service)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{OutcomeReport, QueryRequest};
    use pdm_linalg::sampling;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Runs `rounds` closed-loop rounds against every tenant of `service`,
    /// returning the posted prices in deterministic order.
    fn pump(service: &mut MarketService, tenant_ids: &[TenantId], rounds: usize) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(17);
        let mut posted = Vec::new();
        for _ in 0..rounds {
            for &id in tenant_ids {
                let features = sampling::standard_normal_vector(&mut rng, 3)
                    .map(f64::abs)
                    .normalized();
                let reserve = 0.5 * features.sum();
                service
                    .submit_quote(QueryRequest {
                        tenant: id,
                        features,
                        reserve_price: reserve,
                    })
                    .unwrap();
            }
            for response in service.drain(2) {
                let quote = *response.quote().unwrap();
                posted.push(quote.posted_price);
                service
                    .submit_outcome(OutcomeReport {
                        tenant: response.tenant,
                        accepted: quote.posted_price <= 1.2,
                        market_value: Some(1.2),
                    })
                    .unwrap();
            }
            service.drain(2);
        }
        posted
    }

    fn fresh_service(ids: &[TenantId]) -> MarketService {
        let mut service = MarketService::new(ServiceConfig {
            shards: 3,
            queue_capacity: 32,
            ..ServiceConfig::default()
        })
        .expect("valid service config");
        for &id in ids {
            service
                .register_tenant(id, TenantConfig::standard(3, 500))
                .unwrap();
        }
        service
    }

    #[test]
    fn restore_continues_bit_identically() {
        let ids: Vec<TenantId> = [1u64, 7, 42, u64::MAX - 3]
            .into_iter()
            .map(TenantId)
            .collect();
        // Uninterrupted run: warm-up plus continuation.
        let mut uninterrupted = fresh_service(&ids);
        pump(&mut uninterrupted, &ids, 5);
        let expected = pump(&mut uninterrupted, &ids, 5);

        // Interrupted run: warm-up, snapshot, restore, continuation.
        let mut original = fresh_service(&ids);
        pump(&mut original, &ids, 5);
        let snapshot = original.snapshot().expect("quiescent service");
        let mut restored = MarketService::restore(&snapshot).expect("valid snapshot");
        let continued = pump(&mut restored, &ids, 5);

        assert_eq!(expected.len(), continued.len());
        for (a, b) in expected.iter().zip(&continued) {
            assert_eq!(a.to_bits(), b.to_bits(), "restored quotes must be exact");
        }
        // Service-level counters carried over.
        assert_eq!(
            original.metrics().quotes_served,
            MarketService::restore(&snapshot)
                .unwrap()
                .metrics()
                .quotes_served
        );
    }

    #[test]
    fn snapshot_rendering_is_deterministic_and_round_trips() {
        let ids: Vec<TenantId> = [3u64, 11].into_iter().map(TenantId).collect();
        let mut service = fresh_service(&ids);
        pump(&mut service, &ids, 3);
        let first = service.snapshot().unwrap().render_pretty();
        let second = service.snapshot().unwrap().render_pretty();
        assert_eq!(first, second, "same state must render to the same bytes");
        // snapshot → restore → snapshot is the identity on the rendering.
        let restored = MarketService::restore(&Json::parse(&first).unwrap()).unwrap();
        assert_eq!(restored.snapshot().unwrap().render_pretty(), first);
    }

    #[test]
    fn restore_keeps_tenant_ledgers_consistent_with_service_metrics() {
        let ids: Vec<TenantId> = [2u64, 19, 400].into_iter().map(TenantId).collect();
        let mut service = fresh_service(&ids);
        pump(&mut service, &ids, 6);
        let snapshot = service.snapshot().expect("quiescent service");
        let restored = MarketService::restore(&snapshot).expect("valid snapshot");

        // Per-tenant ledgers survive bit for bit…
        for &id in &ids {
            let before = service.tenant_report(id).unwrap();
            let after = restored.tenant_report(id).unwrap();
            assert_eq!(before.rounds, after.rounds);
            assert_eq!(before.sales, after.sales);
            assert_eq!(
                before.cumulative_revenue.to_bits(),
                after.cumulative_revenue.to_bits()
            );
            assert_eq!(
                before.cumulative_regret.to_bits(),
                after.cumulative_regret.to_bits()
            );
            assert_eq!(
                before.posted_price_stats.mean().to_bits(),
                after.posted_price_stats.mean().to_bits()
            );
        }

        // …so the fold of tenant ledgers still reconciles with the restored
        // service-level metrics, exactly like on the uninterrupted service.
        let mut folded = pdm_pricing::prelude::RegretReport::empty();
        for &id in &ids {
            folded.merge(&restored.tenant_report(id).unwrap());
        }
        let metrics = restored.metrics();
        assert_eq!(folded.sales as u64, metrics.sales);
        assert_eq!(folded.rounds as u64, metrics.observations);
    }

    #[test]
    fn restore_preserves_accept_only_session_counters() {
        // Production mode: outcomes carry only the accept bit, so the
        // regret ledger stays empty — the session-level counters must
        // survive the snapshot on their own.
        let ids = [TenantId(8)];
        let mut service = fresh_service(&ids);
        for _ in 0..4 {
            service
                .submit_quote(QueryRequest {
                    tenant: TenantId(8),
                    features: pdm_linalg::Vector::from_slice(&[0.5, 0.5, 0.5]),
                    reserve_price: 0.1,
                })
                .unwrap();
            service.drain(1);
            service
                .submit_outcome(OutcomeReport {
                    tenant: TenantId(8),
                    accepted: true,
                    market_value: None,
                })
                .unwrap();
            service.drain(1);
        }
        let first = service.snapshot().unwrap().render_pretty();
        assert!(
            first.contains("\"rounds_closed\":4") || first.contains("\"rounds_closed\": 4"),
            "the session counters must be in the document: {first}"
        );
        // The ledger saw nothing (no ground truth), but a second snapshot of
        // the restored service must still render byte-identically — the
        // accept-only revenue and round counts survived the round trip.
        let restored = MarketService::restore(&Json::parse(&first).unwrap()).unwrap();
        assert_eq!(restored.snapshot().unwrap().render_pretty(), first);
        assert_eq!(restored.metrics().sales, 4);
    }

    #[test]
    fn snapshot_refuses_pending_work() {
        let ids = [TenantId(5)];
        let mut service = fresh_service(&ids);
        service
            .submit_quote(QueryRequest {
                tenant: TenantId(5),
                features: pdm_linalg::Vector::from_slice(&[0.5, 0.5, 0.5]),
                reserve_price: 0.1,
            })
            .unwrap();
        // Queued request.
        assert!(matches!(
            service.snapshot(),
            Err(ServiceError::PendingWork { queued: 1, .. })
        ));
        // Quoted but unobserved round.
        service.drain(1);
        assert!(matches!(
            service.snapshot(),
            Err(ServiceError::PendingWork {
                queued: 0,
                open_rounds: 1
            })
        ));
        // Closing the round makes the service quiescent again.
        service
            .submit_outcome(OutcomeReport {
                tenant: TenantId(5),
                accepted: false,
                market_value: None,
            })
            .unwrap();
        service.drain(1);
        assert!(service.snapshot().is_ok());
    }

    #[test]
    fn malformed_snapshots_are_rejected_with_context() {
        let err = MarketService::restore(&Json::parse("{}").unwrap()).unwrap_err();
        assert!(matches!(err, ServiceError::MalformedSnapshot(_)));

        let newer = Json::obj(vec![("schema_version", Json::Num(999.0))]);
        let err = MarketService::restore(&newer).unwrap_err();
        assert!(err.to_string().contains("newer"), "{err}");

        // A tenant whose knowledge geometry disagrees with its declared
        // dimension is refused, and the error names the tenant.
        let ids = [TenantId(1)];
        let service = fresh_service(&ids);
        let text = service
            .snapshot()
            .unwrap()
            .render()
            .replace("\"dim\":3", "\"dim\":2");
        let err = MarketService::restore(&Json::parse(&text).unwrap()).unwrap_err();
        assert!(
            err.to_string().contains("tenant-1"),
            "error should name the tenant: {err}"
        );
    }
}
