//! Per-tenant pricing state.
//!
//! A tenant is one independent instance of the paper's mechanism: its own
//! ellipsoidal knowledge set, its own reserve-price handling, its own
//! learning trajectory.  The service holds one [`TenantState`] per tenant,
//! sharded by [`crate::routing::shard_of`], and drives each through the
//! re-entrant [`PricingSession`] interface of `pdm-pricing`.

use crate::routing::TenantId;
use pdm_pricing::prelude::{
    EllipsoidPricing, LinearModel, PricingConfig, PricingSession, SimulationOptions,
};

/// Configuration a tenant is registered with.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantConfig {
    /// Feature dimension of the tenant's queries.
    pub dim: usize,
    /// Mechanism configuration (knowledge-set radius, horizon, reserve and
    /// uncertainty switches).
    pub pricing: PricingConfig,
}

impl TenantConfig {
    /// A tenant with the paper's defaults: reserve enabled, no uncertainty
    /// buffer, knowledge-set radius `2√n` (the broker prior of Section V-A).
    #[must_use]
    pub fn standard(dim: usize, horizon: usize) -> Self {
        let dim = dim.max(1);
        Self {
            dim,
            pricing: PricingConfig::new(2.0 * (dim as f64).sqrt(), horizon),
        }
    }
}

/// The mechanism type every tenant session drives: the paper's ellipsoid
/// engine over the linear market-value model.
pub type TenantMechanism = EllipsoidPricing<LinearModel>;

/// The live state of one tenant: its pricing session plus the registration
/// config (kept for snapshots).
#[derive(Debug, Clone)]
pub struct TenantState {
    /// The tenant's id.
    pub id: TenantId,
    /// The registration config (needed to rebuild the tenant on restore).
    pub config: TenantConfig,
    /// The drivable mechanism session.
    pub session: PricingSession<TenantMechanism>,
}

impl TenantState {
    /// Builds a fresh tenant from its registration config.
    #[must_use]
    pub fn new(id: TenantId, config: TenantConfig) -> Self {
        let mechanism = EllipsoidPricing::new(LinearModel::new(config.dim), config.pricing);
        Self::with_mechanism(id, config, mechanism)
    }

    /// Builds a tenant around an explicit mechanism (the restore path, where
    /// the knowledge set comes from a snapshot instead of the initial ball).
    #[must_use]
    pub fn with_mechanism(id: TenantId, config: TenantConfig, mechanism: TenantMechanism) -> Self {
        // Serving sessions keep no regret trace (the horizon is open-ended
        // and per-tenant memory must stay O(n²) for the knowledge set, not
        // O(T)) and no latency trace (the step→observe gap would measure
        // the client's round trip; shards time their own processing).
        let options = SimulationOptions {
            trace_points: 0,
            keep_full_trace: false,
        };
        let session = PricingSession::new(mechanism, config.pricing.horizon, options)
            .without_latency_tracking();
        Self {
            id,
            config,
            session,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdm_linalg::Vector;
    use pdm_pricing::prelude::StepOutcome;

    #[test]
    fn standard_config_uses_the_paper_prior() {
        let config = TenantConfig::standard(9, 1_000);
        assert_eq!(config.dim, 9);
        assert!((config.pricing.initial_radius - 6.0).abs() < 1e-12);
        assert!(config.pricing.use_reserve);
        // Degenerate dimension is clamped.
        assert_eq!(TenantConfig::standard(0, 10).dim, 1);
    }

    #[test]
    fn fresh_tenant_serves_a_round() {
        let mut tenant = TenantState::new(TenantId(1), TenantConfig::standard(3, 100));
        let x = Vector::from_slice(&[0.5, 0.5, 0.5]);
        let quote = tenant.session.step(&x, 0.2);
        assert!(quote.posted_price.is_finite());
        let record = tenant.session.observe(StepOutcome::accept_only(true));
        assert!(record.is_some());
        assert_eq!(tenant.session.rounds_closed(), 1);
    }
}
