//! Per-tenant pricing state.
//!
//! A tenant is one independent instance of the paper's mechanism: its own
//! ellipsoidal knowledge set, its own reserve-price handling, its own
//! learning trajectory.  The service holds one [`TenantState`] per tenant,
//! sharded by [`crate::routing::shard_of`], and drives each through the
//! re-entrant [`PricingSession`] interface of `pdm-pricing`.
//!
//! Tenants come in three **market kinds**, and one service serves them all
//! side by side:
//!
//! * [`MarketKind::PostedPrice`] — the paper's posted-price loop: a quote
//!   request opens a round, an outcome report closes it.
//! * [`MarketKind::Auction`] — an eager second-price auction with a
//!   personalized reserve: one self-contained request carries the item and
//!   the bids, the tenant's [`AuctionPolicy`] quotes the reserve, the round
//!   clears and feeds back immediately (no open round to abandon).
//! * [`MarketKind::Privacy`] — the posted-price loop over an explicit data
//!   owner population with per-owner privacy-budget ledgers
//!   ([`crate::ledger::LedgerBank`]): each quote debits leakage, accrues
//!   compensation, and retires owners whose budgets run out, shrinking the
//!   sellable supply the mechanism prices.

use crate::ledger::LedgerBank;
use crate::routing::TenantId;
use pdm_auction::{
    run_auction_round, ClearedRound, EmpiricalConfig, EmpiricalReserve, StaticReserve,
};
use pdm_linalg::Vector;
use pdm_pricing::prelude::{
    DriftAwarePricing, DriftPolicy, LinearModel, PricingConfig, PricingSession, SimulationOptions,
};

/// The δ uncertainty buffer auction tenants run the paper's mechanism with.
///
/// Under auction feedback the "market value" the session observes is the
/// **top bid**, which scatters around the item's base value by the bidder
/// valuation noise — a noise-free configuration (δ = 0) would let wrong
/// cuts slice the true weights out of the knowledge set.  0.1 is the buffer
/// validated against the bench grid's valuation distributions.
pub const AUCTION_SESSION_DELTA: f64 = 0.1;

/// How an auction tenant sets its personalized reserve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AuctionPolicy {
    /// The paper's online mechanism: the tenant's [`PricingSession`] quotes
    /// the reserve and learns from censored win/lose-at-reserve feedback
    /// (the `pdm_pricing::reserve` bridge).
    Session,
    /// A fixed mark-up over the round's floor; zero mark-up is the pure
    /// reserve-constraint auction.
    Static {
        /// Mark-up added to every floor.
        markup: f64,
    },
    /// The empirical data-driven setter: a grid search over a sliding
    /// window of historical bids.
    Empirical {
        /// Window of retained `(top, second)` pairs.
        window: usize,
        /// Welfare weight of the empirical objective (0 = pure revenue).
        welfare_weight: f64,
    },
}

impl AuctionPolicy {
    /// Machine-readable policy name used in labels and the snapshot schema.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            AuctionPolicy::Session => "session",
            AuctionPolicy::Static { .. } => "static",
            AuctionPolicy::Empirical { .. } => "empirical",
        }
    }
}

/// Market parameters of a privacy tenant.  The owner population is the
/// tenant's feature dimension: coordinate `i` of a query is owner `i`'s
/// weight, so the `pdm-market` quantifier prices each owner's leakage
/// `ε_i = |w_i|·Δ/b` directly from the query vector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrivacyParams {
    /// Per-owner privacy budget: an owner whose spent ε cannot absorb the
    /// next query's leakage is retired for good (sticky exhaustion).
    pub epsilon_budget: f64,
    /// Base payment of the tanh compensation contract (must be positive).
    pub compensation_base: f64,
    /// Sensitivity of the tanh compensation contract (must be positive).
    pub compensation_sensitivity: f64,
    /// Bound Δ on how much one owner's data can move the true answer.
    pub data_range: f64,
    /// Laplace noise scale `b` sold queries are answered with.
    pub laplace_scale: f64,
}

impl Default for PrivacyParams {
    /// Unit-scale defaults: budget 1 ε per owner, a 0.1·tanh(2ε) contract,
    /// unit data range and unit noise.
    fn default() -> Self {
        Self {
            epsilon_budget: 1.0,
            compensation_base: 0.1,
            compensation_sensitivity: 2.0,
            data_range: 1.0,
            laplace_scale: 1.0,
        }
    }
}

/// Which market a tenant trades in.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MarketKind {
    /// The paper's posted-price loop (quote → outcome).
    PostedPrice,
    /// Eager second-price auction with a personalized reserve.
    Auction(AuctionPolicy),
    /// The posted-price loop over a budgeted data-owner population with
    /// per-owner privacy ledgers and compensation accounting.
    Privacy(PrivacyParams),
}

impl MarketKind {
    /// Whether this kind serves plain posted-price (quote/observe)
    /// requests with no ledger accounting.
    #[must_use]
    pub fn is_posted(self) -> bool {
        matches!(self, MarketKind::PostedPrice)
    }

    /// The auction policy, when this is an auction tenant.
    #[must_use]
    pub fn auction_policy(self) -> Option<AuctionPolicy> {
        match self {
            MarketKind::Auction(policy) => Some(policy),
            MarketKind::PostedPrice | MarketKind::Privacy(_) => None,
        }
    }

    /// The privacy-market parameters, when this is a privacy tenant.
    #[must_use]
    pub fn privacy_params(self) -> Option<PrivacyParams> {
        match self {
            MarketKind::Privacy(params) => Some(params),
            MarketKind::PostedPrice | MarketKind::Auction(_) => None,
        }
    }
}

/// Configuration a tenant is registered with.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantConfig {
    /// Feature dimension of the tenant's queries.
    pub dim: usize,
    /// Mechanism configuration (knowledge-set radius, horizon, reserve and
    /// uncertainty switches).
    pub pricing: PricingConfig,
    /// The market this tenant trades in.
    pub market: MarketKind,
    /// How the tenant's mechanism reacts to a drifting market:
    /// [`DriftPolicy::Static`] is the paper's stationary mechanism
    /// (bit-identical to the pre-drift service), `Restart` re-initialises
    /// the knowledge set when the surprisal detector fires, `Discounted`
    /// inflates it after every round that applied no cut.
    pub drift: DriftPolicy,
}

impl TenantConfig {
    /// A posted-price tenant with the paper's defaults: reserve enabled, no
    /// uncertainty buffer, knowledge-set radius `2√n` (the broker prior of
    /// Section V-A), stationary (no drift handling).
    #[must_use]
    pub fn standard(dim: usize, horizon: usize) -> Self {
        let dim = dim.max(1);
        Self {
            dim,
            pricing: PricingConfig::new(2.0 * (dim as f64).sqrt(), horizon),
            market: MarketKind::PostedPrice,
            drift: DriftPolicy::Static,
        }
    }

    /// An auction tenant under the given reserve policy.  The session runs
    /// with the [`AUCTION_SESSION_DELTA`] uncertainty buffer — bid noise is
    /// part of the auction market model, not an option.
    #[must_use]
    pub fn auction(dim: usize, horizon: usize, policy: AuctionPolicy) -> Self {
        let mut config = Self::standard(dim, horizon);
        config.pricing = config.pricing.with_uncertainty(AUCTION_SESSION_DELTA);
        config.market = MarketKind::Auction(policy);
        config
    }

    /// A privacy tenant over a population of `dim` data owners: the
    /// paper's posted-price loop, with per-owner privacy-budget ledgers
    /// debited on every sale and the sellable supply shrinking as owners
    /// exhaust their budgets.
    #[must_use]
    pub fn privacy(dim: usize, horizon: usize, params: PrivacyParams) -> Self {
        let mut config = Self::standard(dim, horizon);
        config.market = MarketKind::Privacy(params);
        config
    }

    /// Attaches a drift policy to the tenant's mechanism (posted-price and
    /// session-learned auction tenants alike).
    #[must_use]
    pub fn with_drift(mut self, drift: DriftPolicy) -> Self {
        self.drift = drift;
        self
    }
}

/// The mechanism type every tenant session drives: the paper's ellipsoid
/// engine over the linear market-value model, wrapped with the tenant's
/// drift policy ([`DriftPolicy::Static`] delegates bit-for-bit).
pub type TenantMechanism = DriftAwarePricing<LinearModel>;

/// The live state of one tenant: its pricing session plus the registration
/// config (kept for snapshots), plus the learned state of a non-session
/// auction policy.
#[derive(Debug, Clone)]
pub struct TenantState {
    /// The tenant's id.
    pub id: TenantId,
    /// The registration config (needed to rebuild the tenant on restore).
    pub config: TenantConfig,
    /// The drivable mechanism session.  Auction tenants under the
    /// [`AuctionPolicy::Session`] policy learn through it; static/empirical
    /// auction tenants keep it untouched at its prior.
    pub session: PricingSession<TenantMechanism>,
    /// The learned state of an [`AuctionPolicy::Empirical`] tenant.
    pub empirical: Option<EmpiricalReserve>,
    /// The privacy-budget ledger bank of a [`MarketKind::Privacy`] tenant.
    pub privacy: Option<LedgerBank>,
}

impl TenantState {
    /// The ledger bank of a privacy tenant, shared.
    ///
    /// # Panics
    /// Only the privacy paths call this; a privacy tenant without its bank
    /// is a construction bug worth aborting on, not a recoverable error.
    pub(crate) fn bank(&self) -> &LedgerBank {
        self.privacy
            .as_ref()
            // pdm-lint: allow(no-unwrap-in-lib) reason="construction invariant: every MarketKind::Privacy tenant is built with a bank; the shard and snapshot privacy paths run only for those"
            .expect("privacy tenants carry a ledger bank")
    }

    /// The ledger bank of a privacy tenant, exclusive (the quote/settle
    /// charge paths).  Same invariant as [`TenantState::bank`].
    pub(crate) fn bank_mut(&mut self) -> &mut LedgerBank {
        self.privacy
            .as_mut()
            // pdm-lint: allow(no-unwrap-in-lib) reason="construction invariant: every MarketKind::Privacy tenant is built with a bank; the shard and snapshot privacy paths run only for those"
            .expect("privacy tenants carry a ledger bank")
    }

    /// Builds a fresh tenant from its registration config.
    #[must_use]
    pub fn new(id: TenantId, config: TenantConfig) -> Self {
        let mechanism =
            DriftAwarePricing::new(LinearModel::new(config.dim), config.pricing, config.drift);
        Self::with_mechanism(id, config, mechanism)
    }

    /// Builds a tenant around an explicit mechanism (the restore path, where
    /// the knowledge set comes from a snapshot instead of the initial ball).
    #[must_use]
    pub fn with_mechanism(id: TenantId, config: TenantConfig, mechanism: TenantMechanism) -> Self {
        // Serving sessions keep no regret trace (the horizon is open-ended
        // and per-tenant memory must stay O(n²) for the knowledge set, not
        // O(T)) and no latency trace (the step→observe gap would measure
        // the client's round trip; shards time their own processing).
        let options = SimulationOptions {
            trace_points: 0,
            keep_full_trace: false,
        };
        let session = PricingSession::new(mechanism, config.pricing.horizon, options)
            .without_latency_tracking();
        let empirical = match config.market {
            MarketKind::Auction(AuctionPolicy::Empirical {
                window,
                welfare_weight,
            }) => Some(EmpiricalReserve::new(EmpiricalConfig {
                window: window.max(1),
                welfare_weight,
            })),
            _ => None,
        };
        let privacy = config
            .market
            .privacy_params()
            .map(|params| LedgerBank::new(config.dim, params));
        Self {
            id,
            config,
            session,
            empirical,
            privacy,
        }
    }

    /// Approximate resident memory of this tenant: the pricing session
    /// (knowledge set + bookkeeping, via
    /// [`PricingSession::memory_footprint_bytes`]) plus the empirical
    /// setter's bid-history window when the tenant carries one.  The
    /// cold-tenant pager reads this to report memory-per-tenant.
    #[must_use]
    pub fn memory_footprint_bytes(&self) -> usize {
        let empirical = self
            .empirical
            .as_ref()
            .map_or(0, |setter| setter.history().count() * 2 * 8);
        let ledgers = self
            .privacy
            .as_ref()
            .map_or(0, LedgerBank::memory_footprint_bytes);
        std::mem::size_of::<Self>() + self.session.memory_footprint_bytes() + empirical + ledgers
    }

    /// Settles one auction round through the tenant's reserve policy —
    /// quote, clear, feed back — via the shared
    /// [`pdm_auction::run_auction_round`] path, so the sharded service and
    /// a serial replay execute bit-identical arithmetic.
    ///
    /// Returns `None` when the tenant is not an auction tenant.
    pub fn serve_auction(
        &mut self,
        features: &Vector,
        floor: f64,
        bids: &[f64],
    ) -> Option<ClearedRound> {
        let policy = self.config.market.auction_policy()?;
        Some(match policy {
            AuctionPolicy::Session => run_auction_round(&mut self.session, features, floor, bids),
            AuctionPolicy::Static { markup } => {
                // The policy is stateless: rebuilding it per round is free
                // and keeps the tenant's persistent state minimal.
                run_auction_round(&mut StaticReserve::new(markup), features, floor, bids)
            }
            AuctionPolicy::Empirical { .. } => {
                let setter = self
                    .empirical
                    .as_mut()
                    // pdm-lint: allow(no-unwrap-in-lib) reason="construction invariant: AuctionPolicy::Empirical tenants are built with their setter; this arm runs only for them"
                    .expect("empirical tenants carry their setter state");
                run_auction_round(setter, features, floor, bids)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdm_linalg::Vector;
    use pdm_pricing::prelude::StepOutcome;

    #[test]
    fn standard_config_uses_the_paper_prior() {
        let config = TenantConfig::standard(9, 1_000);
        assert_eq!(config.dim, 9);
        assert!((config.pricing.initial_radius - 6.0).abs() < 1e-12);
        assert!(config.pricing.use_reserve);
        assert_eq!(config.market, MarketKind::PostedPrice);
        assert!(config.market.is_posted());
        // Degenerate dimension is clamped.
        assert_eq!(TenantConfig::standard(0, 10).dim, 1);
    }

    #[test]
    fn auction_config_applies_the_delta_buffer() {
        let config = TenantConfig::auction(4, 500, AuctionPolicy::Session);
        assert_eq!(config.pricing.delta, AUCTION_SESSION_DELTA);
        assert_eq!(config.market.auction_policy(), Some(AuctionPolicy::Session));
        assert!(!config.market.is_posted());
        assert_eq!(AuctionPolicy::Session.name(), "session");
        assert_eq!(AuctionPolicy::Static { markup: 0.0 }.name(), "static");
    }

    #[test]
    fn fresh_tenant_serves_a_round() {
        let mut tenant = TenantState::new(TenantId(1), TenantConfig::standard(3, 100));
        let x = Vector::from_slice(&[0.5, 0.5, 0.5]);
        let quote = tenant.session.step(&x, 0.2);
        assert!(quote.posted_price.is_finite());
        let record = tenant.session.observe(StepOutcome::accept_only(true));
        assert!(record.is_some());
        assert_eq!(tenant.session.rounds_closed(), 1);
        // A posted-price tenant has no auction path.
        assert!(tenant.serve_auction(&x, 0.2, &[1.0]).is_none());
    }

    #[test]
    fn auction_tenants_settle_rounds_per_policy() {
        let x = Vector::from_slice(&[0.5, 0.5, 0.5]);
        let bids = [0.9, 0.4];

        let mut fixed = TenantState::new(
            TenantId(2),
            TenantConfig::auction(3, 100, AuctionPolicy::Static { markup: 0.0 }),
        );
        let cleared = fixed.serve_auction(&x, 0.3, &bids).expect("auction tenant");
        assert_eq!(cleared.reserve, 0.3);
        assert!(cleared.result.sold());
        assert_eq!(cleared.result.price, 0.4);
        assert_eq!(
            fixed.session.rounds_closed(),
            0,
            "static policy never steps"
        );

        let mut learned = TenantState::new(
            TenantId(3),
            TenantConfig::auction(3, 100, AuctionPolicy::Session),
        );
        let cleared = learned
            .serve_auction(&x, 0.3, &bids)
            .expect("auction tenant");
        assert!(cleared.reserve >= 0.3);
        assert_eq!(learned.session.rounds_closed(), 1, "session policy learns");

        let mut empirical = TenantState::new(
            TenantId(4),
            TenantConfig::auction(
                3,
                100,
                AuctionPolicy::Empirical {
                    window: 8,
                    welfare_weight: 0.0,
                },
            ),
        );
        let cleared = empirical
            .serve_auction(&x, 0.3, &bids)
            .expect("auction tenant");
        assert_eq!(cleared.reserve, 0.3, "unfitted empirical quotes the floor");
        assert_eq!(
            empirical.empirical.as_ref().unwrap().history().count(),
            1,
            "uncensored feedback feeds the window"
        );
    }
}
