//! The log-linear hedonic model `log v = x^T θ*` (Section IV-A).
//!
//! This is the model the paper fits to the Airbnb accommodation-rental data:
//! the logarithm of the lodging price is linear in the listing's features.

use super::MarketValueModel;
use pdm_linalg::Vector;
use serde::{Deserialize, Serialize};

/// Smallest market value accepted by the inverse link; prices at or below
/// zero are clamped here so `ln` stays finite.
const MIN_VALUE: f64 = 1e-12;

/// Log-linear model: identity feature map, exponential link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogLinearModel {
    dim: usize,
}

impl LogLinearModel {
    /// Creates a log-linear model over `dim`-dimensional feature vectors.
    ///
    /// # Panics
    /// Panics when `dim == 0`.
    #[must_use]
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "feature dimension must be positive");
        Self { dim }
    }
}

impl MarketValueModel for LogLinearModel {
    fn name(&self) -> &'static str {
        "log-linear"
    }

    fn input_dim(&self) -> usize {
        self.dim
    }

    fn mapped_dim(&self) -> usize {
        self.dim
    }

    fn map_features(&self, features: &Vector) -> Vector {
        features.clone()
    }

    fn map_features_into(&self, features: &Vector, out: &mut Vector) {
        out.copy_from(features);
    }

    fn link(&self, z: f64) -> f64 {
        z.exp()
    }

    fn inverse_link(&self, value: f64) -> f64 {
        value.max(MIN_VALUE).ln()
    }

    fn lipschitz_constant(&self) -> f64 {
        // exp is not globally Lipschitz; callers provide the bound on the
        // link-value range via `PricingConfig`, and this constant covers link
        // values up to ln(L) = 3 (values up to ≈ 20), matching the magnitude
        // of the Airbnb log-price targets.
        3.0_f64.exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponential_link() {
        let m = LogLinearModel::new(2);
        assert!((m.link(0.0) - 1.0).abs() < 1e-12);
        assert!((m.link(1.0) - std::f64::consts::E).abs() < 1e-12);
        assert!((m.inverse_link(std::f64::consts::E) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_link_clamps_non_positive_values() {
        let m = LogLinearModel::new(2);
        assert!(m.inverse_link(0.0).is_finite());
        assert!(m.inverse_link(-5.0).is_finite());
    }

    #[test]
    fn value_exponentiates_dot_product() {
        let m = LogLinearModel::new(2);
        let x = Vector::from_slice(&[1.0, 2.0]);
        let theta = Vector::from_slice(&[0.1, 0.2]);
        assert!((m.value(&x, &theta) - 0.5_f64.exp()).abs() < 1e-12);
    }
}
