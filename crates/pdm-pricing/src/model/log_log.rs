//! The log-log hedonic model `log v = Σ_i log(x_i) θ*_i` (Section IV-A).
//!
//! Both the market value and the features enter in logarithms; the weight
//! vector therefore collects price *elasticities*, the standard reading in
//! hedonic real-estate studies and in loan-rate modelling.

use super::MarketValueModel;
use pdm_linalg::Vector;
use serde::{Deserialize, Serialize};

/// Features at or below zero are clamped to this floor before taking the
/// logarithm, so records with zero-valued amenities stay usable.
const MIN_FEATURE: f64 = 1e-9;
/// Floor on market values passed to the inverse link.
const MIN_VALUE: f64 = 1e-12;

/// Log-log model: elementwise-logarithm feature map, exponential link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogLogModel {
    dim: usize,
}

impl LogLogModel {
    /// Creates a log-log model over `dim`-dimensional feature vectors.
    ///
    /// # Panics
    /// Panics when `dim == 0`.
    #[must_use]
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "feature dimension must be positive");
        Self { dim }
    }
}

impl MarketValueModel for LogLogModel {
    fn name(&self) -> &'static str {
        "log-log"
    }

    fn input_dim(&self) -> usize {
        self.dim
    }

    fn mapped_dim(&self) -> usize {
        self.dim
    }

    fn map_features(&self, features: &Vector) -> Vector {
        features.map(|x| x.max(MIN_FEATURE).ln())
    }

    fn map_features_into(&self, features: &Vector, out: &mut Vector) {
        out.copy_from(features);
        for x in out.as_mut_slice() {
            *x = x.max(MIN_FEATURE).ln();
        }
    }

    fn link(&self, z: f64) -> f64 {
        z.exp()
    }

    fn inverse_link(&self, value: f64) -> f64 {
        value.max(MIN_VALUE).ln()
    }

    fn lipschitz_constant(&self) -> f64 {
        3.0_f64.exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_map_takes_logs() {
        let m = LogLogModel::new(3);
        let x = Vector::from_slice(&[1.0, std::f64::consts::E, 10.0]);
        let mapped = m.map_features(&x);
        assert!((mapped[0]).abs() < 1e-12);
        assert!((mapped[1] - 1.0).abs() < 1e-12);
        assert!((mapped[2] - 10.0_f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn non_positive_features_are_clamped() {
        let m = LogLogModel::new(2);
        let x = Vector::from_slice(&[0.0, -3.0]);
        let mapped = m.map_features(&x);
        assert!(mapped.is_finite());
    }

    #[test]
    fn elasticity_interpretation() {
        // With θ = (2, 0), doubling the first feature multiplies the value by 4.
        let m = LogLogModel::new(2);
        let theta = Vector::from_slice(&[2.0, 0.0]);
        let v1 = m.value(&Vector::from_slice(&[1.0, 5.0]), &theta);
        let v2 = m.value(&Vector::from_slice(&[2.0, 5.0]), &theta);
        assert!((v2 / v1 - 4.0).abs() < 1e-9);
    }
}
