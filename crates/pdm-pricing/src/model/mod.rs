//! Market value models (Section II-B and IV-A of the paper).
//!
//! The market value of the product in round `t` is assumed to be
//!
//! ```text
//! v_t = g( φ(x_t)^T θ* ) ⊕ uncertainty
//! ```
//!
//! where `φ : Rⁿ → Rᵐ` is a public feature map, `g : R → R` is a public
//! non-decreasing continuous *link* function, and only the weight vector `θ*`
//! is unknown to the data broker.  The posted-price mechanism operates
//! entirely in the *link space* (the scalar `z = φ(x)^T θ`), converting
//! link-space prices to market prices with `g` and market-space reserve
//! prices back with `g⁻¹`.
//!
//! | model       | φ               | g                     | typical use in the paper |
//! |-------------|-----------------|-----------------------|--------------------------|
//! | linear      | identity        | identity              | noisy linear queries     |
//! | log-linear  | identity        | exp                   | accommodation rental     |
//! | log-log     | elementwise ln  | exp                   | hedonic pricing          |
//! | logistic    | identity        | sigmoid               | impressions / CTR        |
//! | kernelized  | kernel features | identity              | impressions (non-linear) |

mod kernel;
mod linear;
mod log_linear;
mod log_log;
mod logistic;

pub use kernel::{KernelizedModel, MercerKernel};
pub use linear::LinearModel;
pub use log_linear::LogLinearModel;
pub use log_log::LogLogModel;
pub use logistic::LogisticModel;

use pdm_linalg::Vector;

/// A market value model `v = g(φ(x)^T θ*)`.
///
/// Implementations must guarantee that [`MarketValueModel::link`] is
/// non-decreasing and continuous and that
/// [`MarketValueModel::inverse_link`] is its (generalised) inverse, because
/// the mechanism relies on `g(a) ≤ g(b) ⇔ a ≤ b` to translate accept/reject
/// feedback between the market space and the link space.
pub trait MarketValueModel: Send + Sync {
    /// Short human-readable name used in reports.
    fn name(&self) -> &'static str;

    /// Dimension of the raw feature vectors `x`.
    fn input_dim(&self) -> usize;

    /// Dimension of the mapped feature vectors `φ(x)` (equals the dimension
    /// of the weight vector the mechanism must learn).
    fn mapped_dim(&self) -> usize;

    /// The feature map `φ`.
    fn map_features(&self, features: &Vector) -> Vector;

    /// The feature map `φ`, written into a caller-provided buffer.
    ///
    /// The pricing hot loop maps the same round's features twice (once for
    /// the quote, once for the feedback cut); this variant lets mechanisms
    /// reuse a scratch buffer instead of allocating a fresh vector per call.
    /// The default implementation simply delegates to
    /// [`MarketValueModel::map_features`]; models whose map is elementwise
    /// override it to be allocation-free.
    fn map_features_into(&self, features: &Vector, out: &mut Vector) {
        *out = self.map_features(features);
    }

    /// The link function `g` (non-decreasing, continuous).
    fn link(&self, z: f64) -> f64;

    /// The inverse of the link, used to pull market-space reserve prices into
    /// the link space.  Values outside the range of `g` are clamped to the
    /// nearest attainable point.
    fn inverse_link(&self, value: f64) -> f64;

    /// Evaluates the deterministic part of the market value,
    /// `g(φ(x)^T θ)`.
    ///
    /// # Panics
    /// Panics when `theta` does not match [`MarketValueModel::mapped_dim`].
    fn value(&self, features: &Vector, theta: &Vector) -> f64 {
        self.link(self.link_value(features, theta))
    }

    /// Evaluates the link-space value `φ(x)^T θ`.
    ///
    /// # Panics
    /// Panics when `theta` does not match [`MarketValueModel::mapped_dim`].
    fn link_value(&self, features: &Vector, theta: &Vector) -> f64 {
        let mapped = self.map_features(features);
        mapped
            .dot(theta)
            // pdm-lint: allow(no-unwrap-in-lib) reason="theta is sized to the mapped dimension by the fitting routine that produced it"
            .expect("theta length must equal the model's mapped dimension")
    }

    /// A Lipschitz constant of `g` on the range of link values the
    /// application produces; used by the regret bound of Theorem 2 and by the
    /// default exploration threshold heuristic.
    fn lipschitz_constant(&self) -> f64 {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every bundled model must satisfy g(g⁻¹(v)) ≈ v on its value range and
    /// be non-decreasing.
    #[test]
    fn link_inverse_roundtrip_and_monotonicity() {
        let models: Vec<Box<dyn MarketValueModel>> = vec![
            Box::new(LinearModel::new(3)),
            Box::new(LogLinearModel::new(3)),
            Box::new(LogLogModel::new(3)),
            Box::new(LogisticModel::new(3)),
        ];
        for model in &models {
            let zs = [-3.0, -1.0, -0.1, 0.0, 0.4, 1.5, 3.0];
            let mut prev = f64::NEG_INFINITY;
            for &z in &zs {
                let v = model.link(z);
                assert!(v >= prev, "{} link must be non-decreasing", model.name());
                prev = v;
                let z_back = model.inverse_link(v);
                assert!(
                    (model.link(z_back) - v).abs() < 1e-9,
                    "{}: g(g⁻¹(v)) != v",
                    model.name()
                );
            }
        }
    }

    #[test]
    fn value_composes_map_link_and_dot() {
        let model = LogLinearModel::new(2);
        let x = Vector::from_slice(&[0.5, 1.5]);
        let theta = Vector::from_slice(&[1.0, 2.0]);
        let expected = (0.5 + 3.0_f64).exp();
        assert!((model.value(&x, &theta) - expected).abs() < 1e-12);
        assert!((model.link_value(&x, &theta) - 3.5).abs() < 1e-12);
    }
}
