//! The kernelized market value model (Section IV-A).
//!
//! The paper's kernelized model writes `v_t = Σ_{k<t} K(x_t, x_k) θ*_k`,
//! i.e. the weight vector lives on the (growing) set of previously seen
//! feature vectors.  A growing dimension is incompatible with a fixed
//! ellipsoid knowledge set, so — as is standard for online kernel methods —
//! we fix a set of *anchor* points up front (a Nyström-style approximation)
//! and learn weights over the kernel evaluations against those anchors:
//!
//! ```text
//! φ(x) = ( K(x, a_1), …, K(x, a_m) ),        v = φ(x)^T θ*.
//! ```
//!
//! This keeps the online mechanism unchanged while capturing the same
//! non-linear dependency on the raw features.  The substitution is recorded
//! in DESIGN.md.

use super::MarketValueModel;
use pdm_linalg::Vector;
use serde::{Deserialize, Serialize};

/// The Mercer kernels supported by [`KernelizedModel`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MercerKernel {
    /// `K(x, y) = x·y`
    Linear,
    /// `K(x, y) = (x·y + coef0)^degree`
    Polynomial {
        /// Polynomial degree (≥ 1).
        degree: u32,
        /// Additive constant inside the power.
        coef0: f64,
    },
    /// `K(x, y) = exp(−gamma · ‖x − y‖²)`
    Rbf {
        /// Bandwidth parameter (> 0).
        gamma: f64,
    },
}

impl MercerKernel {
    /// Evaluates the kernel on a pair of points.
    ///
    /// # Panics
    /// Panics when the two points have different dimensions.
    #[must_use]
    pub fn evaluate(&self, x: &Vector, y: &Vector) -> f64 {
        match *self {
            // pdm-lint: allow(no-unwrap-in-lib) reason="kernel arguments are dimension-checked at model entry before any kernel evaluation"
            MercerKernel::Linear => x.dot(y).expect("kernel arguments must share a dimension"),
            MercerKernel::Polynomial { degree, coef0 } => {
                // pdm-lint: allow(no-unwrap-in-lib) reason="kernel arguments are dimension-checked at model entry before any kernel evaluation"
                let base = x.dot(y).expect("kernel arguments must share a dimension") + coef0;
                // pdm-lint: allow(no-lossy-cast) reason="the polynomial degree is a small kernel hyper-parameter (single digits in every config); i32 cannot truncate it"
                base.powi(degree as i32)
            }
            MercerKernel::Rbf { gamma } => {
                let d = x
                    .distance(y)
                    // pdm-lint: allow(no-unwrap-in-lib) reason="kernel arguments are dimension-checked at model entry before any kernel evaluation"
                    .expect("kernel arguments must share a dimension");
                (-gamma * d * d).exp()
            }
        }
    }
}

/// Kernelized model over a fixed anchor set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelizedModel {
    input_dim: usize,
    anchors: Vec<Vector>,
    kernel: MercerKernel,
}

impl KernelizedModel {
    /// Creates a kernelized model with the given anchors.
    ///
    /// # Panics
    /// Panics when the anchor list is empty or the anchors have inconsistent
    /// dimensions.
    #[must_use]
    pub fn new(anchors: Vec<Vector>, kernel: MercerKernel) -> Self {
        assert!(
            !anchors.is_empty(),
            "kernelized model requires at least one anchor"
        );
        let input_dim = anchors[0].len();
        assert!(
            anchors.iter().all(|a| a.len() == input_dim),
            "anchors must share a dimension"
        );
        Self {
            input_dim,
            anchors,
            kernel,
        }
    }

    /// The anchor points.
    #[must_use]
    pub fn anchors(&self) -> &[Vector] {
        &self.anchors
    }

    /// The kernel in use.
    #[must_use]
    pub fn kernel(&self) -> MercerKernel {
        self.kernel
    }
}

impl MarketValueModel for KernelizedModel {
    fn name(&self) -> &'static str {
        "kernelized"
    }

    fn input_dim(&self) -> usize {
        self.input_dim
    }

    fn mapped_dim(&self) -> usize {
        self.anchors.len()
    }

    fn map_features(&self, features: &Vector) -> Vector {
        Vector::from_fn(self.anchors.len(), |i| {
            self.kernel.evaluate(features, &self.anchors[i])
        })
    }

    fn link(&self, z: f64) -> f64 {
        z
    }

    fn inverse_link(&self, value: f64) -> f64 {
        value
    }

    fn lipschitz_constant(&self) -> f64 {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn anchors() -> Vec<Vector> {
        vec![
            Vector::from_slice(&[0.0, 0.0]),
            Vector::from_slice(&[1.0, 0.0]),
            Vector::from_slice(&[0.0, 1.0]),
        ]
    }

    #[test]
    fn kernel_evaluations() {
        let x = Vector::from_slice(&[1.0, 2.0]);
        let y = Vector::from_slice(&[3.0, 4.0]);
        assert!((MercerKernel::Linear.evaluate(&x, &y) - 11.0).abs() < 1e-12);
        let poly = MercerKernel::Polynomial {
            degree: 2,
            coef0: 1.0,
        };
        assert!((poly.evaluate(&x, &y) - 144.0).abs() < 1e-12);
        let rbf = MercerKernel::Rbf { gamma: 0.5 };
        let d2 = 8.0_f64;
        assert!((rbf.evaluate(&x, &y) - (-0.5 * d2).exp()).abs() < 1e-12);
    }

    #[test]
    fn rbf_kernel_is_one_at_identical_points() {
        let rbf = MercerKernel::Rbf { gamma: 2.0 };
        let x = Vector::from_slice(&[0.3, -0.7]);
        assert!((rbf.evaluate(&x, &x) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mapped_dimension_equals_anchor_count() {
        let m = KernelizedModel::new(anchors(), MercerKernel::Rbf { gamma: 1.0 });
        assert_eq!(m.input_dim(), 2);
        assert_eq!(m.mapped_dim(), 3);
        let phi = m.map_features(&Vector::from_slice(&[0.0, 0.0]));
        assert_eq!(phi.len(), 3);
        assert!((phi[0] - 1.0).abs() < 1e-12); // K(x, x) for the RBF kernel
    }

    #[test]
    fn value_is_weighted_kernel_sum() {
        let m = KernelizedModel::new(anchors(), MercerKernel::Linear);
        let theta = Vector::from_slice(&[1.0, 2.0, 3.0]);
        let x = Vector::from_slice(&[1.0, 1.0]);
        // φ(x) = (0, 1, 1) under the linear kernel with these anchors.
        assert!((m.value(&x, &theta) - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one anchor")]
    fn empty_anchor_set_rejected() {
        let _ = KernelizedModel::new(vec![], MercerKernel::Linear);
    }
}
