//! The logistic market value model used for impression pricing (Section IV-A
//! and the Avazu application of Section V-C).
//!
//! The market value of an impression is its click-through rate, modelled as a
//! sigmoid of a linear score.  The paper writes the sigmoid as
//! `1/(1 + exp(x^T θ*))`; because the framework requires a *non-decreasing*
//! link, we use the standard increasing parameterisation
//! `σ(z) = 1/(1 + exp(−z))` (the two differ only by the sign convention on
//! `θ*`).

use super::MarketValueModel;
use pdm_linalg::Vector;
use serde::{Deserialize, Serialize};

/// CTR values are clamped into `[CLAMP, 1 − CLAMP]` before applying the logit
/// inverse link so reserve prices of exactly 0 or 1 stay finite.
const CLAMP: f64 = 1e-9;

/// Logistic model: identity feature map, sigmoid link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogisticModel {
    dim: usize,
}

impl LogisticModel {
    /// Creates a logistic model over `dim`-dimensional feature vectors.
    ///
    /// # Panics
    /// Panics when `dim == 0`.
    #[must_use]
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "feature dimension must be positive");
        Self { dim }
    }

    /// The sigmoid `σ(z) = 1 / (1 + e^{−z})`, exposed for reuse by the
    /// FTRL-Proximal learner.
    #[must_use]
    pub fn sigmoid(z: f64) -> f64 {
        if z >= 0.0 {
            1.0 / (1.0 + (-z).exp())
        } else {
            let e = z.exp();
            e / (1.0 + e)
        }
    }
}

impl MarketValueModel for LogisticModel {
    fn name(&self) -> &'static str {
        "logistic"
    }

    fn input_dim(&self) -> usize {
        self.dim
    }

    fn mapped_dim(&self) -> usize {
        self.dim
    }

    fn map_features(&self, features: &Vector) -> Vector {
        features.clone()
    }

    fn map_features_into(&self, features: &Vector, out: &mut Vector) {
        out.copy_from(features);
    }

    fn link(&self, z: f64) -> f64 {
        Self::sigmoid(z)
    }

    fn inverse_link(&self, value: f64) -> f64 {
        let v = value.clamp(CLAMP, 1.0 - CLAMP);
        (v / (1.0 - v)).ln()
    }

    fn lipschitz_constant(&self) -> f64 {
        // σ'(z) ≤ 1/4 everywhere.
        0.25
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_basic_values() {
        assert!((LogisticModel::sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(LogisticModel::sigmoid(10.0) > 0.9999);
        assert!(LogisticModel::sigmoid(-10.0) < 0.0001);
        // Numerically stable for extreme arguments.
        assert!(LogisticModel::sigmoid(-800.0) >= 0.0);
        assert!(LogisticModel::sigmoid(800.0) <= 1.0);
    }

    #[test]
    fn logit_inverts_sigmoid() {
        let m = LogisticModel::new(4);
        for &z in &[-3.0, -0.5, 0.0, 1.2, 4.0] {
            let v = m.link(z);
            assert!((m.inverse_link(v) - z).abs() < 1e-7);
        }
    }

    #[test]
    fn inverse_link_clamps_boundaries() {
        let m = LogisticModel::new(4);
        assert!(m.inverse_link(0.0).is_finite());
        assert!(m.inverse_link(1.0).is_finite());
        assert!(m.inverse_link(-0.3).is_finite());
        assert!(m.inverse_link(1.7).is_finite());
    }

    #[test]
    fn values_are_valid_ctrs() {
        let m = LogisticModel::new(3);
        let theta = Vector::from_slice(&[2.0, -1.0, 0.5]);
        for raw in [[1.0, 0.0, 0.0], [0.0, 5.0, 0.0], [1.0, 1.0, 1.0]] {
            let v = m.value(&Vector::from_slice(&raw), &theta);
            assert!((0.0..=1.0).contains(&v));
        }
    }
}
