//! The fundamental linear market value model `v = x^T θ*` (Section III).

use super::MarketValueModel;
use pdm_linalg::Vector;
use serde::{Deserialize, Serialize};

/// Linear model: identity feature map, identity link.
///
/// This is the model under which the paper develops Algorithms 1 and 2 and
/// under which the noisy-linear-query application (Section V-A) is evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinearModel {
    dim: usize,
}

impl LinearModel {
    /// Creates a linear model over `dim`-dimensional feature vectors.
    ///
    /// # Panics
    /// Panics when `dim == 0`.
    #[must_use]
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "feature dimension must be positive");
        Self { dim }
    }
}

impl MarketValueModel for LinearModel {
    fn name(&self) -> &'static str {
        "linear"
    }

    fn input_dim(&self) -> usize {
        self.dim
    }

    fn mapped_dim(&self) -> usize {
        self.dim
    }

    fn map_features(&self, features: &Vector) -> Vector {
        features.clone()
    }

    fn map_features_into(&self, features: &Vector, out: &mut Vector) {
        out.copy_from(features);
    }

    fn link(&self, z: f64) -> f64 {
        z
    }

    fn inverse_link(&self, value: f64) -> f64 {
        value
    }

    fn lipschitz_constant(&self) -> f64 {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_map_and_link() {
        let m = LinearModel::new(3);
        assert_eq!(m.input_dim(), 3);
        assert_eq!(m.mapped_dim(), 3);
        let x = Vector::from_slice(&[1.0, -2.0, 0.5]);
        assert_eq!(m.map_features(&x), x);
        assert_eq!(m.link(1.25), 1.25);
        assert_eq!(m.inverse_link(-0.5), -0.5);
    }

    #[test]
    fn value_is_dot_product() {
        let m = LinearModel::new(2);
        let x = Vector::from_slice(&[2.0, 3.0]);
        let theta = Vector::from_slice(&[0.5, 1.0]);
        assert!((m.value(&x, &theta) - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dimension_rejected() {
        let _ = LinearModel::new(0);
    }
}
