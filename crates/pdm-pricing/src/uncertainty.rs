//! Market value uncertainty (Section III-B).
//!
//! The random perturbation `δ_t` added to each market value is assumed to be
//! σ-sub-Gaussian.  Algorithm 2 absorbs it with a fixed *buffer*
//! `δ = √(2 ln C) · σ · ln T` that bounds every `|δ_t|` simultaneously with
//! probability at least `1 − 1/T` (Eq. 5–6 of the paper).
//!
//! [`NoiseModel`] enumerates the sub-Gaussian distributions the evaluation
//! uses; [`UncertaintyBudget`] packages the buffer computation so mechanisms
//! and environments agree on the same δ.

use pdm_linalg::sampling;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A sub-Gaussian noise distribution for the market-value perturbation `δ_t`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum NoiseModel {
    /// No uncertainty: `δ_t = 0` (the setting of Algorithm 1 / 1*).
    None,
    /// Gaussian noise with the given standard deviation.
    Gaussian {
        /// Standard deviation σ.
        std_dev: f64,
    },
    /// Uniform noise on `[−half_width, half_width]`.
    Uniform {
        /// Half-width of the support.
        half_width: f64,
    },
    /// Rademacher noise: ±`magnitude` with equal probability.
    Rademacher {
        /// Magnitude of the two support points.
        magnitude: f64,
    },
}

impl NoiseModel {
    /// Draws one perturbation `δ_t`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            NoiseModel::None => 0.0,
            NoiseModel::Gaussian { std_dev } => sampling::normal(rng, 0.0, std_dev),
            NoiseModel::Uniform { half_width } => sampling::uniform(rng, -half_width, half_width),
            NoiseModel::Rademacher { magnitude } => sampling::rademacher(rng, magnitude),
        }
    }

    /// A sub-Gaussian parameter σ for the distribution (the smallest standard
    /// choice for each family).
    #[must_use]
    pub fn sub_gaussian_sigma(&self) -> f64 {
        match *self {
            NoiseModel::None => 0.0,
            NoiseModel::Gaussian { std_dev } => std_dev,
            // A bounded zero-mean variable on [−b, b] is b-sub-Gaussian.
            NoiseModel::Uniform { half_width } => half_width,
            NoiseModel::Rademacher { magnitude } => magnitude,
        }
    }

    /// Returns `true` when the model produces non-zero noise.
    #[must_use]
    pub fn is_noisy(&self) -> bool {
        self.sub_gaussian_sigma() > 0.0
    }
}

/// The δ buffer of Algorithm 2, derived from a noise model and a horizon.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UncertaintyBudget {
    /// The buffer δ used when posting prices and positioning cuts.
    pub delta: f64,
    /// The sub-Gaussian parameter σ the buffer was derived from.
    pub sigma: f64,
    /// The horizon `T` the buffer was derived for.
    pub horizon: usize,
}

impl UncertaintyBudget {
    /// A zero buffer (the no-uncertainty setting).
    #[must_use]
    pub fn none() -> Self {
        Self {
            delta: 0.0,
            sigma: 0.0,
            horizon: 0,
        }
    }

    /// Computes the paper's buffer `δ = √(2 ln C) · σ · ln T` with the
    /// Gaussian constant `C = 2`.
    ///
    /// For `T < 8` the union-bound argument behind the buffer is vacuous, so
    /// the horizon is clamped below at 8.
    #[must_use]
    pub fn from_noise(noise: &NoiseModel, horizon: usize) -> Self {
        let sigma = noise.sub_gaussian_sigma();
        let t = horizon.max(8) as f64;
        let c: f64 = 2.0;
        Self {
            delta: (2.0 * c.ln()).sqrt() * sigma * t.ln(),
            sigma,
            horizon,
        }
    }

    /// Builds a budget from an explicit δ (used when reproducing the paper's
    /// evaluation, which fixes δ = 0.01 regardless of n and T).
    #[must_use]
    pub fn from_delta(delta: f64) -> Self {
        Self {
            delta: delta.max(0.0),
            sigma: 0.0,
            horizon: 0,
        }
    }

    /// The standard deviation an environment should use so that the paper's
    /// relation `σ = δ / (√(2 ln 2) · ln T)` holds (Section V-A).
    #[must_use]
    pub fn implied_gaussian_sigma(&self, horizon: usize) -> f64 {
        let t = (horizon.max(8)) as f64;
        self.delta / ((2.0 * 2.0_f64.ln()).sqrt() * t.ln())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdm_linalg::OnlineStats;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn none_model_is_silent() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(NoiseModel::None.sample(&mut rng), 0.0);
        assert!(!NoiseModel::None.is_noisy());
        assert_eq!(NoiseModel::None.sub_gaussian_sigma(), 0.0);
    }

    #[test]
    fn gaussian_sample_statistics() {
        let mut rng = StdRng::seed_from_u64(2);
        let model = NoiseModel::Gaussian { std_dev: 0.3 };
        let mut stats = OnlineStats::new();
        for _ in 0..30_000 {
            stats.push(model.sample(&mut rng));
        }
        assert!(stats.mean().abs() < 0.01);
        assert!((stats.population_std() - 0.3).abs() < 0.01);
        assert!(model.is_noisy());
    }

    #[test]
    fn uniform_and_rademacher_are_bounded() {
        let mut rng = StdRng::seed_from_u64(3);
        let u = NoiseModel::Uniform { half_width: 0.2 };
        let r = NoiseModel::Rademacher { magnitude: 0.1 };
        for _ in 0..1000 {
            assert!(u.sample(&mut rng).abs() <= 0.2);
            assert!((r.sample(&mut rng).abs() - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn budget_formula_matches_paper() {
        let noise = NoiseModel::Gaussian { std_dev: 0.05 };
        let horizon = 100_000;
        let budget = UncertaintyBudget::from_noise(&noise, horizon);
        let expected = (2.0 * 2.0_f64.ln()).sqrt() * 0.05 * (horizon as f64).ln();
        assert!((budget.delta - expected).abs() < 1e-12);
        assert_eq!(budget.sigma, 0.05);
    }

    #[test]
    fn budget_bounds_noise_with_high_probability() {
        // With δ computed from the formula, essentially every draw should be
        // inside [−δ, δ].
        let noise = NoiseModel::Gaussian { std_dev: 0.01 };
        let horizon = 10_000;
        let budget = UncertaintyBudget::from_noise(&noise, horizon);
        let mut rng = StdRng::seed_from_u64(4);
        let violations = (0..horizon)
            .filter(|_| noise.sample(&mut rng).abs() > budget.delta)
            .count();
        assert_eq!(
            violations, 0,
            "the δ buffer should cover all {horizon} draws"
        );
    }

    #[test]
    fn explicit_delta_and_implied_sigma_roundtrip() {
        let budget = UncertaintyBudget::from_delta(0.01);
        assert_eq!(budget.delta, 0.01);
        let sigma = budget.implied_gaussian_sigma(100_000);
        let back = UncertaintyBudget::from_noise(&NoiseModel::Gaussian { std_dev: sigma }, 100_000);
        assert!((back.delta - 0.01).abs() < 1e-9);
    }

    #[test]
    fn negative_delta_is_clamped() {
        assert_eq!(UncertaintyBudget::from_delta(-1.0).delta, 0.0);
    }

    #[test]
    fn small_horizon_is_clamped() {
        let b = UncertaintyBudget::from_noise(&NoiseModel::Gaussian { std_dev: 1.0 }, 2);
        assert!(b.delta > 0.0);
        assert!(b.delta.is_finite());
    }
}
