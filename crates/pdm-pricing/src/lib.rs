//! # pdm-pricing
//!
//! The primary contribution of Niu et al., *Online Pricing with Reserve Price
//! Constraint for Personal Data Markets* (ICDE 2020): a contextual dynamic
//! posted-price mechanism that maximises the data broker's cumulative revenue
//! while respecting a per-round reserve price (the total privacy compensation
//! owed to the data owners).
//!
//! ## What lives here
//!
//! * [`model`] — market value models: the linear model `v = x^T θ*` plus the
//!   non-linear family `v = g(φ(x)^T θ*)` (log-linear, log-log, logistic,
//!   kernelized) from Section IV-A.
//! * [`mechanism`] — the posted-price mechanisms: the ellipsoid-based
//!   Algorithm 1 / 1\* / 2 / 2\* in one configurable engine
//!   ([`mechanism::ContextualPricing`]), the one-dimensional bisection variant
//!   (Theorem 3), the risk-averse reserve-price baseline, and the exact
//!   polytope variant used for validation/ablation.
//! * [`regret`] — the single-round regret of Eq. (1), cumulative regret and
//!   regret-ratio tracking (the metrics of Figures 4–5 and Table I).
//! * [`uncertainty`] — sub-Gaussian noise models for the market value and the
//!   δ buffer of Algorithm 2.
//! * [`environment`] — round generators (synthetic linear/non-linear markets,
//!   plus the Lemma-8 adversarial sequence).
//! * [`drift`] — the non-stationarity layer: drifting-θ* markets
//!   (piecewise jumps, slow rotation, a one-shot adversarial reversal) and
//!   the drift-aware mechanism wrapper (restart on a windowed surprisal
//!   detector, or a discounted/forgetting knowledge set).
//! * [`session`] — the re-entrant `step`/`observe` loop body: one mechanism
//!   driven one query at a time, the unit the `pdm-service` serving engine
//!   shards across tenants.
//! * [`reserve`] — the auction bridge: the [`reserve::ReserveSetter`] trait
//!   a second-price auction market drives, with the blanket implementation
//!   that turns any [`session::PricingSession`] into a learned personalized
//!   reserve policy (censored win/lose-at-reserve feedback).
//! * [`simulation`] — the online trading loop tying an environment to a
//!   mechanism; a thin client of [`session`] that records regret traces,
//!   Table-I statistics, and per-round latency.
//!
//! ## Quickstart
//!
//! ```
//! use pdm_pricing::prelude::*;
//! use rand::SeedableRng;
//!
//! // A 5-dimensional linear market with mild uncertainty and reserve prices.
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let env = SyntheticLinearEnvironment::builder(5)
//!     .rounds(2_000)
//!     .reserve_fraction(0.7)
//!     .noise(NoiseModel::Gaussian { std_dev: 0.01 })
//!     .build(&mut rng);
//!
//! let config = PricingConfig::for_environment(&env, 2_000)
//!     .with_reserve(true)
//!     .with_uncertainty(0.01);
//! let mechanism = EllipsoidPricing::new(LinearModel::new(5), config);
//!
//! let outcome = Simulation::new(env, mechanism).run(&mut rng);
//! assert!(outcome.report.regret_ratio() < 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod drift;
pub mod environment;
pub mod mechanism;
pub mod model;
pub mod regret;
pub mod reserve;
pub mod session;
pub mod simulation;
pub mod uncertainty;

/// Convenient re-exports of the types most applications need.
pub mod prelude {
    pub use crate::drift::{
        DriftAwarePricing, DriftDetectorConfig, DriftKind, DriftPolicy, DriftProcess,
        DriftSchedule, DriftingLinearEnvironment, SurprisalDriftDetector,
    };
    pub use crate::environment::{
        AdversarialLemma8Environment, Environment, ReplayEnvironment, Round,
        SyntheticLinearEnvironment, SyntheticModelEnvironment,
    };
    pub use crate::mechanism::{
        ContextualPricing, EllipsoidPricing, ExactPolytopePricing, OneDimPricing,
        PostedPriceMechanism, PricingConfig, Quote, QuoteKind, ReservePriceBaseline,
    };
    pub use crate::model::{
        KernelizedModel, LinearModel, LogLinearModel, LogLogModel, LogisticModel, MarketValueModel,
        MercerKernel,
    };
    pub use crate::regret::{single_round_regret, RegretReport, RegretTracker};
    pub use crate::reserve::{ReserveFeedback, ReserveSetter};
    pub use crate::session::{
        BatchRequest, BatchResponse, ObservedRound, PricingSession, StepOutcome,
    };
    pub use crate::simulation::{Simulation, SimulationOptions, SimulationOutcome, TraceSample};
    pub use crate::uncertainty::{NoiseModel, UncertaintyBudget};
}

pub use prelude::*;
