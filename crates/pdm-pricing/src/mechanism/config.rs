//! Configuration shared by the contextual pricing mechanisms.

use crate::environment::Environment;
use serde::{Deserialize, Serialize};

/// Configuration of a contextual posted-price mechanism.
///
/// The four versions evaluated in the paper map onto two switches:
///
/// | paper name                          | `use_reserve` | `delta`   |
/// |-------------------------------------|---------------|-----------|
/// | pure version (Algorithm 1*)         | `false`       | `0`       |
/// | with uncertainty (Algorithm 2*)     | `false`       | `> 0`     |
/// | with reserve price (Algorithm 1)    | `true`        | `0`       |
/// | with reserve price and uncertainty (Algorithm 2) | `true` | `> 0` |
///
/// `cut_on_conservative` enables the misbehaving variant analysed in Lemma 8
/// (conservative prices are allowed to refine the knowledge set), which the
/// ablation benchmark uses to demonstrate the Ω(T) blow-up.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PricingConfig {
    /// Radius `R` of the initial knowledge-set ball (a bound on ‖θ*‖).
    pub initial_radius: f64,
    /// Bound `S` on the norm of the mapped feature vectors ‖φ(x)‖.
    pub feature_bound: f64,
    /// Horizon `T` used by the default exploration-threshold heuristic.
    pub horizon: usize,
    /// Explicit exploration threshold ε; when `None` the paper's choice
    /// (`ln²T / T` for `n = 1`, `n²/T` otherwise, floored at `4nδ`) is used.
    pub epsilon: Option<f64>,
    /// Uncertainty buffer δ of Algorithm 2 (zero disables it).
    pub delta: f64,
    /// Whether the reserve price constrains the posted price.
    pub use_reserve: bool,
    /// Lemma-8 ablation switch: allow conservative prices to cut.
    pub cut_on_conservative: bool,
}

impl PricingConfig {
    /// Creates a configuration with the given knowledge-set radius and
    /// horizon; every other field starts at the paper's defaults (unit
    /// feature bound, reserve enabled, no uncertainty).
    #[must_use]
    pub fn new(initial_radius: f64, horizon: usize) -> Self {
        Self {
            initial_radius,
            feature_bound: 1.0,
            horizon: horizon.max(1),
            epsilon: None,
            delta: 0.0,
            use_reserve: true,
            cut_on_conservative: false,
        }
    }

    /// Derives the radius and feature bound from an environment's hints.
    #[must_use]
    pub fn for_environment<E: Environment + ?Sized>(env: &E, horizon: usize) -> Self {
        let mut cfg = Self::new(env.weight_norm_bound(), horizon);
        cfg.feature_bound = env.feature_norm_bound();
        cfg
    }

    /// Enables or disables the reserve-price constraint.
    #[must_use]
    pub fn with_reserve(mut self, use_reserve: bool) -> Self {
        self.use_reserve = use_reserve;
        self
    }

    /// Sets the uncertainty buffer δ.
    #[must_use]
    pub fn with_uncertainty(mut self, delta: f64) -> Self {
        self.delta = delta.max(0.0);
        self
    }

    /// Sets an explicit exploration threshold ε.
    #[must_use]
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = Some(epsilon.max(0.0));
        self
    }

    /// Sets the feature-norm bound `S`.
    #[must_use]
    pub fn with_feature_bound(mut self, bound: f64) -> Self {
        self.feature_bound = bound.max(1e-12);
        self
    }

    /// Enables the Lemma-8 misbehaving variant that cuts on conservative
    /// prices.
    #[must_use]
    pub fn with_conservative_cuts(mut self, enabled: bool) -> Self {
        self.cut_on_conservative = enabled;
        self
    }

    /// The exploration threshold actually used for a mechanism learning an
    /// `n`-dimensional weight vector: the explicit ε if one was set, otherwise
    /// the paper's schedule `max(n²/T, 4nδ)` (with `ln²T / T` replacing
    /// `n²/T` in the one-dimensional case, per Theorem 3).
    #[must_use]
    pub fn effective_epsilon(&self, dim: usize) -> f64 {
        if let Some(eps) = self.epsilon {
            return eps;
        }
        let t = self.horizon.max(2) as f64;
        let n = dim.max(1) as f64;
        let schedule = if dim <= 1 {
            let ln_t = t.ln();
            ln_t * ln_t / t
        } else {
            n * n / t
        };
        schedule.max(4.0 * n * self.delta)
    }

    /// Human-readable name matching the paper's terminology for the four
    /// mechanism versions.
    #[must_use]
    pub fn version_name(&self) -> &'static str {
        match (self.use_reserve, self.delta > 0.0) {
            (false, false) => "pure version",
            (false, true) => "with uncertainty",
            (true, false) => "with reserve price",
            (true, true) => "with reserve price and uncertainty",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_and_builders() {
        let cfg = PricingConfig::new(2.0, 1000)
            .with_reserve(false)
            .with_uncertainty(0.05)
            .with_feature_bound(3.0)
            .with_epsilon(0.1)
            .with_conservative_cuts(true);
        assert_eq!(cfg.initial_radius, 2.0);
        assert_eq!(cfg.horizon, 1000);
        assert!(!cfg.use_reserve);
        assert_eq!(cfg.delta, 0.05);
        assert_eq!(cfg.feature_bound, 3.0);
        assert_eq!(cfg.epsilon, Some(0.1));
        assert!(cfg.cut_on_conservative);
        assert_eq!(cfg.effective_epsilon(10), 0.1);
    }

    #[test]
    fn epsilon_schedule_matches_paper() {
        let cfg = PricingConfig::new(1.0, 10_000);
        // Multi-dimensional: n²/T.
        assert!((cfg.effective_epsilon(20) - 400.0 / 10_000.0).abs() < 1e-12);
        // One-dimensional: ln²T / T.
        let t = 10_000.0_f64;
        assert!((cfg.effective_epsilon(1) - t.ln() * t.ln() / t).abs() < 1e-12);
    }

    #[test]
    fn epsilon_floor_scales_with_delta() {
        let cfg = PricingConfig::new(1.0, 1_000_000).with_uncertainty(0.01);
        // n²/T is tiny here, so the 4nδ floor dominates.
        assert!((cfg.effective_epsilon(10) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn version_names_cover_all_variants() {
        let base = PricingConfig::new(1.0, 100);
        assert_eq!(base.with_reserve(false).version_name(), "pure version");
        assert_eq!(
            base.with_reserve(false)
                .with_uncertainty(0.1)
                .version_name(),
            "with uncertainty"
        );
        assert_eq!(base.version_name(), "with reserve price");
        assert_eq!(
            base.with_uncertainty(0.1).version_name(),
            "with reserve price and uncertainty"
        );
    }

    #[test]
    fn negative_inputs_are_clamped() {
        let cfg = PricingConfig::new(1.0, 0)
            .with_uncertainty(-2.0)
            .with_epsilon(-0.5);
        assert_eq!(cfg.delta, 0.0);
        assert_eq!(cfg.epsilon, Some(0.0));
        assert!(cfg.horizon >= 1);
    }
}
