//! Posted-price mechanisms (Algorithms 1, 1*, 2, 2* and the baselines).
//!
//! All mechanisms implement [`PostedPriceMechanism`]: given the raw feature
//! vector and the round's reserve price they return a [`Quote`], and after the
//! buyer's accept/reject decision they receive the feedback through
//! [`PostedPriceMechanism::observe`].  The simulation loop in
//! [`crate::simulation`] owns the ground-truth market value, so mechanisms can
//! never peek at it.

mod baseline;
mod config;
mod contextual;

pub use baseline::{FixedPriceBaseline, OraclePricing, ReservePriceBaseline};
pub use config::PricingConfig;
pub use contextual::{ContextualPricing, EllipsoidPricing, ExactPolytopePricing, OneDimPricing};

use pdm_linalg::Vector;
use serde::{Deserialize, Serialize};

/// Which branch of the mechanism produced a quote.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QuoteKind {
    /// The exploratory price `max(q, (¯p + p̄)/2)`: riskier, but its feedback
    /// cuts the knowledge set (lines 12–21 of Algorithm 1).
    Exploratory,
    /// The conservative price `max(q, ¯p − δ)`: sells with the highest
    /// probability and never refines the knowledge set (lines 22–24).
    Conservative,
    /// The reserve price is above every possible market value
    /// (`q ≥ p̄ + δ`), so the round is a certain no-sale (lines 8–10).
    CertainNoSale,
    /// Produced by baselines that do not follow the explore/exploit split.
    Baseline,
}

/// A price offered to the buyer, together with the diagnostics the simulation
/// and benches report.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Quote {
    /// The price shown to the buyer, in market space.
    pub posted_price: f64,
    /// The same price in link space (`g⁻¹` of the posted price).
    pub link_price: f64,
    /// Lower support bound `¯p_t` of the knowledge set along `φ(x_t)`.
    pub lower_bound: f64,
    /// Upper support bound `p̄_t` of the knowledge set along `φ(x_t)`.
    pub upper_bound: f64,
    /// The reserve price translated into link space (−∞ when the mechanism
    /// ignores reserve prices).
    pub reserve_link: f64,
    /// Which branch produced the quote.
    pub kind: QuoteKind,
}

impl Quote {
    /// Width of the knowledge set along the query direction, the quantity
    /// compared against the exploration threshold ε.
    #[must_use]
    pub fn uncertainty_width(&self) -> f64 {
        self.upper_bound - self.lower_bound
    }
}

/// A posted-price mechanism: quotes a price for each arriving product and
/// learns from the buyer's accept/reject feedback.
pub trait PostedPriceMechanism {
    /// Human-readable name used in reports and figures (e.g. "with reserve
    /// price and uncertainty").
    fn name(&self) -> String;

    /// Quotes a price for a product with the given raw features and reserve
    /// price.
    fn quote(&mut self, features: &Vector, reserve_price: f64) -> Quote;

    /// Receives the buyer's decision for a previously issued quote.
    fn observe(&mut self, features: &Vector, quote: &Quote, accepted: bool);

    /// Approximate resident memory of the mechanism's learned state, in
    /// bytes (Section V-D reports the knowledge-set footprint).
    fn memory_footprint_bytes(&self) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quote_width_helper() {
        let q = Quote {
            posted_price: 1.0,
            link_price: 1.0,
            lower_bound: 0.25,
            upper_bound: 1.75,
            reserve_link: 0.5,
            kind: QuoteKind::Exploratory,
        };
        assert!((q.uncertainty_width() - 1.5).abs() < 1e-12);
    }
}
