//! Baseline mechanisms used throughout the evaluation.
//!
//! * [`ReservePriceBaseline`] — the risk-averse baseline of Section V: always
//!   post the reserve price.  Every sellable query sells, but the broker
//!   leaves the whole markup on the table; the paper reports regret ratios of
//!   18.16 % (linear) and 9.3–23.4 % (log-linear) for it.
//! * [`OraclePricing`] — posts `max(q, v)` using the true weight vector; its
//!   regret is identically zero and it anchors sanity checks.
//! * [`FixedPriceBaseline`] — posts one constant price, the classic
//!   non-contextual strawman.

use super::{PostedPriceMechanism, Quote, QuoteKind};
use crate::model::MarketValueModel;
use pdm_linalg::Vector;

/// Risk-averse baseline: always post the reserve price.
#[derive(Debug, Clone, Default)]
pub struct ReservePriceBaseline;

impl ReservePriceBaseline {
    /// Creates the baseline.
    #[must_use]
    pub fn new() -> Self {
        Self
    }
}

impl PostedPriceMechanism for ReservePriceBaseline {
    fn name(&self) -> String {
        "risk-averse baseline (post the reserve price)".to_owned()
    }

    fn quote(&mut self, _features: &Vector, reserve_price: f64) -> Quote {
        Quote {
            posted_price: reserve_price,
            link_price: reserve_price,
            lower_bound: f64::NEG_INFINITY,
            upper_bound: f64::INFINITY,
            reserve_link: reserve_price,
            kind: QuoteKind::Baseline,
        }
    }

    fn observe(&mut self, _features: &Vector, _quote: &Quote, _accepted: bool) {}
}

/// Oracle seller that knows the true weight vector and posts `max(q, v)`.
#[derive(Debug, Clone)]
pub struct OraclePricing<M> {
    model: M,
    theta_star: Vector,
}

impl<M: MarketValueModel> OraclePricing<M> {
    /// Creates an oracle over the given model and true weight vector.
    ///
    /// # Panics
    /// Panics when the weight vector does not match the model's mapped
    /// dimension.
    #[must_use]
    pub fn new(model: M, theta_star: Vector) -> Self {
        assert_eq!(
            theta_star.len(),
            model.mapped_dim(),
            "oracle weight vector must match the model's mapped dimension"
        );
        Self { model, theta_star }
    }
}

impl<M: MarketValueModel> PostedPriceMechanism for OraclePricing<M> {
    fn name(&self) -> String {
        "oracle (knows the market value)".to_owned()
    }

    fn quote(&mut self, features: &Vector, reserve_price: f64) -> Quote {
        let value = self.model.value(features, &self.theta_star);
        let posted = value.max(reserve_price);
        Quote {
            posted_price: posted,
            link_price: self.model.inverse_link(posted),
            lower_bound: self.model.inverse_link(value),
            upper_bound: self.model.inverse_link(value),
            reserve_link: self.model.inverse_link(reserve_price),
            kind: QuoteKind::Baseline,
        }
    }

    fn observe(&mut self, _features: &Vector, _quote: &Quote, _accepted: bool) {}
}

/// Posts one constant price in every round.
#[derive(Debug, Clone)]
pub struct FixedPriceBaseline {
    price: f64,
    honour_reserve: bool,
}

impl FixedPriceBaseline {
    /// Creates a baseline posting `price` each round; when `honour_reserve`
    /// is set the posted price is raised to the reserve whenever necessary.
    #[must_use]
    pub fn new(price: f64, honour_reserve: bool) -> Self {
        Self {
            price,
            honour_reserve,
        }
    }
}

impl PostedPriceMechanism for FixedPriceBaseline {
    fn name(&self) -> String {
        format!("fixed price baseline (p = {})", self.price)
    }

    fn quote(&mut self, _features: &Vector, reserve_price: f64) -> Quote {
        let posted = if self.honour_reserve {
            self.price.max(reserve_price)
        } else {
            self.price
        };
        Quote {
            posted_price: posted,
            link_price: posted,
            lower_bound: f64::NEG_INFINITY,
            upper_bound: f64::INFINITY,
            reserve_link: reserve_price,
            kind: QuoteKind::Baseline,
        }
    }

    fn observe(&mut self, _features: &Vector, _quote: &Quote, _accepted: bool) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::LinearModel;
    use crate::regret::single_round_regret;

    #[test]
    fn reserve_baseline_posts_reserve() {
        let mut baseline = ReservePriceBaseline::new();
        let x = Vector::from_slice(&[1.0, 2.0]);
        let q = baseline.quote(&x, 3.5);
        assert_eq!(q.posted_price, 3.5);
        assert_eq!(q.kind, QuoteKind::Baseline);
        baseline.observe(&x, &q, true); // must be a no-op and not panic
    }

    #[test]
    fn reserve_baseline_regret_is_the_markup() {
        // When v ≥ q the baseline always sells, and its per-round regret is
        // exactly the forgone markup v − q.
        let mut baseline = ReservePriceBaseline::new();
        let x = Vector::from_slice(&[1.0]);
        let q = baseline.quote(&x, 2.0);
        let regret = single_round_regret(q.posted_price, 5.0, 2.0);
        assert!((regret - 3.0).abs() < 1e-12);
    }

    #[test]
    fn oracle_has_zero_regret() {
        let model = LinearModel::new(2);
        let theta = Vector::from_slice(&[0.5, 0.5]);
        let mut oracle = OraclePricing::new(model, theta.clone());
        for raw in [[1.0, 1.0], [0.2, 0.8], [2.0, 0.0]] {
            let x = Vector::from_slice(&raw);
            let value = x.dot(&theta).unwrap();
            let quote = oracle.quote(&x, 0.1);
            let regret = single_round_regret(quote.posted_price, value, 0.1);
            assert!(regret.abs() < 1e-12, "oracle regret must vanish");
        }
    }

    #[test]
    fn oracle_respects_reserve() {
        let model = LinearModel::new(1);
        let mut oracle = OraclePricing::new(model, Vector::from_slice(&[1.0]));
        let x = Vector::from_slice(&[0.5]);
        // Value 0.5 < reserve 2.0, so the oracle posts the reserve (and the
        // round is unsellable — zero regret either way).
        let quote = oracle.quote(&x, 2.0);
        assert_eq!(quote.posted_price, 2.0);
    }

    #[test]
    #[should_panic(expected = "mapped dimension")]
    fn oracle_rejects_mismatched_weights() {
        let _ = OraclePricing::new(LinearModel::new(3), Vector::from_slice(&[1.0]));
    }

    #[test]
    fn fixed_price_baseline_variants() {
        let x = Vector::from_slice(&[1.0]);
        let mut plain = FixedPriceBaseline::new(1.0, false);
        assert_eq!(plain.quote(&x, 5.0).posted_price, 1.0);
        let mut honouring = FixedPriceBaseline::new(1.0, true);
        assert_eq!(honouring.quote(&x, 5.0).posted_price, 5.0);
        assert!(honouring.name().contains("fixed price"));
    }
}
