//! The contextual dynamic pricing engine (Algorithms 1, 1*, 2, 2*).
//!
//! [`ContextualPricing`] is generic over the knowledge-set representation so
//! the same control flow serves
//!
//! * [`EllipsoidPricing`] — the paper's mechanism (Löwner–John ellipsoid,
//!   `O(n²)` per round),
//! * [`ExactPolytopePricing`] — the exact-LP variant kept for validation and
//!   the latency ablation, and
//! * [`OneDimPricing`] — the interval/bisection variant of the
//!   one-dimensional case (Theorem 3).
//!
//! The engine works entirely in *link space* (`z = φ(x)^T θ`): the reserve
//! price is pulled through `g⁻¹`, the exploratory/conservative prices are
//! chosen on the `z` scale, and the buyer-facing price is `g(z)`.

use super::{PostedPriceMechanism, PricingConfig, Quote, QuoteKind};
use crate::model::{LinearModel, MarketValueModel};
use pdm_ellipsoid::{Ellipsoid, Interval, KnowledgeSet, Polytope};
use pdm_linalg::Vector;

/// Contextual posted-price mechanism over an arbitrary knowledge set.
#[derive(Debug, Clone)]
pub struct ContextualPricing<M, K> {
    model: M,
    knowledge: K,
    config: PricingConfig,
    epsilon: f64,
    exploratory_rounds: usize,
    conservative_rounds: usize,
    certain_no_sale_rounds: usize,
    cuts_applied: usize,
    // Scratch buffers for the quote/observe hot path: φ(x) of the most
    // recent quote plus the raw features it was computed from, so the
    // feedback cut reuses the mapping instead of re-allocating it.
    mapped_scratch: Vector,
    raw_scratch: Vector,
    scratch_valid: bool,
}

/// The paper's mechanism: contextual pricing over a Löwner–John ellipsoid.
pub type EllipsoidPricing<M> = ContextualPricing<M, Ellipsoid>;
/// Validation/ablation variant: contextual pricing over the exact polytope.
pub type ExactPolytopePricing<M> = ContextualPricing<M, Polytope>;
/// One-dimensional variant: contextual pricing over an interval (Theorem 3).
pub type OneDimPricing = ContextualPricing<LinearModel, Interval>;

impl<M: MarketValueModel, K: KnowledgeSet> ContextualPricing<M, K> {
    /// Builds a mechanism from an explicit knowledge set.
    ///
    /// # Panics
    /// Panics when the knowledge set's dimension does not match the model's
    /// mapped feature dimension.
    #[must_use]
    pub fn with_knowledge(model: M, knowledge: K, config: PricingConfig) -> Self {
        assert_eq!(
            knowledge.dim(),
            model.mapped_dim(),
            "knowledge-set dimension must equal the model's mapped feature dimension"
        );
        let epsilon = config.effective_epsilon(model.mapped_dim());
        let mapped_dim = model.mapped_dim();
        Self {
            model,
            knowledge,
            config,
            epsilon,
            exploratory_rounds: 0,
            conservative_rounds: 0,
            certain_no_sale_rounds: 0,
            cuts_applied: 0,
            mapped_scratch: Vector::zeros(mapped_dim),
            raw_scratch: Vector::zeros(0),
            scratch_valid: false,
        }
    }

    /// Ensures the scratch buffers hold `φ(features)`; reuses the cached
    /// mapping when `features` are bit-identical to the previous call's.
    fn refresh_scratch(&mut self, features: &Vector) {
        if self.scratch_valid && self.raw_scratch == *features {
            return;
        }
        self.model
            .map_features_into(features, &mut self.mapped_scratch);
        self.raw_scratch.copy_from(features);
        self.scratch_valid = true;
    }

    /// The market value model in use.
    #[must_use]
    pub fn model(&self) -> &M {
        &self.model
    }

    /// The current knowledge set.
    #[must_use]
    pub fn knowledge(&self) -> &K {
        &self.knowledge
    }

    /// Mutable access to the knowledge set.
    ///
    /// Advanced: the drift-aware wrappers of [`crate::drift`] use this to
    /// inflate (discount) the set between rounds; ordinary drivers never
    /// mutate the set outside [`PostedPriceMechanism::observe`].
    pub fn knowledge_mut(&mut self) -> &mut K {
        &mut self.knowledge
    }

    /// Replaces the knowledge set wholesale — the *restart* primitive of the
    /// drift-aware mechanisms: on a detected distribution shift the learned
    /// set is discarded and the broker falls back to her prior.
    ///
    /// Diagnostic counters (cut/exploration tallies) are deliberately kept:
    /// they describe the mechanism's lifetime, not one knowledge set.
    ///
    /// # Panics
    /// Panics when the new set's dimension does not match the model.
    pub fn replace_knowledge(&mut self, knowledge: K) {
        assert_eq!(
            knowledge.dim(),
            self.model.mapped_dim(),
            "knowledge-set dimension must equal the model's mapped feature dimension"
        );
        self.knowledge = knowledge;
    }

    /// The configuration the mechanism was built with.
    #[must_use]
    pub fn config(&self) -> &PricingConfig {
        &self.config
    }

    /// The exploration threshold ε in effect.
    #[must_use]
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Number of rounds in which the exploratory price was posted.
    #[must_use]
    pub fn exploratory_rounds(&self) -> usize {
        self.exploratory_rounds
    }

    /// Number of rounds in which the conservative price was posted.
    #[must_use]
    pub fn conservative_rounds(&self) -> usize {
        self.conservative_rounds
    }

    /// Number of rounds skipped because the reserve exceeded every possible
    /// market value.
    #[must_use]
    pub fn certain_no_sale_rounds(&self) -> usize {
        self.certain_no_sale_rounds
    }

    /// Number of knowledge-set refinements actually applied.
    #[must_use]
    pub fn cuts_applied(&self) -> usize {
        self.cuts_applied
    }

    /// Link-space support bounds `(¯p_t, p̄_t)` of the knowledge set along the
    /// mapped features of `features` — exposed so adversarial drivers (the
    /// Lemma-8 experiment) and diagnostics can inspect the mechanism's state.
    #[must_use]
    pub fn support_bounds(&self, features: &Vector) -> (f64, f64) {
        let mapped = self.model.map_features(features);
        self.knowledge.support_bounds(&mapped)
    }

    /// Batched quoting: prices every `(features, reserve_price)` request in
    /// order, appending one [`Quote`] per request to `out`.
    ///
    /// Semantically identical to calling [`PostedPriceMechanism::quote`] once
    /// per request — quotes, counters, and the scratch cache evolve
    /// bit-for-bit the same — but lets callers that drain request queues
    /// (the sharded serving engine) amortise dispatch over a whole batch.
    /// `out` is *appended to*, not cleared, so a caller can accumulate
    /// several batches into one buffer.
    pub fn step_many<'a, I>(&mut self, requests: I, out: &mut Vec<Quote>)
    where
        I: IntoIterator<Item = (&'a Vector, f64)>,
    {
        for (features, reserve_price) in requests {
            out.push(self.quote(features, reserve_price));
        }
    }

    /// The link-space reserve price used for a market-space reserve.
    fn reserve_link(&self, reserve_price: f64) -> f64 {
        if self.config.use_reserve {
            self.model.inverse_link(reserve_price)
        } else {
            f64::NEG_INFINITY
        }
    }
}

impl<M: MarketValueModel, K: KnowledgeSet> PostedPriceMechanism for ContextualPricing<M, K> {
    fn name(&self) -> String {
        format!("ellipsoid pricing ({})", self.config.version_name())
    }

    fn quote(&mut self, features: &Vector, reserve_price: f64) -> Quote {
        self.refresh_scratch(features);
        // `support_bounds_mut` lets the knowledge set reuse its own scratch
        // buffers (bit-identical to `support_bounds`, but allocation-free on
        // the ellipsoid hot path).
        let (lower, upper) = self.knowledge.support_bounds_mut(&self.mapped_scratch);
        let reserve_link = self.reserve_link(reserve_price);
        let delta = self.config.delta;

        // Lines 8–10: a certain no-sale when even the most optimistic market
        // value cannot reach the reserve price.
        if self.config.use_reserve && reserve_link >= upper + delta {
            self.certain_no_sale_rounds += 1;
            return Quote {
                posted_price: reserve_price,
                link_price: reserve_link,
                lower_bound: lower,
                upper_bound: upper,
                reserve_link,
                kind: QuoteKind::CertainNoSale,
            };
        }

        let width = upper - lower;
        let (kind, link_price) = if width > self.epsilon {
            // Lines 12–13: exploratory price, the larger of the reserve and
            // the middle price.
            self.exploratory_rounds += 1;
            let midpoint = 0.5 * (lower + upper);
            (QuoteKind::Exploratory, midpoint.max(reserve_link))
        } else {
            // Lines 22–23 (27 with uncertainty): conservative price.
            self.conservative_rounds += 1;
            (QuoteKind::Conservative, (lower - delta).max(reserve_link))
        };

        Quote {
            posted_price: self.model.link(link_price),
            link_price,
            lower_bound: lower,
            upper_bound: upper,
            reserve_link,
            kind,
        }
    }

    fn observe(&mut self, features: &Vector, quote: &Quote, accepted: bool) {
        let refine = match quote.kind {
            QuoteKind::Exploratory => true,
            // Conservative prices are forbidden from cutting (line 24);
            // flipping `cut_on_conservative` reproduces the Lemma-8 failure.
            QuoteKind::Conservative => self.config.cut_on_conservative,
            QuoteKind::CertainNoSale | QuoteKind::Baseline => false,
        };
        if !refine {
            return;
        }
        // Reuses the mapping computed by the matching `quote` call; only a
        // caller that observes with *different* features pays for a remap.
        self.refresh_scratch(features);
        let delta = self.config.delta;
        // The effective posted price of Algorithm 2: pretend we posted p + δ
        // on a rejection and p − δ on an acceptance, which keeps θ* inside the
        // knowledge set with probability ≥ 1 − 1/T.
        let outcome = if accepted {
            self.knowledge
                .cut_above(&self.mapped_scratch, quote.link_price - delta)
        } else {
            self.knowledge
                .cut_below(&self.mapped_scratch, quote.link_price + delta)
        };
        if outcome.is_updated() {
            self.cuts_applied += 1;
        }
    }

    fn memory_footprint_bytes(&self) -> usize {
        // Shape matrix + centre for the ellipsoid; the same accounting is a
        // (loose) lower bound for the other representations.
        let n = self.model.mapped_dim();
        n * n * std::mem::size_of::<f64>() + n * std::mem::size_of::<f64>()
    }
}

impl<M: MarketValueModel> ContextualPricing<M, Ellipsoid> {
    /// Creates the paper's mechanism: the initial knowledge set is the ball
    /// of radius `config.initial_radius` centred at the origin.
    #[must_use]
    pub fn new(model: M, config: PricingConfig) -> Self {
        let knowledge = Ellipsoid::ball(model.mapped_dim(), config.initial_radius);
        Self::with_knowledge(model, knowledge, config)
    }

    /// Creates the mechanism with the initial knowledge set enclosing the box
    /// `[lowerᵢ, upperᵢ]ⁿ` (the paper's `K₁`).
    ///
    /// # Panics
    /// Panics when the box dimension does not match the model.
    #[must_use]
    pub fn with_initial_box(model: M, config: PricingConfig, lower: &[f64], upper: &[f64]) -> Self {
        let knowledge = Ellipsoid::enclosing_box(lower, upper);
        Self::with_knowledge(model, knowledge, config)
    }
}

impl<M: MarketValueModel> ContextualPricing<M, Polytope> {
    /// Creates the exact-polytope variant with the symmetric box
    /// `[−R, R]ⁿ` as the initial knowledge set.
    #[must_use]
    pub fn exact(model: M, config: PricingConfig) -> Self {
        let knowledge = Polytope::symmetric_box(model.mapped_dim(), config.initial_radius);
        Self::with_knowledge(model, knowledge, config)
    }
}

impl ContextualPricing<LinearModel, Interval> {
    /// Creates the one-dimensional bisection variant over the interval
    /// `[−R, R]` (Theorem 3).
    #[must_use]
    pub fn one_dimensional(config: PricingConfig) -> Self {
        let knowledge = Interval::new(-config.initial_radius, config.initial_radius);
        Self::with_knowledge(LinearModel::new(1), knowledge, config)
    }

    /// Creates the one-dimensional variant over an explicit interval.
    #[must_use]
    pub fn over_interval(interval: Interval, config: PricingConfig) -> Self {
        Self::with_knowledge(LinearModel::new(1), interval, config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LinearModel, LogLinearModel};

    fn linear_mech(
        dim: usize,
        radius: f64,
        horizon: usize,
        use_reserve: bool,
        delta: f64,
    ) -> EllipsoidPricing<LinearModel> {
        let config = PricingConfig::new(radius, horizon)
            .with_reserve(use_reserve)
            .with_uncertainty(delta);
        EllipsoidPricing::new(LinearModel::new(dim), config)
    }

    #[test]
    fn exploratory_price_is_midpoint_without_reserve() {
        let mut mech = linear_mech(3, 2.0, 1000, false, 0.0);
        let x = Vector::from_slice(&[1.0, 0.0, 0.0]);
        let quote = mech.quote(&x, 0.5);
        assert_eq!(quote.kind, QuoteKind::Exploratory);
        // The initial ball is symmetric, so the midpoint is 0 regardless of
        // the reserve (which is ignored by the pure version).
        assert!((quote.link_price - 0.0).abs() < 1e-12);
        assert!((quote.posted_price - 0.0).abs() < 1e-12);
        assert_eq!(mech.exploratory_rounds(), 1);
    }

    #[test]
    fn reserve_lifts_the_exploratory_price() {
        let mut mech = linear_mech(3, 2.0, 1000, true, 0.0);
        let x = Vector::from_slice(&[1.0, 0.0, 0.0]);
        let quote = mech.quote(&x, 0.5);
        assert_eq!(quote.kind, QuoteKind::Exploratory);
        // Midpoint is 0 < reserve 0.5, so the reserve is posted.
        assert!((quote.posted_price - 0.5).abs() < 1e-12);
    }

    #[test]
    fn certain_no_sale_when_reserve_exceeds_upper_bound() {
        let mut mech = linear_mech(2, 1.0, 1000, true, 0.0);
        let x = Vector::from_slice(&[1.0, 0.0]);
        // Upper bound of the unit ball along x is 1; reserve 5 ≥ 1.
        let quote = mech.quote(&x, 5.0);
        assert_eq!(quote.kind, QuoteKind::CertainNoSale);
        assert_eq!(mech.certain_no_sale_rounds(), 1);
        // Feedback after a certain no-sale never mutates the knowledge set.
        let before = mech.knowledge().clone();
        mech.observe(&x, &quote, false);
        assert_eq!(mech.knowledge(), &before);
    }

    #[test]
    fn rejection_and_acceptance_cut_opposite_sides() {
        let x = Vector::from_slice(&[1.0, 0.0]);
        let mut rejected = linear_mech(2, 1.0, 1000, false, 0.0);
        let q = rejected.quote(&x, 0.0);
        rejected.observe(&x, &q, false);
        let (_, hi) = rejected.support_bounds(&x);
        assert!(hi < 1.0 - 1e-6, "rejection must lower the upper bound");

        let mut accepted = linear_mech(2, 1.0, 1000, false, 0.0);
        let q = accepted.quote(&x, 0.0);
        accepted.observe(&x, &q, true);
        let (lo, _) = accepted.support_bounds(&x);
        assert!(lo > -1.0 + 1e-6, "acceptance must raise the lower bound");
        assert_eq!(accepted.cuts_applied(), 1);
    }

    #[test]
    fn conservative_price_never_cuts_by_default() {
        let mut mech = linear_mech(2, 1.0, 10, false, 0.0).into_narrow();
        let x = Vector::from_slice(&[1.0, 0.0]);
        let quote = mech.quote(&x, 0.0);
        assert_eq!(quote.kind, QuoteKind::Conservative);
        let before = mech.knowledge().clone();
        mech.observe(&x, &quote, true);
        assert_eq!(mech.knowledge(), &before);
        assert_eq!(mech.cuts_applied(), 0);
    }

    // Helper: force a mechanism into the conservative regime by raising ε
    // above any achievable width.
    trait IntoNarrow {
        fn into_narrow(self) -> Self;
    }
    impl IntoNarrow for EllipsoidPricing<LinearModel> {
        fn into_narrow(self) -> Self {
            let config = (*self.config()).with_epsilon(1e6);
            EllipsoidPricing::new(*self.model(), config)
        }
    }

    #[test]
    fn conservative_cut_ablation_switch() {
        // With a reserve at the centre of the knowledge set, the conservative
        // price is lifted to the midpoint (the Lemma-8 adversary's trick); the
        // ablation switch then lets its feedback cut the ellipsoid, which the
        // correct mechanism would never do.
        let config = PricingConfig::new(1.0, 10)
            .with_reserve(true)
            .with_epsilon(1e6)
            .with_conservative_cuts(true);
        let mut mech = EllipsoidPricing::new(LinearModel::new(2), config);
        let x = Vector::from_slice(&[1.0, 0.0]);
        let quote = mech.quote(&x, 0.0);
        assert_eq!(quote.kind, QuoteKind::Conservative);
        mech.observe(&x, &quote, true);
        assert_eq!(mech.cuts_applied(), 1);

        // The correct mechanism (no ablation switch) refuses the same cut.
        let mut correct =
            EllipsoidPricing::new(LinearModel::new(2), config.with_conservative_cuts(false));
        let quote = correct.quote(&x, 0.0);
        correct.observe(&x, &quote, true);
        assert_eq!(correct.cuts_applied(), 0);
    }

    #[test]
    fn uncertainty_buffer_softens_cuts_and_prices() {
        let x = Vector::from_slice(&[1.0, 0.0]);
        let delta = 0.1;
        let mut with_buffer = linear_mech(2, 1.0, 1000, false, delta);
        let mut without = linear_mech(2, 1.0, 1000, false, 0.0);

        let qb = with_buffer.quote(&x, 0.0);
        let q0 = without.quote(&x, 0.0);
        assert_eq!(
            qb.link_price, q0.link_price,
            "exploratory price is unchanged"
        );

        with_buffer.observe(&x, &qb, false);
        without.observe(&x, &q0, false);
        let (_, hi_buffer) = with_buffer.support_bounds(&x);
        let (_, hi_plain) = without.support_bounds(&x);
        assert!(
            hi_buffer > hi_plain,
            "the δ buffer must make the rejection cut shallower ({hi_buffer} vs {hi_plain})"
        );
    }

    #[test]
    fn conservative_price_subtracts_delta() {
        let config = PricingConfig::new(1.0, 10)
            .with_reserve(false)
            .with_uncertainty(0.05)
            .with_epsilon(1e6);
        let mut mech = EllipsoidPricing::new(LinearModel::new(2), config);
        let x = Vector::from_slice(&[1.0, 0.0]);
        let quote = mech.quote(&x, 0.0);
        assert_eq!(quote.kind, QuoteKind::Conservative);
        assert!((quote.link_price - (-1.0 - 0.05)).abs() < 1e-9);
    }

    #[test]
    fn bisection_converges_to_market_value_under_truthful_feedback() {
        // Repeatedly pricing the same product with truthful feedback should
        // drive the posted price to the market value (the sell-or-learn
        // property behind the regret bound).
        let theta_star = Vector::from_slice(&[0.7, -0.2, 0.4]);
        let x = Vector::from_slice(&[0.5, 0.5, 0.5]);
        let value = x.dot(&theta_star).unwrap();
        let mut mech = linear_mech(3, 1.5, 100_000, false, 0.0);
        for _ in 0..200 {
            let quote = mech.quote(&x, 0.0);
            let accepted = quote.posted_price <= value;
            mech.observe(&x, &quote, accepted);
        }
        let quote = mech.quote(&x, 0.0);
        assert!(
            (quote.posted_price - value).abs() < 0.05,
            "posted price {} should approach the market value {}",
            quote.posted_price,
            value
        );
    }

    #[test]
    fn log_linear_model_posts_market_space_prices() {
        let config = PricingConfig::new(2.0, 1000).with_reserve(true);
        let mut mech = EllipsoidPricing::new(LogLinearModel::new(2), config);
        let x = Vector::from_slice(&[0.5, 0.5]);
        // Reserve of 2.0 in market space is ln(2) in link space.
        let quote = mech.quote(&x, 2.0);
        assert!((quote.reserve_link - 2.0_f64.ln()).abs() < 1e-12);
        // The posted market price is the exponential of the link price.
        assert!((quote.posted_price - quote.link_price.exp()).abs() < 1e-9);
        assert!(quote.posted_price >= 2.0 - 1e-9, "reserve must be honoured");
    }

    #[test]
    fn one_dimensional_variant_uses_interval() {
        let config = PricingConfig::new(2.0, 100).with_reserve(true);
        let mut mech = OneDimPricing::one_dimensional(config);
        let x = Vector::from_slice(&[1.0]);
        let quote = mech.quote(&x, 1.0);
        // Midpoint of [−2, 2] is 0 < reserve 1 ⇒ reserve is posted.
        assert!((quote.posted_price - 1.0).abs() < 1e-12);
        mech.observe(&x, &quote, true);
        let (lo, _) = mech.support_bounds(&x);
        assert!(
            lo >= 1.0 - 1e-9,
            "acceptance at the reserve lifts the lower bound"
        );
    }

    #[test]
    fn exact_polytope_variant_matches_ellipsoid_decisions_early_on() {
        let config = PricingConfig::new(1.0, 1000).with_reserve(false);
        let mut ell = EllipsoidPricing::new(LinearModel::new(2), config);
        let mut poly = ExactPolytopePricing::exact(LinearModel::new(2), config);
        let x = Vector::from_slice(&[0.6, 0.8]);
        let qe = ell.quote(&x, 0.0);
        let qp = poly.quote(&x, 0.0);
        assert_eq!(qe.kind, QuoteKind::Exploratory);
        assert_eq!(qp.kind, QuoteKind::Exploratory);
        // Both start centred at the origin, so both midpoints are ≈ 0.
        assert!(qe.link_price.abs() < 1e-9);
        assert!(qp.link_price.abs() < 1e-9);
    }

    #[test]
    fn memory_footprint_scales_quadratically() {
        let mech = linear_mech(100, 1.0, 10, true, 0.0);
        assert_eq!(mech.memory_footprint_bytes(), 100 * 100 * 8 + 100 * 8);
    }

    #[test]
    #[should_panic(expected = "dimension")]
    fn knowledge_dimension_mismatch_panics() {
        let config = PricingConfig::new(1.0, 10);
        let _ =
            ContextualPricing::with_knowledge(LinearModel::new(3), Ellipsoid::ball(2, 1.0), config);
    }

    #[test]
    fn name_reflects_version() {
        let m = linear_mech(2, 1.0, 10, true, 0.1);
        assert!(m.name().contains("with reserve price and uncertainty"));
    }
}
