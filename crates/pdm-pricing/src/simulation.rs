//! The online trading loop (Fig. 2 of the paper, seller side).
//!
//! A [`Simulation`] repeatedly pulls a [`Round`](crate::environment::Round)
//! from an [`Environment`], asks the mechanism for a
//! [`Quote`](crate::mechanism::Quote), resolves
//! acceptance against the hidden market value, feeds the decision back to the
//! mechanism, and accumulates regret.  It also measures per-round wall-clock
//! latency and the mechanism's knowledge-set memory footprint, which Section
//! V-D of the paper reports.

use crate::environment::Environment;
use crate::mechanism::PostedPriceMechanism;
use crate::regret::{RegretReport, RoundOutcome};
use crate::session::{PricingSession, StepOutcome};
use pdm_linalg::OnlineStats;
use serde::{Deserialize, Serialize};

/// Options controlling what a simulation records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimulationOptions {
    /// Approximate number of (log-spaced) checkpoints at which cumulative
    /// regret and the regret ratio are sampled for plotting.
    pub trace_points: usize,
    /// Whether to retain every per-round outcome (memory: one record per
    /// round).
    pub keep_full_trace: bool,
}

impl Default for SimulationOptions {
    fn default() -> Self {
        Self {
            trace_points: 256,
            keep_full_trace: false,
        }
    }
}

/// A sampled point of the cumulative-regret curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceSample {
    /// Round index (1-based).
    pub round: usize,
    /// Cumulative regret after this round.
    pub cumulative_regret: f64,
    /// Cumulative market value after this round.
    pub cumulative_market_value: f64,
    /// Regret ratio after this round.
    pub regret_ratio: f64,
}

/// Everything a finished simulation reports.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimulationOutcome {
    /// The mechanism's self-reported name.
    pub mechanism_name: String,
    /// Aggregate regret/revenue statistics (Table I, Fig. 4/5 endpoints).
    pub report: RegretReport,
    /// Log-spaced samples of the cumulative-regret curve (Fig. 4/5 series).
    pub trace: Vec<TraceSample>,
    /// Full per-round outcomes (empty unless requested).
    pub full_trace: Vec<RoundOutcome>,
    /// Distribution of per-round latency in microseconds (quote + observe).
    pub round_latency_micros: OnlineStats,
    /// Median per-round latency in microseconds (`NaN` when no round ran or
    /// the outcome was synthesised via [`SimulationOutcome::from_report`]).
    pub round_latency_p50_micros: f64,
    /// 99th-percentile per-round latency in microseconds (`NaN` when
    /// unavailable, like the p50).
    pub round_latency_p99_micros: f64,
    /// Approximate memory footprint of the mechanism's learned state.
    pub memory_footprint_bytes: usize,
}

impl SimulationOutcome {
    /// Wraps a bare [`RegretReport`] in an outcome with no trace and no
    /// latency measurements.
    ///
    /// Drivers that bypass [`Simulation`] (the Lemma-8 adversary plays the
    /// mechanism directly) use this so downstream aggregation can treat every
    /// experiment uniformly; the latency percentiles are `NaN` and the
    /// memory footprint zero.
    #[must_use]
    pub fn from_report(mechanism_name: String, report: RegretReport) -> Self {
        Self {
            mechanism_name,
            report,
            trace: Vec::new(),
            full_trace: Vec::new(),
            round_latency_micros: OnlineStats::new(),
            round_latency_p50_micros: f64::NAN,
            round_latency_p99_micros: f64::NAN,
            memory_footprint_bytes: 0,
        }
    }

    /// Cumulative regret at the end of the simulation.
    #[must_use]
    pub fn cumulative_regret(&self) -> f64 {
        self.report.cumulative_regret
    }

    /// Regret ratio at the end of the simulation.
    #[must_use]
    pub fn regret_ratio(&self) -> f64 {
        self.report.regret_ratio()
    }

    /// The trace sample closest to (but not beyond) the given round.
    #[must_use]
    pub fn trace_at(&self, round: usize) -> Option<&TraceSample> {
        self.trace.iter().rfind(|s| s.round <= round)
    }
}

/// Generates roughly `points` log-spaced checkpoints in `[1, horizon]`.
pub(crate) fn log_spaced_checkpoints(horizon: usize, points: usize) -> Vec<usize> {
    if horizon == 0 || points == 0 {
        return Vec::new();
    }
    let mut checkpoints = Vec::with_capacity(points + 2);
    checkpoints.push(1);
    let ln_t = (horizon as f64).ln();
    for i in 1..=points {
        let value = (ln_t * i as f64 / points as f64).exp().round() as usize;
        checkpoints.push(value.clamp(1, horizon));
    }
    checkpoints.push(horizon);
    checkpoints.sort_unstable();
    checkpoints.dedup();
    checkpoints
}

/// Couples an environment with a mechanism and runs the trading loop.
#[derive(Debug, Clone)]
pub struct Simulation<E, M> {
    environment: E,
    mechanism: M,
    options: SimulationOptions,
}

impl<E: Environment, M: PostedPriceMechanism> Simulation<E, M> {
    /// Creates a simulation with default recording options.
    #[must_use]
    pub fn new(environment: E, mechanism: M) -> Self {
        Self {
            environment,
            mechanism,
            options: SimulationOptions::default(),
        }
    }

    /// Overrides the recording options.
    #[must_use]
    pub fn with_options(mut self, options: SimulationOptions) -> Self {
        self.options = options;
        self
    }

    /// Runs the simulation to the environment's horizon.
    pub fn run<R: rand::Rng>(self, rng: &mut R) -> SimulationOutcome {
        self.run_with_state(rng).0
    }

    /// Runs the simulation and additionally hands back the mechanism and the
    /// environment, so callers can inspect learned state (e.g. the final
    /// ellipsoid) or continue the run.
    ///
    /// The loop body lives in [`PricingSession`] — this method is a thin
    /// client that pulls rounds from the environment, resolves acceptance
    /// against the hidden market value, and feeds the outcome back.  The
    /// sharded serving engine drives the *same* session type one query at a
    /// time, which is what makes service aggregates bit-comparable to serial
    /// simulations.
    pub fn run_with_state<R: rand::Rng>(mut self, rng: &mut R) -> (SimulationOutcome, M, E) {
        let horizon = self.environment.horizon();
        let mut session = PricingSession::new(self.mechanism, horizon, self.options);
        while let Some(round) = self.environment.next_round(rng) {
            let quote = session.step(&round.features, round.reserve_price);
            let accepted = quote.posted_price <= round.market_value;
            session.observe(StepOutcome::with_value(accepted, round.market_value));
        }
        let (outcome, mechanism) = session.finish();
        (outcome, mechanism, self.environment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::environment::{ReservePolicy, SyntheticLinearEnvironment};
    use crate::mechanism::{EllipsoidPricing, OraclePricing, PricingConfig, ReservePriceBaseline};
    use crate::model::LinearModel;
    use crate::regret::RegretTracker;
    use crate::uncertainty::NoiseModel;
    use pdm_ellipsoid::KnowledgeSet;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn environment(dim: usize, rounds: usize, seed: u64) -> SyntheticLinearEnvironment {
        let mut rng = StdRng::seed_from_u64(seed);
        SyntheticLinearEnvironment::builder(dim)
            .rounds(rounds)
            .noise(NoiseModel::None)
            .build(&mut rng)
    }

    #[test]
    fn checkpoints_are_sorted_unique_and_span_the_horizon() {
        let cps = log_spaced_checkpoints(100_000, 50);
        assert_eq!(*cps.first().unwrap(), 1);
        assert_eq!(*cps.last().unwrap(), 100_000);
        for pair in cps.windows(2) {
            assert!(pair[0] < pair[1]);
        }
        assert!(log_spaced_checkpoints(0, 10).is_empty());
        assert!(log_spaced_checkpoints(10, 0).is_empty());
    }

    #[test]
    fn oracle_simulation_has_zero_regret() {
        let env = environment(5, 500, 21);
        let oracle = OraclePricing::new(LinearModel::new(5), env.theta_star().clone());
        let mut rng = StdRng::seed_from_u64(99);
        let outcome = Simulation::new(env, oracle).run(&mut rng);
        assert!(outcome.cumulative_regret() < 1e-9);
        assert_eq!(outcome.report.rounds, 500);
        // The oracle posts max(q, v), so it sells exactly the sellable rounds.
        let sellable = outcome.report.rounds - outcome.report.unsellable_rounds;
        assert_eq!(outcome.report.sales, sellable);
        assert!(outcome.report.acceptance_rate() > 0.9);
    }

    #[test]
    fn ellipsoid_mechanism_beats_reserve_baseline() {
        // Reproduces the qualitative claim of Fig. 5(a): the learning
        // mechanism ends with a much lower regret ratio than the risk-averse
        // baseline that always posts the reserve price.
        let rounds = 3_000;
        let env_mech = environment(5, rounds, 33);
        let env_base = environment(5, rounds, 33);

        let config = PricingConfig::for_environment(&env_mech, rounds).with_reserve(true);
        let mechanism = EllipsoidPricing::new(LinearModel::new(5), config);

        let mut rng = StdRng::seed_from_u64(1);
        let mech_outcome = Simulation::new(env_mech, mechanism).run(&mut rng);
        let mut rng = StdRng::seed_from_u64(1);
        let base_outcome = Simulation::new(env_base, ReservePriceBaseline::new()).run(&mut rng);

        assert!(
            mech_outcome.regret_ratio() < base_outcome.regret_ratio(),
            "ellipsoid {} must beat baseline {}",
            mech_outcome.regret_ratio(),
            base_outcome.regret_ratio()
        );
        assert!(mech_outcome.regret_ratio() < 0.25);
    }

    #[test]
    fn trace_is_monotone_in_rounds_and_regret() {
        let rounds = 2_000;
        let env = environment(10, rounds, 7);
        let config = PricingConfig::for_environment(&env, rounds);
        let mechanism = EllipsoidPricing::new(LinearModel::new(10), config);
        let mut rng = StdRng::seed_from_u64(5);
        let outcome = Simulation::new(env, mechanism).run(&mut rng);
        assert!(!outcome.trace.is_empty());
        assert_eq!(outcome.trace.last().unwrap().round, rounds);
        for pair in outcome.trace.windows(2) {
            assert!(pair[0].round < pair[1].round);
            assert!(pair[0].cumulative_regret <= pair[1].cumulative_regret + 1e-9);
        }
        // trace_at returns the last sample not beyond the requested round.
        let sample = outcome.trace_at(rounds).unwrap();
        assert_eq!(sample.round, rounds);
        assert!(outcome.trace_at(0).is_none());
    }

    #[test]
    fn full_trace_is_kept_only_on_request() {
        let env = environment(3, 100, 2);
        let config = PricingConfig::for_environment(&env, 100);
        let mechanism = EllipsoidPricing::new(LinearModel::new(3), config);
        let mut rng = StdRng::seed_from_u64(3);
        let outcome = Simulation::new(env, mechanism)
            .with_options(SimulationOptions {
                trace_points: 16,
                keep_full_trace: true,
            })
            .run(&mut rng);
        assert_eq!(outcome.full_trace.len(), 100);
        assert!(outcome.round_latency_micros.count() == 100);
        assert!(outcome.memory_footprint_bytes > 0);
    }

    #[test]
    fn latency_percentiles_are_finite_and_ordered() {
        let env = environment(3, 200, 6);
        let config = PricingConfig::for_environment(&env, 200);
        let mechanism = EllipsoidPricing::new(LinearModel::new(3), config);
        let mut rng = StdRng::seed_from_u64(61);
        let outcome = Simulation::new(env, mechanism).run(&mut rng);
        assert!(outcome.round_latency_p50_micros.is_finite());
        assert!(outcome.round_latency_p99_micros.is_finite());
        assert!(outcome.round_latency_p50_micros >= 0.0);
        assert!(outcome.round_latency_p99_micros >= outcome.round_latency_p50_micros);
        assert!(outcome.round_latency_micros.max() >= outcome.round_latency_p99_micros);
    }

    #[test]
    fn from_report_synthesises_an_aggregation_friendly_outcome() {
        let mut tracker = RegretTracker::new(false);
        tracker.record(4.0, 1.0, 3.0);
        let outcome = SimulationOutcome::from_report("adversary".to_owned(), tracker.report());
        assert_eq!(outcome.mechanism_name, "adversary");
        assert_eq!(outcome.report.rounds, 1);
        assert!(outcome.trace.is_empty());
        assert!(outcome.round_latency_p50_micros.is_nan());
        assert!(outcome.round_latency_p99_micros.is_nan());
        assert_eq!(outcome.memory_footprint_bytes, 0);
    }

    #[test]
    fn run_with_state_returns_the_trained_mechanism() {
        let env = environment(4, 300, 8);
        let config = PricingConfig::for_environment(&env, 300);
        let mechanism = EllipsoidPricing::new(LinearModel::new(4), config);
        let mut rng = StdRng::seed_from_u64(4);
        let (outcome, mechanism, env) = Simulation::new(env, mechanism).run_with_state(&mut rng);
        assert_eq!(outcome.report.rounds, 300);
        // The trained mechanism should have applied at least one cut and the
        // true weights must still be inside its knowledge set.
        assert!(mechanism.cuts_applied() > 0);
        assert!(mechanism.knowledge().contains(env.theta_star()));
    }

    #[test]
    fn reserve_version_reduces_cold_start_regret() {
        // The core qualitative finding: with the reserve price as an extra
        // lower bound, early-round cumulative regret is no larger than the
        // pure version's (cold-start mitigation).
        let rounds = 2_000;
        let dim = 10;
        let env_pure = environment(dim, rounds, 55);
        let env_reserve = environment(dim, rounds, 55);

        let config = PricingConfig::for_environment(&env_pure, rounds);
        let pure = EllipsoidPricing::new(LinearModel::new(dim), config.with_reserve(false));
        let with_reserve = EllipsoidPricing::new(LinearModel::new(dim), config.with_reserve(true));

        let mut rng = StdRng::seed_from_u64(9);
        let pure_outcome = Simulation::new(env_pure, pure).run(&mut rng);
        let mut rng = StdRng::seed_from_u64(9);
        let reserve_outcome = Simulation::new(env_reserve, with_reserve).run(&mut rng);

        assert!(
            reserve_outcome.cumulative_regret() <= pure_outcome.cumulative_regret() * 1.05,
            "reserve version ({}) should not exceed the pure version ({})",
            reserve_outcome.cumulative_regret(),
            pure_outcome.cumulative_regret()
        );
    }

    #[test]
    fn environment_without_reserve_still_simulates() {
        let mut rng = StdRng::seed_from_u64(77);
        let env = SyntheticLinearEnvironment::builder(3)
            .rounds(200)
            .without_reserve()
            .build(&mut rng);
        assert!(matches!(
            // Internal check: the builder really disabled the reserve.
            {
                let mut env = env.clone();
                let r = env.next_round(&mut rng).unwrap();
                if r.reserve_price == 0.0 {
                    ReservePolicy::None
                } else {
                    ReservePolicy::SumOfFeatures
                }
            },
            ReservePolicy::None
        ));
        let config = PricingConfig::for_environment(&env, 200).with_reserve(false);
        let mechanism = EllipsoidPricing::new(LinearModel::new(3), config);
        let outcome = Simulation::new(env, mechanism).run(&mut rng);
        assert_eq!(outcome.report.rounds, 200);
    }
}
