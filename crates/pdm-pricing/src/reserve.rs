//! The reserve-setter bridge: driving the paper's mechanism from an
//! **auction** market instead of a posted-price market.
//!
//! The personalized-reserve literature (Paes Leme–Pál–Vassilvitskii's field
//! guide; Derakhshan–Golrezaei–Paes Leme's data-driven optimisation) prices
//! the *reserve* of an eager second-price auction per item, instead of
//! posting a take-it-or-leave-it price.  The learning signal there is
//! **censored**: the seller observes whether the item cleared at the quoted
//! reserve — win/lose at reserve — which is exactly the accept/reject bit
//! the paper's posted-price mechanism learns from.  [`ReserveSetter`] is the
//! minimal trait an auction market needs from a reserve policy, and the
//! blanket implementation for [`PricingSession`] is the bridge: a session's
//! [`step`](PricingSession::step) *is* a personalized reserve quote, and the
//! auction's clearing outcome folds back through
//! [`observe`](PricingSession::observe) as a [`StepOutcome`] — no fork of
//! the mechanism arithmetic, so the same knowledge-set updates (and the same
//! snapshot/restore bit-identity) apply verbatim.
//!
//! `pdm-auction` supplies the other two policies of the grid — a static
//! reserve and the empirical data-driven setter — and the auction market
//! itself; this module only owns the trait and the session bridge, keeping
//! the crate DAG acyclic.

use crate::mechanism::PostedPriceMechanism;
use crate::session::{ObservedRound, PricingSession, StepOutcome};
use pdm_linalg::Vector;

/// What an auction round reports back to its reserve policy.
///
/// The only field a *censored* market guarantees is [`sold`](Self::sold) —
/// whether the top bid met the quoted reserve.  Drivers that see the bids
/// (benchmarks, the serving engine, replay workloads) also reveal the top
/// and second bids so richer policies (the empirical setter) can refit; a
/// production exchange that hides losing bids simply leaves them `None`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReserveFeedback {
    /// Whether the auction cleared, i.e. the top bid met the reserve.
    pub sold: bool,
    /// The reserve that was quoted for the round (after the floor clamp).
    pub reserve: f64,
    /// The winning (top) bid, when the driver reveals it.
    pub top_bid: Option<f64>,
    /// The second-highest bid, when the driver reveals it.
    pub second_bid: Option<f64>,
}

impl ReserveFeedback {
    /// Censored feedback: only the win/lose-at-reserve bit.
    #[must_use]
    pub fn censored(sold: bool, reserve: f64) -> Self {
        Self {
            sold,
            reserve,
            top_bid: None,
            second_bid: None,
        }
    }
}

/// A personalized reserve-price policy for an eager second-price auction.
///
/// Each round, the market asks for a reserve given the item's raw features
/// and the round's **floor** — the paper's reserve-price constraint, i.e.
/// the total privacy compensation the sale must cover.  Implementations
/// must return a value `>= floor`; after clearing, the market reports the
/// outcome through [`ReserveSetter::observe`].
pub trait ReserveSetter {
    /// Human-readable policy name used in reports and tables.
    fn name(&self) -> String;

    /// Quotes the reserve for one auction round.  The returned value must
    /// be at least `floor`.
    fn reserve(&mut self, features: &Vector, floor: f64) -> f64;

    /// Receives the clearing outcome of the round most recently quoted by
    /// [`ReserveSetter::reserve`].
    fn observe(&mut self, feedback: ReserveFeedback);
}

/// The bridge: a pricing session sets personalized reserves by quoting its
/// posted price, and learns from the auction's censored feedback.
///
/// * `reserve` runs [`PricingSession::step`] with the floor as the round's
///   reserve price, so the quoted reserve honours the constraint exactly
///   like a posted price would (the certain-no-sale branch included).
/// * `observe` folds the clearing outcome into
///   [`PricingSession::observe`]: `sold` is the accept bit (the top bid
///   "accepted" the reserve), and the top bid — when revealed — is the
///   round's market value, so regret is accounted against the price the
///   strongest bidder was willing to pay.
///
/// The session's revenue ledger therefore records the *reserve* on each
/// sale, which is the posted-price-equivalent floor revenue; the auction
/// market's own metrics track the actual clearing revenue
/// `max(second bid, reserve)`.
impl<M: PostedPriceMechanism> ReserveSetter for PricingSession<M> {
    fn name(&self) -> String {
        format!("session reserve ({})", self.mechanism().name())
    }

    fn reserve(&mut self, features: &Vector, floor: f64) -> f64 {
        // `max` also normalises the -0.0/NaN-free floor case: the mechanism
        // already posts >= floor, in which case this is the identity.
        self.step(features, floor).posted_price.max(floor)
    }

    fn observe(&mut self, feedback: ReserveFeedback) {
        let _: Option<ObservedRound> = PricingSession::observe(
            self,
            StepOutcome {
                accepted: feedback.sold,
                market_value: feedback.top_bid,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mechanism::{EllipsoidPricing, PricingConfig};
    use crate::model::LinearModel;
    use crate::simulation::SimulationOptions;

    fn session(dim: usize) -> PricingSession<EllipsoidPricing<LinearModel>> {
        let config = PricingConfig::new(2.0 * (dim as f64).sqrt(), 100).with_reserve(true);
        PricingSession::new(
            EllipsoidPricing::new(LinearModel::new(dim), config),
            100,
            SimulationOptions::default(),
        )
        .without_latency_tracking()
    }

    #[test]
    fn session_reserve_honours_the_floor() {
        let mut s = session(3);
        let x = Vector::from_slice(&[0.5, 0.5, 0.5]);
        // A floor above the knowledge set's reach forces the certain-no-sale
        // branch, whose quote is the floor itself.
        let r = ReserveSetter::reserve(&mut s, &x, 50.0);
        assert!(r >= 50.0);
        ReserveSetter::observe(&mut s, ReserveFeedback::censored(false, r));
        // An ordinary floor is honoured too.
        let r = ReserveSetter::reserve(&mut s, &x, 0.25);
        assert!(r >= 0.25);
        ReserveSetter::observe(&mut s, ReserveFeedback::censored(false, r));
        assert_eq!(s.rounds_closed(), 2);
    }

    #[test]
    fn bridge_reuses_step_observe_bit_for_bit() {
        // Driving the session through the trait must be indistinguishable
        // from driving it by hand — the bridge forks no arithmetic.
        let x = Vector::from_slice(&[0.6, 0.8]);
        let mut by_trait = session(2);
        let mut by_hand = session(2);
        for round in 0..50 {
            let floor = 0.1 + 0.01 * f64::from(round);
            let r = ReserveSetter::reserve(&mut by_trait, &x, floor);
            let sold = r <= 1.0;
            ReserveSetter::observe(
                &mut by_trait,
                ReserveFeedback {
                    sold,
                    reserve: r,
                    top_bid: Some(1.0),
                    second_bid: Some(0.5),
                },
            );

            let quote = by_hand.step(&x, floor);
            assert_eq!(quote.posted_price.max(floor).to_bits(), r.to_bits());
            by_hand.observe(StepOutcome::with_value(quote.posted_price <= 1.0, 1.0));
        }
        assert_eq!(
            by_trait.revenue().to_bits(),
            by_hand.revenue().to_bits(),
            "bridge and hand-driven ledgers must match exactly"
        );
        assert_eq!(
            by_trait.tracker().cumulative_regret().to_bits(),
            by_hand.tracker().cumulative_regret().to_bits()
        );
    }

    #[test]
    fn censored_feedback_skips_regret_but_counts_revenue() {
        let mut s = session(2);
        let x = Vector::from_slice(&[1.0, 0.0]);
        // A fresh origin-centred ball quotes the midpoint 0 at floor 0, so a
        // positive floor makes the sale's ledger revenue visible.
        let r = ReserveSetter::reserve(&mut s, &x, 0.2);
        ReserveSetter::observe(&mut s, ReserveFeedback::censored(true, r));
        assert_eq!(s.tracker().rounds(), 0, "no ground truth, no regret row");
        assert_eq!(s.sales(), 1);
        assert!(s.revenue() >= 0.2);
        assert!(s.name().contains("session reserve"));
    }
}
