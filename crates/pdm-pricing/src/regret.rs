//! Regret accounting (Eq. 1, Fig. 1, and the regret-ratio metric of
//! Section V).
//!
//! The single-round regret of a posted price `p` against a market value `v`
//! under reserve price `q` is
//!
//! ```text
//! R = 0                      if q > v            (the query could never sell)
//! R = v − p · 1{p ≤ v}       otherwise
//! ```
//!
//! so a slight under-estimate of `v` costs only the gap, while a slight
//! over-estimate forfeits the entire value — the asymmetry drawn in Fig. 1.
//! [`RegretTracker`] accumulates this quantity along with the cumulative
//! market value so the *regret ratio* `Σ R_t / Σ v_t` of Fig. 5 can be
//! reported at any checkpoint.

use pdm_linalg::OnlineStats;
use serde::{Deserialize, Serialize};

/// The single-round regret of Eq. (1).
///
/// `posted_price` is the price actually shown to the buyer (in market space),
/// `market_value` the buyer's value, and `reserve_price` the seller-side
/// floor. A sale happens iff `posted_price <= market_value`.
#[must_use]
pub fn single_round_regret(posted_price: f64, market_value: f64, reserve_price: f64) -> f64 {
    if reserve_price > market_value {
        return 0.0;
    }
    if posted_price <= market_value {
        market_value - posted_price
    } else {
        market_value
    }
}

/// Whether a posted price is accepted by a buyer with the given value.
#[must_use]
pub fn is_accepted(posted_price: f64, market_value: f64) -> bool {
    posted_price <= market_value
}

/// Per-round record retained by the tracker when tracing is enabled.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoundOutcome {
    /// Round index (1-based, like the paper's `t`).
    pub round: usize,
    /// Market value `v_t`.
    pub market_value: f64,
    /// Reserve price `q_t`.
    pub reserve_price: f64,
    /// Posted price `p_t`.
    pub posted_price: f64,
    /// Whether the buyer accepted.
    pub accepted: bool,
    /// Single-round regret `R_t`.
    pub regret: f64,
}

/// Aggregated regret statistics for a finished (or in-progress) simulation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegretReport {
    /// Number of rounds recorded.
    pub rounds: usize,
    /// Cumulative regret `Σ R_t`.
    pub cumulative_regret: f64,
    /// Cumulative market value `Σ v_t`.
    pub cumulative_market_value: f64,
    /// Cumulative revenue earned by the broker `Σ p_t · 1{sale}`.
    pub cumulative_revenue: f64,
    /// Number of rounds in which a sale occurred.
    pub sales: usize,
    /// Number of rounds in which the reserve exceeded the market value (no
    /// regret is possible in those rounds).
    pub unsellable_rounds: usize,
    /// Distribution of market values (for Table I).
    pub market_value_stats: OnlineStats,
    /// Distribution of reserve prices (for Table I).
    pub reserve_price_stats: OnlineStats,
    /// Distribution of posted prices (for Table I).
    pub posted_price_stats: OnlineStats,
    /// Distribution of per-round regrets (for Table I).
    pub regret_stats: OnlineStats,
}

impl RegretReport {
    /// The regret ratio `Σ R_t / Σ v_t` (zero when no value has accrued).
    #[must_use]
    pub fn regret_ratio(&self) -> f64 {
        if self.cumulative_market_value <= 0.0 {
            0.0
        } else {
            self.cumulative_regret / self.cumulative_market_value
        }
    }

    /// Fraction of rounds that ended in a sale.
    #[must_use]
    pub fn acceptance_rate(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.sales as f64 / self.rounds as f64
        }
    }

    /// An empty report (zero rounds), the identity of [`RegretReport::merge`].
    #[must_use]
    pub fn empty() -> Self {
        RegretTracker::new(false).report()
    }

    /// Accumulates another report into this one: counters and cumulative
    /// sums add, the per-round distributions merge via the parallel Welford
    /// combination.
    ///
    /// This is how multi-tenant aggregates are formed: the serving engine
    /// folds every tenant's report together **in tenant order**, which keeps
    /// the floating-point sums deterministic and lets `bench serve` compare
    /// a sharded run against its serial reference bit for bit.
    pub fn merge(&mut self, other: &RegretReport) {
        self.rounds += other.rounds;
        self.cumulative_regret += other.cumulative_regret;
        self.cumulative_market_value += other.cumulative_market_value;
        self.cumulative_revenue += other.cumulative_revenue;
        self.sales += other.sales;
        self.unsellable_rounds += other.unsellable_rounds;
        self.market_value_stats.merge(&other.market_value_stats);
        self.reserve_price_stats.merge(&other.reserve_price_stats);
        self.posted_price_stats.merge(&other.posted_price_stats);
        self.regret_stats.merge(&other.regret_stats);
    }
}

/// Accumulates per-round outcomes into cumulative regret, revenue, and the
/// Table-I statistics; optionally keeps the full per-round trace.
#[derive(Debug, Clone)]
pub struct RegretTracker {
    rounds: usize,
    cumulative_regret: f64,
    cumulative_market_value: f64,
    cumulative_revenue: f64,
    sales: usize,
    unsellable_rounds: usize,
    market_value_stats: OnlineStats,
    reserve_price_stats: OnlineStats,
    posted_price_stats: OnlineStats,
    regret_stats: OnlineStats,
    keep_trace: bool,
    trace: Vec<RoundOutcome>,
}

impl Default for RegretTracker {
    fn default() -> Self {
        Self::new(false)
    }
}

impl RegretTracker {
    /// Rebuilds a tracker from a previously captured [`RegretReport`] — the
    /// persistence path (`pdm-service` snapshots).  The restored tracker
    /// continues accumulating bit-identically to the original; the full
    /// per-round trace is not part of a report, so a restored tracker never
    /// traces.
    #[must_use]
    pub fn from_report(report: &RegretReport) -> Self {
        Self {
            rounds: report.rounds,
            cumulative_regret: report.cumulative_regret,
            cumulative_market_value: report.cumulative_market_value,
            cumulative_revenue: report.cumulative_revenue,
            sales: report.sales,
            unsellable_rounds: report.unsellable_rounds,
            market_value_stats: report.market_value_stats.clone(),
            reserve_price_stats: report.reserve_price_stats.clone(),
            posted_price_stats: report.posted_price_stats.clone(),
            regret_stats: report.regret_stats.clone(),
            keep_trace: false,
            trace: Vec::new(),
        }
    }

    /// Creates a tracker; set `keep_trace` to retain every [`RoundOutcome`].
    #[must_use]
    pub fn new(keep_trace: bool) -> Self {
        Self {
            rounds: 0,
            cumulative_regret: 0.0,
            cumulative_market_value: 0.0,
            cumulative_revenue: 0.0,
            sales: 0,
            unsellable_rounds: 0,
            market_value_stats: OnlineStats::new(),
            reserve_price_stats: OnlineStats::new(),
            posted_price_stats: OnlineStats::new(),
            regret_stats: OnlineStats::new(),
            keep_trace,
            trace: Vec::new(),
        }
    }

    /// Records one round and returns its outcome record.
    pub fn record(
        &mut self,
        market_value: f64,
        reserve_price: f64,
        posted_price: f64,
    ) -> RoundOutcome {
        let accepted = is_accepted(posted_price, market_value);
        let regret = single_round_regret(posted_price, market_value, reserve_price);
        self.rounds += 1;
        self.cumulative_regret += regret;
        self.cumulative_market_value += market_value;
        if accepted {
            self.cumulative_revenue += posted_price;
            self.sales += 1;
        }
        if reserve_price > market_value {
            self.unsellable_rounds += 1;
        }
        self.market_value_stats.push(market_value);
        self.reserve_price_stats.push(reserve_price);
        self.posted_price_stats.push(posted_price);
        self.regret_stats.push(regret);
        let outcome = RoundOutcome {
            round: self.rounds,
            market_value,
            reserve_price,
            posted_price,
            accepted,
            regret,
        };
        if self.keep_trace {
            self.trace.push(outcome);
        }
        outcome
    }

    /// Number of rounds recorded so far.
    #[must_use]
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Cumulative regret so far.
    #[must_use]
    pub fn cumulative_regret(&self) -> f64 {
        self.cumulative_regret
    }

    /// Cumulative market value so far.
    #[must_use]
    pub fn cumulative_market_value(&self) -> f64 {
        self.cumulative_market_value
    }

    /// Cumulative broker revenue so far.
    #[must_use]
    pub fn cumulative_revenue(&self) -> f64 {
        self.cumulative_revenue
    }

    /// Current regret ratio `Σ R_t / Σ v_t`.
    #[must_use]
    pub fn regret_ratio(&self) -> f64 {
        if self.cumulative_market_value <= 0.0 {
            0.0
        } else {
            self.cumulative_regret / self.cumulative_market_value
        }
    }

    /// The retained per-round trace (empty unless tracing was enabled).
    #[must_use]
    pub fn trace(&self) -> &[RoundOutcome] {
        &self.trace
    }

    /// Produces the aggregate report.
    #[must_use]
    pub fn report(&self) -> RegretReport {
        RegretReport {
            rounds: self.rounds,
            cumulative_regret: self.cumulative_regret,
            cumulative_market_value: self.cumulative_market_value,
            cumulative_revenue: self.cumulative_revenue,
            sales: self.sales,
            unsellable_rounds: self.unsellable_rounds,
            market_value_stats: self.market_value_stats.clone(),
            reserve_price_stats: self.reserve_price_stats.clone(),
            posted_price_stats: self.posted_price_stats.clone(),
            regret_stats: self.regret_stats.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regret_is_zero_when_reserve_exceeds_value() {
        // Fig. 1, left of the reserve price: nothing could ever sell.
        assert_eq!(single_round_regret(5.0, 1.0, 2.0), 0.0);
        assert_eq!(single_round_regret(0.5, 1.0, 2.0), 0.0);
    }

    #[test]
    fn underpricing_costs_the_gap() {
        // v = 10, posted 8, reserve 1: sale happens, regret 2.
        assert_eq!(single_round_regret(8.0, 10.0, 1.0), 2.0);
        // Posting exactly the value is optimal.
        assert_eq!(single_round_regret(10.0, 10.0, 1.0), 0.0);
    }

    #[test]
    fn overpricing_forfeits_the_whole_value() {
        // v = 10, posted 10.01: no sale, regret 10 (the Fig. 1 cliff).
        assert_eq!(single_round_regret(10.01, 10.0, 1.0), 10.0);
    }

    #[test]
    fn regret_function_shape_matches_fig1() {
        // Sweep the posted price across [q, v·1.5] and verify the piecewise
        // shape: decreasing to 0 at p = v, then jumping to v.
        let v = 4.0;
        let q = 1.0;
        let mut last = f64::INFINITY;
        let mut p = q;
        while p <= v {
            let r = single_round_regret(p, v, q);
            assert!(
                r <= last + 1e-12,
                "regret must decrease as p grows toward v"
            );
            last = r;
            p += 0.1;
        }
        assert_eq!(single_round_regret(v + 1e-6, v, q), v);
    }

    #[test]
    fn tracker_accumulates_and_reports() {
        let mut tracker = RegretTracker::new(true);
        tracker.record(10.0, 1.0, 8.0); // sale, regret 2
        tracker.record(10.0, 1.0, 11.0); // no sale, regret 10
        tracker.record(1.0, 2.0, 2.0); // reserve above value: no regret, no sale
        assert_eq!(tracker.rounds(), 3);
        assert_eq!(tracker.cumulative_regret(), 12.0);
        assert_eq!(tracker.cumulative_market_value(), 21.0);
        assert_eq!(tracker.cumulative_revenue(), 8.0);
        let report = tracker.report();
        assert_eq!(report.sales, 1);
        assert_eq!(report.unsellable_rounds, 1);
        assert!((report.regret_ratio() - 12.0 / 21.0).abs() < 1e-12);
        assert!((report.acceptance_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(tracker.trace().len(), 3);
        assert!(tracker.trace()[0].accepted);
        assert!(!tracker.trace()[1].accepted);
    }

    #[test]
    fn tracker_without_trace_stays_empty() {
        let mut tracker = RegretTracker::new(false);
        tracker.record(1.0, 0.5, 0.9);
        assert!(tracker.trace().is_empty());
        assert_eq!(tracker.report().rounds, 1);
    }

    #[test]
    fn empty_report_ratios_are_zero() {
        let report = RegretTracker::new(false).report();
        assert_eq!(report.regret_ratio(), 0.0);
        assert_eq!(report.acceptance_rate(), 0.0);
    }

    #[test]
    fn merge_is_order_deterministic_and_matches_one_tracker() {
        let mut a = RegretTracker::new(false);
        a.record(10.0, 1.0, 8.0);
        a.record(4.0, 1.0, 5.0);
        let mut b = RegretTracker::new(false);
        b.record(6.0, 2.0, 3.0);

        let mut merged = RegretReport::empty();
        merged.merge(&a.report());
        merged.merge(&b.report());

        let mut single = RegretTracker::new(false);
        single.record(10.0, 1.0, 8.0);
        single.record(4.0, 1.0, 5.0);
        single.record(6.0, 2.0, 3.0);
        let single = single.report();

        assert_eq!(merged.rounds, single.rounds);
        assert_eq!(merged.cumulative_regret, single.cumulative_regret);
        assert_eq!(merged.cumulative_revenue, single.cumulative_revenue);
        assert_eq!(merged.sales, single.sales);
        assert_eq!(
            merged.market_value_stats.count(),
            single.market_value_stats.count()
        );
        assert!(
            (merged.regret_stats.mean() - single.regret_stats.mean()).abs() < 1e-12,
            "welford merge must agree with the single-pass tracker"
        );
        // Identity element.
        let before = merged.cumulative_regret;
        merged.merge(&RegretReport::empty());
        assert_eq!(merged.cumulative_regret, before);
    }

    #[test]
    fn table_one_statistics_track_distributions() {
        let mut tracker = RegretTracker::new(false);
        for i in 1..=100 {
            let v = i as f64;
            tracker.record(v, v * 0.5, v * 0.9);
        }
        let report = tracker.report();
        assert!((report.market_value_stats.mean() - 50.5).abs() < 1e-9);
        assert!((report.reserve_price_stats.mean() - 25.25).abs() < 1e-9);
        assert!((report.posted_price_stats.mean() - 45.45).abs() < 1e-9);
        assert!(report.regret_stats.mean() > 0.0);
    }
}
