//! The re-entrant pricing session: the paper's trading loop, one round at a
//! time.
//!
//! [`Simulation`](crate::simulation::Simulation) owns the whole loop — it
//! pulls rounds from an environment until the horizon is exhausted.  A
//! serving system cannot work that way: queries arrive from the outside, one
//! at a time, interleaved across thousands of tenants.  [`PricingSession`] is
//! the loop body extracted into a drivable object:
//!
//! 1. [`PricingSession::step`] quotes a price for one arriving query, and
//! 2. [`PricingSession::observe`] feeds back the buyer's accept/reject
//!    decision (plus the ground-truth market value, when the driver knows
//!    it), closing the round.
//!
//! `Simulation` is now a thin client of this type, so the serial simulations
//! and the sharded `pdm-service` engine execute *bit-identical* mechanism
//! arithmetic — the property the `bench serve` workload verifies end to end.
//!
//! The session also owns the scratch state of the hot loop: the features of
//! the in-flight round live in a long-lived buffer that is overwritten each
//! round instead of cloned, and per-round latency is accumulated without
//! per-round allocation.

use crate::mechanism::{PostedPriceMechanism, Quote};
use crate::regret::RegretTracker;
use crate::simulation::{
    log_spaced_checkpoints, SimulationOptions, SimulationOutcome, TraceSample,
};
use pdm_linalg::{OnlineStats, SampleWindow, Vector};
use std::time::Instant;

/// Maximum latency samples a session retains for the percentile trace.  A
/// session "keeps working past the horizon", so an uncapped trace would grow
/// one `f64` per round forever; beyond this many samples the trace is a
/// sliding window and the reported p50/p99 cover the most recent
/// `LATENCY_TRACE_CAP` rounds (the streaming mean/min/max stay all-time).
/// The cap exceeds the paper's largest full-scale horizon (10⁵ rounds), so
/// every simulation percentile still covers its whole run.
const LATENCY_TRACE_CAP: usize = 131_072;

/// The buyer-side outcome of one priced round, reported to
/// [`PricingSession::observe`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepOutcome {
    /// Whether the buyer accepted the posted price.
    pub accepted: bool,
    /// The ground-truth market value, when the driver knows it (simulations,
    /// replay workloads).  `None` for production feedback, where only the
    /// accept/reject bit exists; regret is then not accounted and the
    /// session's regret *proxy* (cumulative quote uncertainty width) is the
    /// only learning-progress signal.
    pub market_value: Option<f64>,
}

impl StepOutcome {
    /// An outcome with ground truth: full regret accounting.
    #[must_use]
    pub fn with_value(accepted: bool, market_value: f64) -> Self {
        Self {
            accepted,
            market_value: Some(market_value),
        }
    }

    /// A production-style outcome: only the accept/reject bit.
    #[must_use]
    pub fn accept_only(accepted: bool) -> Self {
        Self {
            accepted,
            market_value: None,
        }
    }
}

/// What [`PricingSession::observe`] reports about the round it just closed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObservedRound {
    /// 1-based count of closed rounds in this session.
    pub round: u64,
    /// Whether the buyer accepted.
    pub accepted: bool,
    /// The price that was posted.
    pub posted_price: f64,
    /// Revenue earned this round (`posted_price` on a sale, zero otherwise).
    pub revenue: f64,
    /// Exact single-round regret, when the outcome carried a market value.
    pub regret: Option<f64>,
    /// Width of the knowledge set along the query direction when the quote
    /// was issued — the regret *proxy* available without ground truth.
    pub uncertainty_width: f64,
}

/// One request of a [`PricingSession::serve_batch`] call: either open a round
/// (quote) or close the open one (observe).
#[derive(Debug, Clone, Copy)]
pub enum BatchRequest<'a> {
    /// Quote a price for a query, opening a round
    /// ([`PricingSession::step`]).
    Quote {
        /// The arriving query's feature vector.
        features: &'a Vector,
        /// The data owner's reserve price for this query.
        reserve_price: f64,
    },
    /// Close the open round with the buyer's decision
    /// ([`PricingSession::observe`]).
    Observe(StepOutcome),
}

/// The response to one [`BatchRequest`], in request order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BatchResponse {
    /// The quote issued for a [`BatchRequest::Quote`].
    Quoted(Quote),
    /// The round record for a [`BatchRequest::Observe`] (`None` when no
    /// round was open and the feedback was dropped).
    Observed(Option<ObservedRound>),
}

/// A round that has been quoted but not yet observed.
#[derive(Debug, Clone)]
struct PendingStep {
    quote: Quote,
    reserve_price: f64,
    /// When the quote was issued; `None` when latency tracking is disabled
    /// (serving sessions skip the clock read on the hot path entirely).
    started: Option<Instant>,
}

/// A drivable pricing session: one mechanism, one regret ledger, stepped one
/// query at a time.
///
/// The session is *re-entrant* in the serving sense: every call to
/// [`PricingSession::step`] opens a round and every call to
/// [`PricingSession::observe`] closes it, so a driver can hold thousands of
/// sessions and interleave their rounds freely.  A `step` issued while a
/// round is still open abandons the open round (counted in
/// [`PricingSession::abandoned_rounds`]) rather than panicking — a serving
/// engine must survive clients that never report back.
#[derive(Debug, Clone)]
pub struct PricingSession<M> {
    mechanism: M,
    options: SimulationOptions,
    tracker: RegretTracker,
    checkpoints: Vec<usize>,
    next_checkpoint: usize,
    trace: Vec<TraceSample>,
    latency: OnlineStats,
    latency_trace: SampleWindow,
    track_latency: bool,
    pending: Option<PendingStep>,
    pending_features: Vector,
    rounds_closed: u64,
    abandoned_rounds: u64,
    sales: u64,
    revenue: f64,
    width_sum: f64,
}

impl<M: PostedPriceMechanism> PricingSession<M> {
    /// Creates a session around a mechanism.
    ///
    /// `horizon` is a hint for the regret-trace checkpoints (the session
    /// keeps working past it); `options` control trace recording exactly as
    /// they do for [`Simulation`](crate::simulation::Simulation).
    #[must_use]
    pub fn new(mechanism: M, horizon: usize, options: SimulationOptions) -> Self {
        let checkpoints = log_spaced_checkpoints(horizon, options.trace_points);
        Self {
            mechanism,
            options,
            tracker: RegretTracker::new(options.keep_full_trace),
            trace: Vec::with_capacity(checkpoints.len()),
            checkpoints,
            next_checkpoint: 0,
            latency: OnlineStats::new(),
            latency_trace: SampleWindow::new(LATENCY_TRACE_CAP),
            track_latency: true,
            pending: None,
            pending_features: Vector::zeros(0),
            rounds_closed: 0,
            abandoned_rounds: 0,
            sales: 0,
            revenue: 0.0,
            width_sum: 0.0,
        }
    }

    /// Disables the per-round latency trace (the service measures service
    /// latency per shard instead; the step→observe wall-clock gap would
    /// measure the *driver's* round trip, not the mechanism).
    #[must_use]
    pub fn without_latency_tracking(mut self) -> Self {
        self.track_latency = false;
        self
    }

    /// Seeds the session with a previously captured regret ledger — the
    /// snapshot-restore path of `pdm-service`.  The tracker continues
    /// accumulating from the report bit-identically, and the session-level
    /// revenue/sales/round counters are rebuilt from it so the accessors
    /// stay consistent with [`PricingSession::tracker`].
    ///
    /// A report only covers rounds that carried ground-truth market values;
    /// a session that also served production (accept-only) rounds should
    /// follow up with [`PricingSession::restore_counters`] to reinstate the
    /// exact session-level totals.
    pub fn restore_ledger(&mut self, report: &crate::regret::RegretReport) {
        self.tracker = RegretTracker::from_report(report);
        self.rounds_closed = report.rounds as u64;
        self.sales = report.sales as u64;
        self.revenue = report.cumulative_revenue;
    }

    /// Restores the session-level counters captured alongside a persisted
    /// ledger.  These are wider than the regret report: production
    /// (accept-only) rounds carry no ground truth, so they count here —
    /// [`PricingSession::rounds_closed`], [`PricingSession::sales`],
    /// [`PricingSession::revenue`], [`PricingSession::regret_proxy`] — but
    /// not in the tracker.
    pub fn restore_counters(
        &mut self,
        rounds_closed: u64,
        sales: u64,
        revenue: f64,
        width_sum: f64,
    ) {
        self.rounds_closed = rounds_closed;
        self.sales = sales;
        self.revenue = revenue;
        self.width_sum = width_sum;
    }

    /// Quotes a price for one arriving query, opening a round.
    ///
    /// If a previous round is still open it is abandoned (no feedback, no
    /// regret accounting) and counted in
    /// [`PricingSession::abandoned_rounds`].
    pub fn step(&mut self, features: &Vector, reserve_price: f64) -> Quote {
        self.abandon_round();
        // pdm-lint: allow(no-ambient-clock) reason="optional latency trace for simulation figures; serving sessions run without_latency_tracking and never read the clock"
        let started = self.track_latency.then(Instant::now);
        let quote = self.mechanism.quote(features, reserve_price);
        self.pending_features.copy_from(features);
        self.pending = Some(PendingStep {
            quote,
            reserve_price,
            started,
        });
        quote
    }

    /// Quotes a price for a query whose sellable supply has been throttled:
    /// coordinates whose owners can no longer sell (e.g. their privacy
    /// budgets are exhausted) are zeroed before the mechanism prices the
    /// query, so the posted price reflects only the data that is actually
    /// for sale.
    ///
    /// Returns `None` — without opening a round or abandoning a pending one
    /// — when the mask retires every non-zero coordinate: nothing is left
    /// to sell, so there is nothing to quote.  Otherwise this is exactly
    /// [`PricingSession::step`] on the throttled vector.
    ///
    /// # Panics
    /// Panics when `active.len() != features.len()`.
    pub fn step_throttled(
        &mut self,
        features: &Vector,
        active: &[bool],
        reserve_price: f64,
    ) -> Option<Quote> {
        assert_eq!(
            active.len(),
            features.len(),
            "supply mask must cover every feature coordinate"
        );
        let mut throttled = features.clone();
        let mut sellable = false;
        for (coordinate, &keep) in throttled.as_mut_slice().iter_mut().zip(active) {
            if !keep {
                *coordinate = 0.0;
            } else if *coordinate != 0.0 {
                sellable = true;
            }
        }
        if !sellable {
            return None;
        }
        Some(self.step(&throttled, reserve_price))
    }

    /// Abandons the open round without feedback or regret accounting,
    /// counted in [`PricingSession::abandoned_rounds`]; a no-op when no
    /// round is open.  Callers that refuse a request after a quote was
    /// issued use this to drop the round state explicitly instead of
    /// leaving it for the next [`PricingSession::step`] to overwrite.
    pub fn abandon_round(&mut self) {
        if self.pending.take().is_some() {
            self.abandoned_rounds += 1;
        }
    }

    /// Closes the open round with the buyer's decision.
    ///
    /// Returns `None` when no round is open (the feedback is dropped).  When
    /// the outcome carries a market value, the session's regret ledger
    /// assumes the standard acceptance rule `p ≤ v` — the same rule the
    /// simulation loop applies.
    pub fn observe(&mut self, outcome: StepOutcome) -> Option<ObservedRound> {
        let pending = self.pending.take()?;
        self.mechanism
            .observe(&self.pending_features, &pending.quote, outcome.accepted);
        if let Some(started) = pending.started {
            let micros = started.elapsed().as_secs_f64() * 1e6;
            self.latency.push(micros);
            self.latency_trace.push(micros);
        }

        self.rounds_closed += 1;
        let round_revenue = if outcome.accepted {
            self.sales += 1;
            self.revenue += pending.quote.posted_price;
            pending.quote.posted_price
        } else {
            0.0
        };
        let width = pending.quote.uncertainty_width();
        self.width_sum += width;

        let regret = outcome.market_value.map(|value| {
            let record =
                self.tracker
                    .record(value, pending.reserve_price, pending.quote.posted_price);
            let t = self.tracker.rounds();
            while self.next_checkpoint < self.checkpoints.len()
                && self.checkpoints[self.next_checkpoint] <= t
            {
                if self.checkpoints[self.next_checkpoint] == t {
                    self.trace.push(TraceSample {
                        round: t,
                        cumulative_regret: self.tracker.cumulative_regret(),
                        cumulative_market_value: self.tracker.cumulative_market_value(),
                        regret_ratio: self.tracker.regret_ratio(),
                    });
                }
                self.next_checkpoint += 1;
            }
            record.regret
        });

        Some(ObservedRound {
            round: self.rounds_closed,
            accepted: outcome.accepted,
            posted_price: pending.quote.posted_price,
            revenue: round_revenue,
            regret,
            uncertainty_width: width,
        })
    }

    /// Drains a batch of interleaved quote/observe requests in order,
    /// appending one [`BatchResponse`] per request to `out`.
    ///
    /// Semantically identical to calling [`PricingSession::step`] /
    /// [`PricingSession::observe`] once per request — every counter, ledger
    /// entry, and quote evolves bit-for-bit the same — but lets a queue
    ///-draining driver (the sharded serving engine) hand a whole same-tenant
    /// run to the session at once.  `out` is appended to, not cleared.
    pub fn serve_batch<'a, I>(&mut self, requests: I, out: &mut Vec<BatchResponse>)
    where
        I: IntoIterator<Item = BatchRequest<'a>>,
    {
        for request in requests {
            out.push(match request {
                BatchRequest::Quote {
                    features,
                    reserve_price,
                } => BatchResponse::Quoted(self.step(features, reserve_price)),
                BatchRequest::Observe(outcome) => BatchResponse::Observed(self.observe(outcome)),
            });
        }
    }

    /// The mechanism being driven.
    #[must_use]
    pub fn mechanism(&self) -> &M {
        &self.mechanism
    }

    /// Approximate resident memory of this session: the mechanism's
    /// learned state (its [`PostedPriceMechanism::memory_footprint_bytes`]
    /// hook) plus
    /// the fixed-size session bookkeeping itself.  A serving layer that
    /// pages tenant sessions in and out reads this to budget its resident
    /// set and to report memory-per-tenant.
    #[must_use]
    pub fn memory_footprint_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.mechanism.memory_footprint_bytes()
    }

    /// The regret ledger accumulated from outcomes that carried a market
    /// value.
    #[must_use]
    pub fn tracker(&self) -> &RegretTracker {
        &self.tracker
    }

    /// Number of rounds closed via [`PricingSession::observe`].
    #[must_use]
    pub fn rounds_closed(&self) -> u64 {
        self.rounds_closed
    }

    /// Number of rounds abandoned by a `step` issued over an open round.
    #[must_use]
    pub fn abandoned_rounds(&self) -> u64 {
        self.abandoned_rounds
    }

    /// Number of accepted quotes.
    #[must_use]
    pub fn sales(&self) -> u64 {
        self.sales
    }

    /// Cumulative revenue across closed rounds.
    #[must_use]
    pub fn revenue(&self) -> f64 {
        self.revenue
    }

    /// Cumulative quote uncertainty width — the regret proxy available
    /// without ground-truth market values (it shrinks as learning
    /// converges).
    #[must_use]
    pub fn regret_proxy(&self) -> f64 {
        self.width_sum
    }

    /// Whether a round is currently open (quoted but not observed).
    #[must_use]
    pub fn has_pending(&self) -> bool {
        self.pending.is_some()
    }

    /// Recording options the session was created with.
    #[must_use]
    pub fn options(&self) -> SimulationOptions {
        self.options
    }

    /// Finalises the session into the same [`SimulationOutcome`] the
    /// monolithic loop produced, handing the trained mechanism back.
    #[must_use]
    pub fn finish(self) -> (SimulationOutcome, M) {
        let percentiles = self
            .latency_trace
            .quantiles(&[0.50, 0.99])
            .unwrap_or_else(|_| vec![f64::NAN, f64::NAN]);
        let outcome = SimulationOutcome {
            mechanism_name: self.mechanism.name(),
            report: self.tracker.report(),
            trace: self.trace,
            full_trace: self.tracker.trace().to_vec(),
            round_latency_micros: self.latency,
            round_latency_p50_micros: percentiles[0],
            round_latency_p99_micros: percentiles[1],
            memory_footprint_bytes: self.mechanism.memory_footprint_bytes(),
        };
        (outcome, self.mechanism)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::environment::{Environment, SyntheticLinearEnvironment};
    use crate::mechanism::{EllipsoidPricing, PricingConfig};
    use crate::model::LinearModel;
    use crate::uncertainty::NoiseModel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn session(dim: usize, horizon: usize) -> PricingSession<EllipsoidPricing<LinearModel>> {
        let config = PricingConfig::new(2.0 * (dim as f64).sqrt(), horizon).with_reserve(true);
        PricingSession::new(
            EllipsoidPricing::new(LinearModel::new(dim), config),
            horizon,
            SimulationOptions::default(),
        )
    }

    #[test]
    fn step_then_observe_closes_a_round() {
        let mut s = session(3, 100);
        let x = Vector::from_slice(&[0.5, 0.5, 0.5]);
        let quote = s.step(&x, 0.2);
        assert!(s.has_pending());
        let record = s
            .observe(StepOutcome::with_value(quote.posted_price <= 1.0, 1.0))
            .expect("a round was open");
        assert!(!s.has_pending());
        assert_eq!(record.round, 1);
        assert_eq!(s.rounds_closed(), 1);
        assert_eq!(s.tracker().rounds(), 1);
        assert_eq!(record.posted_price, quote.posted_price);
        assert!(record.regret.is_some());
        assert!(record.uncertainty_width > 0.0);
    }

    #[test]
    fn throttled_step_prices_the_masked_vector() {
        // A fully-open mask is a plain step; a fully-throttled one declines
        // to quote without opening (or abandoning) anything.
        let mut a = session(3, 100);
        let mut b = session(3, 100);
        let x = Vector::from_slice(&[0.5, 0.5, 0.5]);
        let open = a.step_throttled(&x, &[true, true, true], 0.2).unwrap();
        assert_eq!(
            open.posted_price.to_bits(),
            b.step(&x, 0.2).posted_price.to_bits()
        );
        a.observe(StepOutcome::accept_only(true));
        assert!(a.step_throttled(&x, &[false, false, false], 0.2).is_none());
        assert!(!a.has_pending());
        assert_eq!(a.abandoned_rounds(), 0);

        // A partial mask prices exactly the zeroed vector.
        let masked = a
            .step_throttled(&x, &[true, false, true], 0.2)
            .expect("two coordinates still sell");
        b.observe(StepOutcome::accept_only(true));
        let by_hand = b.step(&Vector::from_slice(&[0.5, 0.0, 0.5]), 0.2);
        assert_eq!(
            masked.posted_price.to_bits(),
            by_hand.posted_price.to_bits()
        );

        // A mask that keeps only zero coordinates has nothing to sell.
        let mut c = session(3, 100);
        let sparse = Vector::from_slice(&[0.0, 0.7, 0.0]);
        assert!(c
            .step_throttled(&sparse, &[true, false, true], 0.1)
            .is_none());
        assert_eq!(c.rounds_closed(), 0);
    }

    #[test]
    fn observe_without_step_is_dropped() {
        let mut s = session(2, 10);
        assert!(s.observe(StepOutcome::accept_only(true)).is_none());
        assert_eq!(s.rounds_closed(), 0);
    }

    #[test]
    fn restepping_abandons_the_open_round() {
        let mut s = session(2, 10);
        let x = Vector::from_slice(&[1.0, 0.0]);
        let _ = s.step(&x, 0.0);
        let _ = s.step(&x, 0.0);
        assert_eq!(s.abandoned_rounds(), 1);
        assert!(s.observe(StepOutcome::accept_only(false)).is_some());
        assert_eq!(s.rounds_closed(), 1);
        // The abandoned round never reached the tracker.
        assert_eq!(s.tracker().rounds(), 0);
    }

    #[test]
    fn accept_only_outcomes_track_revenue_but_not_regret() {
        let mut s = session(2, 50);
        let x = Vector::from_slice(&[0.6, 0.8]);
        let quote = s.step(&x, 0.1);
        let record = s.observe(StepOutcome::accept_only(true)).unwrap();
        assert!(record.regret.is_none());
        assert_eq!(record.revenue, quote.posted_price);
        assert_eq!(s.sales(), 1);
        assert_eq!(s.revenue(), quote.posted_price);
        assert!(s.regret_proxy() > 0.0);
        // No ground truth ⇒ the regret ledger stays empty.
        assert_eq!(s.tracker().rounds(), 0);
        let (outcome, _mechanism) = s.finish();
        assert_eq!(outcome.report.rounds, 0);
    }

    #[test]
    fn session_driven_loop_matches_simulation_bit_for_bit() {
        // The load-bearing property: driving the session round by round
        // reproduces the monolithic Simulation exactly, because Simulation
        // *is* a thin client of the session.
        let dim = 4;
        let rounds = 400;
        let build_env = || {
            let mut rng = StdRng::seed_from_u64(42);
            SyntheticLinearEnvironment::builder(dim)
                .rounds(rounds)
                .noise(NoiseModel::Gaussian { std_dev: 0.01 })
                .build(&mut rng)
        };
        let config = PricingConfig::for_environment(&build_env(), rounds).with_reserve(true);

        // Hand-driven session.
        let mut env = build_env();
        let mut rng = StdRng::seed_from_u64(7);
        let mut s = PricingSession::new(
            EllipsoidPricing::new(LinearModel::new(dim), config),
            rounds,
            SimulationOptions::default(),
        );
        while let Some(round) = env.next_round(&mut rng) {
            let quote = s.step(&round.features, round.reserve_price);
            let accepted = quote.posted_price <= round.market_value;
            s.observe(StepOutcome::with_value(accepted, round.market_value));
        }
        let (by_hand, _mechanism) = s.finish();

        // The packaged loop.
        let mut rng = StdRng::seed_from_u64(7);
        let mechanism = EllipsoidPricing::new(LinearModel::new(dim), config);
        let by_simulation =
            crate::simulation::Simulation::new(build_env(), mechanism).run(&mut rng);

        assert_eq!(
            by_hand.report.cumulative_regret,
            by_simulation.report.cumulative_regret
        );
        assert_eq!(
            by_hand.report.cumulative_revenue,
            by_simulation.report.cumulative_revenue
        );
        assert_eq!(by_hand.report.sales, by_simulation.report.sales);
        assert_eq!(by_hand.trace.len(), by_simulation.trace.len());
        for (a, b) in by_hand.trace.iter().zip(&by_simulation.trace) {
            assert_eq!(a.round, b.round);
            assert_eq!(a.cumulative_regret, b.cumulative_regret);
        }
    }

    #[test]
    fn latency_trace_is_bounded_for_long_lived_sessions() {
        let mut s = session(2, 10);
        let x = Vector::from_slice(&[0.6, 0.8]);
        let rounds = LATENCY_TRACE_CAP + 50;
        for _ in 0..rounds {
            let _ = s.step(&x, 0.1);
            s.observe(StepOutcome::accept_only(false));
        }
        // The percentile trace capped out; the streaming summary saw all.
        assert_eq!(s.latency_trace.len(), LATENCY_TRACE_CAP);
        assert_eq!(s.latency.count(), rounds as u64);
        let (outcome, _m) = s.finish();
        assert!(outcome.round_latency_p50_micros.is_finite());
    }

    #[test]
    fn latency_tracking_can_be_disabled() {
        let mut s = session(2, 10).without_latency_tracking();
        let x = Vector::from_slice(&[1.0, 0.0]);
        let _ = s.step(&x, 0.0);
        s.observe(StepOutcome::with_value(false, 0.5));
        let (outcome, _m) = s.finish();
        assert_eq!(outcome.round_latency_micros.count(), 0);
        assert!(outcome.round_latency_p50_micros.is_nan());
        // The report itself is still complete.
        assert_eq!(outcome.report.rounds, 1);
    }
}
