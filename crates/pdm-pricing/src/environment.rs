//! Round generators: who shows up, what are they worth, and what is the
//! seller-side floor.
//!
//! An [`Environment`] produces one [`Round`] per trading period — the raw
//! feature vector the buyer's product exposes, the reserve price the seller
//! must respect, and the (hidden) market value used only by the simulation to
//! decide acceptance and account regret.
//!
//! Two synthetic environments cover the paper's simulation studies:
//!
//! * [`SyntheticLinearEnvironment`] mirrors the noisy-linear-query setup of
//!   Section V-A (unit-norm feature vectors, weight vector of norm `√(2n)`,
//!   reserve equal to the sum of features).
//! * [`SyntheticModelEnvironment`] generalises it to any
//!   [`MarketValueModel`] and reserve policy (used for the log-linear and
//!   logistic applications and for property tests).
//!
//! [`AdversarialLemma8Environment`] generates the two-phase adversarial
//! sequence from Lemma 8 / Fig. 6; because the adversary's reserve depends on
//! the mechanism's internal state, it is *driven* rather than iterated — see
//! [`AdversarialLemma8Environment::play`].

use crate::mechanism::{ContextualPricing, PostedPriceMechanism};
use crate::model::{LinearModel, MarketValueModel};
use crate::regret::RegretTracker;
use crate::uncertainty::NoiseModel;
use pdm_ellipsoid::KnowledgeSet;
use pdm_linalg::{sampling, Vector};
use rand::Rng;

/// One trading round as seen by the simulation loop.
#[derive(Debug, Clone, PartialEq)]
pub struct Round {
    /// Raw feature vector `x_t` of the product (before the model's map `φ`).
    pub features: Vector,
    /// Reserve price `q_t` in market space.
    pub reserve_price: f64,
    /// Ground-truth market value `v_t` in market space (hidden from the
    /// mechanism).
    pub market_value: f64,
}

/// A source of trading rounds.
pub trait Environment {
    /// Dimension of the raw feature vectors.
    fn input_dim(&self) -> usize;

    /// Total number of rounds the environment will produce.
    fn horizon(&self) -> usize;

    /// A bound on ‖θ*‖ the broker may assume when initialising her knowledge
    /// set (the paper's `R`).
    fn weight_norm_bound(&self) -> f64;

    /// A bound on ‖φ(x)‖ (the paper's `S`).
    fn feature_norm_bound(&self) -> f64;

    /// Produces the next round, or `None` once the horizon is exhausted.
    fn next_round(&mut self, rng: &mut dyn rand::RngCore) -> Option<Round>;
}

/// How an environment derives the reserve price of each round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReservePolicy {
    /// No reserve (the reserve is zero in every round).
    None,
    /// The reserve is the sum of the raw features — the "total privacy
    /// compensation" rule of the data-market application.
    SumOfFeatures,
    /// The reserve is a fixed fraction of the market value.
    FractionOfValue(f64),
    /// The reserve's *link-space* value is a fixed fraction of the market
    /// value's link-space value (the `q_t/v_t` log-ratio knob of the
    /// accommodation-rental experiment).
    FractionOfLinkValue(f64),
}

/// How raw feature vectors are sampled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FeatureDistribution {
    /// I.i.d. standard normal entries, then scaled to unit L2 norm
    /// (the paper's normalisation `‖x_t‖ = 1`).
    UnitNormGaussian,
    /// Absolute values of i.i.d. standard normal entries, scaled to unit L2
    /// norm.  This mirrors the data-market features, which are (non-negative)
    /// aggregated privacy compensations.
    UnitNormNonNegative,
    /// I.i.d. uniform entries on `[lo, hi]`, then scaled to unit norm.
    UnitNormUniform {
        /// Lower end of the per-coordinate range.
        lo: f64,
        /// Upper end of the per-coordinate range.
        hi: f64,
    },
    /// I.i.d. uniform entries on `[lo, hi]`, *not* normalised (used by the
    /// hedonic models whose features are physical quantities).
    RawUniform {
        /// Lower end of the per-coordinate range.
        lo: f64,
        /// Upper end of the per-coordinate range.
        hi: f64,
    },
}

impl FeatureDistribution {
    fn sample(&self, rng: &mut dyn rand::RngCore, dim: usize) -> Vector {
        match *self {
            FeatureDistribution::UnitNormGaussian => {
                sampling::standard_normal_vector(rng, dim).normalized()
            }
            FeatureDistribution::UnitNormNonNegative => sampling::standard_normal_vector(rng, dim)
                .map(f64::abs)
                .normalized(),
            FeatureDistribution::UnitNormUniform { lo, hi } => {
                sampling::uniform_vector(rng, dim, lo, hi).normalized()
            }
            FeatureDistribution::RawUniform { lo, hi } => {
                sampling::uniform_vector(rng, dim, lo, hi)
            }
        }
    }
}

/// Synthetic environment over an arbitrary market value model.
#[derive(Debug, Clone)]
pub struct SyntheticModelEnvironment<M> {
    model: M,
    theta_star: Vector,
    horizon: usize,
    produced: usize,
    reserve_policy: ReservePolicy,
    noise: NoiseModel,
    features: FeatureDistribution,
    weight_norm_bound: f64,
    feature_norm_bound: f64,
}

impl<M: MarketValueModel> SyntheticModelEnvironment<M> {
    /// Creates an environment with an explicit ground-truth weight vector.
    ///
    /// # Panics
    /// Panics when `theta_star` does not match the model's mapped dimension
    /// or `horizon == 0`.
    #[must_use]
    pub fn new(
        model: M,
        theta_star: Vector,
        horizon: usize,
        reserve_policy: ReservePolicy,
        noise: NoiseModel,
        features: FeatureDistribution,
    ) -> Self {
        assert_eq!(
            theta_star.len(),
            model.mapped_dim(),
            "theta_star must match the model's mapped dimension"
        );
        assert!(horizon > 0, "horizon must be positive");
        let weight_norm_bound = 2.0 * theta_star.norm().max(1.0);
        Self {
            model,
            theta_star,
            horizon,
            produced: 0,
            reserve_policy,
            noise,
            features,
            weight_norm_bound,
            feature_norm_bound: 1.0,
        }
    }

    /// Overrides the broker-visible bound on ‖θ*‖.
    #[must_use]
    pub fn with_weight_norm_bound(mut self, bound: f64) -> Self {
        self.weight_norm_bound = bound.max(1e-9);
        self
    }

    /// Overrides the broker-visible bound on ‖φ(x)‖.
    #[must_use]
    pub fn with_feature_norm_bound(mut self, bound: f64) -> Self {
        self.feature_norm_bound = bound.max(1e-9);
        self
    }

    /// The ground-truth weight vector (used by oracle baselines and tests).
    #[must_use]
    pub fn theta_star(&self) -> &Vector {
        &self.theta_star
    }

    /// The market value model.
    #[must_use]
    pub fn model(&self) -> &M {
        &self.model
    }

    fn reserve_for(&self, features: &Vector, link_value: f64) -> f64 {
        match self.reserve_policy {
            ReservePolicy::None => 0.0,
            ReservePolicy::SumOfFeatures => features.sum(),
            ReservePolicy::FractionOfValue(frac) => frac * self.model.link(link_value),
            ReservePolicy::FractionOfLinkValue(frac) => self.model.link(frac * link_value),
        }
    }
}

impl<M: MarketValueModel> Environment for SyntheticModelEnvironment<M> {
    fn input_dim(&self) -> usize {
        self.model.input_dim()
    }

    fn horizon(&self) -> usize {
        self.horizon
    }

    fn weight_norm_bound(&self) -> f64 {
        self.weight_norm_bound
    }

    fn feature_norm_bound(&self) -> f64 {
        self.feature_norm_bound
    }

    fn next_round(&mut self, rng: &mut dyn rand::RngCore) -> Option<Round> {
        if self.produced >= self.horizon {
            return None;
        }
        self.produced += 1;
        let features = self.features.sample(rng, self.model.input_dim());
        let noiseless_link = self.model.link_value(&features, &self.theta_star);
        let link_value = noiseless_link + self.noise.sample(rng);
        let market_value = self.model.link(link_value);
        let reserve_price = self.reserve_for(&features, noiseless_link);
        Some(Round {
            features,
            reserve_price,
            market_value,
        })
    }
}

/// Builder-style constructor for the noisy-linear-query environment of
/// Section V-A.
#[derive(Debug, Clone)]
pub struct SyntheticLinearEnvironmentBuilder {
    dim: usize,
    rounds: usize,
    noise: NoiseModel,
    reserve_fraction: Option<f64>,
    use_sum_of_features_reserve: bool,
    uniform_weights: bool,
}

/// The noisy-linear-query environment (linear model, unit-norm features,
/// weight vector of norm `√(2n)`, reserve = sum of features).
pub type SyntheticLinearEnvironment = SyntheticModelEnvironment<LinearModel>;

impl SyntheticLinearEnvironment {
    /// Starts building the Section V-A environment for `dim` features.
    #[must_use]
    pub fn builder(dim: usize) -> SyntheticLinearEnvironmentBuilder {
        SyntheticLinearEnvironmentBuilder {
            dim,
            rounds: 10_000,
            noise: NoiseModel::None,
            reserve_fraction: None,
            use_sum_of_features_reserve: true,
            uniform_weights: false,
        }
    }
}

impl SyntheticLinearEnvironmentBuilder {
    /// Sets the horizon `T`.
    #[must_use]
    pub fn rounds(mut self, rounds: usize) -> Self {
        self.rounds = rounds.max(1);
        self
    }

    /// Sets the market-value noise model.
    #[must_use]
    pub fn noise(mut self, noise: NoiseModel) -> Self {
        self.noise = noise;
        self
    }

    /// Uses a reserve equal to `fraction · v_t` instead of the sum of
    /// features.
    #[must_use]
    pub fn reserve_fraction(mut self, fraction: f64) -> Self {
        self.reserve_fraction = Some(fraction.max(0.0));
        self.use_sum_of_features_reserve = false;
        self
    }

    /// Disables the reserve price entirely.
    #[must_use]
    pub fn without_reserve(mut self) -> Self {
        self.reserve_fraction = None;
        self.use_sum_of_features_reserve = false;
        self
    }

    /// Draws the ground-truth weights from the uniform distribution on
    /// `[−1, 1]` instead of the Gaussian (both are used in Section V-A).
    #[must_use]
    pub fn uniform_weights(mut self, enable: bool) -> Self {
        self.uniform_weights = enable;
        self
    }

    /// Finalises the environment, sampling the ground-truth weight vector
    /// with the paper's normalisation ‖θ*‖ = √(2n).
    ///
    /// The weights model per-feature revenue-to-cost ratios: positive values
    /// spread around a common markup level.  Combined with the non-negative
    /// unit-norm features and the sum-of-features reserve this guarantees the
    /// paper's Section V-A property that the market value is at least the
    /// reserve price with high probability (Table I reports value/reserve
    /// ratios of ≈ 1.1–1.4 under the same construction).
    #[must_use]
    pub fn build<R: Rng + ?Sized>(self, rng: &mut R) -> SyntheticLinearEnvironment {
        let dim = self.dim.max(1);
        let raw = if self.uniform_weights {
            // Uniform markup ratios in [0.75, 1.25] around the common level.
            sampling::uniform_vector(rng, dim, 0.75, 1.25)
        } else {
            // Gaussian spread, truncated away from zero so every feature
            // carries a strictly positive markup.
            sampling::standard_normal_vector(rng, dim).map(|z| (1.0 + 0.2 * z).clamp(0.75, 1.25))
        };
        let target_norm = (2.0 * dim as f64).sqrt();
        let norm = raw.norm().max(1e-12);
        let theta_star = raw.scaled(target_norm / norm);
        let reserve_policy = if self.use_sum_of_features_reserve {
            ReservePolicy::SumOfFeatures
        } else if let Some(frac) = self.reserve_fraction {
            ReservePolicy::FractionOfValue(frac)
        } else {
            ReservePolicy::None
        };
        SyntheticModelEnvironment::new(
            LinearModel::new(dim),
            theta_star,
            self.rounds,
            reserve_policy,
            self.noise,
            FeatureDistribution::UnitNormNonNegative,
        )
        // The paper gives the broker the prior ‖θ*‖ ≤ 2√n.
        .with_weight_norm_bound(2.0 * (dim as f64).sqrt())
        .with_feature_norm_bound(1.0)
    }
}

/// An environment that replays a pre-computed list of rounds.
///
/// The dataset-backed experiments (accommodation rental over Airbnb-style
/// listings, impression pricing over Avazu-style click logs) first build
/// every round's features, reserve, and ground-truth value offline, then
/// replay them through the online mechanism; this type is that replay.
#[derive(Debug, Clone)]
pub struct ReplayEnvironment {
    rounds: Vec<Round>,
    cursor: usize,
    weight_norm_bound: f64,
    feature_norm_bound: f64,
}

impl ReplayEnvironment {
    /// Creates a replay over the given rounds with the broker-visible bounds
    /// `R` (on ‖θ*‖) and `S` (on ‖φ(x)‖).
    ///
    /// # Panics
    /// Panics when the round list is empty or the rounds have inconsistent
    /// feature dimensions.
    #[must_use]
    pub fn new(rounds: Vec<Round>, weight_norm_bound: f64, feature_norm_bound: f64) -> Self {
        assert!(!rounds.is_empty(), "replay requires at least one round");
        let dim = rounds[0].features.len();
        assert!(
            rounds.iter().all(|r| r.features.len() == dim),
            "all replayed rounds must share a feature dimension"
        );
        Self {
            rounds,
            cursor: 0,
            weight_norm_bound: weight_norm_bound.max(1e-9),
            feature_norm_bound: feature_norm_bound.max(1e-9),
        }
    }

    /// The replayed rounds.
    #[must_use]
    pub fn rounds(&self) -> &[Round] {
        &self.rounds
    }
}

impl Environment for ReplayEnvironment {
    fn input_dim(&self) -> usize {
        self.rounds[0].features.len()
    }

    fn horizon(&self) -> usize {
        self.rounds.len()
    }

    fn weight_norm_bound(&self) -> f64 {
        self.weight_norm_bound
    }

    fn feature_norm_bound(&self) -> f64 {
        self.feature_norm_bound
    }

    fn next_round(&mut self, _rng: &mut dyn rand::RngCore) -> Option<Round> {
        let round = self.rounds.get(self.cursor).cloned();
        if round.is_some() {
            self.cursor += 1;
        }
        round
    }
}

/// The adversarial two-phase sequence of Lemma 8 / Fig. 6.
///
/// Phase 1 (rounds `1..T/2`): the feature vector is the first basis vector
/// and the adversary sets the reserve price equal to the mechanism's current
/// middle price, forcing it to keep cutting along that single direction if it
/// is (incorrectly) willing to refine on conservative prices.
/// Phase 2 (rounds `T/2+1..T`): the feature vector switches to the second
/// basis vector, whose width has blown up for the misbehaving variant.
#[derive(Debug, Clone)]
pub struct AdversarialLemma8Environment {
    horizon: usize,
    theta_star: Vector,
}

impl AdversarialLemma8Environment {
    /// Creates the adversary for a horizon of `horizon` rounds in dimension 2
    /// with the given ground-truth weights.
    ///
    /// # Panics
    /// Panics when the weights are not two-dimensional or the horizon is
    /// smaller than 2.
    #[must_use]
    pub fn new(horizon: usize, theta_star: Vector) -> Self {
        assert_eq!(
            theta_star.len(),
            2,
            "the Lemma-8 adversary works in dimension 2"
        );
        assert!(horizon >= 2, "horizon must be at least 2");
        Self {
            horizon,
            theta_star,
        }
    }

    /// The feature vector the adversary plays in round `t` (1-based).
    #[must_use]
    pub fn features_for_round(&self, t: usize) -> Vector {
        if t <= self.horizon / 2 {
            Vector::basis(2, 0)
        } else {
            Vector::basis(2, 1)
        }
    }

    /// Drives a mechanism through the full adversarial game, returning the
    /// regret tracker (the caller inspects the cumulative regret).
    ///
    /// The adversary chooses each round's reserve price *after* inspecting
    /// the mechanism's current support bounds, which is why this cannot be
    /// expressed as a plain [`Environment`].
    pub fn play<M: MarketValueModel, K: KnowledgeSet>(
        &self,
        mechanism: &mut ContextualPricing<M, K>,
    ) -> RegretTracker {
        let mut tracker = RegretTracker::new(false);
        for t in 1..=self.horizon {
            let features = self.features_for_round(t);
            // pdm-lint: allow(no-unwrap-in-lib) reason="theta_star is constructed with dimension 2 a few lines above in the same builder"
            let value = features.dot(&self.theta_star).expect("dimension 2");
            let reserve = if t <= self.horizon / 2 {
                // Reserve = the current middle price along the first axis.
                let (lo, hi) = mechanism.support_bounds(&features);
                0.5 * (lo + hi)
            } else {
                0.0
            };
            let quote = mechanism.quote(&features, reserve);
            let accepted = quote.posted_price <= value;
            mechanism.observe(&features, &quote, accepted);
            tracker.record(value, reserve, quote.posted_price);
        }
        tracker
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mechanism::{EllipsoidPricing, PricingConfig};
    use crate::model::{LogLinearModel, LogisticModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn linear_environment_matches_paper_normalisation() {
        let mut rng = StdRng::seed_from_u64(11);
        let env = SyntheticLinearEnvironment::builder(20)
            .rounds(50)
            .build(&mut rng);
        let n = 20.0_f64;
        assert!((env.theta_star().norm() - (2.0 * n).sqrt()).abs() < 1e-9);
        assert_eq!(env.input_dim(), 20);
        assert_eq!(env.horizon(), 50);
        assert!((env.weight_norm_bound() - 2.0 * n.sqrt()).abs() < 1e-9);
        assert!((env.feature_norm_bound() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn linear_environment_rounds_have_unit_norm_features_and_sum_reserve() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut env = SyntheticLinearEnvironment::builder(10)
            .rounds(20)
            .build(&mut rng);
        let mut count = 0;
        while let Some(round) = env.next_round(&mut rng) {
            count += 1;
            assert!((round.features.norm() - 1.0).abs() < 1e-9);
            assert!((round.reserve_price - round.features.sum()).abs() < 1e-9);
            assert!(round.market_value.is_finite());
        }
        assert_eq!(count, 20);
        assert!(
            env.next_round(&mut rng).is_none(),
            "horizon must be enforced"
        );
    }

    #[test]
    fn reserve_policies_produce_expected_floors() {
        let mut rng = StdRng::seed_from_u64(13);
        let theta = Vector::from_slice(&[1.0, 1.0]);
        // Fraction-of-value reserve under the linear model.
        let mut env = SyntheticModelEnvironment::new(
            LinearModel::new(2),
            theta.clone(),
            5,
            ReservePolicy::FractionOfValue(0.5),
            NoiseModel::None,
            FeatureDistribution::UnitNormGaussian,
        );
        while let Some(round) = env.next_round(&mut rng) {
            // Without noise, v = x·θ and q = v/2 exactly.
            assert!((round.reserve_price - 0.5 * round.market_value).abs() < 1e-9);
        }
        // Fraction-of-link-value reserve under the log-linear model:
        // ln q = 0.6 · ln v.
        let mut env = SyntheticModelEnvironment::new(
            LogLinearModel::new(2),
            theta,
            5,
            ReservePolicy::FractionOfLinkValue(0.6),
            NoiseModel::None,
            FeatureDistribution::RawUniform { lo: 0.1, hi: 1.0 },
        );
        while let Some(round) = env.next_round(&mut rng) {
            let ratio = round.reserve_price.ln() / round.market_value.ln();
            assert!((ratio - 0.6).abs() < 1e-6, "log-ratio was {ratio}");
        }
    }

    #[test]
    fn none_reserve_policy_gives_zero_reserve() {
        let mut rng = StdRng::seed_from_u64(14);
        let mut env = SyntheticModelEnvironment::new(
            LogisticModel::new(3),
            Vector::from_slice(&[1.0, -1.0, 0.5]),
            3,
            ReservePolicy::None,
            NoiseModel::None,
            FeatureDistribution::UnitNormGaussian,
        );
        while let Some(round) = env.next_round(&mut rng) {
            assert_eq!(round.reserve_price, 0.0);
            assert!((0.0..=1.0).contains(&round.market_value));
        }
    }

    #[test]
    fn noise_perturbs_market_values() {
        let mut rng = StdRng::seed_from_u64(15);
        let theta = Vector::from_slice(&[1.0, 1.0]);
        let make = |noise| {
            SyntheticModelEnvironment::new(
                LinearModel::new(2),
                theta.clone(),
                1,
                ReservePolicy::None,
                noise,
                FeatureDistribution::UnitNormGaussian,
            )
        };
        // Same RNG stream ⇒ same features; the noisy value must differ from
        // the noiseless one.
        let mut quiet = make(NoiseModel::None);
        let mut noisy = make(NoiseModel::Gaussian { std_dev: 0.5 });
        let mut rng2 = StdRng::seed_from_u64(15);
        let a = quiet.next_round(&mut rng).unwrap();
        let b = noisy.next_round(&mut rng2).unwrap();
        assert_eq!(a.features, b.features);
        assert!((a.market_value - b.market_value).abs() > 1e-12);
    }

    #[test]
    fn uniform_weight_option_changes_theta() {
        let mut rng_a = StdRng::seed_from_u64(16);
        let mut rng_b = StdRng::seed_from_u64(16);
        let gaussian = SyntheticLinearEnvironment::builder(5).build(&mut rng_a);
        let uniform = SyntheticLinearEnvironment::builder(5)
            .uniform_weights(true)
            .build(&mut rng_b);
        assert_ne!(gaussian.theta_star(), uniform.theta_star());
        // Both are normalised to the same length.
        assert!((gaussian.theta_star().norm() - uniform.theta_star().norm()).abs() < 1e-9);
    }

    #[test]
    fn replay_environment_replays_in_order_and_stops() {
        let rounds = vec![
            Round {
                features: Vector::from_slice(&[1.0, 0.0]),
                reserve_price: 0.5,
                market_value: 1.0,
            },
            Round {
                features: Vector::from_slice(&[0.0, 1.0]),
                reserve_price: 0.7,
                market_value: 2.0,
            },
        ];
        let mut env = ReplayEnvironment::new(rounds.clone(), 2.0, 1.0);
        assert_eq!(env.horizon(), 2);
        assert_eq!(env.input_dim(), 2);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(env.next_round(&mut rng), Some(rounds[0].clone()));
        assert_eq!(env.next_round(&mut rng), Some(rounds[1].clone()));
        assert_eq!(env.next_round(&mut rng), None);
        assert_eq!(env.rounds().len(), 2);
    }

    #[test]
    fn lemma8_adversary_switches_direction_at_half_time() {
        let adv = AdversarialLemma8Environment::new(10, Vector::from_slice(&[0.5, 0.5]));
        assert_eq!(adv.features_for_round(1).as_slice(), &[1.0, 0.0]);
        assert_eq!(adv.features_for_round(5).as_slice(), &[1.0, 0.0]);
        assert_eq!(adv.features_for_round(6).as_slice(), &[0.0, 1.0]);
        assert_eq!(adv.features_for_round(10).as_slice(), &[0.0, 1.0]);
    }

    #[test]
    fn lemma8_misbehaving_variant_accumulates_more_regret() {
        let theta = Vector::from_slice(&[0.5, 0.5]);
        let adv = AdversarialLemma8Environment::new(400, theta);
        let base_config = PricingConfig::new(1.0, 400).with_reserve(true);

        let mut correct = EllipsoidPricing::new(LinearModel::new(2), base_config);
        let correct_regret = adv.play(&mut correct).cumulative_regret();

        let mut misbehaving = EllipsoidPricing::new(
            LinearModel::new(2),
            base_config.with_conservative_cuts(true),
        );
        let misbehaving_regret = adv.play(&mut misbehaving).cumulative_regret();

        assert!(
            misbehaving_regret > correct_regret,
            "cutting on conservative prices must hurt under the Lemma-8 adversary \
             ({misbehaving_regret} vs {correct_regret})"
        );
    }
}
