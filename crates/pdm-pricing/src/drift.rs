//! The non-stationarity layer: drifting markets and drift-aware mechanisms.
//!
//! The paper's mechanism assumes one fixed weight vector `θ*` per data
//! query; a production personal-data market faces *drifting* valuations —
//! the regime where reserve/pricing policies must be re-tested (Paes Leme
//! et al.'s field guide to personalized reserves; Derakhshan et al.'s
//! data-driven reserve setting).  This module supplies both sides of that
//! stress test:
//!
//! * **Drifting markets.**  A [`DriftSchedule`] describes how the hidden
//!   weights move — [`DriftKind::PiecewiseJumps`] (stationary phases
//!   separated by abrupt re-draws), [`DriftKind::Rotation`] (a slow
//!   continuous rotation of `θ*` through markup space), and
//!   [`DriftKind::AdversarialShift`] (a single worst-case reversal that
//!   flips high-markup features to low exactly once).  [`DriftProcess`] is
//!   the seeded, deterministic evolution of a raw markup vector under a
//!   schedule; [`DriftingLinearEnvironment`] plugs it into the paper's
//!   Section V-A linear market, and `pdm-auction` reuses the same process
//!   to move bidder valuations.
//!
//! * **Drift-aware mechanisms.**  [`DriftAwarePricing`] wraps the paper's
//!   ellipsoid engine with a per-tenant [`DriftPolicy`]:
//!   [`DriftPolicy::Restart`] re-initialises the knowledge set to the prior
//!   ball when a windowed [`SurprisalDriftDetector`] on accept/reject
//!   surprisal fires, and [`DriftPolicy::Discounted`] inflates the
//!   ellipsoid a little every round (the forgetting-factor analogue of a
//!   sliding window) so old cuts decay and a moved `θ*` is re-admitted.
//!   [`DriftPolicy::Static`] delegates bit-for-bit to the wrapped
//!   mechanism, so stationary tenants pay nothing.
//!
//! The *surprisal* signal is feedback that contradicts the entire knowledge
//! set: a **rejected conservative** price (the set claimed the sale was
//! near-certain) or an **accepted certain-no-sale** quote (the set claimed
//! no value could reach the reserve).  Under the stationary model both are
//! `O(δ)`-probability events, so a handful inside a short window is strong
//! evidence that `θ*` moved.

use crate::environment::{Environment, ReservePolicy, Round};
use crate::mechanism::{EllipsoidPricing, PostedPriceMechanism, PricingConfig, Quote, QuoteKind};
use crate::model::{LinearModel, MarketValueModel};
use crate::uncertainty::NoiseModel;
use pdm_ellipsoid::Ellipsoid;
use pdm_linalg::{sampling, Vector};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::VecDeque;

/// Lower end of the markup band fresh drift draws come from (matches the
/// Section V-A weight construction: per-feature revenue-to-cost ratios
/// spread around a common level).
const MARKUP_LO: f64 = 0.75;
/// Upper end of the markup band fresh drift draws come from.
const MARKUP_HI: f64 = 1.25;

/// Default surprisal window of the restart policy's drift detector.
pub const DEFAULT_DETECTOR_WINDOW: usize = 24;
/// Default firing threshold (surprises inside the window) of the detector.
pub const DEFAULT_DETECTOR_THRESHOLD: usize = 6;

/// How the hidden weights move over time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DriftKind {
    /// Piecewise-stationary: every `period` rounds the markup vector jumps
    /// towards a fresh draw (`magnitude` 1 is a full re-draw, 0 is no
    /// drift).
    PiecewiseJumps {
        /// Rounds per stationary phase.
        period: u64,
        /// Blend weight of the fresh draw at each jump, clamped to `[0, 1]`.
        magnitude: f64,
    },
    /// Slow rotation: every round the markup vector moves `rate` of the way
    /// towards a seeded target; reached targets are re-drawn, so `θ*`
    /// wanders continuously through markup space.
    Rotation {
        /// Per-round blend rate towards the current target, in `[0, 1]`.
        rate: f64,
    },
    /// A single worst-case shift at `at_round`: the markup vector is
    /// reflected about its own mean, so the features the mechanism learned
    /// to price high become the cheap ones and vice versa.
    AdversarialShift {
        /// The (0-based) round count after which the shift applies.
        at_round: u64,
        /// Blend weight of the reflection, clamped to `[0, 1]`.
        magnitude: f64,
    },
}

impl DriftKind {
    /// Machine-readable kind name used in grid labels and the BENCH schema.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            DriftKind::PiecewiseJumps { .. } => "piecewise",
            DriftKind::Rotation { .. } => "rotation",
            DriftKind::AdversarialShift { .. } => "adversarial",
        }
    }

    /// The round count after which the first discrete shift has been
    /// applied (0 for the continuous rotation, whose drift starts
    /// immediately).  Benchmarks use this to split *post-shift* regret out
    /// of the cumulative total.
    #[must_use]
    pub fn first_shift_round(&self) -> u64 {
        match *self {
            DriftKind::PiecewiseJumps { period, .. } => period.max(1),
            DriftKind::Rotation { .. } => 0,
            DriftKind::AdversarialShift { at_round, .. } => at_round,
        }
    }
}

/// A drift kind plus the seed of its private randomness: the full,
/// reproducible description of one market's non-stationarity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftSchedule {
    /// How the weights move.
    pub kind: DriftKind,
    /// Seed of the drift's own RNG stream (jump targets, rotation targets).
    /// Independent of the feature/bidder streams, so two policies facing
    /// the same schedule see the exact same moving market.
    pub seed: u64,
}

/// The seeded, deterministic evolution of a raw markup vector under a
/// [`DriftSchedule`].
///
/// The process is scale-free: fresh draws are scaled to the current
/// vector's mean, so the same machinery drifts the pricing environment's
/// `θ*` (norm `√(2n)`) and the auction market's unit-norm value direction.
#[derive(Debug, Clone)]
pub struct DriftProcess {
    schedule: DriftSchedule,
    rng: StdRng,
    raw: Vector,
    target: Option<Vector>,
    rounds: u64,
    shifts: u64,
}

impl DriftProcess {
    /// Builds the process with its own seeded initial markup vector.
    #[must_use]
    pub fn new(schedule: DriftSchedule, dim: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(schedule.seed);
        let raw = sampling::uniform_vector(&mut rng, dim.max(1), MARKUP_LO, MARKUP_HI);
        Self {
            schedule,
            rng,
            raw,
            target: None,
            rounds: 0,
            shifts: 0,
        }
    }

    /// Builds the process around an externally drawn initial vector (the
    /// auction market keeps its legacy `θ` draw and drifts it from there).
    ///
    /// # Panics
    /// Panics when `raw` is empty.
    #[must_use]
    pub fn with_raw(schedule: DriftSchedule, raw: Vector) -> Self {
        assert!(!raw.is_empty(), "drift process needs at least one weight");
        Self {
            schedule,
            rng: StdRng::seed_from_u64(schedule.seed),
            raw,
            target: None,
            rounds: 0,
            shifts: 0,
        }
    }

    /// The schedule driving the process.
    #[must_use]
    pub fn schedule(&self) -> DriftSchedule {
        self.schedule
    }

    /// The current raw markup vector (strictly positive entries).
    #[must_use]
    pub fn raw(&self) -> &Vector {
        &self.raw
    }

    /// Rounds advanced so far.
    #[must_use]
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Discrete shifts (jumps/reversals) applied so far.  Continuous
    /// rotation never counts here.
    #[must_use]
    pub fn shifts(&self) -> u64 {
        self.shifts
    }

    /// A fresh markup draw scaled to the current vector's mean, so drift
    /// moves the *direction* of the weights without inflating their scale.
    fn fresh_draw(&mut self) -> Vector {
        let mean = {
            let m = self.raw.mean();
            if m.is_finite() && m > 0.0 {
                m
            } else {
                1.0
            }
        };
        sampling::uniform_vector(&mut self.rng, self.raw.len(), MARKUP_LO, MARKUP_HI).scaled(mean)
    }

    /// Blends `towards` into the raw vector with weight `m ∈ [0, 1]`.
    fn blend(&mut self, towards: &Vector, m: f64) {
        let m = m.clamp(0.0, 1.0);
        for (slot, &t) in self.raw.as_mut_slice().iter_mut().zip(towards.iter()) {
            *slot = (1.0 - m) * *slot + m * t;
        }
    }

    /// Advances the process by one round, mutating the raw vector per the
    /// schedule.  Returns `true` when a *discrete* shift was applied this
    /// round (piecewise jump or the adversarial reversal).
    pub fn advance(&mut self) -> bool {
        let t = self.rounds;
        self.rounds += 1;
        match self.schedule.kind {
            DriftKind::PiecewiseJumps { period, magnitude } => {
                let period = period.max(1);
                if t > 0 && t.is_multiple_of(period) {
                    let fresh = self.fresh_draw();
                    self.blend(&fresh, magnitude);
                    self.shifts += 1;
                    return true;
                }
                false
            }
            DriftKind::Rotation { rate } => {
                let rate = rate.clamp(0.0, 1.0);
                if rate > 0.0 {
                    let need_target = match &self.target {
                        None => true,
                        Some(target) => {
                            let distance = target
                                .distance(&self.raw)
                                // pdm-lint: allow(no-unwrap-in-lib) reason="the target was (re)built with the raw dimension in ensure_target just above"
                                .expect("target shares the raw dimension");
                            distance < 0.05 * self.raw.norm().max(1e-12)
                        }
                    };
                    if need_target {
                        self.target = Some(self.fresh_draw());
                    }
                    // pdm-lint: allow(no-unwrap-in-lib) reason="ensure_target installed the target on the previous line"
                    let target = self.target.clone().expect("target was just ensured");
                    self.blend(&target, rate);
                }
                false
            }
            DriftKind::AdversarialShift {
                at_round,
                magnitude,
            } => {
                if t == at_round {
                    // Reflect every markup about the vector's own mean:
                    // high-value features become the cheap ones.  Scale-free
                    // and fully deterministic (no RNG draw).
                    let mean = self.raw.mean();
                    let floor = 0.05 * mean.max(1e-12);
                    let reflected = self.raw.map(|r| (2.0 * mean - r).max(floor));
                    self.blend(&reflected, magnitude);
                    self.shifts += 1;
                    return true;
                }
                false
            }
        }
    }
}

/// The Section V-A linear market with a drifting `θ*`.
///
/// Identical to the stationary [`SyntheticLinearEnvironment`] construction
/// — non-negative unit-norm features, positive markup weights rescaled to
/// `‖θ*‖ = √(2n)`, sum-of-features reserve — except that the markup vector
/// evolves per a [`DriftSchedule`] before every round.  The rescaling keeps
/// the broker prior `‖θ*‖ ≤ 2√n` valid through every shift, so the
/// *stationary* mechanism's assumptions fail only in the way drift is
/// supposed to make them fail: the knowledge set excludes the moved `θ*`.
///
/// [`SyntheticLinearEnvironment`]: crate::environment::SyntheticLinearEnvironment
#[derive(Debug, Clone)]
pub struct DriftingLinearEnvironment {
    model: LinearModel,
    process: DriftProcess,
    theta_star: Vector,
    horizon: usize,
    produced: usize,
    noise: NoiseModel,
    reserve_policy: ReservePolicy,
}

impl DriftingLinearEnvironment {
    /// Creates the drifting market for `dim` features over `horizon`
    /// rounds.
    #[must_use]
    pub fn new(dim: usize, horizon: usize, schedule: DriftSchedule, noise: NoiseModel) -> Self {
        let dim = dim.max(1);
        let process = DriftProcess::new(schedule, dim);
        let mut env = Self {
            model: LinearModel::new(dim),
            process,
            theta_star: Vector::zeros(dim),
            horizon: horizon.max(1),
            produced: 0,
            noise,
            reserve_policy: ReservePolicy::SumOfFeatures,
        };
        env.rescale();
        env
    }

    /// Overrides the reserve policy (the default is the data-market
    /// sum-of-features rule).
    #[must_use]
    pub fn with_reserve_policy(mut self, policy: ReservePolicy) -> Self {
        self.reserve_policy = policy;
        self
    }

    /// The current ground-truth weights (they move between rounds).
    #[must_use]
    pub fn theta_star(&self) -> &Vector {
        &self.theta_star
    }

    /// The drift process driving the weights.
    #[must_use]
    pub fn process(&self) -> &DriftProcess {
        &self.process
    }

    /// Discrete shifts applied so far.
    #[must_use]
    pub fn shifts(&self) -> u64 {
        self.process.shifts()
    }

    /// Rescales the process's markup vector to the paper normalisation
    /// `‖θ*‖ = √(2n)`.
    fn rescale(&mut self) {
        let dim = self.model.input_dim();
        let target_norm = (2.0 * dim as f64).sqrt();
        let norm = self.process.raw().norm().max(1e-12);
        self.theta_star = self.process.raw().scaled(target_norm / norm);
    }
}

impl Environment for DriftingLinearEnvironment {
    fn input_dim(&self) -> usize {
        self.model.input_dim()
    }

    fn horizon(&self) -> usize {
        self.horizon
    }

    fn weight_norm_bound(&self) -> f64 {
        // The paper's broker prior ‖θ*‖ ≤ 2√n — valid in every phase
        // because the rescaling pins ‖θ*‖ = √(2n) throughout.
        2.0 * (self.model.input_dim() as f64).sqrt()
    }

    fn feature_norm_bound(&self) -> f64 {
        1.0
    }

    fn next_round(&mut self, rng: &mut dyn rand::RngCore) -> Option<Round> {
        if self.produced >= self.horizon {
            return None;
        }
        self.produced += 1;
        // The drift stream is private to the process, so the feature/noise
        // stream (the caller's rng) is identical across schedules and
        // policies — apples-to-apples post-shift comparisons.
        self.process.advance();
        self.rescale();
        let features = sampling::standard_normal_vector(rng, self.model.input_dim())
            .map(f64::abs)
            .normalized();
        let noiseless = features
            .dot(&self.theta_star)
            // pdm-lint: allow(no-unwrap-in-lib) reason="the shadow model is fitted on the same feature dimension it now predicts"
            .expect("features match the model dimension");
        let market_value = noiseless + self.noise.sample(rng);
        let reserve_price = match self.reserve_policy {
            ReservePolicy::None => 0.0,
            ReservePolicy::SumOfFeatures => features.sum(),
            ReservePolicy::FractionOfValue(frac) => frac * noiseless,
            ReservePolicy::FractionOfLinkValue(frac) => frac * noiseless,
        };
        Some(Round {
            features,
            reserve_price,
            market_value,
        })
    }
}

/// Sizing of the windowed accept/reject surprisal detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DriftDetectorConfig {
    /// Sliding window length, in observed rounds.
    pub window: usize,
    /// Surprises inside the window that trigger a firing.
    pub threshold: usize,
}

impl Default for DriftDetectorConfig {
    fn default() -> Self {
        Self {
            window: DEFAULT_DETECTOR_WINDOW,
            threshold: DEFAULT_DETECTOR_THRESHOLD,
        }
    }
}

/// Windowed drift detector over accept/reject surprisal.
///
/// Each observed round contributes one boolean flag — *was the outcome
/// inconsistent with the whole knowledge set?* — and the detector fires
/// when at least `threshold` of the most recent `window` flags are set.
/// Firing clears the window (the restart that follows makes old evidence
/// stale anyway), so a sustained shift produces one firing, not one per
/// round.
#[derive(Debug, Clone, PartialEq)]
pub struct SurprisalDriftDetector {
    config: DriftDetectorConfig,
    flags: VecDeque<bool>,
    in_window: usize,
    fires: u64,
}

impl SurprisalDriftDetector {
    /// An empty detector.
    #[must_use]
    pub fn new(config: DriftDetectorConfig) -> Self {
        let config = DriftDetectorConfig {
            window: config.window.max(1),
            threshold: config.threshold.clamp(1, config.window.max(1)),
        };
        Self {
            flags: VecDeque::with_capacity(config.window),
            config,
            in_window: 0,
            fires: 0,
        }
    }

    /// The sizing in effect.
    #[must_use]
    pub fn config(&self) -> DriftDetectorConfig {
        self.config
    }

    /// Total firings since construction (or restore).
    #[must_use]
    pub fn fires(&self) -> u64 {
        self.fires
    }

    /// Surprises currently inside the window.
    #[must_use]
    pub fn surprises_in_window(&self) -> usize {
        self.in_window
    }

    /// The window flags, oldest first — the state a snapshot persists.
    pub fn window_flags(&self) -> impl Iterator<Item = bool> + '_ {
        self.flags.iter().copied()
    }

    /// Restores the persisted state: the firing counter plus the window
    /// flags (oldest first; truncated to the configured window).
    pub fn restore(&mut self, fires: u64, flags: &[bool]) {
        self.fires = fires;
        self.flags.clear();
        for &flag in flags.iter().rev().take(self.config.window).rev() {
            self.flags.push_back(flag);
        }
        self.in_window = self.flags.iter().filter(|&&f| f).count();
    }

    /// Records one observed round's surprisal flag; returns `true` when the
    /// detector fires (and clears its window).
    pub fn observe(&mut self, surprise: bool) -> bool {
        if self.flags.len() == self.config.window && self.flags.pop_front() == Some(true) {
            self.in_window -= 1;
        }
        self.flags.push_back(surprise);
        if surprise {
            self.in_window += 1;
        }
        if self.in_window >= self.config.threshold {
            self.fires += 1;
            self.flags.clear();
            self.in_window = 0;
            return true;
        }
        false
    }
}

/// The per-tenant drift policy: how a mechanism reacts to a moving `θ*`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DriftPolicy {
    /// The paper's stationary mechanism, unchanged (bit-for-bit).
    Static,
    /// Re-initialise the knowledge set to the prior ball when the windowed
    /// surprisal detector fires.
    Restart {
        /// Detector window, in observed rounds.
        window: usize,
        /// Surprises inside the window that trigger the restart.
        threshold: usize,
    },
    /// Inflate every semi-axis of the ellipsoid by `inflation` after every
    /// observed round **that applied no cut**: the forgetting-factor
    /// analogue of a sliding window over cuts.  Gating the inflation on
    /// "not currently learning" keeps convergence phases untouched (cuts
    /// flow freely) while a converged set slowly re-opens, so old
    /// refinements decay, a moved `θ*` is re-admitted within tens of
    /// rounds, and the steady state oscillates just above the exploration
    /// threshold at a small perpetual-exploration cost — the price of
    /// tracking.
    Discounted {
        /// Per-round semi-axis growth factor (slightly above 1, e.g. 1.01).
        inflation: f64,
    },
}

impl DriftPolicy {
    /// The restart policy at the default detector sizing.
    #[must_use]
    pub fn restart_default() -> Self {
        DriftPolicy::Restart {
            window: DEFAULT_DETECTOR_WINDOW,
            threshold: DEFAULT_DETECTOR_THRESHOLD,
        }
    }

    /// Machine-readable policy name used in labels and snapshots.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            DriftPolicy::Static => "static",
            DriftPolicy::Restart { .. } => "restart",
            DriftPolicy::Discounted { .. } => "discounted",
        }
    }
}

/// The paper's ellipsoid mechanism wrapped with a [`DriftPolicy`].
///
/// [`DriftPolicy::Static`] delegates every call unchanged, so wrapping a
/// stationary tenant is free (and bit-identical — the property the serving
/// engine's snapshot tests pin).  The drift-aware policies act strictly
/// *between* rounds: quotes and knowledge-set cuts are the inner
/// mechanism's own, then the restart/inflation step runs after the cut.
#[derive(Debug, Clone)]
pub struct DriftAwarePricing<M> {
    inner: EllipsoidPricing<M>,
    policy: DriftPolicy,
    detector: Option<SurprisalDriftDetector>,
    restarts: u64,
}

impl<M: MarketValueModel> DriftAwarePricing<M> {
    /// Builds the mechanism from scratch: the inner engine starts at the
    /// prior ball, exactly like [`EllipsoidPricing::new`].
    #[must_use]
    pub fn new(model: M, config: PricingConfig, policy: DriftPolicy) -> Self {
        Self::wrap(EllipsoidPricing::new(model, config), policy)
    }

    /// Wraps an existing engine (the snapshot-restore path, where the
    /// knowledge set comes from a document instead of the prior).
    #[must_use]
    pub fn wrap(inner: EllipsoidPricing<M>, policy: DriftPolicy) -> Self {
        let detector = match policy {
            DriftPolicy::Restart { window, threshold } => {
                Some(SurprisalDriftDetector::new(DriftDetectorConfig {
                    window,
                    threshold,
                }))
            }
            _ => None,
        };
        Self {
            inner,
            policy,
            detector,
            restarts: 0,
        }
    }

    /// The wrapped ellipsoid engine.
    #[must_use]
    pub fn inner(&self) -> &EllipsoidPricing<M> {
        &self.inner
    }

    /// The current knowledge set (passthrough for snapshot writers).
    #[must_use]
    pub fn knowledge(&self) -> &Ellipsoid {
        self.inner.knowledge()
    }

    /// The configuration of the wrapped engine.
    #[must_use]
    pub fn config(&self) -> &PricingConfig {
        self.inner.config()
    }

    /// The policy in effect.
    #[must_use]
    pub fn policy(&self) -> DriftPolicy {
        self.policy
    }

    /// The restart policy's detector, when one exists.
    #[must_use]
    pub fn detector(&self) -> Option<&SurprisalDriftDetector> {
        self.detector.as_ref()
    }

    /// Total detector firings (zero for static/discounted policies).
    #[must_use]
    pub fn detector_fires(&self) -> u64 {
        self.detector
            .as_ref()
            .map_or(0, SurprisalDriftDetector::fires)
    }

    /// Knowledge-set restarts performed so far.
    #[must_use]
    pub fn restarts(&self) -> u64 {
        self.restarts
    }

    /// Restores the drift-side state a snapshot persisted: the firing and
    /// restart counters plus the detector's window flags (oldest first).
    /// A no-op for policies without a detector, except the restart counter.
    pub fn restore_drift_state(&mut self, fires: u64, restarts: u64, flags: &[bool]) {
        self.restarts = restarts;
        if let Some(detector) = self.detector.as_mut() {
            detector.restore(fires, flags);
        }
    }

    /// Whether an outcome contradicts the entire knowledge set: a rejected
    /// conservative price (the set promised a near-certain sale) or an
    /// accepted certain-no-sale quote (the set promised no value could
    /// reach the reserve).  Exploratory feedback is surprising only when
    /// the effective price lands strictly outside the support bounds.
    fn surprising(quote: &Quote, accepted: bool, delta: f64) -> bool {
        match quote.kind {
            QuoteKind::Conservative => !accepted,
            QuoteKind::CertainNoSale => accepted,
            QuoteKind::Exploratory => {
                if accepted {
                    quote.link_price - delta > quote.upper_bound
                } else {
                    quote.link_price + delta < quote.lower_bound
                }
            }
            QuoteKind::Baseline => false,
        }
    }
}

impl<M: MarketValueModel> PostedPriceMechanism for DriftAwarePricing<M> {
    fn name(&self) -> String {
        match self.policy {
            DriftPolicy::Static => self.inner.name(),
            DriftPolicy::Restart { .. } => format!("{} + restart-on-drift", self.inner.name()),
            DriftPolicy::Discounted { .. } => {
                format!("{} + discounted knowledge", self.inner.name())
            }
        }
    }

    fn quote(&mut self, features: &Vector, reserve_price: f64) -> Quote {
        self.inner.quote(features, reserve_price)
    }

    fn observe(&mut self, features: &Vector, quote: &Quote, accepted: bool) {
        let cuts_before = self.inner.cuts_applied();
        self.inner.observe(features, quote, accepted);
        match self.policy {
            DriftPolicy::Static => {}
            DriftPolicy::Restart { .. } => {
                let delta = self.inner.config().delta;
                let surprise = Self::surprising(quote, accepted, delta);
                let fired = self
                    .detector
                    .as_mut()
                    // pdm-lint: allow(no-unwrap-in-lib) reason="the restart policy constructor always installs a detector for this variant"
                    .expect("restart policy always carries a detector")
                    .observe(surprise);
                if fired {
                    let dim = self.inner.model().mapped_dim();
                    let radius = self.inner.config().initial_radius;
                    self.inner.replace_knowledge(Ellipsoid::ball(dim, radius));
                    self.restarts += 1;
                }
            }
            DriftPolicy::Discounted { inflation } => {
                // Forget only when not learning: a round that refined the
                // set costs nothing; a round the converged set could not
                // learn from re-opens it a little.
                if self.inner.cuts_applied() == cuts_before {
                    self.inner.knowledge_mut().inflate(inflation);
                }
            }
        }
    }

    fn memory_footprint_bytes(&self) -> usize {
        self.inner.memory_footprint_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{PricingSession, StepOutcome};
    use crate::simulation::SimulationOptions;
    use pdm_ellipsoid::KnowledgeSet;

    fn schedule(kind: DriftKind) -> DriftSchedule {
        DriftSchedule { kind, seed: 17 }
    }

    #[test]
    fn piecewise_process_jumps_only_at_period_multiples() {
        let mut p = DriftProcess::new(
            schedule(DriftKind::PiecewiseJumps {
                period: 5,
                magnitude: 1.0,
            }),
            4,
        );
        let initial = p.raw().clone();
        let mut shift_rounds = Vec::new();
        for t in 0..12u64 {
            if p.advance() {
                shift_rounds.push(t);
            }
        }
        assert_eq!(shift_rounds, vec![5, 10]);
        assert_eq!(p.shifts(), 2);
        assert_ne!(p.raw(), &initial, "a full-magnitude jump must move θ");
        // Deterministic in the seed.
        let mut q = DriftProcess::new(
            schedule(DriftKind::PiecewiseJumps {
                period: 5,
                magnitude: 1.0,
            }),
            4,
        );
        for _ in 0..12 {
            q.advance();
        }
        assert_eq!(p.raw(), q.raw());
    }

    #[test]
    fn zero_magnitude_jumps_leave_theta_in_place() {
        let mut p = DriftProcess::new(
            schedule(DriftKind::PiecewiseJumps {
                period: 3,
                magnitude: 0.0,
            }),
            3,
        );
        let initial = p.raw().clone();
        for _ in 0..10 {
            p.advance();
        }
        // Shifts are *counted* (the schedule fired) but the blend is a no-op.
        assert_eq!(p.shifts(), 3);
        assert_eq!(p.raw(), &initial);
    }

    #[test]
    fn rotation_moves_continuously_without_discrete_shifts() {
        let mut p = DriftProcess::new(schedule(DriftKind::Rotation { rate: 0.05 }), 4);
        let initial = p.raw().clone();
        for _ in 0..50 {
            assert!(!p.advance(), "rotation never reports discrete shifts");
        }
        assert_eq!(p.shifts(), 0);
        let moved = p.raw().distance(&initial).unwrap();
        assert!(moved > 0.01, "50 rounds at rate 0.05 must move θ ({moved})");
        // Entries stay strictly positive (market values stay positive).
        assert!(p.raw().iter().all(|&r| r > 0.0));
    }

    #[test]
    fn adversarial_shift_reverses_the_markup_ordering_once() {
        let mut p = DriftProcess::new(
            schedule(DriftKind::AdversarialShift {
                at_round: 4,
                magnitude: 1.0,
            }),
            6,
        );
        let before = p.raw().clone();
        let mean = before.mean();
        let mut shift_rounds = Vec::new();
        for t in 0..10u64 {
            if p.advance() {
                shift_rounds.push(t);
            }
        }
        assert_eq!(shift_rounds, vec![4]);
        // Features above the mean fell below it and vice versa.
        for (b, a) in before.iter().zip(p.raw().iter()) {
            if (b - mean).abs() > 1e-9 {
                assert_eq!(
                    (b - mean).signum(),
                    -(a - mean).signum(),
                    "reflection must flip {b} about {mean} (got {a})"
                );
            }
        }
        assert!(p.raw().iter().all(|&r| r > 0.0));
    }

    #[test]
    fn drifting_environment_keeps_the_paper_normalisation_through_shifts() {
        let mut env = DriftingLinearEnvironment::new(
            5,
            60,
            schedule(DriftKind::PiecewiseJumps {
                period: 20,
                magnitude: 1.0,
            }),
            NoiseModel::None,
        );
        let target_norm = (2.0 * 5.0_f64).sqrt();
        let mut rng = StdRng::seed_from_u64(3);
        let theta_before = env.theta_star().clone();
        let mut rounds = 0;
        while let Some(round) = env.next_round(&mut rng) {
            rounds += 1;
            assert!((round.features.norm() - 1.0).abs() < 1e-9);
            assert!((round.reserve_price - round.features.sum()).abs() < 1e-9);
            assert!(round.market_value.is_finite());
            assert!((env.theta_star().norm() - target_norm).abs() < 1e-9);
        }
        assert_eq!(rounds, 60);
        assert_eq!(env.shifts(), 2);
        assert_ne!(env.theta_star(), &theta_before);
        assert!((env.weight_norm_bound() - 2.0 * 5.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn detector_fires_at_the_threshold_and_clears_its_window() {
        let mut d = SurprisalDriftDetector::new(DriftDetectorConfig {
            window: 8,
            threshold: 3,
        });
        assert!(!d.observe(true));
        assert!(!d.observe(false));
        assert!(!d.observe(true));
        assert!(d.observe(true), "third surprise in the window fires");
        assert_eq!(d.fires(), 1);
        assert_eq!(d.surprises_in_window(), 0, "firing clears the window");
        // Old surprises age out of the window.
        let mut d = SurprisalDriftDetector::new(DriftDetectorConfig {
            window: 4,
            threshold: 3,
        });
        d.observe(true);
        d.observe(true);
        for _ in 0..4 {
            d.observe(false);
        }
        assert!(!d.observe(true), "aged-out surprises must not accumulate");
        assert_eq!(d.fires(), 0);
    }

    #[test]
    fn detector_state_restores_exactly() {
        let config = DriftDetectorConfig {
            window: 6,
            threshold: 4,
        };
        let mut d = SurprisalDriftDetector::new(config);
        for &s in &[true, false, true, false, false, true] {
            d.observe(s);
        }
        let flags: Vec<bool> = d.window_flags().collect();
        let mut restored = SurprisalDriftDetector::new(config);
        restored.restore(d.fires(), &flags);
        assert_eq!(restored, d);
        // Both continue identically.
        assert_eq!(d.observe(true), restored.observe(true));
        assert_eq!(d, restored);
    }

    #[test]
    fn static_policy_is_bit_identical_to_the_bare_mechanism() {
        let config = PricingConfig::new(2.0, 500).with_reserve(true);
        let mut bare = EllipsoidPricing::new(LinearModel::new(3), config);
        let mut wrapped = DriftAwarePricing::new(LinearModel::new(3), config, DriftPolicy::Static);
        let mut rng = StdRng::seed_from_u64(5);
        for round in 0..100 {
            let x = sampling::standard_normal_vector(&mut rng, 3)
                .map(f64::abs)
                .normalized();
            let reserve = 0.3 + 0.001 * f64::from(round);
            let qa = bare.quote(&x, reserve);
            let qb = wrapped.quote(&x, reserve);
            assert_eq!(qa.posted_price.to_bits(), qb.posted_price.to_bits());
            let accepted = qa.posted_price <= 1.0;
            bare.observe(&x, &qa, accepted);
            wrapped.observe(&x, &qb, accepted);
        }
        assert_eq!(bare.knowledge(), wrapped.knowledge());
        assert_eq!(wrapped.restarts(), 0);
        assert_eq!(wrapped.detector_fires(), 0);
    }

    /// Drives a policy through a hard downward value shift: the mechanism
    /// converges on value 1.0, then the value drops to `post_value`.
    /// Returns (sales after the shift, restarts).
    fn post_shift_sales(policy: DriftPolicy, post_value: f64) -> (u64, u64) {
        let config = PricingConfig::new(2.0, 2_000)
            .with_reserve(true)
            .with_uncertainty(0.02);
        let mut session = PricingSession::new(
            DriftAwarePricing::new(LinearModel::new(2), config, policy),
            2_000,
            SimulationOptions::default(),
        )
        .without_latency_tracking();
        let x = Vector::from_slice(&[0.6, 0.8]);
        for _ in 0..400 {
            let quote = session.step(&x, 0.1);
            let accepted = quote.posted_price <= 1.0;
            session.observe(StepOutcome::with_value(accepted, 1.0));
        }
        let sales_before = session.sales();
        for _ in 0..400 {
            let quote = session.step(&x, 0.1);
            let accepted = quote.posted_price <= post_value;
            session.observe(StepOutcome::with_value(accepted, post_value));
        }
        let restarts = session.mechanism().restarts();
        (session.sales() - sales_before, restarts)
    }

    #[test]
    fn restart_policy_recovers_sales_after_a_downward_shift() {
        let (static_sales, _) = post_shift_sales(DriftPolicy::Static, 0.3);
        let (restart_sales, restarts) = post_shift_sales(DriftPolicy::restart_default(), 0.3);
        assert!(restarts >= 1, "the shift must trigger at least one restart");
        assert!(
            restart_sales > static_sales + 100,
            "restart must recover the market the static mechanism lost \
             ({restart_sales} vs {static_sales} post-shift sales)"
        );
    }

    #[test]
    fn discounted_policy_recovers_sales_after_a_downward_shift() {
        let (static_sales, _) = post_shift_sales(DriftPolicy::Static, 0.3);
        let (discounted_sales, restarts) =
            post_shift_sales(DriftPolicy::Discounted { inflation: 1.05 }, 0.3);
        assert_eq!(restarts, 0, "discounting never restarts");
        assert!(
            discounted_sales > static_sales + 100,
            "inflation must re-admit the moved θ* \
             ({discounted_sales} vs {static_sales} post-shift sales)"
        );
    }

    #[test]
    fn restart_resets_the_knowledge_set_to_the_prior_ball() {
        let config = PricingConfig::new(1.5, 100).with_reserve(false);
        let mut mech = DriftAwarePricing::new(
            LinearModel::new(2),
            config,
            DriftPolicy::Restart {
                window: 4,
                threshold: 2,
            },
        );
        let x = Vector::from_slice(&[1.0, 0.0]);
        // Narrow the set with genuine cuts first.
        for _ in 0..30 {
            let quote = mech.quote(&x, 0.0);
            let accepted = quote.posted_price <= 0.5;
            mech.observe(&x, &quote, accepted);
        }
        let narrowed = mech.knowledge().width_along(&x);
        assert!(narrowed < 3.0, "cuts must narrow the set ({narrowed})");
        // Force surprisal: conservative quotes rejected repeatedly.  If the
        // set is still exploratory, keep rejecting until conservative.
        let mut guard = 0;
        while mech.restarts() == 0 {
            let quote = mech.quote(&x, 0.0);
            mech.observe(&x, &quote, false);
            guard += 1;
            assert!(guard < 500, "detector must eventually fire");
        }
        let width = mech.knowledge().width_along(&x);
        assert!(
            (width - 3.0).abs() < 1e-9,
            "restart must restore the radius-1.5 prior ball (width {width})"
        );
        assert_eq!(mech.detector_fires(), mech.restarts());
    }

    #[test]
    fn policy_names_cover_the_grid() {
        assert_eq!(DriftPolicy::Static.name(), "static");
        assert_eq!(DriftPolicy::restart_default().name(), "restart");
        assert_eq!(
            DriftPolicy::Discounted { inflation: 1.01 }.name(),
            "discounted"
        );
        assert_eq!(
            DriftKind::PiecewiseJumps {
                period: 5,
                magnitude: 0.5
            }
            .name(),
            "piecewise"
        );
        assert_eq!(DriftKind::Rotation { rate: 0.01 }.name(), "rotation");
        assert_eq!(
            DriftKind::AdversarialShift {
                at_round: 10,
                magnitude: 1.0
            }
            .name(),
            "adversarial"
        );
        assert_eq!(
            DriftKind::PiecewiseJumps {
                period: 5,
                magnitude: 0.5
            }
            .first_shift_round(),
            5
        );
        assert_eq!(DriftKind::Rotation { rate: 0.01 }.first_shift_round(), 0);
    }
}
