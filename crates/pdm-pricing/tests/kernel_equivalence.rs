//! Differential suite pinning the fused hot-path kernels to old-style
//! allocating reference implementations, bit for bit.
//!
//! The quote→observe hot path was reworked around scratch-buffer kernels
//! (`support_bounds_mut`, the sign-threaded cut update, `step_many`,
//! `serve_batch`).  Each test here re-implements the *pre-refactor*
//! formulation — allocating matvecs, materialised negated directions, the
//! three-step rank-one/scale/symmetrize shape update, one-at-a-time
//! step/observe — and drives both formulations over seeded random inputs,
//! asserting that every quote, cut, counter, and knowledge-set coordinate
//! carries the exact same `f64` bit pattern.

use pdm_ellipsoid::{Cut, CutOutcome, Ellipsoid, KnowledgeSet};
use pdm_linalg::{sampling, Matrix, Vector};
use pdm_pricing::prelude::{
    BatchRequest, BatchResponse, EllipsoidPricing, LinearModel, LogLinearModel, MarketValueModel,
    ObservedRound, PostedPriceMechanism, PricingConfig, PricingSession, Quote, QuoteKind,
    SimulationOptions, StepOutcome,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const DIRECTION_TOL: f64 = 1e-12;

// ---------------------------------------------------------------------------
// Reference implementations (the pre-refactor, allocating formulations)
// ---------------------------------------------------------------------------

/// What the old-style cut produced: either a state-preserving outcome or the
/// freshly allocated centre/shape pair.
enum ReferenceCut {
    NoOp(CutOutcome),
    Updated {
        outcome: CutOutcome,
        center: Vector,
        shape: Matrix,
    },
}

/// The textbook Grötschel–Lovász–Schrijver update exactly as the allocating
/// formulation computed it: `cut_above` materialises the negated direction
/// (here threaded as `sign`, which IEEE-754 negation makes bit-equivalent),
/// `b` is a fresh `matvec`, the new centre a `clone` + `axpy`, and the new
/// shape the three-step `rank_one_update` → `scale_mut` → `symmetrize`.
fn reference_cut(
    center: &Vector,
    shape: &Matrix,
    direction: &Vector,
    sign: f64,
    threshold: f64,
) -> ReferenceCut {
    let n = center.len();
    if n == 1 {
        return reference_cut_one_dim(center, shape, sign * direction[0], sign * threshold);
    }
    let scale = shape.quadratic_form(direction).max(0.0).sqrt();
    if scale <= DIRECTION_TOL {
        return ReferenceCut::NoOp(CutOutcome::DegenerateDirection);
    }
    let signed_centre = sign * direction.dot(center).expect("dimensions match");
    let mut signed_threshold = sign * threshold;
    let nf = n as f64;
    let mut alpha = (signed_centre - signed_threshold) / scale;
    loop {
        if alpha > 1.0 {
            return ReferenceCut::NoOp(CutOutcome::WouldBeEmpty { alpha });
        }
        if alpha < -1.0 / nf {
            return ReferenceCut::NoOp(CutOutcome::OutOfRange { alpha });
        }
        if alpha >= 1.0 - 1e-12 {
            // The allocating formulation recursed on a clamped threshold;
            // unrolled here exactly as the fused path unrolls it.
            signed_threshold = signed_centre - (1.0 - 1e-9) * scale;
            alpha = (signed_centre - signed_threshold) / scale;
            continue;
        }
        break;
    }

    let mut b = shape.matvec(direction);
    let inv_scale = 1.0 / scale;
    for slot in b.as_mut_slice() {
        *slot = (sign * *slot) * inv_scale;
    }

    let step = (1.0 + nf * alpha) / (nf + 1.0);
    let mut new_center = center.clone();
    new_center.axpy(-step, &b).expect("dimensions match");

    let outer_coeff = 2.0 * (1.0 + nf * alpha) / ((nf + 1.0) * (1.0 + alpha));
    let shape_scale = nf * nf * (1.0 - alpha * alpha) / (nf * nf - 1.0);
    let mut new_shape = shape.clone();
    new_shape.rank_one_update(-outer_coeff, &b);
    new_shape.scale_mut(shape_scale);
    new_shape.symmetrize();

    if !new_shape.is_finite() || !new_center.is_finite() {
        return ReferenceCut::NoOp(CutOutcome::OutOfRange { alpha });
    }
    ReferenceCut::Updated {
        outcome: CutOutcome::Updated(Cut::from_alpha(alpha)),
        center: new_center,
        shape: new_shape,
    }
}

/// The one-dimensional interval specialisation, reproduced verbatim.
fn reference_cut_one_dim(center: &Vector, shape: &Matrix, x: f64, threshold: f64) -> ReferenceCut {
    if x.abs() <= DIRECTION_TOL {
        return ReferenceCut::NoOp(CutOutcome::DegenerateDirection);
    }
    let half_width = shape.get(0, 0).max(0.0).sqrt();
    let c = center[0];
    let (lo, hi) = (c - half_width, c + half_width);
    let bound = threshold / x;
    let (new_lo, new_hi) = if x > 0.0 {
        (lo, hi.min(bound))
    } else {
        (lo.max(bound), hi)
    };
    let alpha = {
        let scale = half_width * x.abs();
        if scale <= DIRECTION_TOL {
            0.0
        } else {
            (c * x - threshold) / scale
        }
    };
    if new_hi < new_lo {
        return ReferenceCut::NoOp(CutOutcome::WouldBeEmpty { alpha });
    }
    if new_hi >= hi - 1e-15 && new_lo <= lo + 1e-15 {
        return ReferenceCut::NoOp(CutOutcome::OutOfRange { alpha });
    }
    let new_c = 0.5 * (new_lo + new_hi);
    let new_r = (0.5 * (new_hi - new_lo)).max(1e-15);
    ReferenceCut::Updated {
        outcome: CutOutcome::Updated(Cut::from_alpha(alpha)),
        center: Vector::from_slice(&[new_c]),
        shape: Matrix::from_fn(1, 1, |_, _| new_r * new_r),
    }
}

/// The old-style quote: allocating `support_bounds`, fresh feature map.
fn reference_quote<M: MarketValueModel>(
    model: &M,
    knowledge: &Ellipsoid,
    config: &PricingConfig,
    epsilon: f64,
    features: &Vector,
    reserve_price: f64,
) -> Quote {
    let mapped = model.map_features(features);
    let (lower, upper) = knowledge.support_bounds(&mapped);
    let reserve_link = if config.use_reserve {
        model.inverse_link(reserve_price)
    } else {
        f64::NEG_INFINITY
    };
    let delta = config.delta;
    if config.use_reserve && reserve_link >= upper + delta {
        return Quote {
            posted_price: reserve_price,
            link_price: reserve_link,
            lower_bound: lower,
            upper_bound: upper,
            reserve_link,
            kind: QuoteKind::CertainNoSale,
        };
    }
    let width = upper - lower;
    let (kind, link_price) = if width > epsilon {
        (
            QuoteKind::Exploratory,
            (0.5 * (lower + upper)).max(reserve_link),
        )
    } else {
        (QuoteKind::Conservative, (lower - delta).max(reserve_link))
    };
    Quote {
        posted_price: model.link(link_price),
        link_price,
        lower_bound: lower,
        upper_bound: upper,
        reserve_link,
        kind,
    }
}

// ---------------------------------------------------------------------------
// Bit-level comparison helpers
// ---------------------------------------------------------------------------

fn assert_vec_bits(actual: &Vector, expected: &Vector, what: &str) {
    assert_eq!(actual.len(), expected.len(), "{what}: length");
    for (i, (a, e)) in actual.iter().zip(expected.iter()).enumerate() {
        assert_eq!(a.to_bits(), e.to_bits(), "{what}: slot {i} ({a} vs {e})");
    }
}

fn assert_mat_bits(actual: &Matrix, expected: &Matrix, what: &str) {
    assert_eq!(actual.rows(), expected.rows(), "{what}: rows");
    for (i, (a, e)) in actual
        .as_slice()
        .iter()
        .zip(expected.as_slice())
        .enumerate()
    {
        assert_eq!(a.to_bits(), e.to_bits(), "{what}: entry {i} ({a} vs {e})");
    }
}

fn assert_quote_bits(actual: &Quote, expected: &Quote, what: &str) {
    assert_eq!(actual.kind, expected.kind, "{what}: kind");
    for (field, a, e) in [
        ("posted_price", actual.posted_price, expected.posted_price),
        ("link_price", actual.link_price, expected.link_price),
        ("lower_bound", actual.lower_bound, expected.lower_bound),
        ("upper_bound", actual.upper_bound, expected.upper_bound),
        ("reserve_link", actual.reserve_link, expected.reserve_link),
    ] {
        assert_eq!(a.to_bits(), e.to_bits(), "{what}: {field} ({a} vs {e})");
    }
}

fn assert_ellipsoid_bits(actual: &Ellipsoid, expected: &Ellipsoid, what: &str) {
    assert_vec_bits(actual.center(), expected.center(), what);
    assert_mat_bits(actual.shape(), expected.shape(), what);
    assert_eq!(
        actual.cuts_applied(),
        expected.cuts_applied(),
        "{what}: cuts"
    );
}

/// Applies the reference prediction against the live cut and checks both the
/// outcome and the resulting state, bit for bit.
fn check_cut(e: &mut Ellipsoid, direction: &Vector, sign: f64, threshold: f64, what: &str) {
    let predicted = reference_cut(e.center(), e.shape(), direction, sign, threshold);
    let before_center = e.center().clone();
    let before_shape = e.shape().clone();
    let outcome = if sign >= 0.0 {
        e.cut_below(direction, threshold)
    } else {
        e.cut_above(direction, threshold)
    };
    match predicted {
        ReferenceCut::NoOp(expected) => {
            assert_eq!(outcome, expected, "{what}: no-op outcome");
            assert_vec_bits(e.center(), &before_center, what);
            assert_mat_bits(e.shape(), &before_shape, what);
        }
        ReferenceCut::Updated {
            outcome: expected,
            center,
            shape,
        } => {
            assert_eq!(outcome, expected, "{what}: updated outcome");
            assert_vec_bits(e.center(), &center, what);
            assert_mat_bits(e.shape(), &shape, what);
        }
    }
}

/// A random ellipsoid evolved by a few seeded feasible cuts, so the tests
/// exercise shapes far from the initial ball.
fn evolved_ellipsoid(rng: &mut StdRng, dim: usize, cuts: usize) -> Ellipsoid {
    let mut e = Ellipsoid::ball(dim, sampling::uniform(rng, 0.5, 3.0));
    for _ in 0..cuts {
        let direction = sampling::unit_sphere(rng, dim);
        let (lo, hi) = e.support_bounds(&direction);
        let threshold = sampling::uniform(rng, lo, hi);
        if sampling::uniform(rng, 0.0, 1.0) < 0.5 {
            e.cut_below(&direction, threshold);
        } else {
            e.cut_above(&direction, threshold);
        }
    }
    e
}

fn mechanism(dim: usize, config: PricingConfig) -> EllipsoidPricing<LinearModel> {
    EllipsoidPricing::new(LinearModel::new(dim), config)
}

// ---------------------------------------------------------------------------
// Ellipsoid kernels vs the allocating formulation
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn support_bounds_mut_matches_allocating_reference(
        dim in 1usize..7,
        seed in 0u64..1_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut e = evolved_ellipsoid(&mut rng, dim, 6);
        for _ in 0..8 {
            let direction = sampling::unit_sphere(&mut rng, dim);
            let (lo, hi) = e.support_bounds(&direction);
            let (lo_mut, hi_mut) = e.support_bounds_mut(&direction);
            prop_assert_eq!(lo.to_bits(), lo_mut.to_bits());
            prop_assert_eq!(hi.to_bits(), hi_mut.to_bits());
        }
    }

    #[test]
    fn cut_below_matches_allocating_gls_reference(
        dim in 2usize..7,
        seed in 0u64..1_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut e = evolved_ellipsoid(&mut rng, dim, 3);
        for round in 0..12 {
            let direction = sampling::unit_sphere(&mut rng, dim);
            let (lo, hi) = e.support_bounds(&direction);
            // Thresholds straddle the feasible band so every outcome branch
            // (updated / would-be-empty / out-of-range) gets exercised.
            let threshold = sampling::uniform(&mut rng, lo - 0.5 * (hi - lo), hi + 0.5 * (hi - lo));
            check_cut(&mut e, &direction, 1.0, threshold, &format!("round {round}"));
        }
    }

    #[test]
    fn cut_above_matches_allocating_gls_reference(
        dim in 2usize..7,
        seed in 0u64..1_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut e = evolved_ellipsoid(&mut rng, dim, 3);
        for round in 0..12 {
            let direction = sampling::unit_sphere(&mut rng, dim);
            let (lo, hi) = e.support_bounds(&direction);
            let threshold = sampling::uniform(&mut rng, lo - 0.5 * (hi - lo), hi + 0.5 * (hi - lo));
            check_cut(&mut e, &direction, -1.0, threshold, &format!("round {round}"));
        }
    }

    #[test]
    fn quote_matches_reference_over_random_histories(
        dim in 1usize..6,
        seed in 0u64..1_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let config = PricingConfig::new(1.5, 512)
            .with_reserve(true)
            .with_uncertainty(0.01);
        let mut mech = mechanism(dim, config);
        for round in 0..24 {
            let features = sampling::uniform_vector(&mut rng, dim, -1.0, 1.0);
            let reserve = sampling::uniform(&mut rng, 0.0, 1.2);
            let expected = reference_quote(
                mech.model(),
                mech.knowledge(),
                mech.config(),
                mech.epsilon(),
                &features,
                reserve,
            );
            let quote = mech.quote(&features, reserve);
            assert_quote_bits(&quote, &expected, &format!("round {round}"));
            let accepted = sampling::uniform(&mut rng, 0.0, 1.0) < 0.5;
            mech.observe(&features, &quote, accepted);
        }
    }

    #[test]
    fn observe_cuts_match_manual_knowledge_cuts(
        dim in 2usize..6,
        seed in 0u64..1_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let config = PricingConfig::new(2.0, 256).with_uncertainty(0.02);
        let mut mech = mechanism(dim, config);
        for _ in 0..16 {
            let features = sampling::uniform_vector(&mut rng, dim, -1.0, 1.0);
            let quote = mech.quote(&features, 0.0);
            let accepted = sampling::uniform(&mut rng, 0.0, 1.0) < 0.5;
            // The old-style observe: remap the features, materialise the cut
            // on a cloned knowledge set.
            let mut manual = mech.knowledge().clone();
            if quote.kind == QuoteKind::Exploratory {
                let mapped = mech.model().map_features(&features);
                let delta = mech.config().delta;
                if accepted {
                    manual.cut_above(&mapped, quote.link_price - delta);
                } else {
                    manual.cut_below(&mapped, quote.link_price + delta);
                }
            }
            mech.observe(&features, &quote, accepted);
            assert_ellipsoid_bits(mech.knowledge(), &manual, "post-observe knowledge");
        }
    }

    #[test]
    fn step_many_matches_sequential_quotes_bitwise(
        dim in 1usize..6,
        batch in 1usize..24,
        seed in 0u64..1_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let config = PricingConfig::new(1.0, 128).with_reserve(true);
        let mut batched = mechanism(dim, config);
        let mut sequential = batched.clone();
        let requests: Vec<(Vector, f64)> = (0..batch)
            .map(|_| {
                (
                    sampling::uniform_vector(&mut rng, dim, -1.0, 1.0),
                    sampling::uniform(&mut rng, 0.0, 1.0),
                )
            })
            .collect();

        let mut batch_quotes = Vec::new();
        batched.step_many(
            requests.iter().map(|(f, r)| (f, *r)),
            &mut batch_quotes,
        );
        let loop_quotes: Vec<Quote> = requests
            .iter()
            .map(|(f, r)| sequential.quote(f, *r))
            .collect();

        prop_assert_eq!(batch_quotes.len(), loop_quotes.len());
        for (i, (a, e)) in batch_quotes.iter().zip(&loop_quotes).enumerate() {
            assert_quote_bits(a, e, &format!("quote {i}"));
        }
        prop_assert_eq!(batched.exploratory_rounds(), sequential.exploratory_rounds());
        prop_assert_eq!(batched.conservative_rounds(), sequential.conservative_rounds());
        prop_assert_eq!(batched.certain_no_sale_rounds(), sequential.certain_no_sale_rounds());
        assert_ellipsoid_bits(batched.knowledge(), sequential.knowledge(), "knowledge");
    }

    #[test]
    fn serve_batch_matches_step_observe_bitwise(
        dim in 1usize..5,
        rounds in 1usize..32,
        seed in 0u64..1_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let config = PricingConfig::new(1.5, 256).with_reserve(true);
        let options = SimulationOptions::default();
        let mut batched = PricingSession::new(mechanism(dim, config), 256, options)
            .without_latency_tracking();
        let mut serial = batched.clone();

        let mut requests: Vec<(Vector, f64, StepOutcome)> = Vec::new();
        for _ in 0..rounds {
            let features = sampling::uniform_vector(&mut rng, dim, -1.0, 1.0);
            let reserve = sampling::uniform(&mut rng, 0.0, 1.0);
            let accepted = sampling::uniform(&mut rng, 0.0, 1.0) < 0.5;
            let value = sampling::uniform(&mut rng, -1.0, 1.5);
            requests.push((features, reserve, StepOutcome::with_value(accepted, value)));
        }

        let mut responses = Vec::new();
        batched.serve_batch(
            requests.iter().flat_map(|(features, reserve, outcome)| {
                [
                    BatchRequest::Quote { features, reserve_price: *reserve },
                    BatchRequest::Observe(*outcome),
                ]
            }),
            &mut responses,
        );

        for (i, (features, reserve, outcome)) in requests.iter().enumerate() {
            let quote = serial.step(features, *reserve);
            let record = serial.observe(*outcome);
            match &responses[2 * i] {
                BatchResponse::Quoted(batch_quote) => {
                    assert_quote_bits(batch_quote, &quote, &format!("round {i} quote"));
                }
                other => prop_assert!(false, "round {} expected a quote, got {:?}", i, other),
            }
            prop_assert_eq!(&responses[2 * i + 1], &BatchResponse::Observed(record));
        }
        prop_assert_eq!(batched.rounds_closed(), serial.rounds_closed());
        prop_assert_eq!(batched.sales(), serial.sales());
        prop_assert_eq!(batched.revenue().to_bits(), serial.revenue().to_bits());
        prop_assert_eq!(batched.regret_proxy().to_bits(), serial.regret_proxy().to_bits());
        assert_ellipsoid_bits(
            batched.mechanism().knowledge(),
            serial.mechanism().knowledge(),
            "session knowledge",
        );
    }
}

// ---------------------------------------------------------------------------
// Branch-targeted differentials
// ---------------------------------------------------------------------------

#[test]
fn tangent_cut_clamp_matches_reference() {
    // A threshold just inside the tangent band (α ≥ 1 − 1e-12) forces the
    // clamp-and-retry loop; both formulations must land on the same clamped
    // state.
    let direction = Vector::from_slice(&[0.6, -0.8, 0.1]);
    let mut e = Ellipsoid::ball(3, 1.0);
    let scale = e.direction_scale(&direction);
    let centre_value = direction.dot(e.center()).unwrap();
    let threshold = centre_value - (1.0 - 1e-13) * scale;
    check_cut(&mut e, &direction, 1.0, threshold, "tangent clamp");
    assert_eq!(e.cuts_applied(), 1, "the clamped cut must still apply");
}

#[test]
fn one_dim_cut_matches_interval_reference() {
    let x = Vector::from_slice(&[-0.7]);
    let mut e = Ellipsoid::ball(1, 2.0);
    for (sign, threshold) in [(1.0, 0.4), (-1.0, -0.9), (1.0, 1.6), (-1.0, 0.2)] {
        check_cut(&mut e, &x, sign, threshold, "one-dim interval");
    }
}

#[test]
fn degenerate_direction_is_a_noop_everywhere() {
    let zero2 = Vector::zeros(2);
    let mut e = Ellipsoid::ball(2, 1.0);
    let before = e.clone();
    assert_eq!(e.cut_below(&zero2, 0.3), CutOutcome::DegenerateDirection);
    assert_eq!(e.cut_above(&zero2, -0.3), CutOutcome::DegenerateDirection);
    let (lo, hi) = e.support_bounds_mut(&zero2);
    assert_eq!(lo.to_bits(), 0.0_f64.to_bits());
    assert_eq!(hi.to_bits(), 0.0_f64.to_bits());
    assert_ellipsoid_bits(&e, &before, "degenerate 2-d");

    let zero1 = Vector::zeros(1);
    let mut one = Ellipsoid::ball(1, 1.0);
    let frozen = one.clone();
    assert_eq!(one.cut_below(&zero1, 0.5), CutOutcome::DegenerateDirection);
    assert_ellipsoid_bits(&one, &frozen, "degenerate 1-d");
}

#[test]
fn infeasible_and_shallow_cuts_leave_state_bitwise_untouched() {
    let direction = Vector::from_slice(&[1.0, 0.3, -0.2]);
    let mut e = Ellipsoid::ball(3, 1.0);
    let before = e.clone();
    // α > 1: the halfspace misses the set entirely.
    assert!(matches!(
        e.cut_below(&direction, -5.0),
        CutOutcome::WouldBeEmpty { .. }
    ));
    assert_ellipsoid_bits(&e, &before, "would-be-empty");
    // α < −1/n: too shallow to improve the Löwner–John ellipsoid.
    assert!(matches!(
        e.cut_below(&direction, 5.0),
        CutOutcome::OutOfRange { .. }
    ));
    assert_ellipsoid_bits(&e, &before, "out-of-range");
}

#[test]
fn certain_no_sale_branch_is_bit_identical() {
    let config = PricingConfig::new(1.0, 64).with_reserve(true);
    let mut mech = mechanism(2, config);
    let features = Vector::from_slice(&[0.6, 0.8]);
    let expected = reference_quote(
        mech.model(),
        mech.knowledge(),
        mech.config(),
        mech.epsilon(),
        &features,
        7.5,
    );
    assert_eq!(expected.kind, QuoteKind::CertainNoSale);
    let quote = mech.quote(&features, 7.5);
    assert_quote_bits(&quote, &expected, "certain no-sale");
    assert_eq!(mech.certain_no_sale_rounds(), 1);
    // Feedback after a certain no-sale must not move the knowledge set.
    let before = mech.knowledge().clone();
    mech.observe(&features, &quote, false);
    assert_ellipsoid_bits(mech.knowledge(), &before, "no-sale observe");
}

#[test]
fn conservative_branch_is_bit_identical() {
    // ε pinned above any achievable width forces the conservative branch.
    let config = PricingConfig::new(1.0, 64)
        .with_reserve(true)
        .with_uncertainty(0.05)
        .with_epsilon(1e6);
    let mut mech = mechanism(2, config);
    let features = Vector::from_slice(&[0.8, -0.6]);
    let expected = reference_quote(
        mech.model(),
        mech.knowledge(),
        mech.config(),
        mech.epsilon(),
        &features,
        0.1,
    );
    assert_eq!(expected.kind, QuoteKind::Conservative);
    let quote = mech.quote(&features, 0.1);
    assert_quote_bits(&quote, &expected, "conservative");
    assert_eq!(mech.conservative_rounds(), 1);
}

#[test]
fn log_linear_model_quote_matches_reference() {
    let config = PricingConfig::new(2.0, 128).with_reserve(true);
    let mut mech = EllipsoidPricing::new(LogLinearModel::new(2), config);
    let mut rng = StdRng::seed_from_u64(11);
    for round in 0..16 {
        let features = sampling::uniform_vector(&mut rng, 2, 0.1, 1.0);
        let reserve = sampling::uniform(&mut rng, 0.5, 2.5);
        let expected = reference_quote(
            mech.model(),
            mech.knowledge(),
            mech.config(),
            mech.epsilon(),
            &features,
            reserve,
        );
        let quote = mech.quote(&features, reserve);
        assert_quote_bits(&quote, &expected, &format!("log-linear round {round}"));
        mech.observe(&features, &quote, round % 2 == 0);
    }
}

#[test]
fn observe_with_different_features_remaps_like_the_reference() {
    // A driver that observes with different features than it quoted must
    // cut along the *observe* features' mapping (the scratch cache refreshes
    // itself); the clone-and-cut reference pins that behaviour.
    let config = PricingConfig::new(2.0, 64).with_uncertainty(0.01);
    let mut mech = mechanism(3, config);
    let quoted = Vector::from_slice(&[0.2, 0.9, -0.4]);
    let observed = Vector::from_slice(&[-0.7, 0.1, 0.6]);
    let quote = mech.quote(&quoted, 0.0);
    assert_eq!(quote.kind, QuoteKind::Exploratory);
    let mut manual = mech.knowledge().clone();
    manual.cut_above(
        &mech.model().map_features(&observed),
        quote.link_price - mech.config().delta,
    );
    mech.observe(&observed, &quote, true);
    assert_ellipsoid_bits(mech.knowledge(), &manual, "cross-feature observe");
}

// ---------------------------------------------------------------------------
// The 512-round batched replay differential
// ---------------------------------------------------------------------------

/// Drives 512 seeded rounds through `serve_batch` in ragged chunks and
/// through one-at-a-time `step`/`observe`, then compares every response and
/// the complete final session state at the bit level.
#[test]
fn serve_batch_512_round_replay_is_bit_identical() {
    let dim = 4;
    let rounds = 512;
    let config = PricingConfig::new(2.0 * (dim as f64).sqrt(), rounds)
        .with_reserve(true)
        .with_uncertainty(0.005);
    let build = || {
        PricingSession::new(
            mechanism(dim, config),
            rounds,
            SimulationOptions {
                trace_points: 0,
                keep_full_trace: false,
            },
        )
        .without_latency_tracking()
    };
    let mut batched = build();
    let mut serial = build();

    let mut rng = StdRng::seed_from_u64(20_260_807);
    let mut workload: Vec<(Vector, f64, StepOutcome)> = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let features = sampling::uniform_vector(&mut rng, dim, -1.0, 1.0);
        let reserve = sampling::uniform(&mut rng, 0.0, 0.8);
        let accepted = sampling::uniform(&mut rng, 0.0, 1.0) < 0.6;
        let value = sampling::uniform(&mut rng, -0.5, 1.5);
        workload.push((features, reserve, StepOutcome::with_value(accepted, value)));
    }

    // Batched leg: ragged chunk sizes so batch boundaries fall mid-round as
    // well as between rounds.
    let mut batched_responses = Vec::with_capacity(2 * rounds);
    let flat: Vec<BatchRequest> = workload
        .iter()
        .flat_map(|(features, reserve, outcome)| {
            [
                BatchRequest::Quote {
                    features,
                    reserve_price: *reserve,
                },
                BatchRequest::Observe(*outcome),
            ]
        })
        .collect();
    let mut cursor = 0;
    let mut chunk = 1;
    while cursor < flat.len() {
        let end = (cursor + chunk).min(flat.len());
        batched.serve_batch(flat[cursor..end].iter().copied(), &mut batched_responses);
        cursor = end;
        chunk = chunk % 7 + 1; // 1, 2, …, 7, 1, … — deliberately ragged
    }
    assert_eq!(batched_responses.len(), 2 * rounds);

    // Serial leg: the pre-refactor dispatch, one call per request.
    let mut serial_records: Vec<Option<ObservedRound>> = Vec::with_capacity(rounds);
    let mut serial_quotes: Vec<Quote> = Vec::with_capacity(rounds);
    for (features, reserve, outcome) in &workload {
        serial_quotes.push(serial.step(features, *reserve));
        serial_records.push(serial.observe(*outcome));
    }

    for i in 0..rounds {
        match &batched_responses[2 * i] {
            BatchResponse::Quoted(quote) => {
                assert_quote_bits(quote, &serial_quotes[i], &format!("round {i} quote"));
            }
            other => panic!("round {i}: expected a quote, got {other:?}"),
        }
        assert_eq!(
            batched_responses[2 * i + 1],
            BatchResponse::Observed(serial_records[i]),
            "round {i} record"
        );
    }

    // Complete session state: counters, ledger, and knowledge set.
    assert_eq!(batched.rounds_closed(), serial.rounds_closed());
    assert_eq!(batched.sales(), serial.sales());
    assert_eq!(batched.abandoned_rounds(), serial.abandoned_rounds());
    assert_eq!(batched.revenue().to_bits(), serial.revenue().to_bits());
    assert_eq!(
        batched.regret_proxy().to_bits(),
        serial.regret_proxy().to_bits()
    );
    let (batched_report, serial_report) = (batched.tracker().report(), serial.tracker().report());
    assert_eq!(batched_report.rounds, serial_report.rounds);
    assert_eq!(batched_report.sales, serial_report.sales);
    assert_eq!(
        batched_report.cumulative_regret.to_bits(),
        serial_report.cumulative_regret.to_bits()
    );
    assert_eq!(
        batched_report.cumulative_revenue.to_bits(),
        serial_report.cumulative_revenue.to_bits()
    );
    assert_ellipsoid_bits(
        batched.mechanism().knowledge(),
        serial.mechanism().knowledge(),
        "final knowledge",
    );
}

#[test]
fn serve_batch_handles_malformed_interleavings_like_the_serial_path() {
    // Abandoned rounds (quote over an open round) and dropped feedback
    // (observe with no open round) must count identically on both paths.
    let config = PricingConfig::new(1.0, 32);
    let build = || {
        PricingSession::new(mechanism(2, config), 32, SimulationOptions::default())
            .without_latency_tracking()
    };
    let mut batched = build();
    let mut serial = build();
    let a = Vector::from_slice(&[0.6, 0.8]);
    let b = Vector::from_slice(&[-0.3, 0.5]);

    let requests = [
        BatchRequest::Observe(StepOutcome::accept_only(true)), // dropped
        BatchRequest::Quote {
            features: &a,
            reserve_price: 0.0,
        },
        BatchRequest::Quote {
            features: &b,
            reserve_price: 0.1,
        }, // abandons the first round
        BatchRequest::Observe(StepOutcome::accept_only(false)),
        BatchRequest::Observe(StepOutcome::with_value(true, 0.4)), // dropped
    ];
    let mut responses = Vec::new();
    batched.serve_batch(requests.iter().copied(), &mut responses);

    let dropped = serial.observe(StepOutcome::accept_only(true));
    assert!(dropped.is_none());
    let q1 = serial.step(&a, 0.0);
    let q2 = serial.step(&b, 0.1);
    let closed = serial.observe(StepOutcome::accept_only(false));
    let dropped_tail = serial.observe(StepOutcome::with_value(true, 0.4));
    assert!(dropped_tail.is_none());

    assert_eq!(responses.len(), 5);
    assert_eq!(responses[0], BatchResponse::Observed(None));
    match (&responses[1], &responses[2]) {
        (BatchResponse::Quoted(b1), BatchResponse::Quoted(b2)) => {
            assert_quote_bits(b1, &q1, "first quote");
            assert_quote_bits(b2, &q2, "abandoning quote");
        }
        other => panic!("expected two quotes, got {other:?}"),
    }
    assert_eq!(responses[3], BatchResponse::Observed(closed));
    assert_eq!(responses[4], BatchResponse::Observed(None));

    assert_eq!(batched.abandoned_rounds(), serial.abandoned_rounds());
    assert_eq!(batched.abandoned_rounds(), 1);
    assert_eq!(batched.rounds_closed(), serial.rounds_closed());
    assert_ellipsoid_bits(
        batched.mechanism().knowledge(),
        serial.mechanism().knowledge(),
        "post-interleave knowledge",
    );
}
