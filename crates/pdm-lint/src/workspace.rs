//! Workspace walking: find the `.rs` sources, classify each file into a
//! crate and a target kind, and run the analyzer over all of them in a
//! deterministic (path-sorted) order.

use crate::config::Config;
use crate::rules::{analyze, Diagnostic, FileContext, FileKind};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The outcome of a full workspace scan.
#[derive(Debug, Clone)]
pub struct Report {
    /// Workspace root the paths are relative to.
    pub root: String,
    pub files_scanned: usize,
    /// All violations, sorted by (file, line, col, rule).
    pub violations: Vec<Diagnostic>,
}

impl Report {
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Scans every `.rs` file under the configured roots.
pub fn lint_workspace(root: &Path, config: &Config) -> io::Result<Report> {
    let mut files: Vec<PathBuf> = Vec::new();
    for dir in &config.roots {
        let base = root.join(dir);
        if base.is_dir() {
            collect_rs_files(&base, &mut files)?;
        } else if base.extension().is_some_and(|e| e == "rs") && base.is_file() {
            files.push(base);
        }
    }
    files.sort();

    let mut violations = Vec::new();
    let mut scanned = 0usize;
    for file in &files {
        let rel = relative_path(root, file);
        if config.exclude.iter().any(|p| rel.starts_with(p.as_str())) {
            continue;
        }
        let Some(ctx) = classify(&rel) else {
            continue;
        };
        let source = fs::read_to_string(file)?;
        scanned += 1;
        violations.extend(analyze(&source, &ctx, config));
    }
    violations.sort_by(|a, b| {
        (&a.file, a.line, a.col, a.rule.name()).cmp(&(&b.file, b.line, b.col, b.rule.name()))
    });
    Ok(Report {
        root: root.display().to_string(),
        files_scanned: scanned,
        violations,
    })
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            // `target/` never sits under the scanned roots, but guard
            // anyway so a misconfigured root cannot scan build output.
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn relative_path(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    // Normalise to `/` so configs and reports are platform-stable.
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Maps a workspace-relative path to its crate and target kind.
///
/// `crates/<name>/src/**` is library code (`src/main.rs` and `src/bin/**`
/// are binaries); `tests/**`, `benches/**`, and `examples/**` are their own
/// kinds.  Top-level `src`/`tests`/`examples` belong to the umbrella crate
/// `personal-data-pricing`.  `vendor/**` is never classified — the offline
/// stand-ins are swap-out code, not part of the determinism contract.
pub fn classify(rel_path: &str) -> Option<FileContext> {
    let parts: Vec<&str> = rel_path.split('/').collect();
    let (crate_name, within): (&str, &[&str]) = match parts.first().copied() {
        Some("crates") if parts.len() > 2 => (parts[1], &parts[2..]),
        Some("src" | "tests" | "examples" | "benches") => ("personal-data-pricing", &parts[..]),
        _ => return None,
    };
    let kind = match within.first().copied() {
        Some("tests") => FileKind::Test,
        Some("benches") => FileKind::Bench,
        Some("examples") => FileKind::Example,
        Some("src") => {
            if within.get(1).copied() == Some("bin") || within.last().copied() == Some("main.rs") {
                FileKind::Bin
            } else {
                FileKind::Lib
            }
        }
        _ => return None,
    };
    Some(FileContext {
        crate_name: crate_name.to_owned(),
        kind,
        rel_path: rel_path.to_owned(),
    })
}

/// Renders the report as deterministic JSON (the workspace's usual
/// hand-rolled writer lives in `pdm-linalg`, but the linter must not
/// depend on a crate it scans, so it carries its own ~40-line emitter).
pub fn render_json(report: &Report) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"tool\": \"pdm-lint\",\n");
    out.push_str("  \"schema_version\": 1,\n");
    push_kv_str(&mut out, "  ", "root", &report.root);
    out.push_str(&format!(
        "  \"files_scanned\": {},\n  \"violation_count\": {},\n",
        report.files_scanned,
        report.violations.len()
    ));
    out.push_str("  \"violations\": [");
    for (i, d) in report.violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        out.push_str(&format!(
            "\"file\": {}, \"line\": {}, \"col\": {}, \"rule\": {}, \"message\": {}, \"snippet\": {}",
            json_string(&d.file),
            d.line,
            d.col,
            json_string(d.rule.name()),
            json_string(&d.message),
            json_string(&d.snippet)
        ));
        out.push('}');
    }
    if !report.violations.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

fn push_kv_str(out: &mut String, indent: &str, key: &str, value: &str) {
    out.push_str(&format!("{indent}\"{key}\": {},\n", json_string(value)));
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_maps_crate_layout() {
        let lib = classify("crates/pdm-linalg/src/matrix.rs").expect("lib");
        assert_eq!(lib.crate_name, "pdm-linalg");
        assert_eq!(lib.kind, FileKind::Lib);

        let bin = classify("crates/pdm-bench/src/bin/bench.rs").expect("bin");
        assert_eq!(bin.kind, FileKind::Bin);

        let test = classify("crates/pdm-service/tests/mixed_market.rs").expect("test");
        assert_eq!(test.kind, FileKind::Test);

        let bench = classify("crates/pdm-bench/benches/step_many.rs").expect("bench");
        assert_eq!(bench.kind, FileKind::Bench);

        let umbrella = classify("src/lib.rs").expect("umbrella");
        assert_eq!(umbrella.crate_name, "personal-data-pricing");
        assert_eq!(umbrella.kind, FileKind::Lib);

        assert!(classify("vendor/rand/src/lib.rs").is_none());
    }

    #[test]
    fn json_escapes_and_shape() {
        let report = Report {
            root: "/tmp/x".to_owned(),
            files_scanned: 1,
            violations: vec![],
        };
        let json = render_json(&report);
        assert!(json.contains("\"violation_count\": 0"));
        assert!(json.contains("\"violations\": []"));
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
    }
}
