//! The determinism-contract rules and the per-file analyzer.
//!
//! Each rule is a token-level check over masked code (see [`crate::mask`]).
//! Exceptions are in-source waiver pragmas:
//!
//! ```text
//! // pdm-lint: allow(<rule>[, <rule>…]) reason="non-empty explanation"
//! ```
//!
//! A pragma on its own line waives the next line that carries code; a
//! trailing pragma waives its own line.  Every waiver must name a known
//! rule and carry a non-empty reason — malformed pragmas and waivers that
//! suppress nothing are themselves violations (`invalid-waiver`,
//! `unused-waiver`), so stale exceptions cannot linger unreviewed.

use crate::config::Config;
use crate::mask::{mask_source, MaskedLine};

/// The named rules of the determinism contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    /// `HashMap`/`HashSet` are banned in fingerprint-bearing crates:
    /// their iteration order is seeded per process, so any traversal that
    /// reaches output breaks replay.  Use `BTreeMap`/`BTreeSet`.
    NoHashmapIteration,
    /// `Instant::now`/`SystemTime` only in whitelisted wall-clock modules
    /// (obs wall histograms, bench timing) — never on a fingerprint path.
    NoAmbientClock,
    /// No ambient entropy (`thread_rng`, `OsRng`, `RandomState`, …): all
    /// randomness must flow from an explicit seed.
    NoAmbientRandomness,
    /// Truncating `as` casts to narrow numeric types in fingerprint
    /// crates: silent wrap/round is how fingerprints drift across
    /// platforms.  Use `TryFrom`/`from`/`to_bits` or waive with the
    /// value-range argument.
    NoLossyCast,
    /// Library crates return errors; `unwrap()`/`expect()` belong in
    /// tests, benches, and binaries.
    NoUnwrapInLib,
    /// Any `unsafe` requires an in-source waiver (and the crates
    /// additionally `#![forbid(unsafe_code)]`, so the compiler backs the
    /// lint for non-test code).
    UnsafeRequiresWaiver,
    /// Meta: a malformed waiver pragma (unknown rule, missing or empty
    /// reason).  Always on; not itself waivable.
    InvalidWaiver,
    /// Meta: a waiver that suppressed nothing.  Always on; not itself
    /// waivable.
    UnusedWaiver,
}

/// The configurable rules, i.e. everything except the two meta rules.
pub const ALL_RULES: &[RuleId] = &[
    RuleId::NoHashmapIteration,
    RuleId::NoAmbientClock,
    RuleId::NoAmbientRandomness,
    RuleId::NoLossyCast,
    RuleId::NoUnwrapInLib,
    RuleId::UnsafeRequiresWaiver,
];

impl RuleId {
    pub fn name(self) -> &'static str {
        match self {
            RuleId::NoHashmapIteration => "no-hashmap-iteration",
            RuleId::NoAmbientClock => "no-ambient-clock",
            RuleId::NoAmbientRandomness => "no-ambient-randomness",
            RuleId::NoLossyCast => "no-lossy-cast",
            RuleId::NoUnwrapInLib => "no-unwrap-in-lib",
            RuleId::UnsafeRequiresWaiver => "unsafe-requires-waiver",
            RuleId::InvalidWaiver => "invalid-waiver",
            RuleId::UnusedWaiver => "unused-waiver",
        }
    }

    /// One-line description, for `--list-rules` and diagnostics.
    pub fn describe(self) -> &'static str {
        match self {
            RuleId::NoHashmapIteration => {
                "HashMap/HashSet banned in fingerprint crates; use BTreeMap/BTreeSet"
            }
            RuleId::NoAmbientClock => {
                "Instant::now/SystemTime only in whitelisted wall-clock modules"
            }
            RuleId::NoAmbientRandomness => "all randomness must be explicitly seeded",
            RuleId::NoLossyCast => "no truncating `as` casts in fingerprint crates",
            RuleId::NoUnwrapInLib => "library code returns errors instead of panicking",
            RuleId::UnsafeRequiresWaiver => "every `unsafe` carries a reviewed waiver",
            RuleId::InvalidWaiver => "waiver pragma is malformed or lacks a reason",
            RuleId::UnusedWaiver => "waiver pragma suppresses nothing",
        }
    }
}

/// What kind of build target a file belongs to; rules scope themselves by
/// kind (e.g. `no-unwrap-in-lib` skips tests and binaries).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    Lib,
    Bin,
    Test,
    Bench,
    Example,
}

/// Where a file sits for rule scoping.
#[derive(Debug, Clone)]
pub struct FileContext {
    pub crate_name: String,
    pub kind: FileKind,
    /// Workspace-relative path with `/` separators.
    pub rel_path: String,
}

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based byte column of the offending token.
    pub col: usize,
    pub rule: RuleId,
    pub message: String,
    /// The source line, trimmed, for human output.
    pub snippet: String,
}

/// A parsed waiver pragma.
#[derive(Debug, Clone)]
struct Waiver {
    rules: Vec<RuleId>,
    /// The line the waiver applies to.
    target_line: usize,
    /// The line the pragma itself sits on (for unused-waiver reporting).
    pragma_line: usize,
    used: bool,
}

/// Analyzes one masked file against the config.  This is the core the
/// binary, the fixture tests, and the clean-workspace test all share.
pub fn analyze(source: &str, ctx: &FileContext, config: &Config) -> Vec<Diagnostic> {
    let lines = mask_source(source);
    let raw_lines: Vec<&str> = source.split('\n').collect();
    let mut diags: Vec<Diagnostic> = Vec::new();
    let mut waivers: Vec<Waiver> = Vec::new();

    collect_waivers(&lines, ctx, &mut waivers, &mut diags);
    let test_lines = test_region_lines(&lines);

    for (idx, line) in lines.iter().enumerate() {
        let line_no = idx + 1;
        let in_test = test_lines[idx];
        for &rule in ALL_RULES {
            if !config.binds(rule, &ctx.crate_name, &ctx.rel_path) {
                continue;
            }
            if !rule_applies(rule, ctx.kind, in_test) {
                continue;
            }
            for (col, token) in find_tokens(rule, &line.code) {
                let waived = waivers
                    .iter_mut()
                    .find(|w| w.target_line == line_no && w.rules.contains(&rule));
                if let Some(w) = waived {
                    w.used = true;
                    continue;
                }
                diags.push(Diagnostic {
                    file: ctx.rel_path.clone(),
                    line: line_no,
                    col: col + 1,
                    rule,
                    message: format!("`{token}`: {}", rule.describe()),
                    snippet: raw_lines
                        .get(idx)
                        .map_or_else(String::new, |l| l.trim().to_owned()),
                });
            }
        }
    }

    for waiver in &waivers {
        if !waiver.used {
            diags.push(Diagnostic {
                file: ctx.rel_path.clone(),
                line: waiver.pragma_line,
                col: 1,
                rule: RuleId::UnusedWaiver,
                message: format!(
                    "waiver for {} suppresses nothing — remove it or fix the target line",
                    waiver
                        .rules
                        .iter()
                        .map(|r| r.name())
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
                snippet: raw_lines
                    .get(waiver.pragma_line - 1)
                    .map_or_else(String::new, |l| l.trim().to_owned()),
            });
        }
    }

    diags.sort_by(|a, b| (a.line, a.col, a.rule.name()).cmp(&(b.line, b.col, b.rule.name())));
    diags
}

/// Which rules fire in which target kinds, and whether `#[cfg(test)]`
/// regions are exempt.  Randomness and unsafe bind everywhere (tests must
/// be seeded too, and unsafe is unsafe wherever it sits); the rest guard
/// shipped code only.
fn rule_applies(rule: RuleId, kind: FileKind, in_test: bool) -> bool {
    match rule {
        RuleId::NoHashmapIteration | RuleId::NoAmbientClock | RuleId::NoLossyCast => {
            matches!(kind, FileKind::Lib | FileKind::Bin) && !in_test
        }
        RuleId::NoUnwrapInLib => kind == FileKind::Lib && !in_test,
        RuleId::NoAmbientRandomness | RuleId::UnsafeRequiresWaiver => true,
        RuleId::InvalidWaiver | RuleId::UnusedWaiver => true,
    }
}

/// Finds this rule's tokens in one masked code line; returns `(byte_col,
/// token)` pairs.
fn find_tokens(rule: RuleId, code: &str) -> Vec<(usize, String)> {
    match rule {
        RuleId::NoHashmapIteration => find_idents(code, &["HashMap", "HashSet"]),
        RuleId::NoAmbientClock => {
            let mut hits = find_substr(code, "Instant::now");
            hits.extend(find_idents(code, &["SystemTime"]));
            hits
        }
        RuleId::NoAmbientRandomness => {
            let mut hits = find_idents(
                code,
                &[
                    "thread_rng",
                    "from_entropy",
                    "OsRng",
                    "RandomState",
                    "getrandom",
                ],
            );
            hits.extend(find_substr(code, "rand::random"));
            hits
        }
        RuleId::NoLossyCast => find_lossy_casts(code),
        RuleId::NoUnwrapInLib => {
            let mut hits = find_substr(code, ".unwrap()");
            hits.extend(find_substr(code, ".expect("));
            hits
        }
        RuleId::UnsafeRequiresWaiver => find_idents(code, &["unsafe"]),
        RuleId::InvalidWaiver | RuleId::UnusedWaiver => Vec::new(),
    }
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Whole-identifier occurrences of any of `idents`.
fn find_idents(code: &str, idents: &[&str]) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for ident in idents {
        for pos in find_all(code, ident) {
            let before_ok = code[..pos]
                .chars()
                .next_back()
                .is_none_or(|c| !is_ident_char(c));
            let after_ok = code[pos + ident.len()..]
                .chars()
                .next()
                .is_none_or(|c| !is_ident_char(c));
            if before_ok && after_ok {
                out.push((pos, (*ident).to_owned()));
            }
        }
    }
    out.sort();
    out
}

/// Raw substring occurrences (for multi-token patterns like `.unwrap()`).
fn find_substr(code: &str, pat: &str) -> Vec<(usize, String)> {
    find_all(code, pat)
        .into_iter()
        .map(|pos| (pos, pat.to_owned()))
        .collect()
}

fn find_all(code: &str, pat: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut start = 0;
    while let Some(pos) = code[start..].find(pat) {
        out.push(start + pos);
        start += pos + pat.len();
    }
    out
}

/// Narrow numeric targets of an `as` cast.  A token scanner cannot see the
/// source type, so the rule approximates: the workspace's canonical widths
/// are `f64`/`u64`/`i64`/`usize`, and a cast *down* from those is where
/// silent truncation lives.  Casts to the wide types stay unflagged.
const NARROW_CAST_TARGETS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32", "f32"];

fn find_lossy_casts(code: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for pos in find_all(code, " as ") {
        let rest = &code[pos + 4..];
        let target: String = rest
            .trim_start()
            .chars()
            .take_while(|&c| is_ident_char(c))
            .collect();
        if NARROW_CAST_TARGETS.contains(&target.as_str()) {
            out.push((pos + 1, format!("as {target}")));
        }
    }
    out
}

/// Marks the lines inside `#[cfg(test)]`-gated items (inline `mod tests`
/// blocks, gated fns/impls).  Line granularity: a line is "test" when a
/// gated region is open at its start or opens on it.
fn test_region_lines(lines: &[MaskedLine]) -> Vec<bool> {
    let mut flags = vec![false; lines.len()];
    let mut depth: i64 = 0;
    // Open gated regions: the depth *outside* the region's braces.
    let mut regions: Vec<i64> = Vec::new();
    // A seen `#[cfg(test)]` attribute waiting for its item's `{`; holds
    // the depth at which the attribute appeared.
    let mut pending: Option<i64> = None;
    for (idx, line) in lines.iter().enumerate() {
        if !regions.is_empty() {
            flags[idx] = true;
        }
        if line.code.contains("#[cfg(test)]") {
            pending = Some(depth);
        }
        for c in line.code.chars() {
            match c {
                '{' => {
                    if pending == Some(depth) {
                        regions.push(depth);
                        pending = None;
                        flags[idx] = true;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    while regions.last().is_some_and(|&r| depth <= r) {
                        regions.pop();
                    }
                }
                // `#[cfg(test)] use …;` / `mod tests;` — attribute
                // consumed without opening a block.
                ';' if pending == Some(depth) => pending = None,
                _ => {}
            }
        }
    }
    flags
}

/// Parses waiver pragmas out of the captured line comments, resolving each
/// to its target line.
fn collect_waivers(
    lines: &[MaskedLine],
    ctx: &FileContext,
    waivers: &mut Vec<Waiver>,
    diags: &mut Vec<Diagnostic>,
) {
    for (idx, line) in lines.iter().enumerate() {
        let line_no = idx + 1;
        // Doc comments (`///` / `//!`) are documentation, not pragmas —
        // they may legitimately *show* the pragma grammar.  A waiver must
        // be a plain `//` comment.
        if line.comment.starts_with('/') || line.comment.starts_with('!') {
            continue;
        }
        let Some(pragma_pos) = line.comment.find("pdm-lint:") else {
            continue;
        };
        let pragma = line.comment[pragma_pos..].trim();
        match parse_pragma(pragma) {
            Ok(rules) => {
                let target_line = if line.is_code_blank() {
                    // Standalone pragma: waives the next line that carries
                    // code (skipping blank and comment-only lines).
                    lines
                        .iter()
                        .enumerate()
                        .skip(idx + 1)
                        .find(|(_, l)| !l.is_code_blank())
                        .map(|(j, _)| j + 1)
                        .unwrap_or(usize::MAX)
                } else {
                    line_no
                };
                waivers.push(Waiver {
                    rules,
                    target_line,
                    pragma_line: line_no,
                    used: false,
                });
            }
            Err(why) => diags.push(Diagnostic {
                file: ctx.rel_path.clone(),
                line: line_no,
                col: 1,
                rule: RuleId::InvalidWaiver,
                message: why,
                snippet: pragma.to_owned(),
            }),
        }
    }
}

/// Grammar: `pdm-lint: allow(rule[, rule…]) reason="non-empty"`.
fn parse_pragma(pragma: &str) -> Result<Vec<RuleId>, String> {
    let Some(rest) = pragma.strip_prefix("pdm-lint:") else {
        return Err("pragma lost its `pdm-lint:` marker".to_owned());
    };
    let rest = rest.trim_start();
    let rest = rest
        .strip_prefix("allow(")
        .ok_or_else(|| "expected `allow(<rule>)` after `pdm-lint:`".to_owned())?;
    let close = rest
        .find(')')
        .ok_or_else(|| "unterminated `allow(` list".to_owned())?;
    let mut rules = Vec::new();
    for name in rest[..close].split(',') {
        let name = name.trim();
        let rule = ALL_RULES
            .iter()
            .copied()
            .find(|r| r.name() == name)
            .ok_or_else(|| format!("unknown rule `{name}` in waiver"))?;
        rules.push(rule);
    }
    if rules.is_empty() {
        return Err("empty rule list in waiver".to_owned());
    }
    let tail = rest[close + 1..].trim_start();
    let reason = tail
        .strip_prefix("reason=\"")
        .and_then(|t| t.find('"').map(|end| &t[..end]))
        .ok_or_else(|| "waiver must carry reason=\"…\"".to_owned())?;
    if reason.trim().is_empty() {
        return Err("waiver reason must be non-empty".to_owned());
    }
    Ok(rules)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(kind: FileKind) -> FileContext {
        FileContext {
            crate_name: "pdm-service".to_owned(),
            kind,
            rel_path: "crates/pdm-service/src/x.rs".to_owned(),
        }
    }

    fn full_config() -> Config {
        let toml = r#"
[workspace]
roots = ["crates"]
[rules.no-hashmap-iteration]
crates = ["pdm-service"]
[rules.no-ambient-clock]
crates = ["pdm-service"]
[rules.no-ambient-randomness]
crates = ["pdm-service"]
[rules.no-lossy-cast]
crates = ["pdm-service"]
[rules.no-unwrap-in-lib]
crates = ["pdm-service"]
[rules.unsafe-requires-waiver]
crates = ["pdm-service"]
"#;
        Config::from_toml_str(toml).expect("test config parses")
    }

    #[test]
    fn cfg_test_regions_are_exempt_for_lib_rules() {
        let src = "use std::collections::HashMap;\n#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n    fn f() { x.unwrap() }\n}\n";
        let diags = analyze(src, &ctx(FileKind::Lib), &full_config());
        let hashmap_hits: Vec<_> = diags
            .iter()
            .filter(|d| d.rule == RuleId::NoHashmapIteration)
            .collect();
        assert_eq!(hashmap_hits.len(), 1, "{diags:?}");
        assert_eq!(hashmap_hits[0].line, 1);
        assert!(!diags.iter().any(|d| d.rule == RuleId::NoUnwrapInLib));
    }

    #[test]
    fn trailing_and_standalone_waivers_bind_and_count_as_used() {
        let src = "\
// pdm-lint: allow(no-ambient-clock) reason=\"wall-clock metric\"
let t = Instant::now();
let u = Instant::now(); // pdm-lint: allow(no-ambient-clock) reason=\"ditto\"
";
        let diags = analyze(src, &ctx(FileKind::Lib), &full_config());
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn unused_and_malformed_waivers_are_violations() {
        let src = "\
// pdm-lint: allow(no-ambient-clock) reason=\"nothing here\"
let x = 1;
let y = 2; // pdm-lint: allow(no-ambient-clock) reason=\"\"
";
        let diags = analyze(src, &ctx(FileKind::Lib), &full_config());
        assert!(diags
            .iter()
            .any(|d| d.rule == RuleId::UnusedWaiver && d.line == 1));
        assert!(diags
            .iter()
            .any(|d| d.rule == RuleId::InvalidWaiver && d.line == 3));
    }

    #[test]
    fn lossy_casts_flag_narrow_targets_only() {
        let src = "let a = x as u32;\nlet b = x as u64;\nlet c = y as usize;\nlet d = z as f32;\n";
        let diags = analyze(src, &ctx(FileKind::Lib), &full_config());
        let rules: Vec<_> = diags.iter().map(|d| (d.line, d.message.clone())).collect();
        assert_eq!(diags.len(), 2, "{rules:?}");
        assert_eq!(diags[0].line, 1);
        assert_eq!(diags[1].line, 4);
    }

    #[test]
    fn randomness_and_unsafe_bind_in_tests_too() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f() { let r = thread_rng(); unsafe {} }\n}\n";
        let diags = analyze(src, &ctx(FileKind::Lib), &full_config());
        assert!(diags.iter().any(|d| d.rule == RuleId::NoAmbientRandomness));
        assert!(diags.iter().any(|d| d.rule == RuleId::UnsafeRequiresWaiver));
    }

    #[test]
    fn bin_kind_skips_unwrap_rule() {
        let src = "fn main() { run().unwrap(); }\n";
        assert!(analyze(src, &ctx(FileKind::Bin), &full_config()).is_empty());
        assert!(!analyze(src, &ctx(FileKind::Lib), &full_config()).is_empty());
    }

    #[test]
    fn tokens_in_strings_and_comments_do_not_fire() {
        let src = "let s = \"HashMap unsafe thread_rng\"; // Instant::now\n";
        assert!(analyze(src, &ctx(FileKind::Lib), &full_config()).is_empty());
    }
}
