//! Comment/string masking: the first pass of the scanner.
//!
//! Rule tokens must only match *code*.  `"HashMap"` inside a string literal,
//! a doc comment mentioning `Instant::now`, or a commented-out `unwrap()`
//! are not violations.  This pass walks the source once, character by
//! character, and produces per-line views in which every comment and every
//! string/char-literal *body* has been blanked to spaces (delimiters are
//! blanked too, so a stripped `"HashMap"` cannot re-form a token).  Line
//! comments are additionally captured verbatim so the waiver-pragma parser
//! can read them.
//!
//! The masker understands the Rust lexical forms that matter for masking:
//! line comments (`//`, `///`, `//!`), nested block comments, plain and raw
//! strings (any number of `#`s, byte/C variants), char and byte literals,
//! and the char-literal/lifetime ambiguity (`'a'` vs `<'a>`), resolved with
//! the standard two-character lookahead.  It does not need to understand
//! the grammar beyond that — rules operate on tokens, not syntax trees.

/// One source line after masking.
#[derive(Debug, Clone)]
pub struct MaskedLine {
    /// The line with comments and literal bodies blanked to spaces.
    /// Byte columns of surviving code are preserved exactly.
    pub code: String,
    /// Concatenated text of any line comment on this line (without the
    /// leading slashes), for the waiver-pragma parser.
    pub comment: String,
}

impl MaskedLine {
    /// True when the line carries no code at all (blank, or comment-only).
    pub fn is_code_blank(&self) -> bool {
        self.code.chars().all(char::is_whitespace)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Code,
    LineComment,
    /// Nesting depth of `/* */` (Rust block comments nest).
    BlockComment(u32),
    /// Inside `"…"`; the flag records a pending backslash escape.
    Str {
        escaped: bool,
    },
    /// Inside `r"…"` / `r#"…"#`; the payload is the number of `#`s.
    RawStr(u32),
    /// Inside `'…'`; the flag records a pending backslash escape.
    CharLit {
        escaped: bool,
    },
}

/// Masks a whole source file.  Always returns one entry per input line.
pub fn mask_source(source: &str) -> Vec<MaskedLine> {
    let mut lines = Vec::new();
    let mut state = State::Code;
    for raw_line in source.split('\n') {
        let raw_line = raw_line.strip_suffix('\r').unwrap_or(raw_line);
        let (masked, next_state) = mask_line(raw_line, state);
        // Line comments never cross a newline.
        state = match next_state {
            State::LineComment => State::Code,
            other => other,
        };
        lines.push(masked);
    }
    lines
}

/// Masks one line starting in `state`; returns the masked line and the
/// state carried into the next line.
fn mask_line(line: &str, mut state: State) -> (MaskedLine, State) {
    let chars: Vec<char> = line.chars().collect();
    let mut code = String::with_capacity(line.len());
    let mut comment = String::new();
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        match state {
            State::Code => {
                if c == '/' && chars.get(i + 1) == Some(&'/') {
                    state = State::LineComment;
                    comment.extend(&chars[i + 2..]);
                    // Blank the rest of the line in the code view.
                    for _ in i..chars.len() {
                        code.push(' ');
                    }
                    i = chars.len();
                    continue;
                }
                if c == '/' && chars.get(i + 1) == Some(&'*') {
                    state = State::BlockComment(1);
                    code.push(' ');
                    code.push(' ');
                    i += 2;
                    continue;
                }
                if c == '"' {
                    state = State::Str { escaped: false };
                    code.push(' ');
                    i += 1;
                    continue;
                }
                // Raw-string openers: r"…", r#"…"#, br"…", cr#"…"# — the
                // prefix letter must not extend an identifier (`for` / `Cr`
                // must not trigger).
                if (c == 'r' || c == 'b' || c == 'c') && !prev_is_ident(&chars, i) {
                    if let Some((hashes, consumed)) = raw_string_open(&chars[i..]) {
                        state = State::RawStr(hashes);
                        for _ in 0..consumed {
                            code.push(' ');
                        }
                        i += consumed;
                        continue;
                    }
                    if c == 'b' && chars.get(i + 1) == Some(&'"') {
                        state = State::Str { escaped: false };
                        code.push(' ');
                        code.push(' ');
                        i += 2;
                        continue;
                    }
                }
                if c == '\'' {
                    // Char literal or lifetime?  `'\…`, or `'x'`-shaped
                    // (any char followed by a closing quote) is a literal;
                    // everything else is a lifetime and stays code.
                    let is_char_lit = match chars.get(i + 1) {
                        Some('\\') => true,
                        Some(_) => chars.get(i + 2) == Some(&'\''),
                        None => false,
                    };
                    if is_char_lit {
                        state = State::CharLit { escaped: false };
                        code.push(' ');
                        i += 1;
                        continue;
                    }
                }
                code.push(c);
                i += 1;
            }
            State::LineComment => unreachable!("line comments consume the rest of the line"),
            State::BlockComment(depth) => {
                if c == '*' && chars.get(i + 1) == Some(&'/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    code.push(' ');
                    code.push(' ');
                    i += 2;
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    state = State::BlockComment(depth + 1);
                    code.push(' ');
                    code.push(' ');
                    i += 2;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            State::Str { escaped } => {
                if escaped {
                    state = State::Str { escaped: false };
                } else if c == '\\' {
                    state = State::Str { escaped: true };
                } else if c == '"' {
                    state = State::Code;
                }
                code.push(' ');
                i += 1;
            }
            State::RawStr(hashes) => {
                if c == '"' && closes_raw_string(&chars[i + 1..], hashes) {
                    for _ in 0..=hashes {
                        code.push(' ');
                    }
                    i += 1 + hashes as usize;
                    state = State::Code;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            State::CharLit { escaped } => {
                if escaped {
                    state = State::CharLit { escaped: false };
                } else if c == '\\' {
                    state = State::CharLit { escaped: true };
                } else if c == '\'' {
                    state = State::Code;
                }
                code.push(' ');
                i += 1;
            }
        }
    }
    (MaskedLine { code, comment }, state)
}

fn prev_is_ident(chars: &[char], i: usize) -> bool {
    i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_')
}

/// Matches a raw-string opener at the start of `rest` (which begins with
/// `r`, `b`, or `c`): returns `(hash_count, chars_consumed)` through the
/// opening quote.
fn raw_string_open(rest: &[char]) -> Option<(u32, usize)> {
    let mut j = 0usize;
    // Optional b/c prefix before the r.
    if rest[0] == 'b' || rest[0] == 'c' {
        j = 1;
        if rest.get(j) != Some(&'r') {
            return None;
        }
    }
    if rest.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0u32;
    while rest.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if rest.get(j) == Some(&'"') {
        Some((hashes, j + 1))
    } else {
        None
    }
}

/// True when `rest` (the chars after a `"` inside a raw string) starts with
/// the closing run of `#`s.
fn closes_raw_string(rest: &[char], hashes: u32) -> bool {
    (0..hashes as usize).all(|k| rest.get(k) == Some(&'#'))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code_of(src: &str) -> String {
        mask_source(src)
            .into_iter()
            .map(|l| l.code)
            .collect::<Vec<_>>()
            .join("\n")
    }

    #[test]
    fn strings_and_comments_are_blanked() {
        let src = "let x = \"HashMap\"; // Instant::now\nuse std::collections::HashMap;";
        let masked = code_of(src);
        assert!(!masked.contains("Instant"));
        assert_eq!(masked.matches("HashMap").count(), 1);
        assert!(masked.contains("use std::collections::HashMap;"));
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let src = "a /* one /* two */ still */ b\n/* open\nunsafe\n*/ c";
        let masked = code_of(src);
        assert!(!masked.contains("unsafe"));
        assert!(masked.contains('a') && masked.contains('b') && masked.contains('c'));
        assert!(!masked.contains("still"));
    }

    #[test]
    fn raw_strings_hide_their_body() {
        let src = "let s = r#\"thread_rng \"quoted\" \"#; let t = 1;";
        let masked = code_of(src);
        assert!(!masked.contains("thread_rng"));
        assert!(masked.contains("let t = 1;"));
    }

    #[test]
    fn lifetimes_survive_char_literals_do_not() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }";
        let masked = code_of(src);
        assert!(masked.contains("<'a>"));
        assert!(masked.contains("&'a str"));
        assert!(!masked.contains('x') || !masked.contains("'x'"));
    }

    #[test]
    fn line_comment_text_is_captured_for_pragmas() {
        let src = "let y = 3; // pdm-lint: allow(no-unwrap-in-lib) reason=\"x\"";
        let lines = mask_source(src);
        assert!(lines[0].comment.contains("pdm-lint: allow"));
        assert!(lines[0].code.contains("let y = 3;"));
    }

    #[test]
    fn escaped_quotes_stay_inside_strings() {
        let src = "let s = \"a\\\"unsafe\\\"b\"; let u = 2;";
        let masked = code_of(src);
        assert!(!masked.contains("unsafe"));
        assert!(masked.contains("let u = 2;"));
    }

    #[test]
    fn column_positions_are_preserved() {
        let src = "let m = \"xx\"; unsafe {}";
        let masked = code_of(src);
        assert_eq!(src.find("unsafe"), masked.find("unsafe"));
    }
}
