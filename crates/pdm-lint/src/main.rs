//! The `pdm-lint` binary: scan the workspace, report violations, exit
//! non-zero when the determinism contract is broken.
//!
//! ```text
//! pdm-lint [--root DIR] [--config PATH] [--json PATH] [--quiet] [--list-rules]
//! ```
//!
//! Exit codes: `0` clean, `1` violations found, `2` usage/config error.

use pdm_lint::{lint_workspace, render_json, Config, ALL_RULES};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "\
pdm-lint — determinism & hot-path static analysis

USAGE:
    pdm-lint [OPTIONS]

OPTIONS:
    --root DIR      workspace root to scan (default: auto-discover from
                    the current directory by walking up to a lint.toml)
    --config PATH   config file (default: <root>/lint.toml)
    --json PATH     additionally write the machine-readable report to PATH
    --quiet         suppress per-violation lines; print only the summary
    --list-rules    print the rule table and exit
    --help          print this help
";

struct Args {
    root: Option<PathBuf>,
    config: Option<PathBuf>,
    json: Option<PathBuf>,
    quiet: bool,
    list_rules: bool,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        root: None,
        config: None,
        json: None,
        quiet: false,
        list_rules: false,
    };
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                args.root = Some(PathBuf::from(
                    it.next().ok_or("--root requires a directory")?,
                ))
            }
            "--config" => {
                args.config = Some(PathBuf::from(it.next().ok_or("--config requires a path")?))
            }
            "--json" => args.json = Some(PathBuf::from(it.next().ok_or("--json requires a path")?)),
            "--quiet" => args.quiet = true,
            "--list-rules" => args.list_rules = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

/// Walks up from `start` to the first directory holding a `lint.toml`.
fn discover_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("lint.toml").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(msg) => {
            if msg.is_empty() {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    if args.list_rules {
        for rule in ALL_RULES {
            println!("{:<24} {}", rule.name(), rule.describe());
        }
        return ExitCode::SUCCESS;
    }

    let root = match args.root {
        Some(root) => root,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match discover_root(&cwd) {
                Some(root) => root,
                None => {
                    eprintln!(
                        "error: no lint.toml found walking up from {}",
                        cwd.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };
    let config_path = args.config.unwrap_or_else(|| root.join("lint.toml"));
    let config_text = match std::fs::read_to_string(&config_path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("error: cannot read {}: {err}", config_path.display());
            return ExitCode::from(2);
        }
    };
    let config = match Config::from_toml_str(&config_text) {
        Ok(config) => config,
        Err(err) => {
            eprintln!("error: {err}");
            return ExitCode::from(2);
        }
    };

    let report = match lint_workspace(&root, &config) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("error: scan failed: {err}");
            return ExitCode::from(2);
        }
    };

    if let Some(json_path) = &args.json {
        if let Err(err) = std::fs::write(json_path, render_json(&report)) {
            eprintln!("error: cannot write {}: {err}", json_path.display());
            return ExitCode::from(2);
        }
    }

    if !args.quiet {
        for d in &report.violations {
            println!(
                "{}:{}:{}: [{}] {}",
                d.file,
                d.line,
                d.col,
                d.rule.name(),
                d.message
            );
            if !d.snippet.is_empty() {
                println!("    {}", d.snippet);
            }
        }
    }
    if report.is_clean() {
        println!(
            "pdm-lint: {} files scanned, determinism contract holds",
            report.files_scanned
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "pdm-lint: {} files scanned, {} violation(s)",
            report.files_scanned,
            report.violations.len()
        );
        ExitCode::FAILURE
    }
}
