//! Determinism & hot-path static analysis for the personal-data-pricing
//! workspace.
//!
//! Every guarantee this reproduction makes — bit-identical serial replay,
//! worker-count-invariant BENCH fingerprints, snapshot/WAL restores that
//! continue bit-for-bit — rests on source-level invariants that runtime
//! tests only catch *after* a fingerprint happens to cover them.  This
//! crate machine-checks those invariants as named, per-crate rules over a
//! hand-rolled line/token scanner (no `syn`, no dependencies at all,
//! consistent with the offline vendor policy):
//!
//! | rule | contract |
//! |------|----------|
//! | `no-hashmap-iteration` | `HashMap`/`HashSet` banned in fingerprint crates |
//! | `no-ambient-clock` | `Instant::now`/`SystemTime` only in whitelisted wall-clock modules |
//! | `no-ambient-randomness` | all RNG flows from an explicit seed |
//! | `no-lossy-cast` | no truncating `as` casts in fingerprint crates |
//! | `no-unwrap-in-lib` | library code returns errors; tests/benches exempt |
//! | `unsafe-requires-waiver` | every `unsafe` carries a reviewed waiver |
//!
//! Exceptions are in-source pragmas, so every one is greppable and carries
//! a reviewed reason:
//!
//! ```text
//! // pdm-lint: allow(no-ambient-clock) reason="wall-clock latency metric, excluded from the fingerprint"
//! ```
//!
//! Which rules bind to which crates lives in the checked-in `lint.toml` at
//! the workspace root; the `pdm-lint` binary scans the tree, prints
//! human-readable diagnostics (or `--json`), and exits non-zero on any
//! violation — CI gates on it, and the crate's own
//! `lints_clean_workspace` test keeps `cargo test` equivalent.
//!
//! # Quickstart
//!
//! ```
//! use pdm_lint::{analyze, Config, FileContext, FileKind};
//!
//! let config = Config::from_toml_str(
//!     "[workspace]\nroots = [\"crates\"]\n[rules.no-ambient-clock]\ncrates = [\"pdm-service\"]\n",
//! )
//! .expect("config parses");
//! let ctx = FileContext {
//!     crate_name: "pdm-service".to_owned(),
//!     kind: FileKind::Lib,
//!     rel_path: "crates/pdm-service/src/shard.rs".to_owned(),
//! };
//! let diags = analyze("let t = std::time::Instant::now();", &ctx, &config);
//! assert_eq!(diags.len(), 1);
//! assert_eq!(diags[0].rule.name(), "no-ambient-clock");
//! ```

#![forbid(unsafe_code)]

mod config;
mod mask;
mod rules;
mod workspace;

pub use config::{Config, ConfigError, RuleConfig};
pub use mask::{mask_source, MaskedLine};
pub use rules::{analyze, Diagnostic, FileContext, FileKind, RuleId, ALL_RULES};
pub use workspace::{classify, lint_workspace, render_json, Report};
