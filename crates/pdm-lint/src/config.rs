//! `lint.toml` — which rules bind to which crates, and the path whitelists.
//!
//! The parser is a deliberate TOML *subset* (the workspace vendors no TOML
//! crate): `[section]` and `[section.sub]` headers, `key = "string"`,
//! `key = ["array", "of", "strings"]` (single- or multi-line), `#` comments,
//! and nothing else.  Unknown syntax is a hard error — a config that cannot
//! be read exactly must not silently weaken the lint.

use crate::rules::{RuleId, ALL_RULES};
use std::collections::BTreeMap;
use std::fmt;

/// Per-rule binding: the crates the rule applies to and path prefixes that
/// are exempt (the "whitelisted wall-clock modules" mechanism).
#[derive(Debug, Clone, Default)]
pub struct RuleConfig {
    pub crates: Vec<String>,
    pub allow_paths: Vec<String>,
}

/// The parsed `lint.toml`.
#[derive(Debug, Clone)]
pub struct Config {
    /// Directories under the workspace root that are scanned for `.rs`
    /// sources.
    pub roots: Vec<String>,
    /// Path prefixes (relative, `/`-separated) excluded from the scan —
    /// e.g. the linter's own violation fixtures.
    pub exclude: Vec<String>,
    /// Rule bindings, keyed by rule.  A rule absent from the config binds
    /// nowhere.
    pub rules: BTreeMap<RuleId, RuleConfig>,
}

/// A config-file error with a line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

impl Config {
    /// Parses the TOML-subset config text.
    pub fn from_toml_str(text: &str) -> Result<Self, ConfigError> {
        let mut config = Config {
            roots: Vec::new(),
            exclude: Vec::new(),
            rules: BTreeMap::new(),
        };
        let mut section: Option<Section> = None;
        let mut lines = text.split('\n').enumerate().peekable();
        while let Some((idx, raw)) = lines.next() {
            let line_no = idx + 1;
            let line = strip_comment(raw).trim().to_owned();
            if line.is_empty() {
                continue;
            }
            if let Some(header) = line.strip_prefix('[') {
                let header = header.strip_suffix(']').ok_or_else(|| ConfigError {
                    line: line_no,
                    message: format!("unterminated section header `{line}`"),
                })?;
                section = Some(parse_section(header, line_no)?);
                if let Some(Section::Rule(rule)) = &section {
                    config.rules.entry(*rule).or_default();
                }
                continue;
            }
            let (key, mut value) = line.split_once('=').ok_or_else(|| ConfigError {
                line: line_no,
                message: format!("expected `key = value`, got `{line}`"),
            })?;
            let key = key.trim();
            let mut value_owned = value.trim().to_owned();
            // A multi-line array: keep consuming lines until the `]`.
            while value_owned.starts_with('[') && !balanced_array(&value_owned) {
                let (_, next) = lines.next().ok_or_else(|| ConfigError {
                    line: line_no,
                    message: format!("unterminated array for key `{key}`"),
                })?;
                value_owned.push(' ');
                value_owned.push_str(strip_comment(next).trim());
            }
            value = &value_owned;
            let values = parse_value(value, line_no)?;
            match &section {
                Some(Section::Workspace) => match key {
                    "roots" => config.roots = values,
                    "exclude" => config.exclude = values,
                    other => {
                        return Err(ConfigError {
                            line: line_no,
                            message: format!("unknown [workspace] key `{other}`"),
                        })
                    }
                },
                Some(Section::Rule(rule)) => {
                    let entry = config.rules.entry(*rule).or_default();
                    match key {
                        "crates" => entry.crates = values,
                        "allow_paths" => entry.allow_paths = values,
                        other => {
                            return Err(ConfigError {
                                line: line_no,
                                message: format!("unknown rule key `{other}`"),
                            })
                        }
                    }
                }
                None => {
                    return Err(ConfigError {
                        line: line_no,
                        message: format!("key `{key}` outside any section"),
                    })
                }
            }
        }
        if config.roots.is_empty() {
            return Err(ConfigError {
                line: 0,
                message: "[workspace] roots must name at least one directory".to_owned(),
            });
        }
        Ok(config)
    }

    /// The binding for one rule, if the config enables it anywhere.
    pub fn rule(&self, rule: RuleId) -> Option<&RuleConfig> {
        self.rules.get(&rule)
    }

    /// Whether `rule` binds to `crate_name` at `rel_path`, after the
    /// path whitelist.
    pub fn binds(&self, rule: RuleId, crate_name: &str, rel_path: &str) -> bool {
        let Some(rc) = self.rules.get(&rule) else {
            return false;
        };
        if !rc.crates.iter().any(|c| c == crate_name) {
            return false;
        }
        !rc.allow_paths.iter().any(|p| rel_path.starts_with(p))
    }
}

#[derive(Debug, Clone, Copy)]
enum Section {
    Workspace,
    Rule(RuleId),
}

fn parse_section(header: &str, line_no: usize) -> Result<Section, ConfigError> {
    let header = header.trim();
    if header == "workspace" {
        return Ok(Section::Workspace);
    }
    if let Some(rule_name) = header.strip_prefix("rules.") {
        let rule_name = rule_name.trim().trim_matches('"');
        let rule = ALL_RULES
            .iter()
            .copied()
            .find(|r| r.name() == rule_name)
            .ok_or_else(|| ConfigError {
                line: line_no,
                message: format!("unknown rule `{rule_name}` (see `pdm-lint --list-rules`)"),
            })?;
        return Ok(Section::Rule(rule));
    }
    Err(ConfigError {
        line: line_no,
        message: format!("unknown section `[{header}]`"),
    })
}

fn strip_comment(line: &str) -> &str {
    // `#` cannot appear inside our string values (paths and crate names),
    // so a bare prefix scan is enough for the subset.
    match line.find('#') {
        Some(pos) if !line[..pos].contains('"') || quote_balanced(&line[..pos]) => &line[..pos],
        _ => line,
    }
}

fn quote_balanced(prefix: &str) -> bool {
    prefix.matches('"').count().is_multiple_of(2)
}

fn balanced_array(value: &str) -> bool {
    value.trim_end().ends_with(']')
}

/// Parses either one quoted string (returned as a 1-vector) or an array of
/// quoted strings.
fn parse_value(value: &str, line_no: usize) -> Result<Vec<String>, ConfigError> {
    let value = value.trim();
    if let Some(body) = value.strip_prefix('[') {
        let body = body
            .trim_end()
            .strip_suffix(']')
            .ok_or_else(|| ConfigError {
                line: line_no,
                message: format!("unterminated array `{value}`"),
            })?;
        let mut out = Vec::new();
        for item in body.split(',') {
            let item = item.trim();
            if item.is_empty() {
                continue;
            }
            out.push(parse_string(item, line_no)?);
        }
        return Ok(out);
    }
    Ok(vec![parse_string(value, line_no)?])
}

fn parse_string(value: &str, line_no: usize) -> Result<String, ConfigError> {
    let inner = value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .ok_or_else(|| ConfigError {
            line: line_no,
            message: format!("expected a quoted string, got `{value}`"),
        })?;
    if inner.contains('"') {
        return Err(ConfigError {
            line: line_no,
            message: format!("embedded quotes are not supported: `{value}`"),
        });
    }
    Ok(inner.to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r##"
# comment
[workspace]
roots = ["crates", "src"]
exclude = ["crates/pdm-lint/tests/fixtures"]

[rules.no-hashmap-iteration]
crates = [
    "pdm-linalg",  # trailing comment
    "pdm-service",
]

[rules.no-ambient-clock]
crates = ["pdm-service"]
allow_paths = ["crates/pdm-bench/src"]
"##;

    #[test]
    fn parses_sections_and_arrays() {
        let config = Config::from_toml_str(SAMPLE).expect("sample parses");
        assert_eq!(config.roots, vec!["crates", "src"]);
        assert_eq!(config.exclude.len(), 1);
        let hm = config.rule(RuleId::NoHashmapIteration).expect("bound");
        assert_eq!(hm.crates, vec!["pdm-linalg", "pdm-service"]);
    }

    #[test]
    fn binds_honors_crates_and_allow_paths() {
        let config = Config::from_toml_str(SAMPLE).expect("sample parses");
        assert!(config.binds(
            RuleId::NoHashmapIteration,
            "pdm-service",
            "crates/pdm-service/src/shard.rs"
        ));
        assert!(!config.binds(
            RuleId::NoHashmapIteration,
            "pdm-bench",
            "crates/pdm-bench/src/grid.rs"
        ));
        assert!(!config.binds(
            RuleId::NoAmbientClock,
            "pdm-service",
            "crates/pdm-bench/src/serve.rs"
        ));
    }

    #[test]
    fn unknown_rule_is_an_error() {
        let err = Config::from_toml_str("[workspace]\nroots=[\"crates\"]\n[rules.nope]\n")
            .expect_err("unknown rule");
        assert!(err.message.contains("unknown rule"));
    }

    #[test]
    fn unknown_key_is_an_error() {
        let err = Config::from_toml_str("[workspace]\nroots=[\"c\"]\nwat=\"x\"\n")
            .expect_err("unknown key");
        assert!(err.message.contains("unknown [workspace] key"));
    }

    #[test]
    fn missing_roots_is_an_error() {
        let err = Config::from_toml_str("[rules.no-ambient-clock]\ncrates=[\"x\"]\n")
            .expect_err("no roots");
        assert!(err.message.contains("roots"));
    }
}
