//! Fixture-corpus tests: every rule catches its seeded violation, waived
//! lines pass, spans and JSON shape are pinned — plus the gate test that
//! the shipped workspace lints clean.

use pdm_lint::{
    analyze, lint_workspace, render_json, Config, FileContext, FileKind, Report, RuleId,
};
use std::path::Path;

/// A config binding every configurable rule to the synthetic `fixture`
/// crate, mirroring the shape of the checked-in `lint.toml`.
fn fixture_config() -> Config {
    Config::from_toml_str(
        r#"
[workspace]
roots = ["crates"]

[rules.no-hashmap-iteration]
crates = ["fixture"]

[rules.no-ambient-clock]
crates = ["fixture"]

[rules.no-ambient-randomness]
crates = ["fixture"]

[rules.no-lossy-cast]
crates = ["fixture"]

[rules.no-unwrap-in-lib]
crates = ["fixture"]

[rules.unsafe-requires-waiver]
crates = ["fixture"]
"#,
    )
    .expect("fixture config parses")
}

fn lint_fixture(name: &str) -> Vec<pdm_lint::Diagnostic> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let source = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {name} must be readable: {e}"));
    let ctx = FileContext {
        crate_name: "fixture".to_owned(),
        kind: FileKind::Lib,
        rel_path: format!("crates/fixture/src/{name}"),
    };
    analyze(&source, &ctx, &fixture_config())
}

/// (rule, line) pairs for comparing against expectations.
fn spans(diags: &[pdm_lint::Diagnostic]) -> Vec<(RuleId, usize)> {
    diags.iter().map(|d| (d.rule, d.line)).collect()
}

#[test]
fn hashmap_iteration_fixture() {
    let diags = lint_fixture("hashmap_iteration.rs");
    assert_eq!(
        spans(&diags),
        vec![(RuleId::NoHashmapIteration, 3)],
        "unwaived import flagged; both waived tokens on the declaration line pass: {diags:?}"
    );
    assert_eq!(diags[0].col, 23, "column points at the HashMap token");
}

#[test]
fn ambient_clock_fixture() {
    let diags = lint_fixture("ambient_clock.rs");
    assert_eq!(
        spans(&diags),
        vec![(RuleId::NoAmbientClock, 7)],
        "waived read passes and Instant::now inside a string is masked: {diags:?}"
    );
}

#[test]
fn ambient_randomness_fires_in_tests_too() {
    let diags = lint_fixture("ambient_randomness.rs");
    assert_eq!(
        spans(&diags),
        vec![
            (RuleId::NoAmbientRandomness, 5),
            (RuleId::NoAmbientRandomness, 12),
        ],
        "seeded-trajectory suites ban ambient entropy even under #[cfg(test)]: {diags:?}"
    );
}

#[test]
fn lossy_cast_fixture() {
    let diags = lint_fixture("lossy_cast.rs");
    assert_eq!(
        spans(&diags),
        vec![(RuleId::NoLossyCast, 4)],
        "narrowing cast flagged; widening and waived casts pass: {diags:?}"
    );
}

#[test]
fn unwrap_in_lib_fixture() {
    let diags = lint_fixture("unwrap_in_lib.rs");
    assert_eq!(
        spans(&diags),
        vec![(RuleId::NoUnwrapInLib, 4)],
        "library unwrap flagged; waived expect and test-region unwrap pass: {diags:?}"
    );
}

#[test]
fn unsafe_block_fixture() {
    let diags = lint_fixture("unsafe_block.rs");
    assert_eq!(
        spans(&diags),
        vec![(RuleId::UnsafeRequiresWaiver, 4)],
        "bare unsafe flagged; waived unsafe passes: {diags:?}"
    );
}

#[test]
fn bad_waiver_fixture() {
    let diags = lint_fixture("bad_waiver.rs");
    assert_eq!(
        spans(&diags),
        vec![
            (RuleId::InvalidWaiver, 4),
            (RuleId::NoUnwrapInLib, 6),
            (RuleId::InvalidWaiver, 9),
            (RuleId::UnusedWaiver, 12),
        ],
        "malformed pragmas are violations and do not suppress anything: {diags:?}"
    );
}

#[test]
fn json_report_pins_rule_and_span() {
    let diags = lint_fixture("unwrap_in_lib.rs");
    let report = Report {
        root: "fixture-root".to_owned(),
        files_scanned: 1,
        violations: diags,
    };
    let json = render_json(&report);
    assert!(json.contains("\"tool\": \"pdm-lint\""), "{json}");
    assert!(json.contains("\"violation_count\": 1"), "{json}");
    assert!(
        json.contains("\"rule\": \"no-unwrap-in-lib\""),
        "rule name serialised verbatim: {json}"
    );
    assert!(json.contains("\"line\": 4"), "span serialised: {json}");
}

/// The gate: the shipped tree carries zero unwaivered violations under the
/// checked-in `lint.toml`.  CI runs the binary too; this test makes plain
/// `cargo test` catch a regression without the extra CI row.
#[test]
fn lints_clean_workspace() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/pdm-lint sits two levels under the workspace root")
        .to_path_buf();
    let config_text =
        std::fs::read_to_string(root.join("lint.toml")).expect("checked-in lint.toml is readable");
    let config = Config::from_toml_str(&config_text).expect("checked-in lint.toml parses");
    let report = lint_workspace(&root, &config).expect("workspace scan succeeds");
    assert!(report.files_scanned > 100, "the scan saw the real tree");
    assert!(
        report.is_clean(),
        "workspace must lint clean; violations:\n{}",
        report
            .violations
            .iter()
            .map(|d| format!(
                "  {}:{}:{} [{}] {}",
                d.file,
                d.line,
                d.col,
                d.rule.name(),
                d.message
            ))
            .collect::<Vec<_>>()
            .join("\n")
    );
}
