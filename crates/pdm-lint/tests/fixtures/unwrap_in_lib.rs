//! Fixture: `no-unwrap-in-lib` — library code flagged, test regions exempt.

pub fn unwaived(x: Option<u32>) -> u32 {
    x.unwrap() // line 4: violation
}

pub fn waived(x: Option<u32>) -> u32 {
    // pdm-lint: allow(no-unwrap-in-lib) reason="fixture: invariant holds"
    x.expect("fixture invariant")
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        let x: Option<u32> = Some(1);
        assert_eq!(x.unwrap(), 1); // test region: never flagged
    }
}
