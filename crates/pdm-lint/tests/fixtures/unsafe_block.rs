//! Fixture: `unsafe-requires-waiver` — bare unsafe flagged, waived passes.

pub fn unwaived(p: *const u32) -> u32 {
    unsafe { *p } // line 4: violation
}

pub fn waived(p: *const u32) -> u32 {
    // pdm-lint: allow(unsafe-requires-waiver) reason="fixture: reviewed deref"
    unsafe { *p }
}
