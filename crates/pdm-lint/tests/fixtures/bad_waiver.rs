//! Fixture: waiver meta-rules — malformed pragmas and unused waivers are
//! themselves violations, and cannot be waived.

// pdm-lint: allow(no-unwrap-in-lib) — line 4: invalid-waiver (missing reason)
pub fn missing_reason(x: Option<u32>) -> u32 {
    x.unwrap()
}

// pdm-lint: allow(no-such-rule) reason="line 9: invalid-waiver (unknown rule)"
pub fn unknown_rule() {}

// pdm-lint: allow(no-unwrap-in-lib) reason="line 12: unused-waiver (nothing fires below)"
pub fn nothing_to_waive() {}
