//! Fixture: `no-ambient-clock` — one violation, one waived read, and a
//! masked occurrence inside a string that must NOT be flagged.

use std::time::Instant;

pub fn unwaived() -> Instant {
    Instant::now() // line 7: violation
}

pub fn waived() -> Instant {
    // pdm-lint: allow(no-ambient-clock) reason="fixture: wall-clock span"
    Instant::now()
}

pub fn masked() -> &'static str {
    "Instant::now() in a string is data, not code"
}
