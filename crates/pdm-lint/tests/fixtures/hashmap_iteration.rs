//! Fixture: `no-hashmap-iteration` — one violation, one waived use.

use std::collections::HashMap; // line 3: violation

pub fn waived_lookup_table() -> usize {
    // pdm-lint: allow(no-hashmap-iteration) reason="fixture: lookup-only map"
    let table: HashMap<u32, u32> = HashMap::new();
    table.len()
}
