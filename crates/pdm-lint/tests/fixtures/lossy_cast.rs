//! Fixture: `no-lossy-cast` — narrowing casts flagged, widening ones not.

pub fn narrowing(x: u64) -> u32 {
    x as u32 // line 4: violation
}

pub fn widening(x: u32) -> u64 {
    x as u64 // widening: never flagged
}

pub fn waived(c: char) -> u32 {
    // pdm-lint: allow(no-lossy-cast) reason="fixture: char to u32 is lossless"
    c as u32
}
