//! Fixture: `no-ambient-randomness` — fires even inside `#[cfg(test)]`
//! regions, since every suite asserts reproducible trajectories.

pub fn unwaived() {
    let _ = rand::thread_rng(); // line 5: violation
}

#[cfg(test)]
mod tests {
    #[test]
    fn seeded_by_entropy() {
        let _ = rand::rngs::StdRng::from_entropy(); // line 12: violation (tests are NOT exempt)
    }
}
