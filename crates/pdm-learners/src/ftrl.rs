//! FTRL-Proximal logistic regression (McMahan et al.), the online learner the
//! paper uses to recover the sparse CTR weight vector for impression pricing
//! (Section V-C).
//!
//! Per-coordinate adaptive learning rates plus L1/L2 regularisation give the
//! hallmark behaviour the paper relies on: excellent log-loss *and* a very
//! sparse weight vector (≈ 20 non-zeros at hashing dimensions 128 and 1024).

use pdm_linalg::Vector;
use serde::{Deserialize, Serialize};

/// FTRL-Proximal trainer/predictor for binary logistic regression over dense
/// feature vectors (the hashed one-hot encodings are dense but short).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FtrlProximal {
    alpha: f64,
    beta: f64,
    l1: f64,
    l2: f64,
    /// FTRL dual accumulator.
    z: Vec<f64>,
    /// Sum of squared gradients per coordinate.
    n: Vec<f64>,
}

impl FtrlProximal {
    /// Creates a learner for `dim`-dimensional inputs.
    ///
    /// Typical parameters: `alpha ≈ 0.1`, `beta = 1`, `l1 ≈ 1`, `l2 ≈ 1`.
    ///
    /// # Panics
    /// Panics when `dim == 0` or any hyper-parameter is negative
    /// (`alpha` must be strictly positive).
    #[must_use]
    pub fn new(dim: usize, alpha: f64, beta: f64, l1: f64, l2: f64) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert!(alpha > 0.0, "alpha must be positive");
        assert!(
            beta >= 0.0 && l1 >= 0.0 && l2 >= 0.0,
            "hyper-parameters must be non-negative"
        );
        Self {
            alpha,
            beta,
            l1,
            l2,
            z: vec![0.0; dim],
            n: vec![0.0; dim],
        }
    }

    /// Input dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.z.len()
    }

    /// The current weight vector implied by the FTRL state (the proximal
    /// closed form with L1 soft-thresholding).
    #[must_use]
    pub fn weights(&self) -> Vector {
        Vector::from_fn(self.dim(), |i| self.weight(i))
    }

    fn weight(&self, i: usize) -> f64 {
        let z = self.z[i];
        if z.abs() <= self.l1 {
            0.0
        } else {
            let sign = z.signum();
            -(z - sign * self.l1) / ((self.beta + self.n[i].sqrt()) / self.alpha + self.l2)
        }
    }

    /// Number of non-zero weights (the sparsity the paper reports).
    #[must_use]
    pub fn num_nonzero_weights(&self) -> usize {
        (0..self.dim()).filter(|&i| self.weight(i) != 0.0).count()
    }

    /// Number of weights whose magnitude exceeds `tol`.
    ///
    /// On synthetic streams where every hash bucket receives events, the L1
    /// soft threshold leaves many *negligible* but formally non-zero weights;
    /// counting the significant ones is the robust way to report sparsity.
    #[must_use]
    pub fn num_significant_weights(&self, tol: f64) -> usize {
        (0..self.dim())
            .filter(|&i| self.weight(i).abs() > tol)
            .count()
    }

    /// Predicted click probability for one feature vector.
    ///
    /// # Panics
    /// Panics when the feature dimension does not match.
    #[must_use]
    pub fn predict(&self, features: &Vector) -> f64 {
        assert_eq!(features.len(), self.dim(), "feature dimension mismatch");
        let mut logit = 0.0;
        for i in 0..self.dim() {
            let x = features[i];
            if x != 0.0 {
                logit += self.weight(i) * x;
            }
        }
        sigmoid(logit)
    }

    /// One online update on a labelled example; returns the pre-update
    /// predicted probability (the quantity whose log-loss is reported).
    ///
    /// # Panics
    /// Panics when the feature dimension does not match.
    pub fn update(&mut self, features: &Vector, clicked: bool) -> f64 {
        let p = self.predict(features);
        let y = if clicked { 1.0 } else { 0.0 };
        for i in 0..self.dim() {
            let x = features[i];
            if x == 0.0 {
                continue;
            }
            let g = (p - y) * x;
            let sigma = ((self.n[i] + g * g).sqrt() - self.n[i].sqrt()) / self.alpha;
            self.z[i] += g - sigma * self.weight(i);
            self.n[i] += g * g;
        }
        p
    }

    /// Trains over a labelled stream and returns the average log-loss of the
    /// online predictions (progressive validation).
    pub fn fit_stream<'a, I>(&mut self, examples: I) -> f64
    where
        I: IntoIterator<Item = (&'a Vector, bool)>,
    {
        let mut total = 0.0;
        let mut count = 0usize;
        for (features, clicked) in examples {
            let p = self.update(features, clicked);
            total += log_loss(p, clicked);
            count += 1;
        }
        if count == 0 {
            0.0
        } else {
            total / count as f64
        }
    }

    /// Average log-loss of the current model over a labelled set (no
    /// updates).
    #[must_use]
    pub fn evaluate(&self, examples: &[(Vector, bool)]) -> f64 {
        if examples.is_empty() {
            return 0.0;
        }
        examples
            .iter()
            .map(|(x, y)| log_loss(self.predict(x), *y))
            .sum::<f64>()
            / examples.len() as f64
    }
}

/// Numerically stable sigmoid.
fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

/// Binary cross-entropy of a prediction, clamped away from 0/1.
#[must_use]
pub fn log_loss(probability: f64, clicked: bool) -> f64 {
    let p = probability.clamp(1e-12, 1.0 - 1e-12);
    if clicked {
        -p.ln()
    } else {
        -(1.0 - p).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdm_linalg::sampling;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Generates a stream from a sparse ground-truth logistic model.
    ///
    /// The base logit is zero (no global bias) so that, as in a production
    /// CTR pipeline with an explicit bias feature, only the informative
    /// tokens need non-zero weights and L1 can zero out the rest.
    fn synthetic_stream(
        n: usize,
        dim: usize,
        active: usize,
        seed: u64,
    ) -> (Vec<(Vector, bool)>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let active_idx: Vec<usize> = (0..active).map(|k| (k * dim / active) % dim).collect();
        let mut data = Vec::with_capacity(n);
        for _ in 0..n {
            // Sparse binary features: ~8 active buckets per example.
            let mut x = Vector::zeros(dim);
            for _ in 0..8 {
                let idx = rng.gen_range(0..dim);
                x[idx] = 1.0;
            }
            let mut logit = 0.0;
            for (rank, &idx) in active_idx.iter().enumerate() {
                if x[idx] != 0.0 {
                    logit += if rank % 2 == 0 { 2.0 } else { -1.5 };
                }
            }
            let clicked =
                rng.gen::<f64>() < sigmoid(logit + 0.3 * sampling::standard_normal(&mut rng));
            data.push((x, clicked));
        }
        (data, active_idx)
    }

    #[test]
    fn log_loss_basics() {
        assert!(log_loss(0.9, true) < log_loss(0.1, true));
        assert!(log_loss(0.1, false) < log_loss(0.9, false));
        assert!(log_loss(1.0, true).is_finite());
        assert!(log_loss(0.0, true).is_finite());
    }

    #[test]
    fn untrained_model_predicts_one_half() {
        let model = FtrlProximal::new(16, 0.1, 1.0, 1.0, 1.0);
        let x = Vector::basis(16, 3);
        assert!((model.predict(&x) - 0.5).abs() < 1e-12);
        assert_eq!(model.num_nonzero_weights(), 0);
    }

    #[test]
    fn training_beats_the_constant_predictor() {
        let (data, _) = synthetic_stream(20_000, 64, 6, 5);
        let mut model = FtrlProximal::new(64, 0.15, 1.0, 0.5, 1.0);
        let refs: Vec<(&Vector, bool)> = data.iter().map(|(x, y)| (x, *y)).collect();
        let online_loss = model.fit_stream(refs);
        // Baseline: always predict the empirical CTR.
        let ctr = data.iter().filter(|(_, y)| *y).count() as f64 / data.len() as f64;
        let baseline: f64 =
            data.iter().map(|(_, y)| log_loss(ctr, *y)).sum::<f64>() / data.len() as f64;
        assert!(
            online_loss < baseline * 0.95,
            "FTRL loss {online_loss} should beat the constant baseline {baseline}"
        );
        // Holdout evaluation is also better.
        let holdout = model.evaluate(&data[..2000]);
        assert!(holdout < baseline);
    }

    #[test]
    fn l1_regularisation_produces_sparse_weights() {
        let (data, _) = synthetic_stream(15_000, 128, 6, 7);
        let refs: Vec<(&Vector, bool)> = data.iter().map(|(x, y)| (x, *y)).collect();
        let mut model = FtrlProximal::new(128, 0.1, 1.0, 3.0, 1.0);
        model.fit_stream(refs);
        let significant = model.num_significant_weights(0.1);
        assert!(significant > 0, "some weights must be learned");
        assert!(
            significant < 32,
            "only the informative tokens should carry significant weight, got {significant}"
        );
        assert!(model.num_nonzero_weights() >= significant);
    }

    #[test]
    fn stronger_l1_is_sparser() {
        let (data, _) = synthetic_stream(8_000, 64, 6, 9);
        let refs: Vec<(&Vector, bool)> = data.iter().map(|(x, y)| (x, *y)).collect();
        let mut weak = FtrlProximal::new(64, 0.1, 1.0, 0.1, 1.0);
        weak.fit_stream(refs.clone());
        let mut strong = FtrlProximal::new(64, 0.1, 1.0, 5.0, 1.0);
        strong.fit_stream(refs);
        assert!(strong.num_nonzero_weights() <= weak.num_nonzero_weights());
    }

    #[test]
    fn weights_vector_matches_per_coordinate_weights() {
        let (data, _) = synthetic_stream(2_000, 32, 4, 11);
        let refs: Vec<(&Vector, bool)> = data.iter().map(|(x, y)| (x, *y)).collect();
        let mut model = FtrlProximal::new(32, 0.1, 1.0, 1.0, 1.0);
        model.fit_stream(refs);
        let w = model.weights();
        assert_eq!(w.len(), 32);
        assert_eq!(
            w.count_nonzero(0.0),
            model.num_nonzero_weights(),
            "weights() and num_nonzero_weights() must agree"
        );
    }

    #[test]
    #[should_panic(expected = "feature dimension mismatch")]
    fn dimension_mismatch_panics() {
        let model = FtrlProximal::new(8, 0.1, 1.0, 1.0, 1.0);
        let _ = model.predict(&Vector::zeros(4));
    }
}
