//! Ordinary least squares (with an optional ridge term), used to recover the
//! log-linear hedonic weights of the Airbnb application (Section V-B).

use pdm_linalg::{Cholesky, LinalgError, Matrix, Vector};
use serde::{Deserialize, Serialize};

/// A fitted linear regression model `y ≈ x^T w (+ intercept)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearRegression {
    weights: Vector,
    intercept: f64,
    fit_intercept: bool,
    ridge: f64,
}

impl LinearRegression {
    /// Fits by solving the (ridge-regularised) normal equations with a
    /// Cholesky factorisation.
    ///
    /// `ridge = 0` gives plain OLS; a small positive value stabilises
    /// collinear designs (the interaction features of the Airbnb pipeline are
    /// mildly collinear).
    ///
    /// # Errors
    /// Returns an error when the design is empty, the row/target counts
    /// differ, or the normal equations are singular.
    pub fn fit(
        rows: &[Vector],
        targets: &[f64],
        fit_intercept: bool,
        ridge: f64,
    ) -> Result<Self, LinalgError> {
        if rows.is_empty() {
            return Err(LinalgError::Empty {
                operation: "LinearRegression::fit",
            });
        }
        if rows.len() != targets.len() {
            return Err(LinalgError::DimensionMismatch {
                operation: "LinearRegression::fit",
                expected: rows.len(),
                actual: targets.len(),
            });
        }
        let dim = rows[0].len();
        let aug = if fit_intercept { dim + 1 } else { dim };

        // Accumulate X^T X and X^T y over the (intercept-augmented) design.
        let mut xtx = Matrix::zeros(aug, aug);
        let mut xty = Vector::zeros(aug);
        let mut row_buffer = vec![0.0_f64; aug];
        for (row, &y) in rows.iter().zip(targets.iter()) {
            if row.len() != dim {
                return Err(LinalgError::DimensionMismatch {
                    operation: "LinearRegression::fit",
                    expected: dim,
                    actual: row.len(),
                });
            }
            row_buffer[..dim].copy_from_slice(row.as_slice());
            if fit_intercept {
                row_buffer[dim] = 1.0;
            }
            for i in 0..aug {
                let ri = row_buffer[i];
                if ri == 0.0 {
                    continue;
                }
                xty[i] += ri * y;
                for (j, &rj) in row_buffer[..aug].iter().enumerate() {
                    xtx.add_to(i, j, ri * rj);
                }
            }
        }
        // Ridge term (never applied to the intercept column).
        let effective_ridge = ridge.max(0.0) + 1e-10;
        for i in 0..dim {
            xtx.add_to(i, i, effective_ridge);
        }
        if fit_intercept {
            xtx.add_to(dim, dim, 1e-10);
        }

        let chol = Cholesky::factor(&xtx, 1e-6)?;
        let solution = chol.solve(&xty)?;
        let weights = Vector::from_fn(dim, |i| solution[i]);
        let intercept = if fit_intercept { solution[dim] } else { 0.0 };
        Ok(Self {
            weights,
            intercept,
            fit_intercept,
            ridge,
        })
    }

    /// The fitted weights (excluding the intercept).
    #[must_use]
    pub fn weights(&self) -> &Vector {
        &self.weights
    }

    /// The fitted intercept (zero when not requested).
    #[must_use]
    pub fn intercept(&self) -> f64 {
        self.intercept
    }

    /// The fitted weights with the intercept appended as the last element —
    /// convenient for feeding the pricing mechanism, whose feature map can
    /// append a constant `1`.
    #[must_use]
    pub fn weights_with_intercept(&self) -> Vector {
        let mut out = self.weights.as_slice().to_vec();
        out.push(self.intercept);
        Vector::from_vec(out)
    }

    /// Predicts the target for one row.
    ///
    /// # Panics
    /// Panics when the row dimension does not match the fitted weights.
    #[must_use]
    pub fn predict(&self, row: &Vector) -> f64 {
        self.weights
            .dot(row)
            // pdm-lint: allow(no-unwrap-in-lib) reason="the fitted weight vector shares the design-matrix dimension by construction of fit()"
            .expect("prediction row must match the fitted dimension")
            + self.intercept
    }

    /// Mean squared error over a labelled set.
    ///
    /// # Panics
    /// Panics when the slices have different lengths.
    #[must_use]
    pub fn mse(&self, rows: &[Vector], targets: &[f64]) -> f64 {
        assert_eq!(rows.len(), targets.len());
        if rows.is_empty() {
            return 0.0;
        }
        rows.iter()
            .zip(targets.iter())
            .map(|(row, &y)| {
                let e = self.predict(row) - y;
                e * e
            })
            .sum::<f64>()
            / rows.len() as f64
    }

    /// Coefficient of determination R² over a labelled set.
    #[must_use]
    pub fn r_squared(&self, rows: &[Vector], targets: &[f64]) -> f64 {
        assert_eq!(rows.len(), targets.len());
        if rows.is_empty() {
            return 0.0;
        }
        let mean = targets.iter().sum::<f64>() / targets.len() as f64;
        let ss_tot: f64 = targets.iter().map(|y| (y - mean) * (y - mean)).sum();
        let ss_res: f64 = rows
            .iter()
            .zip(targets.iter())
            .map(|(row, &y)| {
                let e = self.predict(row) - y;
                e * e
            })
            .sum();
        if ss_tot <= 0.0 {
            return 0.0;
        }
        1.0 - ss_res / ss_tot
    }

    /// Whether an intercept was fitted.
    #[must_use]
    pub fn has_intercept(&self) -> bool {
        self.fit_intercept
    }

    /// The ridge strength used at fit time.
    #[must_use]
    pub fn ridge(&self) -> f64 {
        self.ridge
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdm_linalg::sampling;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn synthetic(
        n: usize,
        dim: usize,
        noise: f64,
        seed: u64,
    ) -> (Vec<Vector>, Vec<f64>, Vector, f64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let true_w = Vector::from_fn(dim, |i| (i as f64 + 1.0) * 0.3 - 0.4);
        let intercept = 1.7;
        let mut rows = Vec::with_capacity(n);
        let mut targets = Vec::with_capacity(n);
        for _ in 0..n {
            let x = sampling::standard_normal_vector(&mut rng, dim);
            let y = x.dot(&true_w).unwrap() + intercept + sampling::normal(&mut rng, 0.0, noise);
            rows.push(x);
            targets.push(y);
        }
        (rows, targets, true_w, intercept)
    }

    #[test]
    fn recovers_noiseless_ground_truth() {
        let (rows, targets, true_w, intercept) = synthetic(200, 4, 0.0, 1);
        let model = LinearRegression::fit(&rows, &targets, true, 0.0).unwrap();
        for i in 0..4 {
            assert!((model.weights()[i] - true_w[i]).abs() < 1e-6);
        }
        assert!((model.intercept() - intercept).abs() < 1e-6);
        assert!(model.mse(&rows, &targets) < 1e-10);
        assert!(model.r_squared(&rows, &targets) > 0.999_999);
    }

    #[test]
    fn approximate_recovery_under_noise() {
        let (rows, targets, true_w, _) = synthetic(5_000, 6, 0.3, 2);
        let model = LinearRegression::fit(&rows, &targets, true, 0.0).unwrap();
        for i in 0..6 {
            assert!(
                (model.weights()[i] - true_w[i]).abs() < 0.05,
                "weight {i}: {} vs {}",
                model.weights()[i],
                true_w[i]
            );
        }
        let mse = model.mse(&rows, &targets);
        assert!(
            (mse - 0.09).abs() < 0.03,
            "MSE should approach σ² = 0.09, got {mse}"
        );
    }

    #[test]
    fn without_intercept_forces_origin() {
        let rows = vec![
            Vector::from_slice(&[1.0]),
            Vector::from_slice(&[2.0]),
            Vector::from_slice(&[3.0]),
        ];
        let targets = vec![2.0, 4.0, 6.0];
        let model = LinearRegression::fit(&rows, &targets, false, 0.0).unwrap();
        assert!((model.weights()[0] - 2.0).abs() < 1e-9);
        assert_eq!(model.intercept(), 0.0);
        assert!(!model.has_intercept());
    }

    #[test]
    fn ridge_shrinks_weights() {
        let (rows, targets, _, _) = synthetic(100, 3, 0.1, 3);
        let plain = LinearRegression::fit(&rows, &targets, true, 0.0).unwrap();
        let ridged = LinearRegression::fit(&rows, &targets, true, 50.0).unwrap();
        assert!(ridged.weights().norm() < plain.weights().norm());
        assert_eq!(ridged.ridge(), 50.0);
    }

    #[test]
    fn weights_with_intercept_appends_constant_term() {
        let (rows, targets, _, _) = synthetic(50, 2, 0.0, 4);
        let model = LinearRegression::fit(&rows, &targets, true, 0.0).unwrap();
        let w = model.weights_with_intercept();
        assert_eq!(w.len(), 3);
        assert!((w[2] - model.intercept()).abs() < 1e-12);
    }

    #[test]
    fn error_cases() {
        assert!(LinearRegression::fit(&[], &[], true, 0.0).is_err());
        let rows = vec![Vector::from_slice(&[1.0])];
        assert!(LinearRegression::fit(&rows, &[1.0, 2.0], true, 0.0).is_err());
        let ragged = vec![Vector::from_slice(&[1.0]), Vector::from_slice(&[1.0, 2.0])];
        assert!(LinearRegression::fit(&ragged, &[1.0, 2.0], true, 0.0).is_err());
    }
}
