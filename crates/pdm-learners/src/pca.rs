//! Principal component analysis, the dimensionality-reduction option the
//! paper mentions for compressing high-dimensional compensation profiles
//! (Section II-B).

use pdm_linalg::{jacobi_eigen, LinalgError, Matrix, Vector};
use serde::{Deserialize, Serialize};

/// A fitted PCA transform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pca {
    mean: Vector,
    /// Columns are the principal directions, sorted by decreasing variance.
    components: Matrix,
    explained_variance: Vector,
    n_components: usize,
}

impl Pca {
    /// Fits a PCA keeping `n_components` directions.
    ///
    /// # Errors
    /// Returns an error when the input is empty, rows are ragged, or
    /// `n_components` exceeds the input dimension.
    pub fn fit(rows: &[Vector], n_components: usize) -> Result<Self, LinalgError> {
        if rows.is_empty() {
            return Err(LinalgError::Empty {
                operation: "Pca::fit",
            });
        }
        let dim = rows[0].len();
        if n_components == 0 || n_components > dim {
            return Err(LinalgError::InvalidArgument {
                message: format!("n_components {n_components} out of range for dimension {dim}"),
            });
        }
        for row in rows {
            if row.len() != dim {
                return Err(LinalgError::DimensionMismatch {
                    operation: "Pca::fit",
                    expected: dim,
                    actual: row.len(),
                });
            }
        }
        // Mean vector.
        let mut mean = Vector::zeros(dim);
        for row in rows {
            mean += row;
        }
        mean.scale_mut(1.0 / rows.len() as f64);
        // Covariance matrix.
        let mut cov = Matrix::zeros(dim, dim);
        for row in rows {
            let centered = row - &mean;
            cov.rank_one_update(1.0 / rows.len() as f64, &centered);
        }
        let eig = jacobi_eigen(&cov, 1e-6)?;
        // Keep the leading components.
        let mut components = Matrix::zeros(dim, n_components);
        for j in 0..n_components {
            let col = eig.eigenvectors.column(j);
            for i in 0..dim {
                components.set(i, j, col[i]);
            }
        }
        let explained_variance = Vector::from_fn(n_components, |i| eig.eigenvalues[i].max(0.0));
        Ok(Self {
            mean,
            components,
            explained_variance,
            n_components,
        })
    }

    /// Number of retained components.
    #[must_use]
    pub fn n_components(&self) -> usize {
        self.n_components
    }

    /// Variance explained by each retained component, in decreasing order.
    #[must_use]
    pub fn explained_variance(&self) -> &Vector {
        &self.explained_variance
    }

    /// Projects one row onto the retained components.
    ///
    /// # Panics
    /// Panics when the row dimension does not match the fitted data.
    #[must_use]
    pub fn transform(&self, row: &Vector) -> Vector {
        let centered = row - &self.mean;
        self.components.matvec_transposed(&centered)
    }

    /// Reconstructs a row from its projection (the inverse transform up to
    /// the discarded variance).
    #[must_use]
    pub fn inverse_transform(&self, projected: &Vector) -> Vector {
        &self.components.matvec(projected) + &self.mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdm_linalg::sampling;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Data concentrated along one direction in 3-D.
    fn anisotropic_rows(n: usize, seed: u64) -> Vec<Vector> {
        let mut rng = StdRng::seed_from_u64(seed);
        let direction = Vector::from_slice(&[0.6, 0.8, 0.0]);
        (0..n)
            .map(|_| {
                let main = 3.0 * sampling::standard_normal(&mut rng);
                let noise = sampling::standard_normal_vector(&mut rng, 3).scaled(0.1);
                &direction.scaled(main) + &noise
            })
            .collect()
    }

    #[test]
    fn first_component_captures_the_dominant_direction() {
        let rows = anisotropic_rows(2_000, 1);
        let pca = Pca::fit(&rows, 2).unwrap();
        let first = Vector::from_fn(3, |i| pca_component(&pca, i, 0));
        // Aligned (up to sign) with (0.6, 0.8, 0).
        let alignment = first
            .dot(&Vector::from_slice(&[0.6, 0.8, 0.0]))
            .unwrap()
            .abs();
        assert!(alignment > 0.99, "alignment was {alignment}");
        assert!(pca.explained_variance()[0] > 5.0 * pca.explained_variance()[1]);
    }

    fn pca_component(pca: &Pca, i: usize, j: usize) -> f64 {
        // transform of the i-th basis vector minus transform of the origin
        // gives the (i, j) entry of the component matrix.
        let e = Vector::basis(3, i);
        let zero = Vector::zeros(3);
        pca.transform(&e)[j] - pca.transform(&zero)[j]
    }

    #[test]
    fn transform_and_inverse_roundtrip_on_low_rank_data() {
        let rows = anisotropic_rows(500, 2);
        let pca = Pca::fit(&rows, 1).unwrap();
        // Reconstruction error should be small because the data is nearly
        // one-dimensional.
        let mut total = 0.0;
        for row in &rows {
            let recon = pca.inverse_transform(&pca.transform(row));
            total += row.distance(&recon).unwrap();
        }
        let avg = total / rows.len() as f64;
        assert!(avg < 0.25, "average reconstruction error was {avg}");
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(Pca::fit(&[], 1).is_err());
        let rows = vec![Vector::zeros(3)];
        assert!(Pca::fit(&rows, 0).is_err());
        assert!(Pca::fit(&rows, 4).is_err());
        let ragged = vec![Vector::zeros(3), Vector::zeros(2)];
        assert!(Pca::fit(&ragged, 1).is_err());
    }

    #[test]
    fn projection_has_requested_dimension() {
        let rows = anisotropic_rows(200, 3);
        let pca = Pca::fit(&rows, 2).unwrap();
        assert_eq!(pca.n_components(), 2);
        assert_eq!(pca.transform(&rows[0]).len(), 2);
    }
}
