//! # pdm-learners
//!
//! The learning substrate the paper uses to obtain the *ground-truth* weight
//! vectors for its non-linear pricing applications:
//!
//! * the Airbnb pipeline — pandas-style categorical encoding, interaction
//!   features, ordinary least squares on the log price (Section V-B) — is
//!   reproduced by [`encoding::CategoricalEncoder`],
//!   [`encoding::InteractionFeatures`], and [`regression::LinearRegression`];
//! * the Avazu pipeline — one-hot hashing and FTRL-Proximal logistic
//!   regression on the click labels (Section V-C) — is reproduced by
//!   [`encoding::HashingEncoder`] and [`ftrl::FtrlProximal`];
//! * the dimensionality-reduction remark of Section II-B is covered by
//!   [`pca::Pca`];
//! * [`scaler::StandardScaler`] and [`split::train_test_split`] provide the
//!   plumbing both pipelines share.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod encoding;
pub mod ftrl;
pub mod pca;
pub mod regression;
pub mod scaler;
pub mod split;

pub use encoding::{CategoricalEncoder, HashingEncoder, InteractionFeatures};
pub use ftrl::FtrlProximal;
pub use pca::Pca;
pub use regression::LinearRegression;
pub use scaler::StandardScaler;
pub use split::train_test_split;
