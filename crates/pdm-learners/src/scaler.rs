//! Feature standardisation (zero mean, unit variance per column).

use pdm_linalg::{LinalgError, Vector};
use serde::{Deserialize, Serialize};

/// A fitted per-column standardiser.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StandardScaler {
    means: Vector,
    stds: Vector,
}

impl StandardScaler {
    /// Fits the scaler on a set of rows.
    ///
    /// Columns with (numerically) zero variance keep a unit scale so the
    /// transform stays well defined.
    ///
    /// # Errors
    /// Returns an error when the input is empty or ragged.
    pub fn fit(rows: &[Vector]) -> Result<Self, LinalgError> {
        if rows.is_empty() {
            return Err(LinalgError::Empty {
                operation: "StandardScaler::fit",
            });
        }
        let dim = rows[0].len();
        for row in rows {
            if row.len() != dim {
                return Err(LinalgError::DimensionMismatch {
                    operation: "StandardScaler::fit",
                    expected: dim,
                    actual: row.len(),
                });
            }
        }
        let n = rows.len() as f64;
        let mut means = Vector::zeros(dim);
        for row in rows {
            means += row;
        }
        means.scale_mut(1.0 / n);
        let mut vars = Vector::zeros(dim);
        for row in rows {
            for i in 0..dim {
                let d = row[i] - means[i];
                vars[i] += d * d;
            }
        }
        vars.scale_mut(1.0 / n);
        let stds = vars.map(|v| if v.sqrt() < 1e-12 { 1.0 } else { v.sqrt() });
        Ok(Self { means, stds })
    }

    /// Per-column means.
    #[must_use]
    pub fn means(&self) -> &Vector {
        &self.means
    }

    /// Per-column standard deviations (unit for constant columns).
    #[must_use]
    pub fn stds(&self) -> &Vector {
        &self.stds
    }

    /// Standardises one row.
    ///
    /// # Panics
    /// Panics when the row dimension does not match.
    #[must_use]
    pub fn transform(&self, row: &Vector) -> Vector {
        assert_eq!(row.len(), self.means.len(), "dimension mismatch");
        Vector::from_fn(row.len(), |i| (row[i] - self.means[i]) / self.stds[i])
    }

    /// Standardises a set of rows.
    #[must_use]
    pub fn transform_all(&self, rows: &[Vector]) -> Vec<Vector> {
        rows.iter().map(|r| self.transform(r)).collect()
    }

    /// Undoes the standardisation of one row.
    #[must_use]
    pub fn inverse_transform(&self, row: &Vector) -> Vector {
        Vector::from_fn(row.len(), |i| row[i] * self.stds[i] + self.means[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<Vector> {
        vec![
            Vector::from_slice(&[1.0, 10.0, 5.0]),
            Vector::from_slice(&[2.0, 20.0, 5.0]),
            Vector::from_slice(&[3.0, 30.0, 5.0]),
        ]
    }

    #[test]
    fn transformed_columns_have_zero_mean_unit_variance() {
        let scaler = StandardScaler::fit(&rows()).unwrap();
        let transformed = scaler.transform_all(&rows());
        for col in 0..2 {
            let mean: f64 = transformed.iter().map(|r| r[col]).sum::<f64>() / 3.0;
            let var: f64 = transformed.iter().map(|r| r[col] * r[col]).sum::<f64>() / 3.0;
            assert!(mean.abs() < 1e-12);
            assert!((var - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn constant_columns_are_left_centred_but_not_blown_up() {
        let scaler = StandardScaler::fit(&rows()).unwrap();
        let t = scaler.transform(&Vector::from_slice(&[2.0, 20.0, 5.0]));
        assert_eq!(t[2], 0.0);
        assert_eq!(scaler.stds()[2], 1.0);
    }

    #[test]
    fn inverse_transform_round_trips() {
        let scaler = StandardScaler::fit(&rows()).unwrap();
        let original = Vector::from_slice(&[1.5, 12.0, 5.0]);
        let back = scaler.inverse_transform(&scaler.transform(&original));
        for i in 0..3 {
            assert!((back[i] - original[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn rejects_empty_and_ragged_input() {
        assert!(StandardScaler::fit(&[]).is_err());
        let ragged = vec![Vector::zeros(2), Vector::zeros(3)];
        assert!(StandardScaler::fit(&ragged).is_err());
    }
}
