//! Train/test splitting (the paper holds out 20 % of the Airbnb records and
//! the last two days of the Avazu log).

use rand::seq::SliceRandom;
use rand::Rng;

/// Splits indices `0..n` into a shuffled train set and test set, with
/// `test_fraction` of the items going to the test set (at least one item in
/// each set when `n >= 2`).
///
/// # Panics
/// Panics when `test_fraction` is outside `(0, 1)`.
pub fn train_test_split<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    test_fraction: f64,
) -> (Vec<usize>, Vec<usize>) {
    assert!(
        test_fraction > 0.0 && test_fraction < 1.0,
        "test fraction must be in (0, 1)"
    );
    let mut indices: Vec<usize> = (0..n).collect();
    indices.shuffle(rng);
    let mut test_size = ((n as f64) * test_fraction).round() as usize;
    if n >= 2 {
        test_size = test_size.clamp(1, n - 1);
    }
    let test = indices[..test_size].to_vec();
    let train = indices[test_size..].to_vec();
    (train, test)
}

/// Splits a chronologically ordered set by holding out the trailing
/// `holdout_fraction` of items (the Avazu "last two days" convention).
///
/// # Panics
/// Panics when `holdout_fraction` is outside `(0, 1)`.
#[must_use]
pub fn chronological_split(n: usize, holdout_fraction: f64) -> (Vec<usize>, Vec<usize>) {
    assert!(
        holdout_fraction > 0.0 && holdout_fraction < 1.0,
        "holdout fraction must be in (0, 1)"
    );
    let holdout = ((n as f64) * holdout_fraction).round() as usize;
    let cut = n.saturating_sub(holdout.max(usize::from(n >= 2)));
    ((0..cut).collect(), (cut..n).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_split_partitions_all_indices() {
        let mut rng = StdRng::seed_from_u64(1);
        let (train, test) = train_test_split(&mut rng, 100, 0.2);
        assert_eq!(train.len(), 80);
        assert_eq!(test.len(), 20);
        let mut all: Vec<usize> = train.iter().chain(test.iter()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn random_split_is_shuffled() {
        let mut rng = StdRng::seed_from_u64(2);
        let (train, _) = train_test_split(&mut rng, 50, 0.2);
        assert_ne!(train, (0..40).collect::<Vec<_>>());
    }

    #[test]
    fn small_sets_keep_both_sides_non_empty() {
        let mut rng = StdRng::seed_from_u64(3);
        let (train, test) = train_test_split(&mut rng, 2, 0.01);
        assert_eq!(train.len() + test.len(), 2);
        assert!(!train.is_empty() && !test.is_empty());
    }

    #[test]
    fn chronological_split_holds_out_the_tail() {
        let (train, test) = chronological_split(10, 0.2);
        assert_eq!(train, vec![0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(test, vec![8, 9]);
    }

    #[test]
    #[should_panic(expected = "test fraction")]
    fn invalid_fraction_panics() {
        let mut rng = StdRng::seed_from_u64(4);
        let _ = train_test_split(&mut rng, 10, 1.5);
    }
}
