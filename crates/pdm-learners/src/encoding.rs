//! Feature encoders: categorical codes, one-hot hashing, and interaction
//! features.

use pdm_linalg::Vector;
use serde::{Deserialize, Serialize};
use std::collections::hash_map::DefaultHasher;
// pdm-lint: allow(no-hashmap-iteration) reason="the interner below needs O(1) per-token lookup on the encode hot path; it is never iterated"
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// Maps string categories of one column to dense integer codes, like the
/// pandas `categoricals` dtype the paper uses for the Airbnb fields.
///
/// Unknown categories at transform time (and the missing-value marker `""`)
/// map to a dedicated code of `-1.0`, mirroring pandas' behaviour.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CategoricalEncoder {
    // pdm-lint: allow(no-hashmap-iteration) reason="code assignment order comes from first-seen order in the input stream, not map traversal; lookups only"
    codes: HashMap<String, usize>,
    categories: Vec<String>,
}

impl CategoricalEncoder {
    /// Creates an empty encoder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Learns the category set from a column of values.
    pub fn fit<S: AsRef<str>>(&mut self, values: &[S]) {
        for value in values {
            let v = value.as_ref();
            if v.is_empty() {
                continue;
            }
            if !self.codes.contains_key(v) {
                let code = self.categories.len();
                self.codes.insert(v.to_owned(), code);
                self.categories.push(v.to_owned());
            }
        }
    }

    /// Number of known categories.
    #[must_use]
    pub fn num_categories(&self) -> usize {
        self.categories.len()
    }

    /// The learned categories, in code order.
    #[must_use]
    pub fn categories(&self) -> &[String] {
        &self.categories
    }

    /// Encodes one value (unknown or missing values map to `-1.0`).
    #[must_use]
    pub fn encode(&self, value: &str) -> f64 {
        self.codes.get(value).map_or(-1.0, |&c| c as f64)
    }

    /// Encodes a whole column.
    #[must_use]
    pub fn encode_column<S: AsRef<str>>(&self, values: &[S]) -> Vec<f64> {
        values.iter().map(|v| self.encode(v.as_ref())).collect()
    }
}

/// One-hot encoding with the hashing trick: each token hashes to one of
/// `dim` buckets, which receives the value `1.0` (Section V-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HashingEncoder {
    dim: usize,
    seed: u64,
}

impl HashingEncoder {
    /// Creates an encoder hashing into `dim` buckets.
    ///
    /// # Panics
    /// Panics when `dim == 0`.
    #[must_use]
    pub fn new(dim: usize, seed: u64) -> Self {
        assert!(dim > 0, "hashing dimension must be positive");
        Self { dim, seed }
    }

    /// The hashing dimension (the modulus after hashing).
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The bucket a token falls into.
    #[must_use]
    pub fn bucket(&self, token: &str) -> usize {
        let mut hasher = DefaultHasher::new();
        self.seed.hash(&mut hasher);
        token.hash(&mut hasher);
        (hasher.finish() % self.dim as u64) as usize
    }

    /// Encodes a set of tokens into a (dense) one-hot-hashed vector.
    /// Collisions accumulate, as in the standard hashing trick.
    #[must_use]
    pub fn encode(&self, tokens: &[String]) -> Vector {
        let mut v = Vector::zeros(self.dim);
        for token in tokens {
            let b = self.bucket(token);
            v[b] += 1.0;
        }
        v
    }
}

/// Appends pairwise interaction (product) features for selected column pairs,
/// the "interaction features to enhance model capacity" step of Section V-B.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InteractionFeatures {
    pairs: Vec<(usize, usize)>,
}

impl InteractionFeatures {
    /// Creates the transform for the given column-index pairs.
    #[must_use]
    pub fn new(pairs: Vec<(usize, usize)>) -> Self {
        Self { pairs }
    }

    /// Builds all pairwise interactions among the given columns.
    #[must_use]
    pub fn all_pairs(columns: &[usize]) -> Self {
        let mut pairs = Vec::new();
        for (i, &a) in columns.iter().enumerate() {
            for &b in &columns[i + 1..] {
                pairs.push((a, b));
            }
        }
        Self { pairs }
    }

    /// Number of interaction columns appended.
    #[must_use]
    pub fn num_interactions(&self) -> usize {
        self.pairs.len()
    }

    /// Appends the interaction products to a feature row.
    ///
    /// # Panics
    /// Panics when a configured column index is out of range.
    #[must_use]
    pub fn transform(&self, row: &Vector) -> Vector {
        let mut out = row.as_slice().to_vec();
        for &(a, b) in &self.pairs {
            out.push(row[a] * row[b]);
        }
        Vector::from_vec(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categorical_encoder_assigns_stable_codes() {
        let mut enc = CategoricalEncoder::new();
        enc.fit(&["NYC", "LA", "NYC", "SF"]);
        assert_eq!(enc.num_categories(), 3);
        assert_eq!(enc.encode("NYC"), 0.0);
        assert_eq!(enc.encode("LA"), 1.0);
        assert_eq!(enc.encode("SF"), 2.0);
        // Unknown and missing values map to −1, like pandas categoricals.
        assert_eq!(enc.encode("Boston"), -1.0);
        assert_eq!(enc.encode(""), -1.0);
        assert_eq!(enc.encode_column(&["LA", "??"]), vec![1.0, -1.0]);
    }

    #[test]
    fn categorical_encoder_ignores_missing_during_fit() {
        let mut enc = CategoricalEncoder::new();
        enc.fit(&["", "a", "", "b"]);
        assert_eq!(enc.num_categories(), 2);
        assert_eq!(enc.categories(), &["a".to_owned(), "b".to_owned()]);
    }

    #[test]
    fn hashing_encoder_is_deterministic_and_bounded() {
        let enc = HashingEncoder::new(64, 42);
        let tokens = vec!["site_id=3".to_owned(), "device_type=1".to_owned()];
        let a = enc.encode(&tokens);
        let b = enc.encode(&tokens);
        assert_eq!(a, b);
        assert_eq!(a.len(), 64);
        assert!(
            (a.sum() - 2.0).abs() < 1e-12,
            "each token adds exactly one count"
        );
        for token in &tokens {
            assert!(enc.bucket(token) < 64);
        }
    }

    #[test]
    fn different_seeds_give_different_hash_layouts() {
        let a = HashingEncoder::new(1024, 1);
        let b = HashingEncoder::new(1024, 2);
        let tokens: Vec<String> = (0..50).map(|i| format!("t={i}")).collect();
        let differs = tokens.iter().any(|t| a.bucket(t) != b.bucket(t));
        assert!(differs);
    }

    #[test]
    fn hashing_collisions_accumulate() {
        let enc = HashingEncoder::new(1, 0);
        let v = enc.encode(&["a".to_owned(), "b".to_owned(), "c".to_owned()]);
        assert_eq!(v.as_slice(), &[3.0]);
    }

    #[test]
    fn interaction_features_append_products() {
        let t = InteractionFeatures::new(vec![(0, 1), (1, 2)]);
        let row = Vector::from_slice(&[2.0, 3.0, 4.0]);
        let out = t.transform(&row);
        assert_eq!(out.as_slice(), &[2.0, 3.0, 4.0, 6.0, 12.0]);
        assert_eq!(t.num_interactions(), 2);
    }

    #[test]
    fn all_pairs_enumerates_upper_triangle() {
        let t = InteractionFeatures::all_pairs(&[0, 2, 3]);
        assert_eq!(t.num_interactions(), 3);
        let row = Vector::from_slice(&[1.0, 10.0, 2.0, 3.0]);
        let out = t.transform(&row);
        assert_eq!(&out.as_slice()[4..], &[2.0, 3.0, 6.0]);
    }
}
