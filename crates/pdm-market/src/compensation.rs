//! Privacy-compensation contracts (the tanh compensation functions of
//! Li et al. that the paper adopts).
//!
//! Each data owner signs a contract mapping a privacy leakage `ε` to a
//! monetary compensation.  The paper uses the bounded, concave
//! `c(ε) = base · tanh(sensitivity · ε)` family: compensation rises quickly
//! for small leakages and saturates at the owner's maximum acceptable
//! payment.  The total compensation over all owners is the query's reserve
//! price.

use pdm_linalg::sampling;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A per-owner compensation contract `c(ε) = base · tanh(sensitivity · ε)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CompensationContract {
    /// Saturation level: the most the owner can be paid for one query.
    pub base: f64,
    /// How fast the compensation rises with leakage.
    pub sensitivity: f64,
}

impl CompensationContract {
    /// Creates a contract.
    ///
    /// # Panics
    /// Panics when `base` or `sensitivity` is not strictly positive.
    #[must_use]
    pub fn new(base: f64, sensitivity: f64) -> Self {
        assert!(base > 0.0, "compensation base must be positive");
        assert!(
            sensitivity > 0.0,
            "compensation sensitivity must be positive"
        );
        Self { base, sensitivity }
    }

    /// The compensation owed for a privacy leakage `ε ≥ 0`.
    #[must_use]
    pub fn compensation(&self, leakage: f64) -> f64 {
        self.base * (self.sensitivity * leakage.max(0.0)).tanh()
    }

    /// Samples a heterogeneous population of contracts: bases and
    /// sensitivities are log-uniform over one order of magnitude around the
    /// given centres, mirroring the heterogeneity of real owner valuations.
    pub fn sample_population<R: Rng + ?Sized>(
        rng: &mut R,
        count: usize,
        base_center: f64,
        sensitivity_center: f64,
    ) -> Vec<Self> {
        (0..count)
            .map(|_| {
                let base = base_center * 10f64.powf(sampling::uniform(rng, -0.5, 0.5));
                let sens = sensitivity_center * 10f64.powf(sampling::uniform(rng, -0.5, 0.5));
                Self::new(base, sens)
            })
            .collect()
    }
}

impl Default for CompensationContract {
    fn default() -> Self {
        Self::new(1.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn compensation_is_monotone_and_saturating() {
        let c = CompensationContract::new(2.0, 1.5);
        assert_eq!(c.compensation(0.0), 0.0);
        let small = c.compensation(0.1);
        let medium = c.compensation(1.0);
        let large = c.compensation(100.0);
        assert!(small < medium && medium < large);
        assert!(
            large <= 2.0 + 1e-12,
            "compensation must saturate at the base"
        );
        assert!((large - 2.0).abs() < 1e-6);
    }

    #[test]
    fn negative_leakage_is_treated_as_zero() {
        let c = CompensationContract::default();
        assert_eq!(c.compensation(-1.0), 0.0);
    }

    #[test]
    fn concavity_diminishing_returns() {
        // tanh is concave on [0, ∞): equal increments of leakage yield
        // decreasing increments of compensation.
        let c = CompensationContract::new(1.0, 1.0);
        let d1 = c.compensation(0.5) - c.compensation(0.0);
        let d2 = c.compensation(1.0) - c.compensation(0.5);
        let d3 = c.compensation(1.5) - c.compensation(1.0);
        assert!(d1 > d2 && d2 > d3);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn invalid_contract_rejected() {
        let _ = CompensationContract::new(0.0, 1.0);
    }

    #[test]
    fn population_sampling_is_heterogeneous_and_bounded() {
        let mut rng = StdRng::seed_from_u64(17);
        let pop = CompensationContract::sample_population(&mut rng, 200, 1.0, 2.0);
        assert_eq!(pop.len(), 200);
        for c in &pop {
            assert!(c.base > 0.3 && c.base < 3.3);
            assert!(c.sensitivity > 0.6 && c.sensitivity < 6.4);
        }
        // Heterogeneity: not all contracts identical.
        assert!(pop.iter().any(|c| (c.base - pop[0].base).abs() > 1e-6));
    }
}
