//! Customised noisy linear queries from data consumers (Section II-A, V-A).
//!
//! A query bundles a data-analysis method — here a linear aggregate with
//! per-owner weights — and a tolerable noise level.  The noise both lets the
//! consumer trade accuracy for price and protects the owners' privacy.

use pdm_linalg::sampling;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A noisy linear query `answer = Σ_i w_i · data_i + Laplace(b)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearQuery {
    /// Sequential identifier assigned by the generator.
    pub id: u64,
    /// Per-owner weights of the linear aggregate.
    pub weights: Vec<f64>,
    /// Variance of the Laplace noise added to the true answer.
    pub noise_variance: f64,
}

impl LinearQuery {
    /// Creates a query.
    ///
    /// # Panics
    /// Panics when the noise variance is not strictly positive (a noiseless
    /// answer would leak the raw aggregate).
    #[must_use]
    pub fn new(id: u64, weights: Vec<f64>, noise_variance: f64) -> Self {
        assert!(noise_variance > 0.0, "noise variance must be positive");
        Self {
            id,
            weights,
            noise_variance,
        }
    }

    /// Number of data owners the query touches.
    #[must_use]
    pub fn num_owners(&self) -> usize {
        self.weights.len()
    }

    /// Scale `b` of the Laplace noise (variance = 2 b²).
    #[must_use]
    pub fn laplace_scale(&self) -> f64 {
        (self.noise_variance / 2.0).sqrt()
    }

    /// True (noiseless) answer over the given per-owner aggregates.
    ///
    /// # Panics
    /// Panics when `owner_values.len()` differs from the query's weight count.
    #[must_use]
    pub fn true_answer(&self, owner_values: &[f64]) -> f64 {
        assert_eq!(
            owner_values.len(),
            self.weights.len(),
            "owner values must match the query's weights"
        );
        self.weights
            .iter()
            .zip(owner_values.iter())
            .map(|(w, v)| w * v)
            .sum()
    }
}

/// How query weights are drawn (Section V-A uses both).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueryWeightDistribution {
    /// Standard multivariate normal.
    Gaussian,
    /// I.i.d. uniform on `[-1, 1]`.
    Uniform,
}

/// Generates the stream of customised queries from online consumers.
///
/// The paper draws each query's parameters from a standard normal or a
/// uniform distribution and its Laplace-noise variance from
/// `{10^k : |k| ≤ 4}`.
#[derive(Debug, Clone)]
pub struct QueryGenerator {
    num_owners: usize,
    distribution: QueryWeightDistribution,
    next_id: u64,
}

impl QueryGenerator {
    /// Creates a generator over `num_owners` data owners.
    ///
    /// # Panics
    /// Panics when `num_owners == 0`.
    #[must_use]
    pub fn new(num_owners: usize, distribution: QueryWeightDistribution) -> Self {
        assert!(num_owners > 0, "a query needs at least one data owner");
        Self {
            num_owners,
            distribution,
            next_id: 0,
        }
    }

    /// Number of owners each generated query covers.
    #[must_use]
    pub fn num_owners(&self) -> usize {
        self.num_owners
    }

    /// Draws the next query.
    pub fn next_query<R: Rng + ?Sized>(&mut self, rng: &mut R) -> LinearQuery {
        let id = self.next_id;
        self.next_id += 1;
        let weights: Vec<f64> = (0..self.num_owners)
            .map(|_| match self.distribution {
                QueryWeightDistribution::Gaussian => sampling::standard_normal(rng),
                QueryWeightDistribution::Uniform => sampling::uniform(rng, -1.0, 1.0),
            })
            .collect();
        // Noise variance 10^k with k uniform on {-4, …, 4}.
        let k: i32 = rng.gen_range(-4..=4);
        let noise_variance = 10f64.powi(k);
        LinearQuery::new(id, weights, noise_variance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn query_answer_and_scale() {
        let q = LinearQuery::new(0, vec![1.0, -2.0, 0.5], 2.0);
        assert_eq!(q.num_owners(), 3);
        assert!((q.laplace_scale() - 1.0).abs() < 1e-12);
        assert!((q.true_answer(&[1.0, 1.0, 2.0]) - 0.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_noise_variance_rejected() {
        let _ = LinearQuery::new(0, vec![1.0], 0.0);
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn answer_length_mismatch_panics() {
        let q = LinearQuery::new(0, vec![1.0, 2.0], 1.0);
        let _ = q.true_answer(&[1.0]);
    }

    #[test]
    fn generator_produces_well_formed_queries() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut generator = QueryGenerator::new(50, QueryWeightDistribution::Gaussian);
        for expected_id in 0..20u64 {
            let q = generator.next_query(&mut rng);
            assert_eq!(q.id, expected_id);
            assert_eq!(q.num_owners(), 50);
            assert!(q.noise_variance >= 1e-4 - 1e-12 && q.noise_variance <= 1e4 + 1e-8);
            // The exponent is an integer power of ten.
            let log = q.noise_variance.log10();
            assert!((log - log.round()).abs() < 1e-9);
        }
    }

    #[test]
    fn uniform_generator_bounds_weights() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut generator = QueryGenerator::new(30, QueryWeightDistribution::Uniform);
        for _ in 0..10 {
            let q = generator.next_query(&mut rng);
            assert!(q.weights.iter().all(|w| (-1.0..=1.0).contains(w)));
        }
    }

    #[test]
    fn gaussian_weights_are_not_all_bounded_by_one() {
        // Sanity check that the two distributions genuinely differ.
        let mut rng = StdRng::seed_from_u64(5);
        let mut generator = QueryGenerator::new(200, QueryWeightDistribution::Gaussian);
        let q = generator.next_query(&mut rng);
        assert!(q.weights.iter().any(|w| w.abs() > 1.0));
    }
}
