//! Broker-side feature construction (Section II-B).
//!
//! The broker summarises a query's per-owner privacy-compensation profile
//! into an `n`-dimensional feature vector: sort the compensations, split them
//! into `n` equal partitions, sum each partition, and L2-normalise the
//! result.  The two extremes the paper mentions are `n = 1` (the single
//! feature is the total compensation) and `n = #owners` (one feature per
//! owner).

use pdm_linalg::Vector;
use serde::{Deserialize, Serialize};

/// Aggregates per-owner compensations into a fixed-dimension feature vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeatureAggregator {
    dim: usize,
    normalize: bool,
}

impl FeatureAggregator {
    /// Creates an aggregator producing `dim`-dimensional features,
    /// L2-normalised as in the paper.
    ///
    /// # Panics
    /// Panics when `dim == 0`.
    #[must_use]
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "feature dimension must be positive");
        Self {
            dim,
            normalize: true,
        }
    }

    /// Disables the final L2 normalisation (used by tests and by callers
    /// that need the raw partition sums).
    #[must_use]
    pub fn without_normalization(mut self) -> Self {
        self.normalize = false;
        self
    }

    /// Output feature dimension `n`.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Builds the feature vector from per-owner compensations.
    ///
    /// Owners whose compensation is zero still participate (they dilute their
    /// partition), matching the paper's construction where every owner's
    /// compensation is computed for every query.
    #[must_use]
    pub fn features(&self, compensations: &[f64]) -> Vector {
        let mut sorted: Vec<f64> = compensations.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));

        let mut sums = vec![0.0_f64; self.dim];
        if !sorted.is_empty() {
            let count = sorted.len();
            for (i, value) in sorted.iter().enumerate() {
                // Even split of the sorted list into `dim` contiguous
                // partitions; the last partition absorbs the remainder.
                let partition = (i * self.dim / count).min(self.dim - 1);
                sums[partition] += value;
            }
        }
        let vector = Vector::from_vec(sums);
        if self.normalize {
            vector.normalized()
        } else {
            vector
        }
    }

    /// Convenience: features plus the reserve price (the sum of the
    /// *normalised* features, i.e. the total compensation re-expressed in the
    /// normalised scale the posted prices live in).
    #[must_use]
    pub fn features_and_reserve(&self, compensations: &[f64]) -> (Vector, f64) {
        let features = self.features(compensations);
        let reserve = features.sum();
        (features, reserve)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitions_cover_all_compensations() {
        let agg = FeatureAggregator::new(3).without_normalization();
        let comps = vec![5.0, 1.0, 3.0, 2.0, 4.0, 6.0];
        let f = agg.features(&comps);
        // Sorted: 1 2 | 3 4 | 5 6.
        assert_eq!(f.as_slice(), &[3.0, 7.0, 11.0]);
        assert!((f.sum() - comps.iter().sum::<f64>()).abs() < 1e-12);
    }

    #[test]
    fn uneven_population_assigns_remainder_to_last_partition() {
        let agg = FeatureAggregator::new(2).without_normalization();
        let comps = vec![1.0, 2.0, 3.0];
        let f = agg.features(&comps);
        // i*2/3: 0, 0, 1 → partitions {1,2}, {3}.
        assert_eq!(f.as_slice(), &[3.0, 3.0]);
    }

    #[test]
    fn normalized_features_have_unit_norm() {
        let agg = FeatureAggregator::new(4);
        let comps: Vec<f64> = (1..=20).map(|i| i as f64).collect();
        let f = agg.features(&comps);
        assert!((f.norm() - 1.0).abs() < 1e-12);
        // Sorted partitions of an increasing sequence are themselves
        // increasing.
        for w in f.as_slice().windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn single_partition_is_total_compensation() {
        let agg = FeatureAggregator::new(1).without_normalization();
        let comps = vec![0.5, 1.5, 2.0];
        assert_eq!(agg.features(&comps).as_slice(), &[4.0]);
    }

    #[test]
    fn one_partition_per_owner_recovers_sorted_compensations() {
        let agg = FeatureAggregator::new(4).without_normalization();
        let comps = vec![3.0, 1.0, 4.0, 2.0];
        assert_eq!(agg.features(&comps).as_slice(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn empty_and_zero_compensations_are_safe() {
        let agg = FeatureAggregator::new(3);
        let f = agg.features(&[]);
        assert_eq!(f.len(), 3);
        assert!(f.iter().all(|x| *x == 0.0));
        let f = agg.features(&[0.0, 0.0]);
        assert!(f.iter().all(|x| *x == 0.0));
    }

    #[test]
    fn reserve_is_sum_of_normalized_features() {
        let agg = FeatureAggregator::new(5);
        let comps: Vec<f64> = (1..=50).map(|i| (i % 7) as f64 + 0.5).collect();
        let (features, reserve) = agg.features_and_reserve(&comps);
        assert!((reserve - features.sum()).abs() < 1e-12);
        assert!(reserve > 0.0);
        // For a unit-norm non-negative vector the sum lies in [1, √n].
        assert!(reserve <= (5.0_f64).sqrt() + 1e-12);
        assert!(reserve >= 1.0 - 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dimension_rejected() {
        let _ = FeatureAggregator::new(0);
    }
}
