//! Data owners: the individuals whose private records the broker aggregates.

use serde::{Deserialize, Serialize};

/// A data owner who contributed private records to the broker's dataset.
///
/// In the MovieLens-backed evaluation each owner is one rating user; the
/// `records` are her (normalised) rating values and `data_range` bounds how
/// much any single record can change, which drives the sensitivity term of
/// the differential-privacy leakage quantification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataOwner {
    /// Stable identifier of the owner.
    pub id: u64,
    /// The owner's private records (already scaled to `[0, data_range]`).
    pub records: Vec<f64>,
    /// Upper bound on the magnitude of a single record.
    pub data_range: f64,
}

impl DataOwner {
    /// Creates an owner with the given records.
    ///
    /// # Panics
    /// Panics when `data_range` is not strictly positive.
    #[must_use]
    pub fn new(id: u64, records: Vec<f64>, data_range: f64) -> Self {
        assert!(data_range > 0.0, "data range must be positive");
        Self {
            id,
            records,
            data_range,
        }
    }

    /// Number of records the owner contributed.
    #[must_use]
    pub fn record_count(&self) -> usize {
        self.records.len()
    }

    /// The owner's aggregate (sum) record value, the quantity a linear query
    /// weights.
    #[must_use]
    pub fn record_sum(&self) -> f64 {
        self.records.iter().sum()
    }

    /// Mean record value (zero for an owner with no records).
    #[must_use]
    pub fn record_mean(&self) -> f64 {
        if self.records.is_empty() {
            0.0
        } else {
            self.record_sum() / self.records.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_and_accessors() {
        let owner = DataOwner::new(7, vec![1.0, 2.0, 3.0], 5.0);
        assert_eq!(owner.id, 7);
        assert_eq!(owner.record_count(), 3);
        assert!((owner.record_sum() - 6.0).abs() < 1e-12);
        assert!((owner.record_mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_records_are_allowed() {
        let owner = DataOwner::new(1, vec![], 1.0);
        assert_eq!(owner.record_count(), 0);
        assert_eq!(owner.record_mean(), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_data_range_rejected() {
        let _ = DataOwner::new(1, vec![1.0], 0.0);
    }
}
