//! The data-market round generator used by the Fig. 4 / Fig. 5(a) / Table I
//! experiments.
//!
//! [`MarketEnvironment`] wires a [`DataBroker`], a [`QueryGenerator`], and a
//! [`ConsumerPool`] into a [`pdm_pricing::Environment`]: every round draws a
//! customised noisy linear query, runs it through privacy accounting and
//! featurisation, and values it with the hidden consumer profile.

use crate::broker::DataBroker;
use crate::compensation::CompensationContract;
use crate::consumer::ConsumerPool;
use crate::owner::DataOwner;
use crate::query::{QueryGenerator, QueryWeightDistribution};
use pdm_linalg::sampling;
use pdm_pricing::environment::{Environment, Round};
use pdm_pricing::uncertainty::NoiseModel;
use rand::Rng;

/// A fully assembled personal-data-market environment.
#[derive(Debug, Clone)]
pub struct MarketEnvironment {
    broker: DataBroker,
    generator: QueryGenerator,
    consumers: ConsumerPool,
    horizon: usize,
    produced: usize,
}

impl MarketEnvironment {
    /// Assembles an environment from its parts.
    ///
    /// # Panics
    /// Panics when the query generator does not cover the broker's owner
    /// population, the consumer pool does not match the broker's feature
    /// dimension, or the horizon is zero.
    #[must_use]
    pub fn new(
        broker: DataBroker,
        generator: QueryGenerator,
        consumers: ConsumerPool,
        horizon: usize,
    ) -> Self {
        assert_eq!(
            generator.num_owners(),
            broker.num_owners(),
            "query generator must cover the broker's owner population"
        );
        assert_eq!(
            consumers.feature_dim(),
            broker.feature_dim(),
            "consumer valuation dimension must match the broker's feature dimension"
        );
        assert!(horizon > 0, "horizon must be positive");
        Self {
            broker,
            generator,
            consumers,
            horizon,
            produced: 0,
        }
    }

    /// Builds the synthetic MovieLens-backed market of Section V-A: an owner
    /// population with rating-like records, heterogeneous tanh compensation
    /// contracts, Gaussian query weights, and a consumer valuation profile
    /// with the paper's √(2n) scaling.
    #[must_use]
    pub fn synthetic<R: Rng + ?Sized>(
        rng: &mut R,
        num_owners: usize,
        feature_dim: usize,
        horizon: usize,
        noise: NoiseModel,
    ) -> Self {
        assert!(num_owners > 0 && feature_dim > 0 && horizon > 0);
        let owners: Vec<DataOwner> = (0..num_owners)
            .map(|i| {
                // Rating-like records on a 0.5–5.0 scale, a handful per owner.
                let count = 1 + (i % 5);
                let records: Vec<f64> = (0..count)
                    .map(|_| sampling::uniform(rng, 0.5, 5.0))
                    .collect();
                DataOwner::new(i as u64, records, 5.0)
            })
            .collect();
        let contracts = CompensationContract::sample_population(rng, num_owners, 1.0, 1.0);
        let broker = DataBroker::new(owners, contracts, feature_dim);
        let generator = QueryGenerator::new(num_owners, QueryWeightDistribution::Gaussian);
        let consumers = ConsumerPool::sample(rng, feature_dim, noise);
        Self::new(broker, generator, consumers, horizon)
    }

    /// The broker (owner population, contracts, featurisation).
    #[must_use]
    pub fn broker(&self) -> &DataBroker {
        &self.broker
    }

    /// The hidden consumer valuation profile.
    #[must_use]
    pub fn consumers(&self) -> &ConsumerPool {
        &self.consumers
    }

    /// Helper used by the overhead benchmark: generate a single priced query
    /// without consuming the horizon.
    pub fn sample_priced_query<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
    ) -> crate::broker::PricedQuery {
        let query = self.generator.next_query(rng);
        self.broker.prepare(&query)
    }
}

impl Environment for MarketEnvironment {
    fn input_dim(&self) -> usize {
        self.broker.feature_dim()
    }

    fn horizon(&self) -> usize {
        self.horizon
    }

    fn weight_norm_bound(&self) -> f64 {
        // The paper gives the broker the prior ‖θ*‖ ≤ 2√n.
        2.0 * (self.broker.feature_dim() as f64).sqrt()
    }

    fn feature_norm_bound(&self) -> f64 {
        1.0
    }

    fn next_round(&mut self, rng: &mut dyn rand::RngCore) -> Option<Round> {
        if self.produced >= self.horizon {
            return None;
        }
        self.produced += 1;
        let query = self.generator.next_query(rng);
        let priced = self.broker.prepare(&query);
        let market_value = self.consumers.market_value(rng, &priced.features);
        Some(Round {
            features: priced.features,
            reserve_price: priced.reserve_price,
            market_value,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdm_pricing::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn environment(owners: usize, dim: usize, horizon: usize, seed: u64) -> MarketEnvironment {
        let mut rng = StdRng::seed_from_u64(seed);
        MarketEnvironment::synthetic(&mut rng, owners, dim, horizon, NoiseModel::None)
    }

    #[test]
    fn synthetic_market_produces_valid_rounds() {
        let mut env = environment(60, 10, 25, 41);
        let mut rng = StdRng::seed_from_u64(1);
        let mut count = 0;
        let mut sellable = 0;
        while let Some(round) = env.next_round(&mut rng) {
            count += 1;
            assert_eq!(round.features.len(), 10);
            assert!((round.features.norm() - 1.0).abs() < 1e-9);
            assert!(round.features.iter().all(|x| *x >= 0.0));
            assert!(round.reserve_price > 0.0);
            if round.market_value >= round.reserve_price {
                sellable += 1;
            }
        }
        assert_eq!(count, 25);
        assert!(env.next_round(&mut rng).is_none());
        // The Section V-A construction makes most rounds sellable.
        assert!(
            sellable * 10 >= count * 8,
            "only {sellable}/{count} rounds sellable"
        );
    }

    #[test]
    fn environment_hints_match_paper_priors() {
        let env = environment(40, 16, 10, 2);
        assert_eq!(env.input_dim(), 16);
        assert!((env.weight_norm_bound() - 8.0).abs() < 1e-12);
        assert!((env.feature_norm_bound() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pricing_mechanism_runs_on_the_market_environment() {
        let horizon = 400;
        let env = environment(50, 8, horizon, 7);
        let config = PricingConfig::for_environment(&env, horizon).with_reserve(true);
        let mechanism = EllipsoidPricing::new(LinearModel::new(8), config);
        let mut rng = StdRng::seed_from_u64(3);
        let outcome = Simulation::new(env, mechanism).run(&mut rng);
        assert_eq!(outcome.report.rounds, horizon);
        // The learning mechanism must do markedly better than forfeiting the
        // whole market value every round.
        assert!(outcome.regret_ratio() < 0.5);
        assert!(outcome.report.acceptance_rate() > 0.5);
    }

    #[test]
    fn reserve_beats_risk_averse_baseline_on_market_data() {
        let horizon = 600;
        let env_a = environment(50, 8, horizon, 13);
        let env_b = environment(50, 8, horizon, 13);
        let config = PricingConfig::for_environment(&env_a, horizon).with_reserve(true);
        let mechanism = EllipsoidPricing::new(LinearModel::new(8), config);

        let mut rng = StdRng::seed_from_u64(5);
        let ours = Simulation::new(env_a, mechanism).run(&mut rng);
        let mut rng = StdRng::seed_from_u64(5);
        let baseline = Simulation::new(env_b, ReservePriceBaseline::new()).run(&mut rng);
        assert!(
            ours.regret_ratio() < baseline.regret_ratio(),
            "ellipsoid {} must beat the risk-averse baseline {}",
            ours.regret_ratio(),
            baseline.regret_ratio()
        );
    }

    #[test]
    fn mismatched_components_are_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        let env = environment(10, 4, 5, 1);
        let broker = env.broker().clone();
        let wrong_generator = QueryGenerator::new(3, QueryWeightDistribution::Gaussian);
        let consumers = ConsumerPool::sample(&mut rng, 4, NoiseModel::None);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            MarketEnvironment::new(broker, wrong_generator, consumers, 5)
        }));
        assert!(result.is_err());
    }
}
