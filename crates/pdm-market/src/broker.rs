//! The data broker: privacy accounting and query featurisation.
//!
//! [`DataBroker`] owns the collected dataset (the owner population and their
//! compensation contracts).  For every arriving query it produces a
//! [`PricedQuery`]: the per-owner leakages and compensations, the total
//! compensation (= reserve price), and the aggregated feature vector the
//! pricing mechanism consumes.

use crate::compensation::CompensationContract;
use crate::features::FeatureAggregator;
use crate::owner::DataOwner;
use crate::privacy::PrivacyQuantifier;
use crate::query::LinearQuery;
use pdm_linalg::Vector;
use serde::{Deserialize, Serialize};

/// A query that the broker has run through privacy accounting and
/// featurisation, ready to be priced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PricedQuery {
    /// Identifier of the underlying query.
    pub query_id: u64,
    /// Per-owner privacy leakages `ε_i`.
    pub leakages: Vec<f64>,
    /// Per-owner privacy compensations `c_i(ε_i)`.
    pub compensations: Vec<f64>,
    /// Total compensation in the raw (monetary) scale.
    pub total_compensation: f64,
    /// The aggregated, L2-normalised feature vector `x_t`.
    pub features: Vector,
    /// The reserve price in the normalised scale the mechanism prices in
    /// (the sum of the normalised features, Section V-A).
    pub reserve_price: f64,
}

impl PricedQuery {
    /// The `(features, reserve)` pair a posted-price engine consumes.
    ///
    /// This is the hand-off point between the privacy-accounting substrate
    /// and the pricing layer: the serving engine (`pdm-service`) builds its
    /// quote requests from exactly these two quantities.
    #[must_use]
    pub fn pricing_inputs(&self) -> (&Vector, f64) {
        (&self.features, self.reserve_price)
    }
}

/// The data broker of Fig. 2.
#[derive(Debug, Clone)]
pub struct DataBroker {
    owners: Vec<DataOwner>,
    contracts: Vec<CompensationContract>,
    quantifier: PrivacyQuantifier,
    aggregator: FeatureAggregator,
}

impl DataBroker {
    /// Creates a broker over an owner population with per-owner contracts and
    /// an `n`-dimensional feature aggregation.
    ///
    /// # Panics
    /// Panics when the number of contracts differs from the number of owners
    /// or the population is empty.
    #[must_use]
    pub fn new(
        owners: Vec<DataOwner>,
        contracts: Vec<CompensationContract>,
        feature_dim: usize,
    ) -> Self {
        assert!(!owners.is_empty(), "broker needs at least one data owner");
        assert_eq!(
            owners.len(),
            contracts.len(),
            "each owner needs exactly one compensation contract"
        );
        Self {
            owners,
            contracts,
            quantifier: PrivacyQuantifier::new(),
            aggregator: FeatureAggregator::new(feature_dim),
        }
    }

    /// Number of data owners in the collected dataset.
    #[must_use]
    pub fn num_owners(&self) -> usize {
        self.owners.len()
    }

    /// Dimension of the feature vectors the broker produces.
    #[must_use]
    pub fn feature_dim(&self) -> usize {
        self.aggregator.dim()
    }

    /// The owner population.
    #[must_use]
    pub fn owners(&self) -> &[DataOwner] {
        &self.owners
    }

    /// The compensation contracts (same order as the owners).
    #[must_use]
    pub fn contracts(&self) -> &[CompensationContract] {
        &self.contracts
    }

    /// Runs privacy accounting and featurisation for one query.
    ///
    /// # Panics
    /// Panics when the query does not cover exactly the owner population.
    #[must_use]
    pub fn prepare(&self, query: &LinearQuery) -> PricedQuery {
        let leakages = self.quantifier.leakages(query, &self.owners);
        let compensations: Vec<f64> = leakages
            .iter()
            .zip(self.contracts.iter())
            .map(|(eps, contract)| contract.compensation(*eps))
            .collect();
        let total_compensation = compensations.iter().sum();
        let (features, reserve_price) = self.aggregator.features_and_reserve(&compensations);
        PricedQuery {
            query_id: query.id,
            leakages,
            compensations,
            total_compensation,
            features,
            reserve_price,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QueryGenerator;
    use crate::query::QueryWeightDistribution;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn broker(num_owners: usize, dim: usize) -> DataBroker {
        let owners: Vec<DataOwner> = (0..num_owners)
            .map(|i| DataOwner::new(i as u64, vec![(i % 5) as f64 + 1.0], 1.0))
            .collect();
        let contracts = vec![CompensationContract::new(1.0, 2.0); num_owners];
        DataBroker::new(owners, contracts, dim)
    }

    #[test]
    fn prepare_produces_consistent_quantities() {
        let broker = broker(40, 8);
        let query = LinearQuery::new(3, vec![0.5; 40], 1.0);
        let priced = broker.prepare(&query);
        assert_eq!(priced.query_id, 3);
        assert_eq!(priced.leakages.len(), 40);
        assert_eq!(priced.compensations.len(), 40);
        assert!((priced.features.norm() - 1.0).abs() < 1e-12);
        assert!((priced.reserve_price - priced.features.sum()).abs() < 1e-12);
        assert!(
            (priced.total_compensation - priced.compensations.iter().sum::<f64>()).abs() < 1e-12
        );
        // Identical owners and weights ⇒ identical compensations ⇒ the
        // normalised features are uniform: each ≈ 1/√8.
        let expected = 1.0 / (8.0_f64).sqrt();
        for value in priced.features.iter() {
            assert!((value - expected).abs() < 1e-9);
        }
    }

    #[test]
    fn pricing_inputs_expose_the_serving_hand_off() {
        let broker = broker(12, 4);
        let priced = broker.prepare(&LinearQuery::new(0, vec![0.3; 12], 1.0));
        let (features, reserve) = priced.pricing_inputs();
        assert_eq!(features, &priced.features);
        assert_eq!(reserve, priced.reserve_price);
    }

    #[test]
    fn heavier_queries_cost_more() {
        let broker = broker(30, 5);
        // Same weights, less noise ⇒ more leakage ⇒ higher total compensation.
        let gentle = LinearQuery::new(0, vec![0.2; 30], 10.0);
        let invasive = LinearQuery::new(1, vec![0.2; 30], 0.01);
        let gentle_priced = broker.prepare(&gentle);
        let invasive_priced = broker.prepare(&invasive);
        assert!(invasive_priced.total_compensation > gentle_priced.total_compensation);
    }

    #[test]
    fn generated_queries_flow_through_the_broker() {
        let broker = broker(25, 10);
        let mut generator = QueryGenerator::new(25, QueryWeightDistribution::Gaussian);
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..20 {
            let query = generator.next_query(&mut rng);
            let priced = broker.prepare(&query);
            assert_eq!(priced.features.len(), 10);
            assert!(priced.reserve_price >= 0.0);
            assert!(priced.features.iter().all(|x| *x >= 0.0));
        }
    }

    #[test]
    #[should_panic(expected = "one compensation contract")]
    fn mismatched_contracts_rejected() {
        let owners = vec![DataOwner::new(0, vec![1.0], 1.0)];
        let _ = DataBroker::new(owners, vec![], 1);
    }

    #[test]
    #[should_panic(expected = "at least one data owner")]
    fn empty_population_rejected() {
        let _ = DataBroker::new(vec![], vec![], 1);
    }
}
