//! # pdm-market
//!
//! The personal-data-market substrate of Fig. 2 in the paper: data owners
//! contribute private records to a data broker, online data consumers issue
//! customised noisy queries, and the broker must
//!
//! 1. quantify each owner's **privacy leakage** under the query
//!    (differential-privacy based, following Li et al.),
//! 2. convert leakages into **privacy compensations** through per-owner
//!    contracts (the tanh compensation functions of Li et al.),
//! 3. treat the total compensation as the query's **reserve price**,
//! 4. summarise the compensation profile into the query's **feature vector**
//!    (sorted, partitioned, summed, L2-normalised — Section II-B), and
//! 5. post a price using the mechanism from `pdm-pricing`.
//!
//! [`MarketEnvironment`] packages steps 1–4 as a
//! [`pdm_pricing::Environment`], so the noisy-linear-query evaluation
//! (Fig. 4, Fig. 5(a), Table I) runs on exactly this substrate.
//! [`market::Market`] additionally closes the loop of Fig. 2 — answering sold
//! queries with Laplace noise and allocating the compensations — which the
//! examples use to show end-to-end broker accounting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod broker;
pub mod compensation;
pub mod consumer;
pub mod environment;
pub mod features;
pub mod market;
pub mod owner;
pub mod privacy;
pub mod query;

pub use broker::{DataBroker, PricedQuery};
pub use compensation::CompensationContract;
pub use consumer::{ConsumerPool, DataConsumer};
pub use environment::MarketEnvironment;
pub use features::FeatureAggregator;
pub use market::{Market, MarketReport, TradeOutcome};
pub use owner::DataOwner;
pub use privacy::{LaplaceMechanism, PrivacyQuantifier, SATURATED_LEAKAGE};
pub use query::{LinearQuery, QueryGenerator};
