//! Differential-privacy leakage quantification and the Laplace answering
//! mechanism.
//!
//! Following the "theory of pricing private data" pipeline (Li et al.) the
//! paper builds on, answering a linear query with Laplace noise of scale `b`
//! leaks `ε_i = |w_i| · Δ_i / b` about owner `i`, where `w_i` is the owner's
//! weight in the query and `Δ_i` bounds how much her data can move the true
//! answer.  The broker pre-computes these leakages for every arriving query;
//! they drive the compensations and hence the reserve price and the feature
//! vector.

use crate::owner::DataOwner;
use crate::query::LinearQuery;
use pdm_linalg::sampling;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Quantifies per-owner differential-privacy leakage of a noisy linear query.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrivacyQuantifier;

impl PrivacyQuantifier {
    /// Creates a quantifier.
    #[must_use]
    pub fn new() -> Self {
        Self
    }

    /// The privacy leakage `ε_i = |w_i| · Δ_i / b` of a single owner.
    #[must_use]
    pub fn owner_leakage(&self, weight: f64, data_range: f64, laplace_scale: f64) -> f64 {
        if laplace_scale <= 0.0 {
            return f64::INFINITY;
        }
        weight.abs() * data_range / laplace_scale
    }

    /// Per-owner leakages for a query over the given owner population.
    ///
    /// # Panics
    /// Panics when the query covers a different number of owners.
    #[must_use]
    pub fn leakages(&self, query: &LinearQuery, owners: &[DataOwner]) -> Vec<f64> {
        assert_eq!(
            query.num_owners(),
            owners.len(),
            "query must cover exactly the owner population"
        );
        let scale = query.laplace_scale();
        query
            .weights
            .iter()
            .zip(owners.iter())
            .map(|(w, owner)| self.owner_leakage(*w, owner.data_range, scale))
            .collect()
    }
}

/// The Laplace mechanism used to answer sold queries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LaplaceMechanism;

impl LaplaceMechanism {
    /// Creates the mechanism.
    #[must_use]
    pub fn new() -> Self {
        Self
    }

    /// Computes the noisy answer of a query over the owners' aggregate
    /// record values.
    ///
    /// # Panics
    /// Panics when the query covers a different number of owners.
    pub fn answer<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        query: &LinearQuery,
        owners: &[DataOwner],
    ) -> f64 {
        assert_eq!(
            query.num_owners(),
            owners.len(),
            "query must cover exactly the owner population"
        );
        let values: Vec<f64> = owners.iter().map(DataOwner::record_sum).collect();
        let truth = query.true_answer(&values);
        truth + sampling::laplace(rng, query.laplace_scale())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn owners(n: usize) -> Vec<DataOwner> {
        (0..n)
            .map(|i| DataOwner::new(i as u64, vec![1.0, 2.0], 1.0))
            .collect()
    }

    #[test]
    fn leakage_scales_with_weight_and_noise() {
        let q = PrivacyQuantifier::new();
        // Larger weight ⇒ more leakage, larger noise ⇒ less leakage.
        assert!(q.owner_leakage(2.0, 1.0, 1.0) > q.owner_leakage(1.0, 1.0, 1.0));
        assert!(q.owner_leakage(1.0, 1.0, 2.0) < q.owner_leakage(1.0, 1.0, 1.0));
        // Sign of the weight does not matter.
        assert_eq!(
            q.owner_leakage(-3.0, 1.0, 1.0),
            q.owner_leakage(3.0, 1.0, 1.0)
        );
        // Degenerate noise scale is reported as unbounded leakage.
        assert!(q.owner_leakage(1.0, 1.0, 0.0).is_infinite());
    }

    #[test]
    fn leakages_follow_query_weights() {
        let quantifier = PrivacyQuantifier::new();
        let owners = owners(3);
        let query = LinearQuery::new(0, vec![0.0, 1.0, -2.0], 2.0);
        let eps = quantifier.leakages(&query, &owners);
        assert_eq!(eps.len(), 3);
        assert_eq!(eps[0], 0.0);
        assert!((eps[2] / eps[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "owner population")]
    fn leakages_require_matching_population() {
        let quantifier = PrivacyQuantifier::new();
        let query = LinearQuery::new(0, vec![1.0], 1.0);
        let _ = quantifier.leakages(&query, &owners(2));
    }

    #[test]
    fn laplace_answers_concentrate_on_the_truth() {
        let mechanism = LaplaceMechanism::new();
        let owners = owners(4);
        // Each owner's record sum is 3, so the all-ones query has truth 12.
        let query = LinearQuery::new(0, vec![1.0; 4], 0.5);
        let mut rng = StdRng::seed_from_u64(9);
        let mean: f64 = (0..5000)
            .map(|_| mechanism.answer(&mut rng, &query, &owners))
            .sum::<f64>()
            / 5000.0;
        assert!(
            (mean - 12.0).abs() < 0.1,
            "noisy answers must centre on the truth, got {mean}"
        );
    }
}
