//! Differential-privacy leakage quantification and the Laplace answering
//! mechanism.
//!
//! Following the "theory of pricing private data" pipeline (Li et al.) the
//! paper builds on, answering a linear query with Laplace noise of scale `b`
//! leaks `ε_i = |w_i| · Δ_i / b` about owner `i`, where `w_i` is the owner's
//! weight in the query and `Δ_i` bounds how much her data can move the true
//! answer.  The broker pre-computes these leakages for every arriving query;
//! they drive the compensations and hence the reserve price and the feature
//! vector.

use crate::owner::DataOwner;
use crate::query::LinearQuery;
use pdm_linalg::sampling;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The saturating leakage reported for degenerate mechanisms (a
/// non-positive Laplace scale answers the query noiselessly, which in ε
/// terms is unbounded disclosure).  Saturating instead of returning
/// `f64::INFINITY` keeps every downstream aggregate — ledger debits,
/// compensation sums, snapshot fingerprints — finite and bit-stable; the
/// value is far above any budget a ledger would grant, so a saturated owner
/// is exhausted by the first query that touches her.
pub const SATURATED_LEAKAGE: f64 = 1e9;

/// Quantifies per-owner differential-privacy leakage of a noisy linear query.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrivacyQuantifier;

impl PrivacyQuantifier {
    /// Creates a quantifier.
    #[must_use]
    pub fn new() -> Self {
        Self
    }

    /// The privacy leakage `ε_i = |w_i| · Δ_i / b` of a single owner.
    ///
    /// Degenerate inputs saturate instead of escaping the finite range:
    /// an owner with zero weight or a non-positive data range contributes
    /// nothing (leakage 0), a non-positive noise scale discloses the
    /// contribution in full (leakage [`SATURATED_LEAKAGE`]), and every
    /// leakage is capped at [`SATURATED_LEAKAGE`].  The result is always
    /// finite, non-negative, and monotone non-decreasing in `|w_i|`.
    #[must_use]
    pub fn owner_leakage(&self, weight: f64, data_range: f64, laplace_scale: f64) -> f64 {
        if weight == 0.0 || data_range <= 0.0 {
            return 0.0;
        }
        if laplace_scale <= 0.0 {
            return SATURATED_LEAKAGE;
        }
        (weight.abs() * data_range / laplace_scale).min(SATURATED_LEAKAGE)
    }

    /// Per-owner leakages for a query over the given owner population.
    ///
    /// # Panics
    /// Panics when the query covers a different number of owners.
    #[must_use]
    pub fn leakages(&self, query: &LinearQuery, owners: &[DataOwner]) -> Vec<f64> {
        assert_eq!(
            query.num_owners(),
            owners.len(),
            "query must cover exactly the owner population"
        );
        let scale = query.laplace_scale();
        query
            .weights
            .iter()
            .zip(owners.iter())
            .map(|(w, owner)| self.owner_leakage(*w, owner.data_range, scale))
            .collect()
    }
}

/// The Laplace mechanism used to answer sold queries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LaplaceMechanism;

impl LaplaceMechanism {
    /// Creates the mechanism.
    #[must_use]
    pub fn new() -> Self {
        Self
    }

    /// Computes the noisy answer of a query over the owners' aggregate
    /// record values.
    ///
    /// # Panics
    /// Panics when the query covers a different number of owners.
    pub fn answer<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        query: &LinearQuery,
        owners: &[DataOwner],
    ) -> f64 {
        assert_eq!(
            query.num_owners(),
            owners.len(),
            "query must cover exactly the owner population"
        );
        let values: Vec<f64> = owners.iter().map(DataOwner::record_sum).collect();
        let truth = query.true_answer(&values);
        truth + sampling::laplace(rng, query.laplace_scale())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn owners(n: usize) -> Vec<DataOwner> {
        (0..n)
            .map(|i| DataOwner::new(i as u64, vec![1.0, 2.0], 1.0))
            .collect()
    }

    #[test]
    fn leakage_scales_with_weight_and_noise() {
        let q = PrivacyQuantifier::new();
        // Larger weight ⇒ more leakage, larger noise ⇒ less leakage.
        assert!(q.owner_leakage(2.0, 1.0, 1.0) > q.owner_leakage(1.0, 1.0, 1.0));
        assert!(q.owner_leakage(1.0, 1.0, 2.0) < q.owner_leakage(1.0, 1.0, 1.0));
        // Sign of the weight does not matter.
        assert_eq!(
            q.owner_leakage(-3.0, 1.0, 1.0),
            q.owner_leakage(3.0, 1.0, 1.0)
        );
        // Degenerate noise scale saturates instead of going non-finite: the
        // noiseless answer discloses the weighted contribution in full.
        assert_eq!(q.owner_leakage(1.0, 1.0, 0.0), SATURATED_LEAKAGE);
        assert_eq!(q.owner_leakage(1.0, 1.0, -2.0), SATURATED_LEAKAGE);
        // But a zero weight leaks nothing even through a noiseless channel,
        // and a degenerate (zero or negative) data range cannot move the
        // answer, so it leaks nothing either.
        assert_eq!(q.owner_leakage(0.0, 1.0, 0.0), 0.0);
        assert_eq!(q.owner_leakage(1.0, 0.0, 1.0), 0.0);
        assert_eq!(q.owner_leakage(1.0, -1.0, 1.0), 0.0);
        // A huge weight over a tiny noise scale caps at the saturation
        // value rather than overflowing past it.
        assert_eq!(q.owner_leakage(1e300, 1.0, 1e-300), SATURATED_LEAKAGE);
    }

    #[test]
    fn leakages_follow_query_weights() {
        let quantifier = PrivacyQuantifier::new();
        let owners = owners(3);
        let query = LinearQuery::new(0, vec![0.0, 1.0, -2.0], 2.0);
        let eps = quantifier.leakages(&query, &owners);
        assert_eq!(eps.len(), 3);
        assert_eq!(eps[0], 0.0);
        assert!((eps[2] / eps[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "owner population")]
    fn leakages_require_matching_population() {
        let quantifier = PrivacyQuantifier::new();
        let query = LinearQuery::new(0, vec![1.0], 1.0);
        let _ = quantifier.leakages(&query, &owners(2));
    }

    #[test]
    fn laplace_answers_concentrate_on_the_truth() {
        let mechanism = LaplaceMechanism::new();
        let owners = owners(4);
        // Each owner's record sum is 3, so the all-ones query has truth 12.
        let query = LinearQuery::new(0, vec![1.0; 4], 0.5);
        let mut rng = StdRng::seed_from_u64(9);
        let mean: f64 = (0..5000)
            .map(|_| mechanism.answer(&mut rng, &query, &owners))
            .sum::<f64>()
            / 5000.0;
        assert!(
            (mean - 12.0).abs() < 0.1,
            "noisy answers must centre on the truth, got {mean}"
        );
    }
}
