//! The end-to-end market loop of Fig. 2.
//!
//! [`Market`] closes the full circle: query arrives → privacy accounting →
//! posted price → consumer decision → (on a sale) noisy answer returned,
//! consumer charged, owners compensated.  The broker's *net revenue* is the
//! difference between the prices charged and the compensations allocated,
//! which is exactly the quantity the paper's regret converts into.
//!
//! Prices and compensations are accounted in the normalised scale the
//! mechanism prices in (the reserve equals the sum of the normalised
//! features), so revenue, compensation, and regret are directly comparable.

use crate::broker::DataBroker;
use crate::consumer::ConsumerPool;
use crate::privacy::LaplaceMechanism;
use crate::query::QueryGenerator;
use pdm_pricing::mechanism::PostedPriceMechanism;
use pdm_pricing::regret::{single_round_regret, RegretTracker};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The result of one trading round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TradeOutcome {
    /// Identifier of the traded query.
    pub query_id: u64,
    /// Identifier of the arriving consumer.
    pub consumer_id: u64,
    /// The price posted by the broker.
    pub posted_price: f64,
    /// The reserve price (total normalised compensation).
    pub reserve_price: f64,
    /// The consumer's (hidden) market value.
    pub market_value: f64,
    /// Whether the consumer accepted.
    pub accepted: bool,
    /// The noisy answer returned to the consumer (only on a sale).
    pub noisy_answer: Option<f64>,
    /// The broker's net revenue this round (price − compensation, zero if no
    /// sale).
    pub net_revenue: f64,
    /// The broker's regret this round (Eq. 1).
    pub regret: f64,
}

/// Aggregate report over a full market run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MarketReport {
    /// Number of trading rounds executed.
    pub rounds: usize,
    /// Number of sales.
    pub sales: usize,
    /// Gross revenue charged to consumers.
    pub gross_revenue: f64,
    /// Total compensation allocated to data owners.
    pub total_compensation_paid: f64,
    /// Net broker revenue (gross − compensations).
    pub net_revenue: f64,
    /// Cumulative regret (Eq. 1).
    pub cumulative_regret: f64,
    /// Cumulative market value of the arrived queries.
    pub cumulative_market_value: f64,
}

impl MarketReport {
    /// Regret ratio over the run.
    #[must_use]
    pub fn regret_ratio(&self) -> f64 {
        if self.cumulative_market_value <= 0.0 {
            0.0
        } else {
            self.cumulative_regret / self.cumulative_market_value
        }
    }
}

/// A running personal data market with a pluggable pricing mechanism.
#[derive(Debug)]
pub struct Market<P> {
    broker: DataBroker,
    generator: QueryGenerator,
    consumers: ConsumerPool,
    mechanism: P,
    answering: LaplaceMechanism,
    tracker: RegretTracker,
    gross_revenue: f64,
    compensation_paid: f64,
    sales: usize,
}

impl<P: PostedPriceMechanism> Market<P> {
    /// Assembles a market.
    ///
    /// # Panics
    /// Panics when the generator's owner count or the consumers' feature
    /// dimension do not match the broker.
    #[must_use]
    pub fn new(
        broker: DataBroker,
        generator: QueryGenerator,
        consumers: ConsumerPool,
        mechanism: P,
    ) -> Self {
        assert_eq!(generator.num_owners(), broker.num_owners());
        assert_eq!(consumers.feature_dim(), broker.feature_dim());
        Self {
            broker,
            generator,
            consumers,
            mechanism,
            answering: LaplaceMechanism::new(),
            tracker: RegretTracker::new(false),
            gross_revenue: 0.0,
            compensation_paid: 0.0,
            sales: 0,
        }
    }

    /// The pricing mechanism (e.g. to inspect its learned knowledge set).
    #[must_use]
    pub fn mechanism(&self) -> &P {
        &self.mechanism
    }

    /// Executes one trading round.
    pub fn trade_one<R: Rng + ?Sized>(&mut self, rng: &mut R) -> TradeOutcome {
        let query = self.generator.next_query(rng);
        let priced = self.broker.prepare(&query);
        let consumer = self.consumers.next_consumer();
        let market_value = self.consumers.market_value(rng, &priced.features);

        let quote = self.mechanism.quote(&priced.features, priced.reserve_price);
        let accepted = consumer.decide(quote.posted_price, market_value);
        self.mechanism.observe(&priced.features, &quote, accepted);

        let regret = single_round_regret(quote.posted_price, market_value, priced.reserve_price);
        self.tracker
            .record(market_value, priced.reserve_price, quote.posted_price);

        let (noisy_answer, net_revenue) = if accepted {
            self.sales += 1;
            self.gross_revenue += quote.posted_price;
            self.compensation_paid += priced.reserve_price;
            let answer = self.answering.answer(rng, &query, self.broker.owners());
            (Some(answer), quote.posted_price - priced.reserve_price)
        } else {
            (None, 0.0)
        };

        TradeOutcome {
            query_id: priced.query_id,
            consumer_id: consumer.id,
            posted_price: quote.posted_price,
            reserve_price: priced.reserve_price,
            market_value,
            accepted,
            noisy_answer,
            net_revenue,
            regret,
        }
    }

    /// Runs `rounds` trading rounds and returns the aggregate report.
    pub fn run<R: Rng + ?Sized>(&mut self, rng: &mut R, rounds: usize) -> MarketReport {
        for _ in 0..rounds {
            let _ = self.trade_one(rng);
        }
        self.report()
    }

    /// The aggregate report so far.
    #[must_use]
    pub fn report(&self) -> MarketReport {
        MarketReport {
            rounds: self.tracker.rounds(),
            sales: self.sales,
            gross_revenue: self.gross_revenue,
            total_compensation_paid: self.compensation_paid,
            net_revenue: self.gross_revenue - self.compensation_paid,
            cumulative_regret: self.tracker.cumulative_regret(),
            cumulative_market_value: self.tracker.cumulative_market_value(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compensation::CompensationContract;
    use crate::owner::DataOwner;
    use crate::query::QueryWeightDistribution;
    use pdm_pricing::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn market(num_owners: usize, dim: usize, seed: u64) -> Market<EllipsoidPricing<LinearModel>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let owners: Vec<DataOwner> = (0..num_owners)
            .map(|i| DataOwner::new(i as u64, vec![1.0 + (i % 3) as f64], 4.0))
            .collect();
        let contracts = CompensationContract::sample_population(&mut rng, num_owners, 1.0, 1.0);
        let broker = DataBroker::new(owners, contracts, dim);
        let generator = QueryGenerator::new(num_owners, QueryWeightDistribution::Gaussian);
        let consumers = ConsumerPool::sample(&mut rng, dim, NoiseModel::None);
        let config = PricingConfig::new(2.0 * (dim as f64).sqrt(), 1_000).with_reserve(true);
        let mechanism = EllipsoidPricing::new(LinearModel::new(dim), config);
        Market::new(broker, generator, consumers, mechanism)
    }

    #[test]
    fn single_trade_is_internally_consistent() {
        let mut market = market(30, 6, 3);
        let mut rng = StdRng::seed_from_u64(1);
        let outcome = market.trade_one(&mut rng);
        assert_eq!(outcome.consumer_id, 0);
        if outcome.accepted {
            assert!(outcome.noisy_answer.is_some());
            assert!(
                (outcome.net_revenue - (outcome.posted_price - outcome.reserve_price)).abs()
                    < 1e-12
            );
            assert!(outcome.posted_price <= outcome.market_value + 1e-12);
        } else {
            assert!(outcome.noisy_answer.is_none());
            assert_eq!(outcome.net_revenue, 0.0);
        }
        assert!(outcome.regret >= 0.0);
    }

    #[test]
    fn report_accounting_adds_up() {
        let mut market = market(40, 8, 9);
        let mut rng = StdRng::seed_from_u64(2);
        let mut gross = 0.0;
        let mut comp = 0.0;
        let mut sales = 0usize;
        for _ in 0..300 {
            let outcome = market.trade_one(&mut rng);
            if outcome.accepted {
                gross += outcome.posted_price;
                comp += outcome.reserve_price;
                sales += 1;
            }
        }
        let report = market.report();
        assert_eq!(report.rounds, 300);
        assert_eq!(report.sales, sales);
        assert!((report.gross_revenue - gross).abs() < 1e-9);
        assert!((report.total_compensation_paid - comp).abs() < 1e-9);
        assert!((report.net_revenue - (gross - comp)).abs() < 1e-9);
        assert!(report.regret_ratio() >= 0.0 && report.regret_ratio() <= 1.0);
    }

    #[test]
    fn broker_earns_positive_net_revenue_with_reserve_constraint() {
        // The reserve constraint guarantees every sale covers the
        // compensations, so net revenue can never be negative and should be
        // strictly positive over a reasonable run.
        let mut market = market(50, 10, 11);
        let mut rng = StdRng::seed_from_u64(4);
        let report = market.run(&mut rng, 500);
        assert!(report.net_revenue >= 0.0);
        assert!(report.sales > 0);
        assert!(report.net_revenue > 0.0);
    }

    #[test]
    fn learning_market_beats_reserve_posting_market_on_net_revenue() {
        let mut rng = StdRng::seed_from_u64(21);
        let num_owners = 40;
        let dim = 6;
        let owners: Vec<DataOwner> = (0..num_owners)
            .map(|i| DataOwner::new(i as u64, vec![2.0 + (i % 2) as f64], 4.0))
            .collect();
        let contracts = CompensationContract::sample_population(&mut rng, num_owners, 1.0, 1.0);
        let broker = DataBroker::new(owners, contracts, dim);
        let generator = QueryGenerator::new(num_owners, QueryWeightDistribution::Gaussian);
        let consumers = ConsumerPool::sample(&mut rng, dim, NoiseModel::None);

        let config = PricingConfig::new(2.0 * (dim as f64).sqrt(), 2_000).with_reserve(true);
        let mut learning = Market::new(
            broker.clone(),
            generator.clone(),
            consumers.clone(),
            EllipsoidPricing::new(LinearModel::new(dim), config),
        );
        let mut risk_averse =
            Market::new(broker, generator, consumers, ReservePriceBaseline::new());

        let mut rng_a = StdRng::seed_from_u64(7);
        let learning_report = learning.run(&mut rng_a, 2_000);
        let mut rng_b = StdRng::seed_from_u64(7);
        let baseline_report = risk_averse.run(&mut rng_b, 2_000);

        // Posting the reserve earns zero net revenue by construction; the
        // learning mechanism must extract a strictly positive margin.
        assert!(baseline_report.net_revenue.abs() < 1e-9);
        assert!(learning_report.net_revenue > 0.0);
        assert!(learning_report.cumulative_regret < baseline_report.cumulative_regret);
    }
}
