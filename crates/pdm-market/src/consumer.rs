//! Data consumers and their (hidden) valuations.
//!
//! The paper models the market value of a query as a function of its feature
//! vector shared across consumers (contextual/hedonic pricing), plus
//! idiosyncratic sub-Gaussian noise.  [`ConsumerPool`] holds that shared
//! valuation profile and mints a [`DataConsumer`] per round; the consumer
//! simply accepts any posted price not exceeding her value.

use pdm_linalg::{sampling, Vector};
use pdm_pricing::uncertainty::NoiseModel;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One data consumer arriving in a trading round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DataConsumer {
    /// Sequential identifier assigned by the pool.
    pub id: u64,
}

impl DataConsumer {
    /// The consumer's take-it-or-leave-it decision.
    #[must_use]
    pub fn decide(&self, posted_price: f64, market_value: f64) -> bool {
        posted_price <= market_value
    }
}

/// The shared valuation profile of the consumer population.
#[derive(Debug, Clone)]
pub struct ConsumerPool {
    theta_star: Vector,
    noise: NoiseModel,
    next_id: u64,
}

impl ConsumerPool {
    /// Creates a pool with an explicit valuation weight vector.
    ///
    /// # Panics
    /// Panics when the weight vector is empty.
    #[must_use]
    pub fn new(theta_star: Vector, noise: NoiseModel) -> Self {
        assert!(
            !theta_star.is_empty(),
            "valuation weights must be non-empty"
        );
        Self {
            theta_star,
            noise,
            next_id: 0,
        }
    }

    /// Samples a valuation profile with the paper's Section V-A scaling:
    /// positive per-feature markup ratios normalised to ‖θ*‖ = √(2n), so
    /// market values exceed the compensation-based reserve prices with high
    /// probability.
    #[must_use]
    pub fn sample<R: Rng + ?Sized>(rng: &mut R, feature_dim: usize, noise: NoiseModel) -> Self {
        assert!(feature_dim > 0, "feature dimension must be positive");
        let raw = Vector::from_fn(feature_dim, |_| {
            (1.0 + 0.2 * sampling::standard_normal(rng)).clamp(0.75, 1.25)
        });
        let target = (2.0 * feature_dim as f64).sqrt();
        let theta_star = raw.scaled(target / raw.norm().max(1e-12));
        Self::new(theta_star, noise)
    }

    /// The ground-truth valuation weights (hidden from the broker).
    #[must_use]
    pub fn theta_star(&self) -> &Vector {
        &self.theta_star
    }

    /// Dimension of the feature vectors the pool values.
    #[must_use]
    pub fn feature_dim(&self) -> usize {
        self.theta_star.len()
    }

    /// The market value of a query with the given (normalised) features,
    /// including the idiosyncratic noise of the arriving consumer.
    ///
    /// # Panics
    /// Panics when the feature dimension does not match the pool.
    pub fn market_value<R: Rng + ?Sized>(&self, rng: &mut R, features: &Vector) -> f64 {
        let base = features
            .dot(&self.theta_star)
            // pdm-lint: allow(no-unwrap-in-lib) reason="valuation weights are sized to the market dimension by the consumer constructor"
            .expect("features must match the valuation dimension");
        base + self.noise.sample(rng)
    }

    /// Mints the next arriving consumer.
    pub fn next_consumer(&mut self) -> DataConsumer {
        let id = self.next_id;
        self.next_id += 1;
        DataConsumer { id }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn consumer_accepts_iff_price_not_above_value() {
        let c = DataConsumer { id: 0 };
        assert!(c.decide(1.0, 1.0));
        assert!(c.decide(0.5, 1.0));
        assert!(!c.decide(1.01, 1.0));
    }

    #[test]
    fn sampled_pool_matches_paper_scaling() {
        let mut rng = StdRng::seed_from_u64(1);
        let pool = ConsumerPool::sample(&mut rng, 16, NoiseModel::None);
        assert_eq!(pool.feature_dim(), 16);
        assert!((pool.theta_star().norm() - (32.0_f64).sqrt()).abs() < 1e-9);
        assert!(pool.theta_star().iter().all(|w| *w > 0.0));
    }

    #[test]
    fn market_value_is_linear_without_noise() {
        let pool = ConsumerPool::new(Vector::from_slice(&[1.0, 2.0]), NoiseModel::None);
        let mut rng = StdRng::seed_from_u64(2);
        let v = pool.market_value(&mut rng, &Vector::from_slice(&[0.5, 0.25]));
        assert!((v - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noise_perturbs_values() {
        let pool = ConsumerPool::new(
            Vector::from_slice(&[1.0, 1.0]),
            NoiseModel::Gaussian { std_dev: 0.1 },
        );
        let mut rng = StdRng::seed_from_u64(3);
        let x = Vector::from_slice(&[0.5, 0.5]);
        let values: Vec<f64> = (0..10).map(|_| pool.market_value(&mut rng, &x)).collect();
        assert!(values.iter().any(|v| (v - 1.0).abs() > 1e-6));
    }

    #[test]
    fn consumer_ids_are_sequential() {
        let mut pool = ConsumerPool::new(Vector::from_slice(&[1.0]), NoiseModel::None);
        assert_eq!(pool.next_consumer().id, 0);
        assert_eq!(pool.next_consumer().id, 1);
        assert_eq!(pool.next_consumer().id, 2);
    }
}
