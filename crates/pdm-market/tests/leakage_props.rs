//! Property tests for the leakage quantifier under arbitrary (including
//! degenerate) inputs.
//!
//! The load-bearing invariants behind the serving-side privacy ledgers:
//! leakage is always finite, non-negative, capped at the saturation value,
//! and monotone non-decreasing in the query weight's magnitude — so ledger
//! debits can never go backwards and budget arithmetic can never produce
//! NaN/∞.

use pdm_market::{PrivacyQuantifier, SATURATED_LEAKAGE};
use proptest::prelude::*;

/// Turns a continuous draw plus a mode selector into an input that covers
/// zeros, tiny magnitudes, and extremes that would overflow the naive
/// `|w|·Δ/b` ratio — the vendored proptest has no `prop_oneof!`, so the
/// degenerate cases are spliced in by hand.
fn wild(raw: f64, mode: usize) -> f64 {
    match mode {
        0 => 0.0,
        1 => -0.0,
        2 => raw * 1e-290,
        3 => raw * 1e290,
        _ => raw,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Leakage is a finite ε in `[0, SATURATED_LEAKAGE]` for every input.
    #[test]
    fn leakage_is_finite_non_negative_and_capped(
        weight in -1e9f64..1e9,
        data_range in -1e9f64..1e9,
        laplace_scale in -1e9f64..1e9,
        modes in 0usize..125,
    ) {
        let weight = wild(weight, modes % 5);
        let data_range = wild(data_range, (modes / 5) % 5);
        let laplace_scale = wild(laplace_scale, modes / 25);
        let eps = PrivacyQuantifier::new().owner_leakage(weight, data_range, laplace_scale);
        prop_assert!(eps.is_finite(), "ε = {eps}");
        prop_assert!(eps >= 0.0, "ε = {eps}");
        prop_assert!(eps <= SATURATED_LEAKAGE, "ε = {eps}");
    }

    /// A heavier weight can never leak less: ε is monotone non-decreasing
    /// in `|w|` for any fixed mechanism, degenerate or not.
    #[test]
    fn leakage_is_monotone_in_weight_magnitude(
        a in -1e9f64..1e9,
        b in -1e9f64..1e9,
        data_range in -1e9f64..1e9,
        laplace_scale in -1e9f64..1e9,
        modes in 0usize..25,
    ) {
        let q = PrivacyQuantifier::new();
        let data_range = wild(data_range, modes % 5);
        let laplace_scale = wild(laplace_scale, modes / 5);
        let (small, large) = if a.abs() <= b.abs() { (a, b) } else { (b, a) };
        prop_assert!(
            q.owner_leakage(small, data_range, laplace_scale)
                <= q.owner_leakage(large, data_range, laplace_scale),
            "|{small}| ≤ |{large}| must not leak more"
        );
    }

    /// The weight's sign never matters.
    #[test]
    fn leakage_ignores_weight_sign(
        weight in -1e9f64..1e9,
        data_range in -1e9f64..1e9,
        laplace_scale in -1e9f64..1e9,
    ) {
        let q = PrivacyQuantifier::new();
        prop_assert_eq!(
            q.owner_leakage(weight, data_range, laplace_scale),
            q.owner_leakage(-weight, data_range, laplace_scale)
        );
    }
}
