//! # pdm-ellipsoid
//!
//! Knowledge-set machinery for the contextual dynamic pricing mechanism of
//! Niu et al., *Online Pricing with Reserve Price Constraint for Personal Data
//! Markets* (ICDE 2020).
//!
//! The data broker maintains a *knowledge set* of feasible weight vectors
//! `θ*`.  After every posted price she learns a single linear inequality
//! (accepted ⇒ `p ≤ x^T θ*`, rejected ⇒ `p ≥ x^T θ*`) and refines the set.
//! Three representations are provided:
//!
//! * [`Ellipsoid`] — the Löwner–John ellipsoid relaxation used by the paper's
//!   Algorithm 1/2.  Posting a price and updating the set costs a few
//!   matrix–vector products (`O(n²)` time, `O(n²)` memory).
//! * [`Polytope`] — the exact polytope (set of linear inequalities).  Price
//!   bounds require solving two linear programs; this is the computationally
//!   infeasible-in-online-mode representation the paper argues against, kept
//!   here for validation and for the latency ablation.
//! * [`Interval`] — the one-dimensional special case where the knowledge set
//!   is just an interval and bisection applies (Theorem 3).
//!
//! All three implement [`KnowledgeSet`], so the pricing mechanisms in
//! `pdm-pricing` can be instantiated against any of them in tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cut;
pub mod ellipsoid;
pub mod interval;
pub mod polytope;

pub use cut::{Cut, CutKind, CutOutcome};
pub use ellipsoid::Ellipsoid;
pub use interval::Interval;
pub use polytope::Polytope;

use pdm_linalg::Vector;

/// A set of candidate weight vectors maintained by the data broker, refined
/// by one linear inequality per trading round.
///
/// `direction` below is always the (feature-mapped) feature vector `x_t` of
/// the product being priced; the *support bounds* are the minimum and maximum
/// of `x_t^T θ` over the knowledge set, i.e. the paper's `¯p_t` and `p̄_t`.
pub trait KnowledgeSet {
    /// Dimension of the weight vectors in the set.
    fn dim(&self) -> usize;

    /// Lower and upper bounds on `direction^T θ` over the set
    /// (`(¯p_t, p̄_t)` in the paper's notation).
    fn support_bounds(&self, direction: &Vector) -> (f64, f64);

    /// [`KnowledgeSet::support_bounds`] through a mutable receiver, so
    /// representations that own scratch buffers can answer without
    /// allocating.  Must return bit-for-bit the same pair as
    /// `support_bounds`; the default implementation simply delegates.
    fn support_bounds_mut(&mut self, direction: &Vector) -> (f64, f64) {
        self.support_bounds(direction)
    }

    /// Records the inequality `direction^T θ <= threshold` (the *rejection*
    /// feedback: the effective posted price was at least the market value).
    fn cut_below(&mut self, direction: &Vector, threshold: f64) -> CutOutcome;

    /// Records the inequality `direction^T θ >= threshold` (the *acceptance*
    /// feedback: the effective posted price was at most the market value).
    fn cut_above(&mut self, direction: &Vector, threshold: f64) -> CutOutcome;

    /// Returns `true` when `theta` is a member of the knowledge set
    /// (up to the representation's tolerance).
    fn contains(&self, theta: &Vector) -> bool;

    /// A scalar measure of the set's size along `direction`; for all three
    /// representations this equals `p̄_t − ¯p_t`, the quantity the mechanism
    /// compares against the exploration threshold ε.
    fn width_along(&self, direction: &Vector) -> f64 {
        let (lo, hi) = self.support_bounds(direction);
        hi - lo
    }
}

#[cfg(test)]
mod trait_tests {
    use super::*;

    #[test]
    fn width_along_is_upper_minus_lower_for_every_representation() {
        let x = Vector::from_slice(&[1.0, 0.0]);

        let ball = Ellipsoid::ball(2, 2.0);
        let (lo, hi) = ball.support_bounds(&x);
        assert!((ball.width_along(&x) - (hi - lo)).abs() < 1e-12);

        let poly = Polytope::from_box(&[-2.0, -2.0], &[2.0, 2.0]).unwrap();
        let (lo, hi) = poly.support_bounds(&x);
        assert!((poly.width_along(&x) - (hi - lo)).abs() < 1e-9);

        let iv = Interval::new(-2.0, 2.0);
        let x1 = Vector::from_slice(&[1.0]);
        let (lo, hi) = iv.support_bounds(&x1);
        assert!((iv.width_along(&x1) - (hi - lo)).abs() < 1e-12);
    }
}
