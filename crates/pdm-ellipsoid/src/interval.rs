//! The one-dimensional knowledge set: a closed interval.
//!
//! Section II-C of the paper introduces the mechanism through the
//! one-dimensional special case — the single feature is, e.g., the total
//! privacy compensation, and the unknown weight is a revenue-to-cost ratio.
//! The knowledge set is then just an interval `[lo, hi]` that bisection
//! shrinks; Theorem 3 shows O(log T) regret in this case.

use crate::cut::{Cut, CutOutcome};
use crate::KnowledgeSet;
use pdm_linalg::Vector;
use serde::{Deserialize, Serialize};

/// A closed interval `[lo, hi]` of candidate scalar weights.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Interval {
    lo: f64,
    hi: f64,
}

impl Interval {
    /// Creates the interval `[lo, hi]`.
    ///
    /// # Panics
    /// Panics when `lo > hi` or either endpoint is non-finite.
    #[must_use]
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(
            lo.is_finite() && hi.is_finite(),
            "interval endpoints must be finite"
        );
        assert!(lo <= hi, "interval lower bound must not exceed upper bound");
        Self { lo, hi }
    }

    /// Lower endpoint.
    #[must_use]
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper endpoint.
    #[must_use]
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Interval width `hi − lo`.
    #[must_use]
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Midpoint of the interval.
    #[must_use]
    pub fn midpoint(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }

    /// Intersects the interval with `{θ : x·θ ≤ threshold}` for a scalar
    /// feature `x`, returning the applied cut.
    fn intersect_le(&mut self, x: f64, threshold: f64) -> CutOutcome {
        if x.abs() <= 1e-15 {
            return CutOutcome::DegenerateDirection;
        }
        let bound = threshold / x;
        let (new_lo, new_hi) = if x > 0.0 {
            (self.lo, self.hi.min(bound))
        } else {
            (self.lo.max(bound), self.hi)
        };
        // Express the position of the cut like the ellipsoid does: signed
        // distance from the midpoint, normalised by the half width.
        let half_width = 0.5 * self.width();
        let alpha = if half_width <= 1e-15 {
            0.0
        } else {
            (self.midpoint() * x - threshold) / (half_width * x.abs())
        };
        if new_hi < new_lo {
            return CutOutcome::WouldBeEmpty { alpha };
        }
        if new_lo <= self.lo && new_hi >= self.hi {
            return CutOutcome::OutOfRange { alpha };
        }
        self.lo = new_lo;
        self.hi = new_hi;
        CutOutcome::Updated(Cut::from_alpha(alpha))
    }
}

impl KnowledgeSet for Interval {
    fn dim(&self) -> usize {
        1
    }

    fn support_bounds(&self, direction: &Vector) -> (f64, f64) {
        let x = direction[0];
        let a = x * self.lo;
        let b = x * self.hi;
        (a.min(b), a.max(b))
    }

    fn cut_below(&mut self, direction: &Vector, threshold: f64) -> CutOutcome {
        self.intersect_le(direction[0], threshold)
    }

    fn cut_above(&mut self, direction: &Vector, threshold: f64) -> CutOutcome {
        self.intersect_le(-direction[0], -threshold)
    }

    fn contains(&self, theta: &Vector) -> bool {
        theta.len() == 1 && self.lo - 1e-12 <= theta[0] && theta[0] <= self.hi + 1e-12
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdm_linalg::approx_eq;

    #[test]
    fn construction_and_accessors() {
        let iv = Interval::new(-1.0, 3.0);
        assert_eq!(iv.lo(), -1.0);
        assert_eq!(iv.hi(), 3.0);
        assert!(approx_eq(iv.width(), 4.0, 1e-12));
        assert!(approx_eq(iv.midpoint(), 1.0, 1e-12));
    }

    #[test]
    #[should_panic(expected = "lower bound")]
    fn inverted_interval_panics() {
        let _ = Interval::new(2.0, 1.0);
    }

    #[test]
    fn support_bounds_scale_with_feature() {
        let iv = Interval::new(1.0, 2.0);
        let x = Vector::from_slice(&[3.0]);
        assert_eq!(iv.support_bounds(&x), (3.0, 6.0));
        let neg = Vector::from_slice(&[-1.0]);
        assert_eq!(iv.support_bounds(&neg), (-2.0, -1.0));
    }

    #[test]
    fn cut_below_tightens_upper_end() {
        let mut iv = Interval::new(0.0, 2.0);
        let x = Vector::from_slice(&[1.0]);
        let outcome = iv.cut_below(&x, 1.0);
        assert!(outcome.is_updated());
        assert_eq!(iv.hi(), 1.0);
        assert_eq!(iv.lo(), 0.0);
    }

    #[test]
    fn cut_above_tightens_lower_end() {
        let mut iv = Interval::new(0.0, 2.0);
        let x = Vector::from_slice(&[1.0]);
        let outcome = iv.cut_above(&x, 0.5);
        assert!(outcome.is_updated());
        assert_eq!(iv.lo(), 0.5);
        assert_eq!(iv.hi(), 2.0);
    }

    #[test]
    fn negative_feature_flips_direction() {
        let mut iv = Interval::new(0.0, 2.0);
        let x = Vector::from_slice(&[-1.0]);
        // x·θ ≤ −1  ⇔  θ ≥ 1.
        iv.cut_below(&x, -1.0);
        assert_eq!(iv.lo(), 1.0);
        assert_eq!(iv.hi(), 2.0);
    }

    #[test]
    fn redundant_and_empty_cuts() {
        let mut iv = Interval::new(0.0, 1.0);
        let x = Vector::from_slice(&[1.0]);
        let before = iv;
        assert!(matches!(
            iv.cut_below(&x, 5.0),
            CutOutcome::OutOfRange { .. }
        ));
        assert_eq!(iv, before);
        assert!(matches!(
            iv.cut_below(&x, -1.0),
            CutOutcome::WouldBeEmpty { .. }
        ));
        assert_eq!(iv, before);
        let zero = Vector::from_slice(&[0.0]);
        assert_eq!(iv.cut_below(&zero, 0.0), CutOutcome::DegenerateDirection);
    }

    #[test]
    fn bisection_converges_to_true_weight() {
        let theta_star = 1.37_f64;
        let mut iv = Interval::new(0.0, 2.0);
        let x = Vector::from_slice(&[1.0]);
        for _ in 0..40 {
            let mid = iv.midpoint();
            if mid <= theta_star {
                iv.cut_above(&x, mid);
            } else {
                iv.cut_below(&x, mid);
            }
        }
        assert!(iv.contains(&Vector::from_slice(&[theta_star])));
        assert!(iv.width() < 1e-10);
    }

    #[test]
    fn contains_checks_dimension() {
        let iv = Interval::new(0.0, 1.0);
        assert!(iv.contains(&Vector::from_slice(&[0.5])));
        assert!(!iv.contains(&Vector::from_slice(&[0.5, 0.5])));
        assert!(!iv.contains(&Vector::from_slice(&[2.0])));
    }
}
