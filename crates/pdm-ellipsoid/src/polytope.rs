//! The exact polytope knowledge set.
//!
//! Keeping the raw set of linear inequalities is what the paper calls
//! "computationally infeasible in online mode": computing the price bounds
//! `¯p_t` and `p̄_t` requires solving two linear programs whose constraint
//! count grows with the number of rounds.  We keep this representation for
//! two reasons:
//!
//! 1. **Validation** — in low dimension the ellipsoid's support bounds must
//!    always *enclose* the polytope's exact bounds (the ellipsoid contains the
//!    polytope by construction), and the integration tests check this.
//! 2. **Ablation** — the latency benchmark contrasts per-round costs of the
//!    exact-LP representation with the ellipsoid relaxation, reproducing the
//!    motivation for the paper's design.
//!
//! Internally the free variables `θ` are shifted by the box lower bound so
//! the simplex solver (which requires non-negative variables) applies.

use crate::cut::{Cut, CutOutcome};
use crate::KnowledgeSet;
use pdm_linalg::{LinalgError, LinearProgram, LpOutcome, Vector};
use serde::{Deserialize, Serialize};

/// A bounded polytope `{θ : lower ≤ θ ≤ upper, Gθ ≤ h}` used as an exact
/// knowledge set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Polytope {
    lower: Vec<f64>,
    upper: Vec<f64>,
    /// Accumulated halfspace constraints `g·θ ≤ h`.
    constraints: Vec<(Vec<f64>, f64)>,
}

impl Polytope {
    /// Creates the axis-aligned box `{θ : lowerᵢ ≤ θᵢ ≤ upperᵢ}`, the
    /// paper's initial knowledge set `K₁`.
    ///
    /// # Errors
    /// Returns an error when the bounds have mismatched lengths, are empty,
    /// or `lower[i] > upper[i]` for some `i`.
    pub fn from_box(lower: &[f64], upper: &[f64]) -> Result<Self, LinalgError> {
        if lower.len() != upper.len() {
            return Err(LinalgError::DimensionMismatch {
                operation: "Polytope::from_box",
                expected: lower.len(),
                actual: upper.len(),
            });
        }
        if lower.is_empty() {
            return Err(LinalgError::Empty {
                operation: "Polytope::from_box",
            });
        }
        for i in 0..lower.len() {
            if lower[i] > upper[i] {
                return Err(LinalgError::InvalidArgument {
                    message: format!("box bound {i} inverted: {} > {}", lower[i], upper[i]),
                });
            }
        }
        Ok(Self {
            lower: lower.to_vec(),
            upper: upper.to_vec(),
            constraints: Vec::new(),
        })
    }

    /// Creates the symmetric box `[-radius, radius]ⁿ`.
    ///
    /// # Panics
    /// Panics when `dim == 0` or `radius < 0`.
    #[must_use]
    pub fn symmetric_box(dim: usize, radius: f64) -> Self {
        assert!(dim > 0 && radius >= 0.0);
        // pdm-lint: allow(no-unwrap-in-lib) reason="the box bounds are built inline with lower = -radius < radius = upper; from_box cannot reject them"
        Self::from_box(&vec![-radius; dim], &vec![radius; dim]).expect("valid box by construction")
    }

    /// Number of accumulated halfspace constraints (excluding the box).
    #[must_use]
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Optimises `direction^T θ` over the polytope.
    ///
    /// Returns `None` when the polytope has become (numerically) infeasible.
    fn optimise(&self, direction: &Vector, maximise: bool) -> Option<f64> {
        let n = self.lower.len();
        // Shift θ = y + lower with 0 ≤ y ≤ upper − lower.
        let sign = if maximise { 1.0 } else { -1.0 };
        let objective: Vec<f64> = (0..n).map(|i| sign * direction[i]).collect();
        let mut lp = LinearProgram::new(objective);
        for i in 0..n {
            let mut row = vec![0.0; n];
            row[i] = 1.0;
            lp.add_constraint_le(row, self.upper[i] - self.lower[i])
                // pdm-lint: allow(no-unwrap-in-lib) reason="every stored row was length-checked on insertion; this re-check cannot fail"
                .expect("row length matches");
        }
        for (g, h) in &self.constraints {
            let shift: f64 = g.iter().zip(self.lower.iter()).map(|(a, l)| a * l).sum();
            lp.add_constraint_le(g.clone(), h - shift)
                // pdm-lint: allow(no-unwrap-in-lib) reason="the constraint was built with the polytope dimension in this function"
                .expect("constraint length matches");
        }
        match lp.solve() {
            Ok(LpOutcome::Optimal(sol)) => {
                let offset: f64 = direction
                    .iter()
                    .zip(self.lower.iter())
                    .map(|(d, l)| d * l)
                    .sum();
                Some(sign * sol.objective + offset)
            }
            _ => None,
        }
    }

    /// Adds the halfspace `g·θ ≤ h`, reporting whether the set actually
    /// shrank (checked by comparing the support value before and after).
    fn add_halfspace(&mut self, direction: &Vector, threshold: f64) -> CutOutcome {
        if direction.norm() <= 1e-15 {
            return CutOutcome::DegenerateDirection;
        }
        let before_max = self.optimise(direction, true);
        let before_min = self.optimise(direction, false);
        let (Some(hi), Some(lo)) = (before_max, before_min) else {
            return CutOutcome::WouldBeEmpty { alpha: f64::NAN };
        };
        // Mirror the ellipsoid's α convention: signed distance from the
        // midpoint of the support interval, normalised by the half width.
        let half_width = 0.5 * (hi - lo);
        let alpha = if half_width <= 1e-15 {
            0.0
        } else {
            (0.5 * (hi + lo) - threshold) / half_width
        };
        if threshold >= hi {
            return CutOutcome::OutOfRange { alpha };
        }
        if threshold < lo {
            return CutOutcome::WouldBeEmpty { alpha };
        }
        self.constraints
            .push((direction.as_slice().to_vec(), threshold));
        CutOutcome::Updated(Cut::from_alpha(alpha))
    }
}

impl KnowledgeSet for Polytope {
    fn dim(&self) -> usize {
        self.lower.len()
    }

    fn support_bounds(&self, direction: &Vector) -> (f64, f64) {
        let lo = self.optimise(direction, false);
        let hi = self.optimise(direction, true);
        match (lo, hi) {
            (Some(l), Some(h)) => (l, h),
            // Infeasible polytope: collapse to an empty-ish interval at zero.
            _ => (0.0, 0.0),
        }
    }

    fn cut_below(&mut self, direction: &Vector, threshold: f64) -> CutOutcome {
        self.add_halfspace(direction, threshold)
    }

    fn cut_above(&mut self, direction: &Vector, threshold: f64) -> CutOutcome {
        self.add_halfspace(&(-direction), -threshold)
    }

    fn contains(&self, theta: &Vector) -> bool {
        if theta.len() != self.dim() {
            return false;
        }
        for i in 0..self.dim() {
            if theta[i] < self.lower[i] - 1e-9 || theta[i] > self.upper[i] + 1e-9 {
                return false;
            }
        }
        for (g, h) in &self.constraints {
            let value: f64 = g.iter().zip(theta.iter()).map(|(a, t)| a * t).sum();
            if value > h + 1e-9 {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Ellipsoid;
    use pdm_linalg::approx_eq;

    #[test]
    fn box_support_bounds() {
        let p = Polytope::from_box(&[-1.0, 0.0], &[2.0, 3.0]).unwrap();
        let x = Vector::from_slice(&[1.0, 1.0]);
        let (lo, hi) = p.support_bounds(&x);
        assert!(approx_eq(lo, -1.0, 1e-7));
        assert!(approx_eq(hi, 5.0, 1e-7));
    }

    #[test]
    fn from_box_validation() {
        assert!(Polytope::from_box(&[0.0], &[1.0, 2.0]).is_err());
        assert!(Polytope::from_box(&[], &[]).is_err());
        assert!(Polytope::from_box(&[2.0], &[1.0]).is_err());
    }

    #[test]
    fn cut_below_restricts_support() {
        let mut p = Polytope::symmetric_box(2, 1.0);
        let x = Vector::from_slice(&[1.0, 0.0]);
        let outcome = p.cut_below(&x, 0.25);
        assert!(outcome.is_updated());
        let (lo, hi) = p.support_bounds(&x);
        assert!(approx_eq(lo, -1.0, 1e-7));
        assert!(approx_eq(hi, 0.25, 1e-7));
        assert_eq!(p.num_constraints(), 1);
    }

    #[test]
    fn cut_above_restricts_support() {
        let mut p = Polytope::symmetric_box(2, 1.0);
        let x = Vector::from_slice(&[0.0, 1.0]);
        p.cut_above(&x, 0.5);
        let (lo, hi) = p.support_bounds(&x);
        assert!(approx_eq(lo, 0.5, 1e-7));
        assert!(approx_eq(hi, 1.0, 1e-7));
    }

    #[test]
    fn redundant_cut_is_reported() {
        let mut p = Polytope::symmetric_box(2, 1.0);
        let x = Vector::from_slice(&[1.0, 0.0]);
        assert!(matches!(
            p.cut_below(&x, 10.0),
            CutOutcome::OutOfRange { .. }
        ));
        assert_eq!(p.num_constraints(), 0);
    }

    #[test]
    fn empty_cut_is_refused() {
        let mut p = Polytope::symmetric_box(2, 1.0);
        let x = Vector::from_slice(&[1.0, 0.0]);
        assert!(matches!(
            p.cut_below(&x, -10.0),
            CutOutcome::WouldBeEmpty { .. }
        ));
        assert_eq!(p.num_constraints(), 0);
    }

    #[test]
    fn degenerate_direction() {
        let mut p = Polytope::symmetric_box(2, 1.0);
        assert_eq!(
            p.cut_below(&Vector::zeros(2), 0.0),
            CutOutcome::DegenerateDirection
        );
    }

    #[test]
    fn contains_respects_box_and_cuts() {
        let mut p = Polytope::symmetric_box(2, 1.0);
        let x = Vector::from_slice(&[1.0, 1.0]);
        p.cut_below(&x, 0.0);
        assert!(p.contains(&Vector::from_slice(&[-0.5, 0.3])));
        assert!(!p.contains(&Vector::from_slice(&[0.6, 0.6])));
        assert!(!p.contains(&Vector::from_slice(&[2.0, 0.0])));
        assert!(!p.contains(&Vector::from_slice(&[0.0])));
    }

    #[test]
    fn ellipsoid_bounds_enclose_polytope_bounds() {
        // The Löwner–John ellipsoid always contains the polytope it relaxes,
        // so its support interval must enclose the exact one after identical
        // cut sequences.
        let radius = 2.0;
        let mut poly = Polytope::symmetric_box(2, radius);
        let mut ell = Ellipsoid::enclosing_box(&[-radius, -radius], &[radius, radius]);
        let theta_star = Vector::from_slice(&[0.8, -0.4]);
        let directions = [
            Vector::from_slice(&[1.0, 0.2]),
            Vector::from_slice(&[0.4, 1.0]),
            Vector::from_slice(&[-0.7, 0.5]),
            Vector::from_slice(&[0.9, 0.9]),
            Vector::from_slice(&[0.1, -1.0]),
        ];
        for x in &directions {
            let truth = x.dot(&theta_star).unwrap();
            // Post the ellipsoid midpoint as the price, like the mechanism.
            let (elo, ehi) = ell.support_bounds(x);
            let price = 0.5 * (elo + ehi);
            if price <= truth {
                ell.cut_above(x, price);
                poly.cut_above(x, price);
            } else {
                ell.cut_below(x, price);
                poly.cut_below(x, price);
            }
            let (plo, phi) = poly.support_bounds(x);
            let (elo, ehi) = ell.support_bounds(x);
            assert!(
                elo <= plo + 1e-6,
                "ellipsoid lower bound must not exceed exact"
            );
            assert!(
                ehi >= phi - 1e-6,
                "ellipsoid upper bound must not fall below exact"
            );
            assert!(poly.contains(&theta_star));
            assert!(ell.contains(&theta_star));
        }
    }
}
