//! The Löwner–John ellipsoid knowledge set (Definition 1 and Algorithm 1/2 of
//! the paper).
//!
//! An ellipsoid is parameterised by its centre `c ∈ Rⁿ` and a symmetric
//! positive-definite shape matrix `A ∈ Rⁿˣⁿ`:
//!
//! ```text
//! E = { θ ∈ Rⁿ : (θ − c)^T A⁻¹ (θ − c) ≤ 1 }
//! ```
//!
//! The two operations the pricing mechanism needs each round are
//!
//! * the support bounds `¯p = min_{θ∈E} x^T θ = x^T(c − b)` and
//!   `p̄ = max_{θ∈E} x^T θ = x^T(c + b)` with `b = A x / √(x^T A x)`
//!   (lines 5–7 of Algorithm 1), and
//! * the Löwner–John update of `(A, c)` after a cut with position parameter
//!   `α` (lines 14–21), using the Grötschel–Lovász–Schrijver deep/shallow cut
//!   formulas.
//!
//! Both are `O(n²)`; no inverse of `A` is ever formed on the hot path.

use crate::cut::{Cut, CutOutcome};
use crate::KnowledgeSet;
use pdm_linalg::{jacobi_eigen, Cholesky, Matrix, Vector};
use serde::{Deserialize, Serialize};

/// Numerical floor used when deciding whether a direction carries any
/// information (`√(x^T A x)` below this is treated as degenerate).
const DIRECTION_TOL: f64 = 1e-12;

/// Reusable buffers for the per-round hot path (`support_bounds_mut` and the
/// cut update).  Purely transient: the contents between calls are
/// meaningless, so the buffers take no part in equality, serialization, or
/// snapshots.
#[derive(Debug, Clone, Default)]
struct CutScratch {
    /// Holds `A x` and then the boundary displacement `b`.
    b: Vector,
    /// Staging area for the updated centre `c'`.
    center: Vector,
    /// Staging area for the updated shape matrix `A'`.
    shape: Matrix,
}

/// An ellipsoidal knowledge set `E = {θ : (θ−c)^T A⁻¹ (θ−c) ≤ 1}`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ellipsoid {
    center: Vector,
    shape: Matrix,
    /// Cumulative count of volume-reducing cuts applied, kept for
    /// diagnostics (the regret analysis bounds this count).
    cuts_applied: usize,
    #[serde(skip)]
    scratch: CutScratch,
}

impl PartialEq for Ellipsoid {
    /// Equality ignores the scratch buffers: two ellipsoids are equal when
    /// they describe the same set and cut history.
    fn eq(&self, other: &Self) -> bool {
        self.center == other.center
            && self.shape == other.shape
            && self.cuts_applied == other.cuts_applied
    }
}

impl Ellipsoid {
    /// Creates the ball of the given radius centred at the origin
    /// (`A = radius² · I`, `c = 0`), the initial knowledge set of
    /// Algorithm 1/2.
    ///
    /// # Panics
    /// Panics if `dim == 0` or `radius <= 0`.
    #[must_use]
    pub fn ball(dim: usize, radius: f64) -> Self {
        assert!(dim > 0, "ellipsoid dimension must be positive");
        assert!(radius > 0.0, "ellipsoid radius must be positive");
        Self {
            center: Vector::zeros(dim),
            shape: Matrix::identity(dim).scaled(radius * radius),
            cuts_applied: 0,
            scratch: CutScratch::default(),
        }
    }

    /// Creates an ellipsoid from an explicit centre and shape matrix.
    ///
    /// # Errors
    /// Returns an error when `shape` is not symmetric positive definite or
    /// its dimension does not match the centre.
    pub fn new(center: Vector, shape: Matrix) -> Result<Self, pdm_linalg::LinalgError> {
        if shape.rows() != center.len() || shape.cols() != center.len() {
            return Err(pdm_linalg::LinalgError::DimensionMismatch {
                operation: "Ellipsoid::new",
                expected: center.len(),
                actual: shape.rows(),
            });
        }
        // Positive-definiteness check via Cholesky; the factor itself is not
        // retained because the hot path never needs A⁻¹ explicitly.
        Cholesky::factor(&shape, 1e-6)?;
        let mut shape = shape;
        shape.symmetrize();
        Ok(Self {
            center,
            shape,
            cuts_applied: 0,
            scratch: CutScratch::default(),
        })
    }

    /// Creates the initial knowledge set used by the paper for a box
    /// `[lowerᵢ, upperᵢ]ⁿ`: the origin-centred ball of radius
    /// `R = √(Σᵢ max(lᵢ², uᵢ²))` that encloses the box.
    ///
    /// # Panics
    /// Panics when the slices have different lengths, are empty, or the
    /// resulting radius is zero.
    #[must_use]
    pub fn enclosing_box(lower: &[f64], upper: &[f64]) -> Self {
        assert_eq!(lower.len(), upper.len(), "box bounds length mismatch");
        assert!(!lower.is_empty(), "box must have at least one dimension");
        let radius_sq: f64 = lower
            .iter()
            .zip(upper.iter())
            .map(|(&l, &u)| (l * l).max(u * u))
            .sum();
        Self::ball(lower.len(), radius_sq.sqrt())
    }

    /// The centre `c`.
    #[must_use]
    pub fn center(&self) -> &Vector {
        &self.center
    }

    /// The shape matrix `A`.
    #[must_use]
    pub fn shape(&self) -> &Matrix {
        &self.shape
    }

    /// Number of volume-reducing cuts applied since construction.
    #[must_use]
    pub fn cuts_applied(&self) -> usize {
        self.cuts_applied
    }

    /// `√(x^T A x)` — the half-width of the ellipsoid along `x`, i.e. the
    /// denominator of the position parameter `α`.
    #[must_use]
    pub fn direction_scale(&self, direction: &Vector) -> f64 {
        self.shape.quadratic_form(direction).max(0.0).sqrt()
    }

    /// The boundary displacement `b = A x / √(x^T A x)` (line 5 of
    /// Algorithm 1).  Returns `None` when the direction is degenerate.
    #[must_use]
    pub fn boundary_vector(&self, direction: &Vector) -> Option<Vector> {
        let scale = self.direction_scale(direction);
        if scale <= DIRECTION_TOL {
            return None;
        }
        Some(self.shape.matvec(direction).scaled(1.0 / scale))
    }

    /// The position parameter `α = (x^T c − threshold) / √(x^T A x)` of the
    /// hyperplane `x^T θ = threshold` (the signed distance from the centre in
    /// the ‖·‖_{A⁻¹} norm). Returns `None` for a degenerate direction.
    #[must_use]
    pub fn cut_alpha(&self, direction: &Vector, threshold: f64) -> Option<f64> {
        let scale = self.direction_scale(direction);
        if scale <= DIRECTION_TOL {
            return None;
        }
        let centre_value = direction
            .dot(&self.center)
            // pdm-lint: allow(no-unwrap-in-lib) reason="quadratic_form validated the dimension on the line above"
            .expect("dimension verified by quadratic_form");
        Some((centre_value - threshold) / scale)
    }

    /// Natural logarithm of the ellipsoid volume,
    /// `ln V_n + ½ ln det A` where `V_n` is the unit-ball volume.
    ///
    /// Uses the Cholesky log-determinant, which stays finite long after the
    /// raw determinant has underflowed.
    #[must_use]
    pub fn log_volume(&self) -> f64 {
        let logdet = match Cholesky::factor(&self.shape, 1e-6) {
            Ok(chol) => chol.log_determinant(),
            // A numerically semi-definite shape matrix means the volume has
            // collapsed to (effectively) zero.
            Err(_) => return f64::NEG_INFINITY,
        };
        ln_unit_ball_volume(self.dim()) + 0.5 * logdet
    }

    /// Ellipsoid volume (may underflow to zero for very flat ellipsoids; use
    /// [`Ellipsoid::log_volume`] in analyses).
    #[must_use]
    pub fn volume(&self) -> f64 {
        self.log_volume().exp()
    }

    /// Lengths of the semi-axes (square roots of the shape eigenvalues),
    /// sorted in descending order.
    ///
    /// # Panics
    /// Panics if the eigendecomposition fails, which cannot happen for the
    /// symmetric matrices maintained by this type.
    #[must_use]
    pub fn semi_axes(&self) -> Vector {
        // pdm-lint: allow(no-unwrap-in-lib) reason="the shape matrix is symmetric by construction (every update symmetrises); jacobi_eigen fails only on asymmetry"
        let eig = jacobi_eigen(&self.shape, 1e-6).expect("shape matrix stays symmetric");
        eig.eigenvalues.map(|v| v.max(0.0).sqrt())
    }

    /// Smallest eigenvalue of the shape matrix (`γ_n(A)` in Lemmas 4–5).
    #[must_use]
    pub fn smallest_eigenvalue(&self) -> f64 {
        // pdm-lint: allow(no-unwrap-in-lib) reason="the shape matrix is symmetric by construction (every update symmetrises); jacobi_eigen fails only on asymmetry"
        let eig = jacobi_eigen(&self.shape, 1e-6).expect("shape matrix stays symmetric");
        eig.smallest()
    }

    /// Uniformly inflates the ellipsoid: every semi-axis grows by `factor`
    /// (the shape matrix is scaled by `factor²`).
    ///
    /// This is the *forgetting* primitive of the discounted knowledge set:
    /// applying a factor slightly above 1 after every round makes old cuts
    /// decay geometrically, so a drifting `θ*` that has left the set is
    /// eventually re-admitted.  Growth is **relative**, so a converged
    /// (narrow) direction re-opens gently — it takes `ln(1.5)/ln(factor)`
    /// rounds to regain 50% width — and it is **self-limiting along
    /// queried directions**: once a width crosses the exploration
    /// threshold, the mechanism explores and the resulting cut shrinks it
    /// again.  Unqueried directions grow unchecked, exactly as the
    /// Löwner–John cut update itself already widens them (the relaxation's
    /// standard behaviour); callers that query no direction also observe
    /// no rounds, so a discounting driver never inflates in a vacuum.
    /// A `factor ≤ 1` or a non-finite input is a no-op.
    pub fn inflate(&mut self, factor: f64) {
        // NaN fails the comparison too, so non-finite inputs are no-ops.
        if factor <= 1.0 || !factor.is_finite() {
            return;
        }
        self.shape.scale_mut(factor * factor);
    }

    /// Shared implementation of the Löwner–John update for the halfspace
    /// `{θ : sign · direction^T θ ≤ sign · threshold}` with `sign ∈ {−1, +1}`.
    ///
    /// The formulas are the deep/shallow-cut update of Grötschel et al.; the
    /// "keep above" case threads `sign = −1` instead of materialising the
    /// negated direction vector.  This is bit-for-bit the computation the
    /// negated-vector formulation performs: IEEE-754 negation is exact and
    /// distributes exactly over rounded sums and products, so
    /// `(−x)^T A (−x)`, `(A(−x))ᵢ = −(Ax)ᵢ`, and `(−x)^T c = −(x^T c)` all
    /// hold at the bit level.  No allocation happens on any path: the
    /// candidate centre/shape are staged in [`CutScratch`] and committed by
    /// swapping.
    fn apply_cut_signed(&mut self, direction: &Vector, sign: f64, threshold: f64) -> CutOutcome {
        let n = self.dim();
        if n == 1 {
            return self.apply_cut_one_dim(sign * direction[0], sign * threshold);
        }
        // `x^T A x` is sign-invariant; the scratch ends up holding `A x`.
        let scale = self
            .shape
            .quadratic_form_with(direction, &mut self.scratch.b)
            .max(0.0)
            .sqrt();
        if scale <= DIRECTION_TOL {
            return CutOutcome::DegenerateDirection;
        }
        let signed_centre = sign
            * direction
                .dot(&self.center)
                // pdm-lint: allow(no-unwrap-in-lib) reason="dimensions checked by quadratic_form at the top of this cut step"
                .expect("dimensions checked by quadratic_form");
        let mut signed_threshold = sign * threshold;
        let nf = n as f64;

        let mut alpha = (signed_centre - signed_threshold) / scale;
        loop {
            if alpha > 1.0 {
                // The halfspace misses the ellipsoid entirely.
                return CutOutcome::WouldBeEmpty { alpha };
            }
            if alpha < -1.0 / nf {
                // Too shallow: the Löwner–John ellipsoid of the surviving
                // region is the current ellipsoid.
                return CutOutcome::OutOfRange { alpha };
            }
            if alpha >= 1.0 - 1e-12 {
                // Tangent cut: the surviving region is a single point; the
                // update formula would collapse the shape matrix to zero and
                // destroy positive definiteness, so we clamp just inside the
                // valid range and re-evaluate (the state is untouched, so
                // this loop is the recursion of the allocating formulation
                // unrolled).
                signed_threshold = signed_centre - (1.0 - 1e-9) * scale;
                alpha = (signed_centre - signed_threshold) / scale;
                continue;
            }
            break;
        }

        // b = A (sign·x) / scale, reusing the `A x` already in scratch.
        let inv_scale = 1.0 / scale;
        for slot in self.scratch.b.as_mut_slice() {
            *slot = (sign * *slot) * inv_scale;
        }

        // c' = c − (1 + nα)/(n + 1) · b
        let step = (1.0 + nf * alpha) / (nf + 1.0);
        self.scratch.center.copy_from(&self.center);
        self.scratch
            .center
            .axpy(-step, &self.scratch.b)
            // pdm-lint: allow(no-unwrap-in-lib) reason="center and the cut vector b share the ellipsoid dimension established at construction"
            .expect("center and b share the dimension");

        // A' = n²(1 − α²)/(n² − 1) · (A − 2(1 + nα)/((n + 1)(1 + α)) · b bᵀ)
        let outer_coeff = 2.0 * (1.0 + nf * alpha) / ((nf + 1.0) * (1.0 + alpha));
        let shape_scale = nf * nf * (1.0 - alpha * alpha) / (nf * nf - 1.0);
        self.shape.rank_one_scaled_symmetrized_into(
            -outer_coeff,
            &self.scratch.b,
            shape_scale,
            &mut self.scratch.shape,
        );

        if !self.scratch.shape.is_finite() || !self.scratch.center.is_finite() {
            // Refuse to poison the knowledge set with NaNs; treat as a no-op.
            return CutOutcome::OutOfRange { alpha };
        }

        std::mem::swap(&mut self.center, &mut self.scratch.center);
        std::mem::swap(&mut self.shape, &mut self.scratch.shape);
        self.cuts_applied += 1;
        CutOutcome::Updated(Cut::from_alpha(alpha))
    }

    /// One-dimensional specialisation: the ellipsoid `[c − √A, c + √A]` is an
    /// interval and the general update formula is singular (`n² − 1 = 0`), so
    /// the interval is intersected exactly with the halfline.  `x` and
    /// `threshold` are already sign-adjusted scalars.
    fn apply_cut_one_dim(&mut self, x: f64, threshold: f64) -> CutOutcome {
        if x.abs() <= DIRECTION_TOL {
            return CutOutcome::DegenerateDirection;
        }
        let half_width = self.shape.get(0, 0).max(0.0).sqrt();
        let c = self.center[0];
        let lo = c - half_width;
        let hi = c + half_width;
        // direction^T θ ≤ threshold  ⇔  θ ≤ threshold / x  (x > 0) or ≥ (x < 0)
        let bound = threshold / x;
        let (new_lo, new_hi) = if x > 0.0 {
            (lo, hi.min(bound))
        } else {
            (lo.max(bound), hi)
        };
        let alpha = {
            let scale = half_width * x.abs();
            if scale <= DIRECTION_TOL {
                0.0
            } else {
                (c * x - threshold) / scale
            }
        };
        if new_hi < new_lo {
            return CutOutcome::WouldBeEmpty { alpha };
        }
        if new_hi >= hi - 1e-15 && new_lo <= lo + 1e-15 {
            return CutOutcome::OutOfRange { alpha };
        }
        let new_c = 0.5 * (new_lo + new_hi);
        let new_r = (0.5 * (new_hi - new_lo)).max(1e-15);
        self.center[0] = new_c;
        self.shape.set(0, 0, new_r * new_r);
        self.cuts_applied += 1;
        CutOutcome::Updated(Cut::from_alpha(alpha))
    }
}

impl KnowledgeSet for Ellipsoid {
    fn dim(&self) -> usize {
        self.center.len()
    }

    fn support_bounds(&self, direction: &Vector) -> (f64, f64) {
        let centre_value = direction
            .dot(&self.center)
            // pdm-lint: allow(no-unwrap-in-lib) reason="dimension invariant pinned by the constructor; a mismatch here is internal corruption, not caller input"
            .expect("direction must match the ellipsoid dimension");
        match self.boundary_vector(direction) {
            Some(b) => {
                // pdm-lint: allow(no-unwrap-in-lib) reason="the same direction passed the dimension check two lines above"
                let spread = direction.dot(&b).expect("dimensions already checked");
                (centre_value - spread, centre_value + spread)
            }
            None => (centre_value, centre_value),
        }
    }

    fn support_bounds_mut(&mut self, direction: &Vector) -> (f64, f64) {
        let centre_value = direction
            .dot(&self.center)
            // pdm-lint: allow(no-unwrap-in-lib) reason="dimension invariant pinned by the constructor; a mismatch here is internal corruption, not caller input"
            .expect("direction must match the ellipsoid dimension");
        // Same arithmetic as the allocating path: `x^T A x` accumulated in
        // the order of `matvec(x).dot(x)`, then the spread accumulated as
        // `Σ xᵢ · ((A x)ᵢ / scale)`.
        let scale = self
            .shape
            .quadratic_form_with(direction, &mut self.scratch.b)
            .max(0.0)
            .sqrt();
        if scale <= DIRECTION_TOL {
            return (centre_value, centre_value);
        }
        let inv_scale = 1.0 / scale;
        let spread: f64 = direction
            .iter()
            .zip(self.scratch.b.iter())
            .map(|(d, m)| d * (m * inv_scale))
            .sum();
        (centre_value - spread, centre_value + spread)
    }

    fn cut_below(&mut self, direction: &Vector, threshold: f64) -> CutOutcome {
        self.apply_cut_signed(direction, 1.0, threshold)
    }

    fn cut_above(&mut self, direction: &Vector, threshold: f64) -> CutOutcome {
        // {θ : x^T θ ≥ h} = {θ : (−x)^T θ ≤ −h}, threaded as sign = −1
        // (applied to both the direction and the threshold internally).
        self.apply_cut_signed(direction, -1.0, threshold)
    }

    fn contains(&self, theta: &Vector) -> bool {
        if theta.len() != self.dim() {
            return false;
        }
        let diff = theta - &self.center;
        // Solve A z = diff so that diff^T A⁻¹ diff = diff^T z.
        match self.shape.solve(&diff) {
            Ok(z) => diff.dot(&z).map(|q| q <= 1.0 + 1e-8).unwrap_or(false),
            Err(_) => false,
        }
    }
}

/// Natural log of the volume of the n-dimensional unit ball,
/// `ln(π^{n/2} / Γ(n/2 + 1))`.
#[must_use]
pub fn ln_unit_ball_volume(n: usize) -> f64 {
    let nf = n as f64;
    0.5 * nf * std::f64::consts::PI.ln() - ln_gamma_half(n + 2)
}

/// `ln Γ(m / 2)` for a positive integer `m`, computed exactly from the
/// recurrences `Γ(k) = (k−1)!` and `Γ(k + ½) = (2k)! √π / (4ᵏ k!)`.
fn ln_gamma_half(m: usize) -> f64 {
    assert!(m >= 1, "ln_gamma_half requires a positive argument");
    if m.is_multiple_of(2) {
        // Γ(k) with k = m / 2.
        let k = m / 2;
        (1..k).map(|i| (i as f64).ln()).sum()
    } else {
        // Γ(k + 1/2) with k = (m − 1) / 2.
        let k = (m - 1) / 2;
        let ln_sqrt_pi = 0.5 * std::f64::consts::PI.ln();
        let ln_fact = |j: usize| -> f64 { (1..=j).map(|i| (i as f64).ln()).sum() };
        ln_fact(2 * k) + ln_sqrt_pi - (k as f64) * 4.0_f64.ln() - ln_fact(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdm_linalg::approx_eq;

    #[test]
    fn ball_support_bounds() {
        let e = Ellipsoid::ball(3, 2.0);
        let x = Vector::from_slice(&[1.0, 0.0, 0.0]);
        let (lo, hi) = e.support_bounds(&x);
        assert!(approx_eq(lo, -2.0, 1e-12));
        assert!(approx_eq(hi, 2.0, 1e-12));

        // A non-axis-aligned direction of norm ‖x‖ = √2 spans 2·r·‖x‖.
        let d = Vector::from_slice(&[1.0, 1.0, 0.0]);
        let (lo, hi) = e.support_bounds(&d);
        assert!(approx_eq(hi - lo, 4.0 * 2.0_f64.sqrt(), 1e-12));
    }

    #[test]
    fn enclosing_box_radius_matches_paper_formula() {
        let e = Ellipsoid::enclosing_box(&[-1.0, -2.0], &[0.5, 3.0]);
        // R = sqrt(max(1, 0.25) + max(4, 9)) = sqrt(10)
        let x = Vector::from_slice(&[1.0, 0.0]);
        let (_, hi) = e.support_bounds(&x);
        assert!(approx_eq(hi, 10.0_f64.sqrt(), 1e-12));
    }

    #[test]
    fn new_rejects_bad_shapes() {
        let c = Vector::zeros(2);
        let not_pd = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]);
        assert!(Ellipsoid::new(c.clone(), not_pd).is_err());
        let wrong_dim = Matrix::identity(3);
        assert!(Ellipsoid::new(c, wrong_dim).is_err());
    }

    #[test]
    fn central_cut_halves_log_volume_by_known_factor() {
        let mut e = Ellipsoid::ball(4, 1.0);
        let before = e.log_volume();
        let x = Vector::from_slice(&[1.0, 0.0, 0.0, 0.0]);
        // Cutting through the centre: threshold = x^T c = 0.
        let outcome = e.cut_below(&x, 0.0);
        assert!(outcome.is_updated());
        assert_eq!(outcome.cut().unwrap().kind, crate::CutKind::Central);
        let after = e.log_volume();
        // Lemma 2 with α = 0: volume ratio ≤ exp(-1/(5n)); the actual central
        // cut ratio for the Löwner–John ellipsoid is strictly below 1.
        assert!(after < before);
        assert!(after - before <= -1.0 / (5.0 * 4.0) + 1e-9);
    }

    #[test]
    fn deep_cut_shrinks_more_than_central_cut() {
        let x = Vector::from_slice(&[1.0, 0.0, 0.0]);
        let mut central = Ellipsoid::ball(3, 1.0);
        let mut deep = Ellipsoid::ball(3, 1.0);
        central.cut_below(&x, 0.0);
        deep.cut_below(&x, -0.5); // keep {θ₁ ≤ −0.5}: a deep cut
        assert!(deep.log_volume() < central.log_volume());
    }

    #[test]
    fn shallow_cut_still_shrinks_within_validity_range() {
        let x = Vector::from_slice(&[1.0, 0.0, 0.0]);
        let mut e = Ellipsoid::ball(3, 1.0);
        let before = e.log_volume();
        // α = −0.2 ∈ [−1/3, 0): shallow but valid.
        let outcome = e.cut_below(&x, 0.2);
        assert!(outcome.is_updated());
        assert_eq!(outcome.cut().unwrap().kind, crate::CutKind::Shallow);
        assert!(e.log_volume() < before);
    }

    #[test]
    fn too_shallow_cut_is_a_no_op() {
        let x = Vector::from_slice(&[1.0, 0.0, 0.0]);
        let mut e = Ellipsoid::ball(3, 1.0);
        let before = e.clone();
        // α = −0.9 < −1/3.
        let outcome = e.cut_below(&x, 0.9);
        assert!(matches!(outcome, CutOutcome::OutOfRange { .. }));
        assert_eq!(e, before);
    }

    #[test]
    fn infeasible_cut_reports_would_be_empty() {
        let x = Vector::from_slice(&[1.0, 0.0, 0.0]);
        let mut e = Ellipsoid::ball(3, 1.0);
        let before = e.clone();
        // Keep {θ₁ ≤ −2}: misses the unit ball entirely (α = 2 > 1).
        let outcome = e.cut_below(&x, -2.0);
        assert!(matches!(outcome, CutOutcome::WouldBeEmpty { .. }));
        assert_eq!(e, before);
    }

    #[test]
    fn degenerate_direction_is_detected() {
        let mut e = Ellipsoid::ball(2, 1.0);
        let zero = Vector::zeros(2);
        assert_eq!(e.cut_below(&zero, 0.0), CutOutcome::DegenerateDirection);
    }

    #[test]
    fn cut_above_mirrors_cut_below() {
        let x = Vector::from_slice(&[0.0, 1.0]);
        let mut below = Ellipsoid::ball(2, 1.0);
        let mut above = Ellipsoid::ball(2, 1.0);
        below.cut_below(&x, 0.0);
        above.cut_above(&x, 0.0);
        // Mirror images: centres are opposite, volumes identical.
        assert!(approx_eq(below.center()[1], -above.center()[1], 1e-12));
        assert!(approx_eq(below.log_volume(), above.log_volume(), 1e-10));
    }

    #[test]
    fn cut_preserves_feasible_weight_vector() {
        // The true θ* must survive any sequence of consistent cuts.
        let theta_star = Vector::from_slice(&[0.6, -0.3, 0.2]);
        let mut e = Ellipsoid::ball(3, 2.0);
        let directions = [
            Vector::from_slice(&[1.0, 0.0, 0.0]),
            Vector::from_slice(&[0.3, 0.8, 0.1]),
            Vector::from_slice(&[-0.5, 0.4, 0.9]),
            Vector::from_slice(&[0.2, 0.2, 0.2]),
        ];
        for (i, x) in directions.iter().enumerate() {
            let value = x.dot(&theta_star).unwrap();
            // Alternate accept/reject consistent with θ*.
            if i % 2 == 0 {
                e.cut_below(x, value + 0.05);
            } else {
                e.cut_above(x, value - 0.05);
            }
            assert!(e.contains(&theta_star), "θ* expelled after cut {i}");
        }
    }

    #[test]
    fn support_bounds_shrink_toward_truth_under_bisection() {
        let theta_star = Vector::from_slice(&[0.5, 0.5]);
        let x = Vector::from_slice(&[1.0, 1.0]).normalized();
        let truth = x.dot(&theta_star).unwrap();
        let mut e = Ellipsoid::ball(2, 2.0);
        for _ in 0..30 {
            let (lo, hi) = e.support_bounds(&x);
            let mid = 0.5 * (lo + hi);
            if mid <= truth {
                e.cut_above(&x, mid);
            } else {
                e.cut_below(&x, mid);
            }
        }
        let (lo, hi) = e.support_bounds(&x);
        assert!(lo <= truth + 1e-6 && truth - 1e-6 <= hi);
        assert!(
            hi - lo < 0.05,
            "bisection should tighten the width, got {}",
            hi - lo
        );
    }

    #[test]
    fn one_dimensional_cuts_behave_like_interval() {
        let mut e = Ellipsoid::ball(1, 2.0); // interval [−2, 2]
        let x = Vector::from_slice(&[1.0]);
        let outcome = e.cut_below(&x, 1.0); // keep [−2, 1]
        assert!(outcome.is_updated());
        let (lo, hi) = e.support_bounds(&x);
        assert!(approx_eq(lo, -2.0, 1e-9));
        assert!(approx_eq(hi, 1.0, 1e-9));

        let outcome = e.cut_above(&x, -1.0); // keep [−1, 1]
        assert!(outcome.is_updated());
        let (lo, hi) = e.support_bounds(&x);
        assert!(approx_eq(lo, -1.0, 1e-9));
        assert!(approx_eq(hi, 1.0, 1e-9));

        // Empty intersection is refused.
        let before = e.clone();
        assert!(matches!(
            e.cut_below(&x, -5.0),
            CutOutcome::WouldBeEmpty { .. }
        ));
        assert_eq!(e, before);
    }

    #[test]
    fn volume_of_unit_ball_matches_closed_form() {
        // V_1 = 2, V_2 = π, V_3 = 4π/3.
        assert!(approx_eq(ln_unit_ball_volume(1).exp(), 2.0, 1e-9));
        assert!(approx_eq(
            ln_unit_ball_volume(2).exp(),
            std::f64::consts::PI,
            1e-9
        ));
        assert!(approx_eq(
            ln_unit_ball_volume(3).exp(),
            4.0 * std::f64::consts::PI / 3.0,
            1e-9
        ));
        // And the scaled ball volume: radius 2 in 2-D is 4π.
        let e = Ellipsoid::ball(2, 2.0);
        assert!(approx_eq(e.volume(), 4.0 * std::f64::consts::PI, 1e-6));
    }

    #[test]
    fn semi_axes_and_smallest_eigenvalue() {
        let shape = Matrix::diagonal(&[4.0, 1.0]);
        let e = Ellipsoid::new(Vector::zeros(2), shape).unwrap();
        let axes = e.semi_axes();
        assert!(approx_eq(axes[0], 2.0, 1e-9));
        assert!(approx_eq(axes[1], 1.0, 1e-9));
        assert!(approx_eq(e.smallest_eigenvalue(), 1.0, 1e-9));
    }

    #[test]
    fn lemma2_volume_ratio_bound_holds_across_alpha_range() {
        // Check V(E') / V(E) ≤ exp(−(1 + nα)² / (5n)) for several α in
        // [−1/n, 1), n = 4.
        let n = 4usize;
        let x = Vector::from_slice(&[1.0, 0.0, 0.0, 0.0]);
        for &alpha in &[-0.24, -0.1, 0.0, 0.2, 0.5, 0.8] {
            let mut e = Ellipsoid::ball(n, 1.0);
            let before = e.log_volume();
            // threshold chosen so the position parameter equals alpha:
            // α = (x^T c − h)/√(x^T A x) = −h   for the unit ball.
            let outcome = e.cut_below(&x, -alpha);
            assert!(outcome.is_updated(), "alpha = {alpha} should be valid");
            let after = e.log_volume();
            let bound = -(1.0 + n as f64 * alpha).powi(2) / (5.0 * n as f64);
            assert!(
                after - before <= bound + 1e-9,
                "Lemma 2 violated for alpha = {alpha}: got {} > {}",
                after - before,
                bound
            );
        }
    }

    #[test]
    fn cuts_applied_counter_increments_only_on_updates() {
        let mut e = Ellipsoid::ball(2, 1.0);
        let x = Vector::from_slice(&[1.0, 0.0]);
        assert_eq!(e.cuts_applied(), 0);
        e.cut_below(&x, 0.0);
        assert_eq!(e.cuts_applied(), 1);
        e.cut_below(&x, 5.0); // out of range, no-op
        assert_eq!(e.cuts_applied(), 1);
    }

    #[test]
    fn contains_rejects_wrong_dimension() {
        let e = Ellipsoid::ball(3, 1.0);
        assert!(!e.contains(&Vector::zeros(2)));
        assert!(e.contains(&Vector::zeros(3)));
    }

    #[test]
    fn cut_above_is_bitwise_the_negated_cut_below() {
        // The sign-threaded path must reproduce, bit for bit, the textbook
        // formulation that materialises the negated direction vector.
        let x = Vector::from_slice(&[0.37, -1.21, 0.89]);
        let mut via_sign = Ellipsoid::ball(3, 1.5);
        let mut via_negation = Ellipsoid::ball(3, 1.5);
        for &th in &[0.2, -0.35, 0.11, 0.6] {
            let a = via_sign.cut_above(&x, th);
            let b = via_negation.cut_below(&(-&x), -th);
            assert_eq!(a, b);
            assert_eq!(
                via_sign.center().as_slice(),
                via_negation.center().as_slice()
            );
            assert_eq!(via_sign.shape().as_slice(), via_negation.shape().as_slice());
        }
        // And in one dimension, where the interval specialisation kicks in.
        let x1 = Vector::from_slice(&[-0.8]);
        let mut one_sign = Ellipsoid::ball(1, 2.0);
        let mut one_neg = Ellipsoid::ball(1, 2.0);
        assert_eq!(
            one_sign.cut_above(&x1, 0.4),
            one_neg.cut_below(&(-&x1), -0.4)
        );
        assert_eq!(one_sign, one_neg);
    }

    #[test]
    fn support_bounds_mut_matches_support_bounds_bitwise() {
        let mut e = Ellipsoid::ball(4, 1.3);
        let dirs = [
            Vector::from_slice(&[1.0, 0.25, -0.5, 2.0]),
            Vector::from_slice(&[0.0, -1.7, 0.0, 0.33]),
            Vector::zeros(4), // degenerate
        ];
        for d in &dirs {
            let (lo, hi) = e.support_bounds(d);
            let (lo_m, hi_m) = e.support_bounds_mut(d);
            assert_eq!(lo.to_bits(), lo_m.to_bits());
            assert_eq!(hi.to_bits(), hi_m.to_bits());
        }
        // Still identical after the shape matrix has evolved.
        e.cut_below(&dirs[0], 0.1);
        for d in &dirs {
            let (lo, hi) = e.support_bounds(d);
            let (lo_m, hi_m) = e.support_bounds_mut(d);
            assert_eq!(lo.to_bits(), lo_m.to_bits());
            assert_eq!(hi.to_bits(), hi_m.to_bits());
        }
    }

    #[test]
    fn equality_ignores_scratch_buffers() {
        let x = Vector::from_slice(&[1.0, 0.0]);
        let mut used = Ellipsoid::ball(2, 1.0);
        // Populate the scratch via a rejected (out-of-range) cut and a
        // support query; the set itself is untouched.
        used.cut_below(&x, 5.0);
        used.support_bounds_mut(&x);
        let fresh = Ellipsoid::ball(2, 1.0);
        assert_eq!(used, fresh);
    }

    #[test]
    fn inflate_grows_axes_geometrically() {
        let x = Vector::from_slice(&[1.0, 0.0]);
        let mut e = Ellipsoid::ball(2, 1.0);
        // Shrink along x first so there is something to forget.
        e.cut_below(&x, 0.2);
        e.cut_below(&x, 0.1);
        let width_before = e.width_along(&x);
        e.inflate(1.1);
        let width_after = e.width_along(&x);
        assert!(
            (width_after - 1.1 * width_before).abs() < 1e-9,
            "inflation must widen the set by exactly the factor \
             ({width_after} vs {width_before})"
        );
        // Inflation followed by a fresh cut keeps the set valid: the
        // re-opened direction can immediately be re-cut.
        e.cut_below(&x, 0.05);
        assert!(e.shape().is_finite());
        assert!(e.width_along(&x) < width_after);

        // Degenerate factors are no-ops.
        let frozen = e.clone();
        e.inflate(1.0);
        e.inflate(0.5);
        e.inflate(f64::NAN);
        assert_eq!(e, frozen);
    }
}
