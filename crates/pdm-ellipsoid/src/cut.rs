//! Cut descriptions and outcomes shared by every knowledge-set representation.
//!
//! A *cut* is the halfspace the data broker learns after observing the buyer's
//! accept/reject decision.  The paper classifies cuts by how much of the
//! ellipsoid survives: a *central* cut keeps exactly half, a *deep* cut keeps
//! less than half, and a *shallow* cut keeps more than half.  The position of
//! the cut is captured by the signed parameter `α` (`alpha`), the distance
//! from the ellipsoid's centre to the cutting hyperplane measured in the
//! ellipsoidal norm ‖·‖_{A⁻¹}.

use serde::{Deserialize, Serialize};

/// Classification of a cut by its position parameter `α`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CutKind {
    /// `α = 0`: the hyperplane passes through the centre, half the volume is
    /// removed.
    Central,
    /// `α ∈ (0, 1]`: more than half the volume is removed.
    Deep,
    /// `α ∈ [-1/n, 0)`: less than half the volume is removed, but the update
    /// still shrinks the ellipsoid.
    Shallow,
}

/// A halfspace constraint `direction^T θ ≤ threshold` (for "below" cuts) or
/// `direction^T θ ≥ threshold` (for "above" cuts), recorded together with the
/// position parameter it produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cut {
    /// Position parameter `α` of the cut at the time it was applied.
    pub alpha: f64,
    /// Classification derived from `alpha`.
    pub kind: CutKind,
}

impl Cut {
    /// Classifies a position parameter into a [`CutKind`].
    ///
    /// `alpha` values outside `[-1/n, 1]` do not correspond to a volume-
    /// reducing Löwner–John update and are reported through
    /// [`CutOutcome::OutOfRange`] / [`CutOutcome::WouldBeEmpty`] instead, so
    /// this function only deals with the valid range (values very close to
    /// zero are treated as central to absorb floating point noise).
    #[must_use]
    pub fn classify(alpha: f64) -> CutKind {
        if alpha.abs() < 1e-12 {
            CutKind::Central
        } else if alpha > 0.0 {
            CutKind::Deep
        } else {
            CutKind::Shallow
        }
    }

    /// Builds a [`Cut`] record from a position parameter.
    #[must_use]
    pub fn from_alpha(alpha: f64) -> Self {
        Self {
            alpha,
            kind: Self::classify(alpha),
        }
    }
}

/// Result of asking a knowledge set to record a new inequality.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CutOutcome {
    /// The set was refined; the record describes the applied cut.
    Updated(Cut),
    /// The inequality was too shallow to be useful (`α < -1/n` for the
    /// ellipsoid representation): the Löwner–John ellipsoid of the surviving
    /// region is the current ellipsoid itself, so nothing changed.
    OutOfRange {
        /// The offending position parameter.
        alpha: f64,
    },
    /// The inequality would remove the entire set (`α > 1`).  The set is kept
    /// unchanged; the caller decides how to treat the inconsistency (with
    /// market-value uncertainty this can legitimately happen and is absorbed
    /// by the δ buffer).
    WouldBeEmpty {
        /// The offending position parameter.
        alpha: f64,
    },
    /// The direction vector was (numerically) zero, so no information is
    /// carried by the inequality.
    DegenerateDirection,
}

impl CutOutcome {
    /// Returns `true` when the knowledge set was actually refined.
    #[must_use]
    pub fn is_updated(&self) -> bool {
        matches!(self, CutOutcome::Updated(_))
    }

    /// Returns the applied cut, if any.
    #[must_use]
    pub fn cut(&self) -> Option<&Cut> {
        match self {
            CutOutcome::Updated(cut) => Some(cut),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_boundaries() {
        assert_eq!(Cut::classify(0.0), CutKind::Central);
        assert_eq!(Cut::classify(1e-15), CutKind::Central);
        assert_eq!(Cut::classify(0.3), CutKind::Deep);
        assert_eq!(Cut::classify(1.0), CutKind::Deep);
        assert_eq!(Cut::classify(-0.1), CutKind::Shallow);
    }

    #[test]
    fn from_alpha_round_trips() {
        let c = Cut::from_alpha(0.25);
        assert_eq!(c.alpha, 0.25);
        assert_eq!(c.kind, CutKind::Deep);
    }

    #[test]
    fn outcome_helpers() {
        let updated = CutOutcome::Updated(Cut::from_alpha(0.0));
        assert!(updated.is_updated());
        assert!(updated.cut().is_some());

        let skipped = CutOutcome::OutOfRange { alpha: -0.9 };
        assert!(!skipped.is_updated());
        assert!(skipped.cut().is_none());

        let empty = CutOutcome::WouldBeEmpty { alpha: 1.7 };
        assert!(!empty.is_updated());

        assert!(!CutOutcome::DegenerateDirection.is_updated());
    }

    #[test]
    fn serde_impls_exist() {
        // Compile-time check that the derives provide both impls; an actual
        // format round-trip needs a real serde_json, which the offline build
        // does not have (see vendor/README.md).
        fn assert_serde<T: Serialize + for<'de> Deserialize<'de>>() {}
        assert_serde::<CutOutcome>();
        assert_serde::<Cut>();
    }
}
