//! Property tests for the knowledge-set primitives under **degenerate**
//! inputs: (near-)zero-volume sets, thresholds outside the support range,
//! and reserve-style clamps far beyond the interval — the states a
//! long-lived serving tenant ends up in after thousands of cuts, where a
//! panic or a NaN would take a whole shard down.

use pdm_ellipsoid::{CutOutcome, Ellipsoid, Interval, KnowledgeSet};
use pdm_linalg::{sampling, Vector};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Shrinks a ball toward zero volume with repeated central cuts along
/// seeded directions.
fn nearly_flat_ellipsoid(dim: usize, radius: f64, cuts: usize, seed: u64) -> Ellipsoid {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ellipsoid = Ellipsoid::ball(dim, radius);
    for _ in 0..cuts {
        let direction = sampling::unit_sphere(&mut rng, dim);
        let (lo, hi) = ellipsoid.support_bounds(&direction);
        let _ = ellipsoid.cut_below(&direction, 0.5 * (lo + hi));
    }
    ellipsoid
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Cutting a knowledge set that has already collapsed to (numerically)
    /// zero volume never panics, never produces a non-finite centre, and
    /// never increases the volume — for any direction and threshold,
    /// including thresholds far outside the support range.
    #[test]
    fn zero_volume_ellipsoids_survive_any_cut(
        dim in 2usize..6,
        seed in 0u64..1_000,
        threshold in -100.0..100.0_f64,
        from_above in 0u64..2,
    ) {
        let from_above = from_above == 1;
        // 120 central cuts shrink the log-volume far below f64 granularity
        // along most directions — the degenerate regime.
        let mut ellipsoid = nearly_flat_ellipsoid(dim, 2.0, 120, seed);
        let volume_before = ellipsoid.log_volume();
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(1));
        let direction = sampling::unit_sphere(&mut rng, dim);

        let outcome = if from_above {
            ellipsoid.cut_above(&direction, threshold)
        } else {
            ellipsoid.cut_below(&direction, threshold)
        };

        // Whatever the outcome, the set is still a usable ellipsoid.
        prop_assert!(ellipsoid.center().iter().all(|c| c.is_finite()));
        let (lo, hi) = ellipsoid.support_bounds(&direction);
        prop_assert!(lo.is_finite() && hi.is_finite());
        prop_assert!(lo <= hi + 1e-9);
        if outcome.is_updated() {
            prop_assert!(ellipsoid.log_volume() <= volume_before + 1e-9);
        }
    }

    /// A deep cut entirely outside the support range is reported as
    /// out-of-range/would-be-empty and leaves the set untouched, even on a
    /// degenerate ellipsoid.
    #[test]
    fn cuts_beyond_the_support_range_do_not_mutate(
        dim in 2usize..5,
        seed in 0u64..500,
        margin in 1.0..50.0_f64,
    ) {
        let mut ellipsoid = nearly_flat_ellipsoid(dim, 1.5, 40, seed);
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(2));
        let direction = sampling::unit_sphere(&mut rng, dim);
        let (lo, hi) = ellipsoid.support_bounds(&direction);
        let center_before = ellipsoid.center().clone();

        // Keep everything: the halfspace contains the whole set.
        let keep_all = ellipsoid.cut_below(&direction, hi + margin);
        prop_assert!(!keep_all.is_updated());
        // Keep nothing: the halfspace misses the whole set.
        let keep_none = ellipsoid.cut_below(&direction, lo - margin);
        let refused_as_empty = matches!(keep_none, CutOutcome::WouldBeEmpty { alpha: _ });
        prop_assert!(refused_as_empty, "expected WouldBeEmpty, got {:?}", keep_none);
        prop_assert_eq!(ellipsoid.center(), &center_before);
    }

    /// The interval (one-dimensional knowledge set) under reserve-style
    /// clamps: a threshold above the whole interval keeps it intact, a
    /// threshold below it is refused as would-be-empty, and a legitimate
    /// clamp never inverts the endpoints — including on a zero-width
    /// (point) interval.
    #[test]
    fn interval_reserve_clamp_handles_degenerate_inputs(
        point in -10.0..10.0_f64,
        width in 0.0..5.0_f64,
        clamp in -100.0..100.0_f64,
        feature in -3.0..3.0_f64,
    ) {
        let mut interval = Interval::new(point, point + width);
        let x = Vector::from_slice(&[feature]);
        let before = interval;

        let outcome = interval.cut_below(&x, clamp);
        prop_assert!(interval.lo() <= interval.hi());
        prop_assert!(interval.lo().is_finite() && interval.hi().is_finite());
        match outcome {
            CutOutcome::Updated(_) => {
                // A real cut only ever shrinks the interval.
                prop_assert!(interval.lo() >= before.lo() - 1e-12);
                prop_assert!(interval.hi() <= before.hi() + 1e-12);
                prop_assert!(interval.width() <= before.width() + 1e-12);
            }
            CutOutcome::OutOfRange { .. }
            | CutOutcome::WouldBeEmpty { .. }
            | CutOutcome::DegenerateDirection => {
                // Refused cuts leave the interval untouched.
                prop_assert_eq!(interval, before);
            }
        }

        // The support bounds stay ordered whatever happened.
        let (lo, hi) = interval.support_bounds(&x);
        prop_assert!(lo <= hi);
    }

    /// A zero-width (point) interval behaves like the posted-price-at-
    /// reserve degenerate case: it either survives a cut unchanged or
    /// refuses it; it can never be emptied silently.
    #[test]
    fn point_intervals_are_never_silently_emptied(
        point in -10.0..10.0_f64,
        clamp in -20.0..20.0_f64,
    ) {
        let mut interval = Interval::new(point, point);
        let x = Vector::from_slice(&[1.0]);
        let _ = interval.cut_below(&x, clamp);
        let _ = interval.cut_above(&x, clamp);
        prop_assert_eq!(interval.lo(), point);
        prop_assert_eq!(interval.hi(), point);
        prop_assert!(interval.contains(&Vector::from_slice(&[point])));
    }
}
