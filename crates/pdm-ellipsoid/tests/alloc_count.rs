//! Pins the allocation-free hot path: after one warm-up round populates the
//! ellipsoid's scratch buffers, steady-state support queries and cut updates
//! must perform **zero** heap allocations.
//!
//! The whole measurement lives in a single `#[test]` — the counting
//! allocator is process-global, so concurrent tests in the same binary would
//! race the counter.  `unsafe` is confined to the thin `GlobalAlloc`
//! forwarding shims below; the crate under test itself denies unsafe code.

use pdm_ellipsoid::{Ellipsoid, KnowledgeSet};
use pdm_linalg::Vector;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every allocation and reallocation routed through the system
/// allocator.  Deallocations are free-running (releasing scratch capacity is
/// fine; *acquiring* any on the hot path is the regression).
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// pdm-lint: allow(unsafe-requires-waiver) reason="test-only counting allocator delegating to System; GlobalAlloc is an unsafe trait by definition"
unsafe impl GlobalAlloc for CountingAllocator {
    // pdm-lint: allow(unsafe-requires-waiver) reason="signature required by the GlobalAlloc trait"
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // pdm-lint: allow(unsafe-requires-waiver) reason="forwards the caller contract unchanged to System.alloc"
        unsafe { System.alloc(layout) }
    }

    // pdm-lint: allow(unsafe-requires-waiver) reason="signature required by the GlobalAlloc trait"
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // pdm-lint: allow(unsafe-requires-waiver) reason="forwards the caller contract unchanged to System.dealloc"
        unsafe { System.dealloc(ptr, layout) }
    }

    // pdm-lint: allow(unsafe-requires-waiver) reason="signature required by the GlobalAlloc trait"
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // pdm-lint: allow(unsafe-requires-waiver) reason="forwards the caller contract unchanged to System.realloc"
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn steady_state_cut_rounds_do_not_allocate() {
    let dim = 8;
    let mut e = Ellipsoid::ball(dim, 2.0);
    // Directions are prepared up front — a serving driver owns its feature
    // buffers; the property under test is the *ellipsoid's* hot path.
    let directions: Vec<Vector> = (0..16)
        .map(|i| {
            Vector::from_fn(dim, |j| {
                let v = ((i * dim + j) as f64).sin();
                if v.abs() < 0.05 {
                    0.3
                } else {
                    v
                }
            })
        })
        .collect();

    // Warm-up: the first query/cut round acquires the scratch capacity (the
    // `A x` buffer plus the staged centre/shape), and the first few swaps
    // let the staged buffers reach their steady sizes.
    for direction in directions.iter().take(4) {
        let (lo, hi) = e.support_bounds_mut(direction);
        let mid = 0.5 * (lo + hi);
        e.cut_below(direction, mid);
        e.cut_above(direction, lo - 0.25 * (hi - lo));
    }

    // Steady state: every branch of the hot path — support queries, central
    // cuts from both sides, rejected shallow cuts, rejected infeasible cuts
    // — without a single allocation.
    let mut sink = 0.0;
    let mut applied = 0usize;
    let before = allocations();
    for round in 0..64 {
        let direction = &directions[round % directions.len()];
        let (lo, hi) = e.support_bounds_mut(direction);
        sink += lo + hi;
        let mid = 0.5 * (lo + hi);
        let outcome = if round % 2 == 0 {
            e.cut_below(direction, mid)
        } else {
            e.cut_above(direction, mid)
        };
        if outcome.is_updated() {
            applied += 1;
        }
        // A rejected (out-of-range) cut still walks the early-exit path.
        e.cut_below(direction, hi + 1.0);
    }
    let after = allocations();

    assert_eq!(
        after - before,
        0,
        "the steady-state query/cut loop must not allocate \
         (counted {} allocations over 64 rounds)",
        after - before
    );
    assert!(applied > 0, "the loop must actually exercise live cuts");
    assert!(sink.is_finite(), "support bounds stayed finite");
}
