//! Synthetic stand-in for the Avazu mobile ad click dataset.
//!
//! The impression-pricing experiment (Fig. 5(c)) needs categorical ad-display
//! records whose click labels follow a *sparse* logistic model over hashed
//! one-hot features: the paper reports only ~20 non-zero weights after
//! FTRL-Proximal training at hashing dimensions 128 and 1024.  The generator
//! plants exactly that structure: every record is a tuple of categorical
//! fields; a small subset of (field, value) pairs carries a non-zero logit
//! contribution; clicks are Bernoulli draws from the resulting CTR.

use pdm_linalg::sampling;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The categorical fields of an impression record, in order.
pub const FIELDS: [&str; 8] = [
    "site_id",
    "app_id",
    "device_model",
    "device_type",
    "banner_pos",
    "site_category",
    "connection_type",
    "hour_of_day",
];

/// Number of distinct values per field (same order as [`FIELDS`]).
pub const FIELD_CARDINALITIES: [usize; 8] = [400, 300, 500, 5, 7, 25, 4, 24];

/// One ad-display record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Impression {
    /// Record identifier.
    pub id: u64,
    /// Categorical value index per field (same order as [`FIELDS`]).
    pub field_values: Vec<u32>,
    /// Whether the impression was clicked.
    pub clicked: bool,
}

impl Impression {
    /// Produces the string tokens (`field=value`) that the hashing encoder
    /// consumes.
    #[must_use]
    pub fn tokens(&self) -> Vec<String> {
        self.field_values
            .iter()
            .enumerate()
            .map(|(i, v)| format!("{}={}", FIELDS[i], v))
            .collect()
    }
}

/// Seeded generator for Avazu-like click logs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AvazuGenerator {
    /// Number of impressions to generate.
    pub num_impressions: usize,
    /// Number of (field, value) pairs that carry a non-zero logit weight.
    pub active_tokens: usize,
    /// Base logit (controls the overall CTR level; the real dataset's CTR is
    /// ≈ 17 %).
    pub base_logit: f64,
}

impl Default for AvazuGenerator {
    fn default() -> Self {
        Self {
            num_impressions: 100_000,
            active_tokens: 22,
            base_logit: -1.8,
        }
    }
}

/// The ground truth planted by the generator: which tokens matter and by how
/// much.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlantedCtrModel {
    /// `(field index, value index, logit weight)` triples.
    pub active: Vec<(usize, u32, f64)>,
    /// The base logit added to every impression.
    pub base_logit: f64,
}

impl PlantedCtrModel {
    /// The logit of an impression under the planted model.
    #[must_use]
    pub fn logit(&self, impression_values: &[u32]) -> f64 {
        let mut z = self.base_logit;
        for &(field, value, weight) in &self.active {
            if impression_values.get(field).copied() == Some(value) {
                z += weight;
            }
        }
        z
    }

    /// The click-through rate of an impression under the planted model.
    #[must_use]
    pub fn ctr(&self, impression_values: &[u32]) -> f64 {
        let z = self.logit(impression_values);
        1.0 / (1.0 + (-z).exp())
    }
}

impl AvazuGenerator {
    /// Creates a generator.
    ///
    /// # Panics
    /// Panics when `num_impressions == 0` or `active_tokens == 0`.
    #[must_use]
    pub fn new(num_impressions: usize, active_tokens: usize, base_logit: f64) -> Self {
        assert!(num_impressions > 0 && active_tokens > 0);
        Self {
            num_impressions,
            active_tokens,
            base_logit,
        }
    }

    /// Generates the impressions and returns them together with the planted
    /// ground-truth CTR model.
    #[must_use]
    pub fn generate(&self, seed: u64) -> (Vec<Impression>, PlantedCtrModel) {
        let mut rng = StdRng::seed_from_u64(seed);
        // Plant the sparse ground truth: favour low-cardinality fields so the
        // active tokens actually recur in the data.
        let mut active = Vec::with_capacity(self.active_tokens);
        for k in 0..self.active_tokens {
            let field = [3usize, 4, 5, 6, 7, 0, 1][k % 7];
            let value = rng.gen_range(0..FIELD_CARDINALITIES[field]) as u32;
            let weight = sampling::normal(&mut rng, 0.0, 1.2);
            active.push((field, value, weight));
        }
        let model = PlantedCtrModel {
            active,
            base_logit: self.base_logit,
        };

        let impressions = (0..self.num_impressions)
            .map(|id| {
                let field_values: Vec<u32> = FIELD_CARDINALITIES
                    .iter()
                    .map(|&card| rng.gen_range(0..card) as u32)
                    .collect();
                let ctr = model.ctr(&field_values);
                let clicked = rng.gen::<f64>() < ctr;
                Impression {
                    id: id as u64,
                    field_values,
                    clicked,
                }
            })
            .collect();
        (impressions, model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let g = AvazuGenerator::new(500, 10, -1.8);
        assert_eq!(g.generate(3), g.generate(3));
    }

    #[test]
    fn field_values_respect_cardinalities() {
        let (impressions, _) = AvazuGenerator::new(1_000, 15, -1.8).generate(1);
        for imp in &impressions {
            assert_eq!(imp.field_values.len(), FIELDS.len());
            for (i, &v) in imp.field_values.iter().enumerate() {
                assert!((v as usize) < FIELD_CARDINALITIES[i]);
            }
        }
    }

    #[test]
    fn overall_ctr_is_realistic() {
        let (impressions, _) = AvazuGenerator::default_small().generate(2);
        let ctr =
            impressions.iter().filter(|i| i.clicked).count() as f64 / impressions.len() as f64;
        // The real dataset's CTR is ≈ 0.17; accept a broad band.
        assert!((0.05..=0.4).contains(&ctr), "overall CTR was {ctr}");
    }

    #[test]
    fn planted_model_is_sparse_and_predictive() {
        let (impressions, model) = AvazuGenerator::new(20_000, 12, -1.8).generate(4);
        assert_eq!(model.active.len(), 12);
        // Impressions whose planted CTR is high click more often than ones
        // whose planted CTR is low.
        let mut high = (0usize, 0usize);
        let mut low = (0usize, 0usize);
        for imp in &impressions {
            let ctr = model.ctr(&imp.field_values);
            if ctr > 0.4 {
                high.0 += usize::from(imp.clicked);
                high.1 += 1;
            } else if ctr < 0.12 {
                low.0 += usize::from(imp.clicked);
                low.1 += 1;
            }
        }
        if high.1 > 20 && low.1 > 20 {
            let high_rate = high.0 as f64 / high.1 as f64;
            let low_rate = low.0 as f64 / low.1 as f64;
            assert!(high_rate > low_rate, "{high_rate} vs {low_rate}");
        }
    }

    #[test]
    fn tokens_are_field_value_pairs() {
        let imp = Impression {
            id: 0,
            field_values: vec![1, 2, 3, 0, 1, 2, 3, 12],
            clicked: false,
        };
        let tokens = imp.tokens();
        assert_eq!(tokens.len(), FIELDS.len());
        assert_eq!(tokens[0], "site_id=1");
        assert_eq!(tokens[7], "hour_of_day=12");
    }

    impl AvazuGenerator {
        fn default_small() -> Self {
            Self::new(5_000, 22, -1.8)
        }
    }
}
