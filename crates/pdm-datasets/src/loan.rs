//! Synthetic loan-application records for the paper's loan-pricing extension
//! (Section IV-B).
//!
//! A financial institution quotes an interest rate to a borrower, who accepts
//! or walks away; the paper notes the rate is well captured by a linear or
//! log-log model of the borrower's situation.  The generator plants a
//! log-log ground truth: the log interest rate is linear in the logs of the
//! credit score, income, loan amount, and debt-to-income ratio.

use pdm_linalg::sampling;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Employment status of a borrower.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EmploymentStatus {
    /// Salaried employee.
    Employed,
    /// Self-employed.
    SelfEmployed,
    /// Not currently employed.
    Unemployed,
    /// Retired.
    Retired,
}

/// One loan application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoanApplication {
    /// Application identifier.
    pub id: u64,
    /// FICO-style credit score in `[300, 850]`.
    pub credit_score: f64,
    /// Annual income in dollars.
    pub annual_income: f64,
    /// Requested loan amount in dollars.
    pub loan_amount: f64,
    /// Debt-to-income ratio in `(0, 1]`.
    pub debt_to_income: f64,
    /// Years with the current employer.
    pub employment_years: f64,
    /// Employment status.
    pub employment_status: EmploymentStatus,
    /// The annual interest rate (fraction, e.g. 0.08) the institution would
    /// quote — the regression target.
    pub interest_rate: f64,
}

/// Seeded generator for loan applications.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoanGenerator {
    /// Number of applications to generate.
    pub num_applications: usize,
    /// Residual noise on the log interest rate.
    pub noise_std: f64,
}

impl Default for LoanGenerator {
    fn default() -> Self {
        Self {
            num_applications: 20_000,
            noise_std: 0.08,
        }
    }
}

impl LoanGenerator {
    /// Creates a generator.
    ///
    /// # Panics
    /// Panics when `num_applications == 0` or the noise is negative.
    #[must_use]
    pub fn new(num_applications: usize, noise_std: f64) -> Self {
        assert!(num_applications > 0 && noise_std >= 0.0);
        Self {
            num_applications,
            noise_std,
        }
    }

    /// Generates the applications deterministically from the seed.
    #[must_use]
    pub fn generate(&self, seed: u64) -> Vec<LoanApplication> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..self.num_applications)
            .map(|id| {
                let credit_score = sampling::uniform(&mut rng, 520.0, 830.0);
                let annual_income = 25_000.0 * (sampling::uniform(&mut rng, 0.0, 1.6)).exp();
                let loan_amount = 4_000.0 * (sampling::uniform(&mut rng, 0.0, 2.2)).exp();
                let debt_to_income = sampling::uniform(&mut rng, 0.05, 0.6);
                let employment_years = sampling::uniform(&mut rng, 0.0, 25.0);
                let employment_status = match rng.gen_range(0..10) {
                    0..=6 => EmploymentStatus::Employed,
                    7..=8 => EmploymentStatus::SelfEmployed,
                    9 => EmploymentStatus::Retired,
                    _ => EmploymentStatus::Unemployed,
                };
                // Planted log-log ground truth: better credit and income lower
                // the rate, larger loans and higher leverage raise it.
                let log_rate = 2.2 - 0.75 * credit_score.ln() + 0.12 * loan_amount.ln()
                    - 0.10 * annual_income.ln()
                    + 0.20 * debt_to_income.ln().abs().recip().min(1.0)
                    + 0.15 * debt_to_income
                    + sampling::normal(&mut rng, 0.0, self.noise_std);
                let interest_rate = log_rate.exp().clamp(0.03, 0.36);
                LoanApplication {
                    id: id as u64,
                    credit_score,
                    annual_income,
                    loan_amount,
                    debt_to_income,
                    employment_years,
                    employment_status,
                    interest_rate,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let g = LoanGenerator::new(200, 0.05);
        assert_eq!(g.generate(9), g.generate(9));
    }

    #[test]
    fn fields_are_in_range() {
        for app in LoanGenerator::new(1_000, 0.05).generate(1) {
            assert!((300.0..=850.0).contains(&app.credit_score));
            assert!(app.annual_income > 0.0);
            assert!(app.loan_amount > 0.0);
            assert!((0.0..=1.0).contains(&app.debt_to_income));
            assert!((0.03..=0.36).contains(&app.interest_rate));
        }
    }

    #[test]
    fn better_credit_scores_get_lower_rates_on_average() {
        let apps = LoanGenerator::new(5_000, 0.05).generate(2);
        let avg = |pred: &dyn Fn(&LoanApplication) -> bool| {
            let subset: Vec<f64> = apps
                .iter()
                .filter(|a| pred(a))
                .map(|a| a.interest_rate)
                .collect();
            subset.iter().sum::<f64>() / subset.len() as f64
        };
        let good = avg(&|a| a.credit_score > 780.0);
        let poor = avg(&|a| a.credit_score < 580.0);
        assert!(
            good < poor,
            "good-credit rate {good} vs poor-credit rate {poor}"
        );
    }

    #[test]
    fn larger_loans_carry_higher_rates_on_average() {
        let apps = LoanGenerator::new(5_000, 0.05).generate(3);
        let median_amount = {
            let mut amounts: Vec<f64> = apps.iter().map(|a| a.loan_amount).collect();
            amounts.sort_by(|a, b| a.partial_cmp(b).unwrap());
            amounts[amounts.len() / 2]
        };
        let avg = |big: bool| {
            let subset: Vec<f64> = apps
                .iter()
                .filter(|a| (a.loan_amount > median_amount) == big)
                .map(|a| a.interest_rate)
                .collect();
            subset.iter().sum::<f64>() / subset.len() as f64
        };
        assert!(avg(true) > avg(false));
    }
}
