//! # pdm-datasets
//!
//! Seeded synthetic stand-ins for the three proprietary real-world datasets
//! the paper evaluates on, plus the loan-application scenario from its
//! extensions section:
//!
//! | paper dataset | generator | role in the evaluation |
//! |---------------|-----------|------------------------|
//! | MovieLens 20M ratings | [`movielens::MovieLensGenerator`] | population of data owners whose privacy compensations form the query features (Fig. 4, 5(a), Table I) |
//! | Airbnb US-city listings | [`airbnb::AirbnbGenerator`] | listings with categorical/numeric features and log-price targets for the log-linear hedonic model (Fig. 5(b)) |
//! | Avazu CTR logs | [`avazu::AvazuGenerator`] | categorical impression records with click labels for the sparse logistic model (Fig. 5(c)) |
//! | (extension) loan applications | [`loan::LoanGenerator`] | borrower records with interest-rate targets for the log-log model |
//!
//! Every generator is deterministic given a seed, documents which structural
//! properties of the original dataset it preserves, and exposes the ground
//! truth it planted so experiments can verify the learners recover it.
//! The substitution rationale is recorded in `DESIGN.md` §3.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod airbnb;
pub mod avazu;
pub mod loan;
pub mod movielens;

pub use airbnb::{AirbnbGenerator, AirbnbListing, CancellationPolicy, PropertyType, RoomType};
pub use avazu::{AvazuGenerator, Impression};
pub use loan::{EmploymentStatus, LoanApplication, LoanGenerator};
pub use movielens::{MovieLensGenerator, Rating, RatingDataset};
