//! Synthetic stand-in for the Airbnb "listings in major US cities" dataset.
//!
//! The accommodation-rental experiment (Fig. 5(b)) needs listing records with
//! a mix of categorical and numeric fields whose *log price* is approximately
//! linear in the encoded features plus residual noise.  The generator plants
//! a hedonic ground-truth model — per-city and per-room-type premiums,
//! per-bedroom/bathroom/amenity increments, review and host-quality effects —
//! and emits records whose log price is that model's output plus Gaussian
//! noise, mirroring the 0.226 test MSE the paper reports after fitting.

use pdm_linalg::sampling;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The six cities covered by the original dataset.
pub const CITIES: [&str; 6] = ["NYC", "LA", "SF", "DC", "Chicago", "Boston"];

/// Property type of a listing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PropertyType {
    /// A whole apartment.
    Apartment,
    /// A detached house.
    House,
    /// A condominium.
    Condo,
    /// A townhouse.
    Townhouse,
    /// Anything else (lofts, boats, …).
    Other,
}

/// Room type of a listing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RoomType {
    /// The entire home or apartment.
    EntireHome,
    /// A private room.
    PrivateRoom,
    /// A shared room.
    SharedRoom,
}

/// Cancellation policy of a listing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CancellationPolicy {
    /// Flexible.
    Flexible,
    /// Moderate.
    Moderate,
    /// Strict.
    Strict,
}

/// One listing record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AirbnbListing {
    /// Listing identifier.
    pub id: u64,
    /// City (one of [`CITIES`]).
    pub city: String,
    /// Property type.
    pub property_type: PropertyType,
    /// Room type.
    pub room_type: RoomType,
    /// Cancellation policy.
    pub cancellation_policy: CancellationPolicy,
    /// Maximum number of guests.
    pub accommodates: u32,
    /// Number of bedrooms.
    pub bedrooms: u32,
    /// Number of bathrooms (can be fractional, e.g. 1.5).
    pub bathrooms: f64,
    /// Number of beds.
    pub beds: u32,
    /// Number of listed amenities.
    pub amenities_count: u32,
    /// Review score on `[0, 100]` (missing reviews are encoded as 0).
    pub review_score: f64,
    /// Host response rate on `[0, 1]`.
    pub host_response_rate: f64,
    /// Whether the host is a verified "superhost".
    pub superhost: bool,
    /// Natural logarithm of the nightly price (the regression target).
    pub log_price: f64,
}

/// Seeded generator for Airbnb-like listings.
///
/// Real listing inventories are highly redundant: most records are minor
/// variations of a modest number of archetypes ("entire-home one-bedroom
/// apartment in NYC with ~30 amenities and a 95-point review score", …).
/// The generator therefore first draws `num_prototypes` archetypes and then
/// emits each listing as a jittered copy of a random archetype.  This
/// redundancy is what lets the online pricing mechanism converge within the
/// 74k-round horizon, exactly as it does on the real dataset.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AirbnbGenerator {
    /// Number of listings to generate (the real dataset has 74,111).
    pub num_listings: usize,
    /// Standard deviation of the residual noise on the log price.
    pub noise_std: f64,
    /// Number of listing archetypes the inventory is built from.
    pub num_prototypes: usize,
}

impl Default for AirbnbGenerator {
    fn default() -> Self {
        Self {
            num_listings: 74_111,
            noise_std: 0.45,
            num_prototypes: 40,
        }
    }
}

impl AirbnbGenerator {
    /// Creates a generator with the default archetype count.
    ///
    /// # Panics
    /// Panics when `num_listings == 0` or the noise is negative.
    #[must_use]
    pub fn new(num_listings: usize, noise_std: f64) -> Self {
        assert!(num_listings > 0, "need at least one listing");
        assert!(noise_std >= 0.0, "noise must be non-negative");
        Self {
            num_listings,
            noise_std,
            num_prototypes: 40,
        }
    }

    /// Overrides the number of listing archetypes.
    ///
    /// # Panics
    /// Panics when `num_prototypes == 0`.
    #[must_use]
    pub fn with_prototypes(mut self, num_prototypes: usize) -> Self {
        assert!(num_prototypes > 0, "need at least one prototype");
        self.num_prototypes = num_prototypes;
        self
    }

    /// Generates the listings deterministically from the seed.
    #[must_use]
    pub fn generate(&self, seed: u64) -> Vec<AirbnbListing> {
        let mut rng = StdRng::seed_from_u64(seed);
        let prototypes: Vec<AirbnbListing> = (0..self.num_prototypes)
            .map(|id| self.one_listing(id as u64, &mut rng))
            .collect();
        (0..self.num_listings)
            .map(|id| {
                let base = &prototypes[rng.gen_range(0..prototypes.len())];
                self.jittered(id as u64, base, &mut rng)
            })
            .collect()
    }

    /// Emits a listing that differs from its archetype only in the soft
    /// fields (review score, response rate, amenity count) and in the price
    /// noise.
    fn jittered(&self, id: u64, base: &AirbnbListing, rng: &mut StdRng) -> AirbnbListing {
        let mut listing = base.clone();
        listing.id = id;
        listing.review_score = if listing.review_score == 0.0 {
            0.0
        } else {
            (listing.review_score + sampling::normal(rng, 0.0, 2.0)).clamp(60.0, 100.0)
        };
        listing.host_response_rate =
            (listing.host_response_rate + sampling::normal(rng, 0.0, 0.03)).clamp(0.5, 1.0);
        let amenity_jitter = rng.gen_range(0..=4i64) - 2;
        listing.amenities_count =
            (i64::from(listing.amenities_count) + amenity_jitter).clamp(3, 40) as u32;
        listing.log_price =
            self.ground_truth_log_price(&listing) + sampling::normal(rng, 0.0, self.noise_std);
        listing
    }

    /// The planted hedonic value of a listing (without residual noise).
    fn ground_truth_log_price(&self, listing: &AirbnbListing) -> f64 {
        let city_idx = CITIES.iter().position(|c| *c == listing.city).unwrap_or(0);
        let city_premium = [0.55, 0.45, 0.65, 0.35, 0.20, 0.30][city_idx];
        let property_premium = match listing.property_type {
            PropertyType::Apartment => 0.05,
            PropertyType::House => 0.12,
            PropertyType::Condo => 0.10,
            PropertyType::Townhouse => 0.08,
            PropertyType::Other => 0.0,
        };
        let room_premium = match listing.room_type {
            RoomType::EntireHome => 0.60,
            RoomType::PrivateRoom => 0.15,
            RoomType::SharedRoom => 0.0,
        };
        let policy_premium = match listing.cancellation_policy {
            CancellationPolicy::Flexible => 0.0,
            CancellationPolicy::Moderate => 0.02,
            CancellationPolicy::Strict => 0.05,
        };
        3.4 + city_premium
            + property_premium
            + room_premium
            + policy_premium
            + 0.16 * f64::from(listing.bedrooms)
            + 0.08 * listing.bathrooms
            + 0.05 * f64::from(listing.accommodates)
            + 0.02 * f64::from(listing.beds)
            + 0.004 * f64::from(listing.amenities_count)
            + 0.003 * listing.review_score
            + 0.10 * listing.host_response_rate
            + if listing.superhost { 0.06 } else { 0.0 }
    }

    fn one_listing(&self, id: u64, rng: &mut StdRng) -> AirbnbListing {
        let city_idx = rng.gen_range(0..CITIES.len());
        let property_type = match rng.gen_range(0..10) {
            0..=4 => PropertyType::Apartment,
            5..=6 => PropertyType::House,
            7 => PropertyType::Condo,
            8 => PropertyType::Townhouse,
            _ => PropertyType::Other,
        };
        let room_type = match rng.gen_range(0..10) {
            0..=5 => RoomType::EntireHome,
            6..=8 => RoomType::PrivateRoom,
            _ => RoomType::SharedRoom,
        };
        let cancellation_policy = match rng.gen_range(0..3) {
            0 => CancellationPolicy::Flexible,
            1 => CancellationPolicy::Moderate,
            _ => CancellationPolicy::Strict,
        };
        let bedrooms = rng.gen_range(0..=4u32);
        let accommodates = 1 + bedrooms * 2 + rng.gen_range(0..=2u32);
        let bathrooms = 1.0 + 0.5 * f64::from(rng.gen_range(0..=3u32));
        let beds = bedrooms.max(1) + rng.gen_range(0..=1u32);
        let amenities_count = rng.gen_range(3..=40u32);
        let review_score = if rng.gen::<f64>() < 0.1 {
            0.0
        } else {
            sampling::uniform(rng, 70.0, 100.0)
        };
        let host_response_rate = sampling::uniform(rng, 0.5, 1.0);
        let superhost = rng.gen::<f64>() < 0.2;

        let mut listing = AirbnbListing {
            id,
            city: CITIES[city_idx].to_owned(),
            property_type,
            room_type,
            cancellation_policy,
            accommodates,
            bedrooms,
            bathrooms,
            beds,
            amenities_count,
            review_score,
            host_response_rate,
            superhost,
            log_price: 0.0,
        };
        listing.log_price =
            self.ground_truth_log_price(&listing) + sampling::normal(rng, 0.0, self.noise_std);
        listing
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Vec<AirbnbListing> {
        AirbnbGenerator::new(2_000, 0.3).generate(5)
    }

    #[test]
    fn generation_is_deterministic() {
        let a = AirbnbGenerator::new(100, 0.3).generate(1);
        let b = AirbnbGenerator::new(100, 0.3).generate(1);
        assert_eq!(a, b);
    }

    #[test]
    fn fields_are_in_range() {
        for listing in small() {
            assert!(CITIES.contains(&listing.city.as_str()));
            assert!(listing.accommodates >= 1);
            assert!(listing.bathrooms >= 1.0);
            assert!(listing.beds >= 1);
            assert!((0.0..=100.0).contains(&listing.review_score));
            assert!((0.5..=1.0).contains(&listing.host_response_rate));
            assert!(listing.log_price.is_finite());
        }
    }

    #[test]
    fn log_prices_are_plausible_nightly_rates() {
        let listings = small();
        let mean_log = listings.iter().map(|l| l.log_price).sum::<f64>() / listings.len() as f64;
        // e^{4.5..5.7} ≈ 90..300 dollars per night.
        assert!(
            (4.3..=6.0).contains(&mean_log),
            "mean log price was {mean_log}"
        );
    }

    #[test]
    fn entire_homes_cost_more_than_shared_rooms_on_average() {
        let listings = small();
        let avg = |room: RoomType| {
            let subset: Vec<f64> = listings
                .iter()
                .filter(|l| l.room_type == room)
                .map(|l| l.log_price)
                .collect();
            subset.iter().sum::<f64>() / subset.len() as f64
        };
        assert!(avg(RoomType::EntireHome) > avg(RoomType::SharedRoom) + 0.3);
    }

    #[test]
    fn more_bedrooms_cost_more_on_average() {
        let listings = small();
        let avg = |bedrooms: u32| {
            let subset: Vec<f64> = listings
                .iter()
                .filter(|l| l.bedrooms == bedrooms)
                .map(|l| l.log_price)
                .collect();
            if subset.is_empty() {
                f64::NAN
            } else {
                subset.iter().sum::<f64>() / subset.len() as f64
            }
        };
        assert!(avg(3) > avg(0));
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_listings_rejected() {
        let _ = AirbnbGenerator::new(0, 0.1);
    }
}
