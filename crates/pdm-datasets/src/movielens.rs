//! Synthetic stand-in for the MovieLens 20M rating dataset.
//!
//! The pricing experiments never look at the rating *contents*; they only
//! need a heterogeneous population of data owners (the rating users), each
//! with a handful of bounded records, so that per-query privacy compensations
//! vary across owners.  The generator reproduces those structural properties:
//! a configurable number of users, a long-tailed number of ratings per user,
//! ratings on the 0.5–5.0 star scale in half-star steps, and increasing
//! timestamps.

use pdm_linalg::sampling;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One rating record (user, movie, stars, timestamp).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rating {
    /// Rating user (the data owner).
    pub user_id: u64,
    /// Rated movie.
    pub movie_id: u64,
    /// Star rating in half-star steps on `[0.5, 5.0]`.
    pub stars: f64,
    /// Seconds since an arbitrary epoch; non-decreasing across the dataset.
    pub timestamp: u64,
}

/// A generated rating dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RatingDataset {
    /// Number of distinct users.
    pub num_users: usize,
    /// Number of distinct movies.
    pub num_movies: usize,
    /// All rating records.
    pub ratings: Vec<Rating>,
}

impl RatingDataset {
    /// Groups the star values by user (index = user id).
    #[must_use]
    pub fn ratings_by_user(&self) -> Vec<Vec<f64>> {
        let mut per_user = vec![Vec::new(); self.num_users];
        for rating in &self.ratings {
            per_user[rating.user_id as usize].push(rating.stars);
        }
        per_user
    }

    /// Mean star rating over the whole dataset (zero when empty).
    #[must_use]
    pub fn mean_rating(&self) -> f64 {
        if self.ratings.is_empty() {
            return 0.0;
        }
        self.ratings.iter().map(|r| r.stars).sum::<f64>() / self.ratings.len() as f64
    }
}

/// Seeded generator for [`RatingDataset`]s.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MovieLensGenerator {
    /// Number of rating users to generate.
    pub num_users: usize,
    /// Number of movies in the catalogue.
    pub num_movies: usize,
    /// Average number of ratings per user (the per-user count is geometric-ish
    /// around this value, giving the long tail of the real dataset).
    pub mean_ratings_per_user: usize,
}

impl Default for MovieLensGenerator {
    fn default() -> Self {
        Self {
            num_users: 1_000,
            num_movies: 500,
            mean_ratings_per_user: 8,
        }
    }
}

impl MovieLensGenerator {
    /// Creates a generator.
    ///
    /// # Panics
    /// Panics when any parameter is zero.
    #[must_use]
    pub fn new(num_users: usize, num_movies: usize, mean_ratings_per_user: usize) -> Self {
        assert!(num_users > 0 && num_movies > 0 && mean_ratings_per_user > 0);
        Self {
            num_users,
            num_movies,
            mean_ratings_per_user,
        }
    }

    /// Generates the dataset deterministically from the seed.
    #[must_use]
    pub fn generate(&self, seed: u64) -> RatingDataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ratings = Vec::new();
        let mut timestamp = 789_652_009u64; // the real dataset starts in 1995
        for user in 0..self.num_users {
            // Long-tailed per-user activity: 1 + geometric-ish draw.
            let count = 1
                + (sampling::uniform(&mut rng, 0.0, 1.0) * 2.0 * self.mean_ratings_per_user as f64)
                    as usize;
            // Per-user bias so owners are heterogeneous.
            let bias = sampling::normal(&mut rng, 0.0, 0.7);
            for _ in 0..count {
                let movie_id = rng.gen_range(0..self.num_movies) as u64;
                let raw = 3.5 + bias + sampling::normal(&mut rng, 0.0, 1.0);
                // Snap to the half-star grid and clamp to the legal range.
                let stars = (raw * 2.0).round().clamp(1.0, 10.0) / 2.0;
                timestamp += rng.gen_range(1..1_000u64);
                ratings.push(Rating {
                    user_id: user as u64,
                    movie_id,
                    stars,
                    timestamp,
                });
            }
        }
        RatingDataset {
            num_users: self.num_users,
            num_movies: self.num_movies,
            ratings,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_given_seed() {
        let generator = MovieLensGenerator::new(50, 40, 5);
        let a = generator.generate(7);
        let b = generator.generate(7);
        assert_eq!(a, b);
        let c = generator.generate(8);
        assert_ne!(a, c);
    }

    #[test]
    fn ratings_respect_the_star_scale() {
        let dataset = MovieLensGenerator::new(200, 100, 6).generate(1);
        assert!(!dataset.ratings.is_empty());
        for rating in &dataset.ratings {
            assert!(rating.stars >= 0.5 && rating.stars <= 5.0);
            // Half-star grid.
            assert!(((rating.stars * 2.0) - (rating.stars * 2.0).round()).abs() < 1e-9);
            assert!((rating.movie_id as usize) < 100);
            assert!((rating.user_id as usize) < 200);
        }
        // Timestamps non-decreasing.
        for pair in dataset.ratings.windows(2) {
            assert!(pair[0].timestamp <= pair[1].timestamp);
        }
    }

    #[test]
    fn every_user_contributes_at_least_one_rating() {
        let dataset = MovieLensGenerator::new(120, 30, 3).generate(2);
        let by_user = dataset.ratings_by_user();
        assert_eq!(by_user.len(), 120);
        assert!(by_user.iter().all(|r| !r.is_empty()));
    }

    #[test]
    fn mean_rating_is_plausible() {
        let dataset = MovieLensGenerator::new(500, 200, 8).generate(3);
        let mean = dataset.mean_rating();
        // The real MovieLens mean is ≈ 3.5 stars.
        assert!((2.8..=4.2).contains(&mean), "mean rating was {mean}");
    }

    #[test]
    fn empty_dataset_mean_is_zero() {
        let dataset = RatingDataset {
            num_users: 1,
            num_movies: 1,
            ratings: vec![],
        };
        assert_eq!(dataset.mean_rating(), 0.0);
    }
}
