//! Bounded ring-buffer event journal for post-mortem dumps.
//!
//! A [`EventJournal`] keeps the last `capacity` labelled events (checkpoint
//! writes, restores, paging storms — whatever the embedder considers worth
//! a post-mortem trail) with a monotone sequence number, so a scrape taken
//! after an incident shows what the process did most recently without the
//! cost or non-determinism of full logging.  The journal is process-local
//! scratch: it is never part of the deterministic dump and never persisted.

use pdm_linalg::Json;
use std::collections::VecDeque;

/// One journal entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Monotone sequence number (counts every event ever pushed, including
    /// those the ring has since evicted).
    pub seq: u64,
    /// Static event label, e.g. `"wal.checkpoint"`.
    pub label: &'static str,
    /// One `u64` of event payload (a segment number, a tenant count, …).
    pub value: u64,
}

/// A bounded, overwrite-oldest event ring.
#[derive(Debug, Clone, Default)]
pub struct EventJournal {
    capacity: usize,
    next_seq: u64,
    events: VecDeque<Event>,
}

impl EventJournal {
    /// A journal holding at most `capacity` events; capacity 0 disables
    /// recording entirely (pushes are counted but not stored).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            capacity,
            next_seq: 0,
            events: VecDeque::with_capacity(capacity.min(1024)),
        }
    }

    /// Appends an event, evicting the oldest once full.
    pub fn push(&mut self, label: &'static str, value: u64) {
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.capacity == 0 {
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
        }
        self.events.push_back(Event { seq, label, value });
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }

    /// Number of retained events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the ring currently holds nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total events ever pushed, including evicted ones.
    #[must_use]
    pub fn pushed(&self) -> u64 {
        self.next_seq
    }

    /// The journal as a JSON array of `{seq, label, value}` objects,
    /// oldest first — the post-mortem dump format.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Arr(
            self.events
                .iter()
                .map(|event| {
                    Json::obj(vec![
                        ("seq", Json::Num(event.seq as f64)),
                        ("label", Json::str(event.label)),
                        ("value", Json::Num(event.value as f64)),
                    ])
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_the_most_recent_events_with_global_seqs() {
        let mut journal = EventJournal::with_capacity(3);
        for value in 0..5u64 {
            journal.push("wal.checkpoint", value);
        }
        assert_eq!(journal.len(), 3);
        assert_eq!(journal.pushed(), 5);
        let seqs: Vec<u64> = journal.events().map(|event| event.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4], "oldest evicted, seqs monotone");
        let rendered = journal.to_json().render();
        assert!(rendered.contains("wal.checkpoint"));
    }

    #[test]
    fn zero_capacity_counts_but_stores_nothing() {
        let mut journal = EventJournal::with_capacity(0);
        journal.push("restore", 1);
        assert!(journal.is_empty());
        assert_eq!(journal.pushed(), 1);
        assert_eq!(journal.to_json().render(), "[]");
    }
}
