//! The metric registry: named counters, gauges, histograms, and spans.
//!
//! A [`MetricRegistry`] is a plain, lock-free value: registration returns a
//! typed handle (a `Vec` index), and recording through a handle is an array
//! write — cheap enough for per-batch accounting on the serving hot path.
//! Concurrency is the caller's problem by design: `pdm-service` keeps one
//! registry per shard (mutated only by the worker currently holding that
//! shard's lock) and folds them together at scrape time with
//! [`MetricRegistry::merge`], in shard-index order.  Because counter and
//! histogram merges are exact integer/`f64` folds in a fixed order, the
//! merged registry is deterministic for a given request stream regardless
//! of worker count.
//!
//! ## Deterministic vs wall-clock entries
//!
//! Every entry carries a `deterministic` flag.  Counters, gauges, and work
//! histograms (batch sizes, items processed) are pure functions of the
//! request stream and are included in the deterministic JSON dump that the
//! determinism harness compares byte-for-byte across worker counts.
//! Wall-clock duration histograms (span timings) are flagged
//! non-deterministic and appear only in the full dump and the Prometheus
//! exposition — the same segregation the bench reports apply to their
//! `perf` sections.

use crate::hist::LogHistogram;
use pdm_linalg::Json;
use std::collections::BTreeMap;
use std::time::Duration;

/// Handle to a registered counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistId(usize);

/// Handle to a span: a wall-clock duration histogram (`<name>.wall_nanos`,
/// non-deterministic) paired with a work histogram (`<name>.work_items`,
/// deterministic).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId {
    wall: HistId,
    work: HistId,
}

#[derive(Debug, Clone)]
struct Entry<T> {
    name: String,
    help: String,
    deterministic: bool,
    value: T,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

/// A registry of named metrics.  See the module docs for the threading and
/// determinism model.
#[derive(Debug, Clone, Default)]
pub struct MetricRegistry {
    counters: Vec<Entry<f64>>,
    gauges: Vec<Entry<f64>>,
    histograms: Vec<Entry<LogHistogram>>,
    index: BTreeMap<String, (Kind, usize)>,
}

impl MetricRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or re-opens) a counter.  Counters are monotone `f64`
    /// accumulators — `f64` rather than `u64` so revenue/ε-style totals fit
    /// the same exposition path as event counts.
    pub fn counter(&mut self, name: &str, help: &str) -> CounterId {
        if let Some(&(kind, slot)) = self.index.get(name) {
            assert!(
                kind == Kind::Counter,
                "{name} already registered as {kind:?}"
            );
            return CounterId(slot);
        }
        let slot = self.counters.len();
        self.counters.push(Entry {
            name: name.to_owned(),
            help: help.to_owned(),
            deterministic: true,
            value: 0.0,
        });
        self.index.insert(name.to_owned(), (Kind::Counter, slot));
        CounterId(slot)
    }

    /// Registers (or re-opens) a gauge — a level, not an accumulator.
    /// Merging registries **sums** gauges, so a scraped gauge reads as the
    /// service-wide level (e.g. total queue depth across shards).
    pub fn gauge(&mut self, name: &str, help: &str) -> GaugeId {
        if let Some(&(kind, slot)) = self.index.get(name) {
            assert!(kind == Kind::Gauge, "{name} already registered as {kind:?}");
            return GaugeId(slot);
        }
        let slot = self.gauges.len();
        self.gauges.push(Entry {
            name: name.to_owned(),
            help: help.to_owned(),
            deterministic: true,
            value: 0.0,
        });
        self.index.insert(name.to_owned(), (Kind::Gauge, slot));
        GaugeId(slot)
    }

    /// Registers (or re-opens) a deterministic histogram over the fixed
    /// log-bucket grid.
    pub fn histogram(&mut self, name: &str, help: &str) -> HistId {
        self.histogram_with(name, help, true)
    }

    /// Registers (or re-opens) a wall-clock histogram: excluded from the
    /// deterministic dump, present in the full dump and the Prometheus
    /// exposition.
    pub fn wall_histogram(&mut self, name: &str, help: &str) -> HistId {
        self.histogram_with(name, help, false)
    }

    fn histogram_with(&mut self, name: &str, help: &str, deterministic: bool) -> HistId {
        if let Some(&(kind, slot)) = self.index.get(name) {
            assert!(
                kind == Kind::Histogram,
                "{name} already registered as {kind:?}"
            );
            return HistId(slot);
        }
        let slot = self.histograms.len();
        self.histograms.push(Entry {
            name: name.to_owned(),
            help: help.to_owned(),
            deterministic,
            value: LogHistogram::new(),
        });
        self.index.insert(name.to_owned(), (Kind::Histogram, slot));
        HistId(slot)
    }

    /// Registers a span: `<name>.wall_nanos` (wall-clock batch durations)
    /// plus `<name>.work_items` (deterministic batch sizes).
    pub fn span(&mut self, name: &str, help: &str) -> SpanId {
        let wall = self.wall_histogram(
            &format!("{name}.wall_nanos"),
            &format!("{help} (wall-clock nanoseconds per recorded batch)"),
        );
        let work = self.histogram(
            &format!("{name}.work_items"),
            &format!("{help} (items per recorded batch)"),
        );
        SpanId { wall, work }
    }

    /// Adds to a counter.
    pub fn inc(&mut self, id: CounterId, by: f64) {
        self.counters[id.0].value += by;
    }

    /// Sets a gauge level.
    pub fn set(&mut self, id: GaugeId, value: f64) {
        self.gauges[id.0].value = value;
    }

    /// Records one histogram observation.
    pub fn observe(&mut self, id: HistId, value: u64) {
        self.histograms[id.0].value.record(value);
    }

    /// Records `n` identical histogram observations in one fold.
    pub fn observe_n(&mut self, id: HistId, value: u64, n: u64) {
        self.histograms[id.0].value.record_n(value, n);
    }

    /// Records one span batch: `elapsed` into the wall histogram, `work`
    /// into the work histogram.
    pub fn record_span(&mut self, id: SpanId, elapsed: Duration, work: u64) {
        let nanos = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        self.histograms[id.wall.0].value.record(nanos);
        self.histograms[id.work.0].value.record(work);
    }

    /// Folds another registry into this one, matching entries by name and
    /// creating any that are missing.  Counters and gauges add, histograms
    /// fold bucket-wise — all exact, so any fold order over per-worker or
    /// per-shard registries yields identical contents.
    pub fn merge(&mut self, other: &Self) {
        for entry in &other.counters {
            let id = self.counter(&entry.name, &entry.help);
            self.inc(id, entry.value);
        }
        for entry in &other.gauges {
            let id = self.gauge(&entry.name, &entry.help);
            self.gauges[id.0].value += entry.value;
        }
        for entry in &other.histograms {
            let id = self.histogram_with(&entry.name, &entry.help, entry.deterministic);
            self.histograms[id.0].value.merge(&entry.value);
        }
    }

    /// Current value of a counter, by name.
    #[must_use]
    pub fn counter_value(&self, name: &str) -> Option<f64> {
        match self.index.get(name) {
            Some(&(Kind::Counter, slot)) => Some(self.counters[slot].value),
            _ => None,
        }
    }

    /// Current level of a gauge, by name.
    #[must_use]
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        match self.index.get(name) {
            Some(&(Kind::Gauge, slot)) => Some(self.gauges[slot].value),
            _ => None,
        }
    }

    /// A histogram, by name.
    #[must_use]
    pub fn histogram_counts(&self, name: &str) -> Option<&LogHistogram> {
        match self.index.get(name) {
            Some(&(Kind::Histogram, slot)) => Some(&self.histograms[slot].value),
            _ => None,
        }
    }

    /// Every span stage present in the registry:
    /// `(stage name, work histogram, wall histogram)`, sorted by name.  A
    /// stage is any `<name>.work_items` histogram; the wall half is absent
    /// if the registry only saw the deterministic dump of a peer.
    #[must_use]
    pub fn span_stages(&self) -> Vec<(String, &LogHistogram, Option<&LogHistogram>)> {
        let mut stages: Vec<(String, &LogHistogram, Option<&LogHistogram>)> = self
            .histograms
            .iter()
            .filter_map(|entry| {
                let stage = entry.name.strip_suffix(".work_items")?;
                let wall = self.histogram_counts(&format!("{stage}.wall_nanos"));
                Some((stage.to_owned(), &entry.value, wall))
            })
            .collect();
        stages.sort_by(|a, b| a.0.cmp(&b.0));
        stages
    }

    /// Renders the registry in Prometheus text exposition format 0.0.4.
    /// Families are sorted by name, so the output is independent of
    /// registration and merge order.
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        crate::prom::render(self)
    }

    /// The registry as a deterministic JSON tree.  With
    /// `deterministic_only`, wall-clock histograms are omitted — this is
    /// the dump the determinism harness compares byte-for-byte across
    /// worker counts.  Entries are sorted by name.
    #[must_use]
    pub fn to_json(&self, deterministic_only: bool) -> Json {
        let mut counters: Vec<(&str, Json)> = self
            .counters
            .iter()
            .map(|entry| (entry.name.as_str(), Json::Num(entry.value)))
            .collect();
        counters.sort_by(|a, b| a.0.cmp(b.0));
        let mut gauges: Vec<(&str, Json)> = self
            .gauges
            .iter()
            .map(|entry| (entry.name.as_str(), Json::Num(entry.value)))
            .collect();
        gauges.sort_by(|a, b| a.0.cmp(b.0));
        let mut histograms: Vec<(&str, Json)> = self
            .histograms
            .iter()
            .filter(|entry| entry.deterministic || !deterministic_only)
            .map(|entry| {
                let buckets = entry
                    .value
                    .nonzero_buckets()
                    .map(|(le, count)| {
                        Json::Arr(vec![Json::Num(le as f64), Json::Num(count as f64)])
                    })
                    .collect();
                (
                    entry.name.as_str(),
                    Json::obj(vec![
                        ("count", Json::Num(entry.value.count() as f64)),
                        ("sum", Json::Num(entry.value.sum_f64())),
                        ("buckets", Json::Arr(buckets)),
                    ]),
                )
            })
            .collect();
        histograms.sort_by(|a, b| a.0.cmp(b.0));
        Json::obj(vec![
            ("counters", Json::obj(counters)),
            ("gauges", Json::obj(gauges)),
            ("histograms", Json::obj(histograms)),
        ])
    }

    pub(crate) fn sorted_counters(&self) -> Vec<(&str, &str, f64)> {
        let mut rows: Vec<(&str, &str, f64)> = self
            .counters
            .iter()
            .map(|entry| (entry.name.as_str(), entry.help.as_str(), entry.value))
            .collect();
        rows.sort_by(|a, b| a.0.cmp(b.0));
        rows
    }

    pub(crate) fn sorted_gauges(&self) -> Vec<(&str, &str, f64)> {
        let mut rows: Vec<(&str, &str, f64)> = self
            .gauges
            .iter()
            .map(|entry| (entry.name.as_str(), entry.help.as_str(), entry.value))
            .collect();
        rows.sort_by(|a, b| a.0.cmp(b.0));
        rows
    }

    pub(crate) fn sorted_histograms(&self) -> Vec<(&str, &str, &LogHistogram)> {
        let mut rows: Vec<(&str, &str, &LogHistogram)> = self
            .histograms
            .iter()
            .map(|entry| (entry.name.as_str(), entry.help.as_str(), &entry.value))
            .collect();
        rows.sort_by(|a, b| a.0.cmp(b.0));
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_record_and_reopening_returns_the_same_slot() {
        let mut reg = MetricRegistry::new();
        let c = reg.counter("quotes_served_total", "Quotes served");
        reg.inc(c, 2.0);
        let again = reg.counter("quotes_served_total", "ignored");
        assert_eq!(c, again);
        reg.inc(again, 1.0);
        assert_eq!(reg.counter_value("quotes_served_total"), Some(3.0));

        let g = reg.gauge("queue.depth", "Queued requests");
        reg.set(g, 7.0);
        assert_eq!(reg.gauge_value("queue.depth"), Some(7.0));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let mut reg = MetricRegistry::new();
        reg.counter("x", "");
        reg.gauge("x", "");
    }

    #[test]
    fn merge_matches_by_name_and_sums() {
        let mut a = MetricRegistry::new();
        let mut b = MetricRegistry::new();
        let ca = a.counter("sales_total", "");
        a.inc(ca, 5.0);
        let cb = b.counter("sales_total", "");
        b.inc(cb, 2.0);
        let only_b = b.counter("shed_total", "");
        b.inc(only_b, 1.0);
        let ga = a.gauge("queue.depth", "");
        a.set(ga, 3.0);
        let gb = b.gauge("queue.depth", "");
        b.set(gb, 4.0);
        let ha = a.histogram("batch", "");
        a.observe_n(ha, 10, 2);
        let hb = b.histogram("batch", "");
        b.observe(hb, 10_000);

        a.merge(&b);
        assert_eq!(a.counter_value("sales_total"), Some(7.0));
        assert_eq!(a.counter_value("shed_total"), Some(1.0));
        assert_eq!(a.gauge_value("queue.depth"), Some(7.0), "gauges sum");
        let h = a.histogram_counts("batch").unwrap();
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 10_020);
    }

    #[test]
    fn spans_feed_both_halves_and_the_deterministic_dump_drops_wall() {
        let mut reg = MetricRegistry::new();
        let span = reg.span("shard.quote", "Posted-price serve segments");
        reg.record_span(span, Duration::from_micros(5), 32);
        reg.record_span(span, Duration::from_micros(9), 64);

        let work = reg.histogram_counts("shard.quote.work_items").unwrap();
        assert_eq!(work.count(), 2);
        assert_eq!(work.sum(), 96);
        let wall = reg.histogram_counts("shard.quote.wall_nanos").unwrap();
        assert_eq!(wall.count(), 2);

        let det = reg.to_json(true).render();
        let full = reg.to_json(false).render();
        assert!(det.contains("shard.quote.work_items"));
        assert!(!det.contains("wall_nanos"), "wall half is wall-clock only");
        assert!(full.contains("shard.quote.wall_nanos"));

        let stages = reg.span_stages();
        assert_eq!(stages.len(), 1);
        assert_eq!(stages[0].0, "shard.quote");
        assert!(stages[0].2.is_some());
    }

    #[test]
    fn json_dump_is_sorted_and_merge_order_independent() {
        let build = |order_flip: bool| {
            let mut parts = Vec::new();
            for seed in 0..3u64 {
                let mut reg = MetricRegistry::new();
                let c = reg.counter("zeta_total", "");
                reg.inc(c, seed as f64);
                let h = reg.histogram("alpha.work_items", "");
                reg.observe(h, seed * 100 + 1);
                parts.push(reg);
            }
            if order_flip {
                parts.reverse();
            }
            let mut merged = MetricRegistry::new();
            for part in &parts {
                merged.merge(part);
            }
            merged.to_json(true).render()
        };
        assert_eq!(build(false), build(true));
    }
}
