//! Mergeable histograms over the fixed log-bucket grid.
//!
//! A [`LogHistogram`] is a vector of integer counts over the
//! [`pdm_linalg::logbucket`] grid (four buckets per octave, upper edges at
//! `2^(k/4)`).  Because every instance shares the same edges, merging two
//! histograms is element-wise `u64` addition — exact, associative, and
//! commutative — so any fold order over any number of workers produces the
//! same counts, and quantile estimates read off the merged counts are
//! deterministic.  This is the property the sampled latency window in
//! `pdm-service` cannot offer (its ring evicts, so merges lose samples).

use pdm_linalg::logbucket::{bucket_index, quantile_rank, BUCKETS, UPPER_EDGES};

/// A histogram of `u64` observations (nanoseconds, item counts) over the
/// fixed base-2^(1/4) grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    counts: Vec<u64>,
    total: u64,
    /// Sum of raw observed values; `u128` so pathological inputs cannot
    /// silently wrap.
    sum: u128,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            counts: vec![0; BUCKETS],
            total: 0,
            sum: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` identical observations in one fold.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[bucket_index(value)] += n;
        self.total += n;
        self.sum += u128::from(value) * u128::from(n);
    }

    /// Adds another histogram's counts into this one — an exact integer
    /// fold over the shared grid.
    pub fn merge(&mut self, other: &Self) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.total += other.total;
        self.sum += other.sum;
    }

    /// Number of observations recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Whether anything has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Sum of the raw observed values.
    #[must_use]
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Sum of the raw observed values as `f64` (for exposition).
    #[must_use]
    pub fn sum_f64(&self) -> f64 {
        self.sum as f64
    }

    /// Mean observed value, `0` when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// The per-bucket counts over the full grid.
    #[must_use]
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// `(upper_edge, count)` for every non-empty bucket, in edge order.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &count)| count > 0)
            .map(|(k, &count)| (UPPER_EDGES[k], count))
    }

    /// Deterministic quantile estimate: the upper edge of the bucket holding
    /// the `ceil(q · count)`-th ordered observation, or `None` when empty.
    /// The estimate overshoots the true value by at most one bucket ratio
    /// (2^(1/4) ≈ +19%) and, being a pure function of the integer counts, is
    /// identical however the histogram was assembled.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let rank = quantile_rank(self.total, q);
        let mut seen = 0u64;
        for (k, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return Some(UPPER_EDGES[k] as f64);
            }
        }
        Some(UPPER_EDGES[BUCKETS - 1] as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn record_merge_and_count_are_exact() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        a.record(100);
        a.record_n(1_000, 3);
        b.record(100);
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count(), 5);
        assert_eq!(merged.sum(), 100 + 3 * 1_000 + 100);
        let direct: Vec<_> = merged.nonzero_buckets().collect();
        assert_eq!(direct.len(), 2);
        assert_eq!(direct[0].1, 2, "both 100s share a bucket");
    }

    #[test]
    fn quantiles_are_upper_edges_and_monotone() {
        let mut h = LogHistogram::new();
        for v in 1..=1_000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.50).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        assert!(p50 >= 500.0, "upper-edge estimate never undershoots");
        assert!(p50 <= 500.0 * 1.19, "at most one bucket ratio over");
        assert!(p99 >= p50);
        assert!(h.quantile(0.0).unwrap() <= h.quantile(1.0).unwrap());
        assert!(LogHistogram::new().quantile(0.5).is_none());
    }

    #[test]
    fn zero_observations_land_in_the_first_bucket() {
        let mut h = LogHistogram::new();
        h.record(0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.nonzero_buckets().next(), Some((1, 1)));
        assert_eq!(h.quantile(0.5), Some(1.0));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        fn merge_is_associative_and_commutative(
            seed_a in 0u64..u64::MAX,
            seed_b in 0u64..u64::MAX,
            seed_c in 0u64..u64::MAX,
        ) {
            // Three histograms of pseudo-random values (SplitMix over the
            // seeds); the fold order must not matter, bucket for bucket.
            let fill = |seed: u64| {
                let mut h = LogHistogram::new();
                let mut state = seed;
                for _ in 0..50 {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    h.record(state >> 16);
                }
                h
            };
            let (a, b, c) = (fill(seed_a), fill(seed_b), fill(seed_c));
            let mut left = a.clone();
            left.merge(&b);
            left.merge(&c);
            let mut right_tail = b.clone();
            right_tail.merge(&c);
            let mut right = a.clone();
            right.merge(&right_tail);
            prop_assert_eq!(&left, &right);
            let mut flipped = b.clone();
            flipped.merge(&a);
            flipped.merge(&c);
            prop_assert_eq!(&left, &flipped);
            prop_assert_eq!(left.quantile(0.99), right.quantile(0.99));
        }
    }
}
